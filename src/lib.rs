//! # sbft — Stabilizing Byzantine-Fault Tolerant Storage
//!
//! A full reproduction of Bonomi, Potop-Butucaru and Tixeuil,
//! *Stabilizing Byzantine-Fault Tolerant Storage* (IPPS 2015): a
//! multi-writer multi-reader **regular register** over asynchronous
//! message passing that tolerates `f` Byzantine servers **and** arbitrary
//! transient corruption of every process and channel, with **bounded**
//! timestamps, for `n ≥ 5f + 1` servers.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`labels`] | `sbft-labels` | k-stabilizing bounded labeling system, unbounded comparator, MWMR timestamps, read-label pool |
//! | [`wtsg`] | `sbft-wtsg` | weighted timestamp graphs (local + union) and return-value selection |
//! | [`net`] | `sbft-net` | deterministic discrete-event simulator, fault injection, threaded runtime |
//! | [`datalink`] | `sbft-datalink` | stabilizing data-link over lossy non-FIFO channels (the FIFO assumption, constructively) |
//! | [`storage`] | `sbft-storage` | stable-store trait, checksummed frames, simulated faulty disk, byte codec |
//! | [`register`] | `sbft-core` | the register protocol: servers, clients, adversaries, spec checker, cluster driver |
//! | [`baseline`] | `sbft-baseline` | classical comparators: KLMW 3f+1 (unbounded ts), Malkhi–Reiter safe 5f, crash-only ABD |
//! | [`kv`] | `sbft-kv` | keyed object store multiplexing registers over one server pool |
//!
//! ## Quick start
//!
//! ```
//! use sbft::register::cluster::RegisterCluster;
//!
//! // n = 6 servers tolerate f = 1 Byzantine server.
//! let mut cluster = RegisterCluster::bounded(1).seed(42).build();
//! let writer = cluster.client(0);
//! let reader = cluster.client(1);
//!
//! cluster.write(writer, 7).expect("writes terminate (Lemma 1)");
//! let got = cluster.read(reader).expect("reads terminate (Lemma 6)");
//! assert_eq!(got.value, 7);
//!
//! // The recorded history satisfies MWMR regularity.
//! assert!(cluster.check_history().is_ok());
//! ```
//!
//! ## Surviving a transient fault
//!
//! ```
//! use sbft::net::CorruptionSeverity;
//! use sbft::register::cluster::RegisterCluster;
//!
//! let mut cluster = RegisterCluster::bounded(1).seed(7).build();
//! let (w, r) = (cluster.client(0), cluster.client(1));
//! cluster.write(w, 1).unwrap();
//!
//! // Scramble every server, every client, and every channel.
//! cluster.corrupt_everything(CorruptionSeverity::Adversarial);
//!
//! // Assumption 1: the first post-fault write runs to completion —
//! // and from then on the execution satisfies the register spec.
//! cluster.write(w, 2).unwrap();
//! let stable_from = cluster.now();
//! let got = cluster.read(r).unwrap();
//! assert_eq!(got.value, 2);
//! assert!(cluster.check_history_from(stable_from).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Compiles and runs every Rust code block in the top-level `README.md` as
/// a doctest, so the quickstart snippets shown to newcomers can never rot.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;

pub use sbft_baseline as baseline;
pub use sbft_core as register;
pub use sbft_datalink as datalink;
pub use sbft_kv as kv;
pub use sbft_labels as labels;
pub use sbft_net as net;
pub use sbft_storage as storage;
pub use sbft_wtsg as wtsg;
