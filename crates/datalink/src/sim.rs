//! A self-contained two-endpoint simulation for the data-link protocol
//! (the lossy/non-FIFO channel model does not fit the reliable-FIFO
//! simulator of `sbft-net`, so the data-link gets its own tiny loop).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::lossy::LossyChannel;
use crate::protocol::{DlReceiver, DlSender, Frame, Label};

/// Outcome of a convergence run (experiment E10).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConvergenceReport {
    /// Channel capacity `c`.
    pub capacity: usize,
    /// Payloads sent.
    pub sent: usize,
    /// Payloads delivered (including spurious ones).
    pub delivered: usize,
    /// Deliveries that were *not* part of the clean FIFO suffix.
    pub spurious: usize,
    /// Steps executed until the last payload completed.
    pub steps: u64,
    /// Sent payloads that were never delivered (bounded dirty prefix).
    pub lost: usize,
    /// Whether the run drained and the delivered stream ends with a clean
    /// FIFO suffix of the sent stream (pseudo-stabilization achieved).
    pub fifo_suffix_ok: bool,
}

/// Sender + receiver joined by two lossy non-FIFO channels.
pub struct DatalinkSim {
    /// The sender endpoint.
    pub sender: DlSender,
    /// The receiver endpoint.
    pub receiver: DlReceiver,
    data_ch: LossyChannel<Frame>,
    ack_ch: LossyChannel<Label>,
    rng: StdRng,
    /// Payloads delivered to the receiving application, in order.
    pub delivered: Vec<u64>,
    steps: u64,
}

impl DatalinkSim {
    /// Fresh endpoints over empty channels of capacity `c`.
    pub fn new(c: usize, seed: u64) -> Self {
        Self {
            sender: DlSender::new(c),
            receiver: DlReceiver::new(c),
            data_ch: LossyChannel::new(c),
            ack_ch: LossyChannel::new(c),
            rng: StdRng::seed_from_u64(seed),
            delivered: Vec::new(),
            steps: 0,
        }
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Transient fault: corrupt both endpoints and fill both channels with
    /// arbitrary residents.
    pub fn corrupt_everything(&mut self) {
        self.sender.corrupt(&mut self.rng);
        self.receiver.corrupt(&mut self.rng);
        let c = self.data_ch.capacity();
        let garbage_frames: Vec<Frame> = (0..c)
            .map(|_| Frame {
                label: self.rng.gen::<Label>() % (2 * c as u32 + 2),
                payload: self.rng.gen(),
            })
            .collect();
        self.data_ch.corrupt(garbage_frames);
        let garbage_acks: Vec<Label> =
            (0..c).map(|_| self.rng.gen::<Label>() % (2 * c as u32 + 2)).collect();
        self.ack_ch.corrupt(garbage_acks);
    }

    /// One scheduler step: the sender retransmits, then a random channel
    /// delivers one message (if non-empty).
    pub fn step(&mut self) {
        self.steps += 1;
        // Sender tick: retransmit the current frame.
        if let Some(frame) = self.sender.frame() {
            self.data_ch.send(frame, &mut self.rng);
        }
        // Random delivery from one of the two channels.
        if self.rng.gen::<bool>() {
            if let Some(frame) = self.data_ch.deliver(&mut self.rng) {
                let (ack, payload) = self.receiver.on_frame(frame);
                self.ack_ch.send(ack, &mut self.rng);
                if let Some(p) = payload {
                    self.delivered.push(p);
                }
            }
        } else if let Some(ack) = self.ack_ch.deliver(&mut self.rng) {
            self.sender.on_ack(ack);
        }
    }

    /// Run until the sender's queue drains (or `max_steps`).
    pub fn run(&mut self, max_steps: u64) -> bool {
        while self.steps < max_steps {
            if self.sender.queue.is_empty() {
                return true;
            }
            self.step();
        }
        self.sender.queue.is_empty()
    }

    /// Full E10 scenario: corrupt everything, transmit `payloads`, report.
    pub fn converge_report(
        c: usize,
        seed: u64,
        payloads: &[u64],
        max_steps: u64,
    ) -> ConvergenceReport {
        let mut sim = DatalinkSim::new(c, seed);
        sim.corrupt_everything();
        for &p in payloads {
            sim.sender.push(p);
        }
        let finished = sim.run(max_steps);
        // The clean FIFO suffix: the longest suffix of `delivered` that is
        // a suffix of `payloads`.
        let mut suffix = 0;
        while suffix < sim.delivered.len()
            && suffix < payloads.len()
            && sim.delivered[sim.delivered.len() - 1 - suffix]
                == payloads[payloads.len() - 1 - suffix]
        {
            suffix += 1;
        }
        ConvergenceReport {
            capacity: c,
            sent: payloads.len(),
            delivered: sim.delivered.len(),
            spurious: sim.delivered.len() - suffix,
            lost: payloads.len() - suffix.min(payloads.len()),
            steps: sim.steps,
            // The dirty prefix (losses + spurious deliveries) must be
            // bounded by one label cycle; everything after is exact FIFO.
            fifo_suffix_ok: finished
                && payloads.len() - suffix.min(payloads.len()) <= 2 * c + 2
                && sim.delivered.len() - suffix <= 2 * c + 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_start_delivers_exact_fifo() {
        let mut sim = DatalinkSim::new(2, 1);
        let payloads: Vec<u64> = (100..120).collect();
        for &p in &payloads {
            sim.sender.push(p);
        }
        assert!(sim.run(1_000_000), "must drain");
        assert_eq!(sim.delivered, payloads);
    }

    #[test]
    fn converges_from_arbitrary_configuration() {
        for seed in 0..10 {
            let payloads: Vec<u64> = (1000..1050).collect();
            let rep = DatalinkSim::converge_report(3, seed, &payloads, 5_000_000);
            assert!(rep.fifo_suffix_ok, "seed {seed}: {rep:?}");
            // Dirty prefix (spurious + lost) bounded by one label cycle.
            assert!(rep.spurious <= 2 * 3 + 2, "seed {seed}: {rep:?}");
            assert!(rep.lost <= 2 * 3 + 2, "seed {seed}: {rep:?}");
        }
    }

    #[test]
    fn larger_capacity_still_converges() {
        let payloads: Vec<u64> = (0..30).collect();
        let rep = DatalinkSim::converge_report(8, 7, &payloads, 10_000_000);
        assert!(rep.fifo_suffix_ok, "{rep:?}");
    }

    #[test]
    fn no_payloads_is_trivially_done() {
        let mut sim = DatalinkSim::new(2, 3);
        assert!(sim.run(10));
        assert!(sim.delivered.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let payloads: Vec<u64> = (0..20).collect();
        let a = DatalinkSim::converge_report(2, 9, &payloads, 1_000_000);
        let b = DatalinkSim::converge_report(2, 9, &payloads, 1_000_000);
        assert_eq!(a, b);
    }
}
