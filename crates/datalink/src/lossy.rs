//! The bounded, lossy, non-FIFO channel model.

use rand::rngs::StdRng;
use rand::Rng;

/// A channel holding at most `capacity` messages, with random-order
/// delivery and displacement-on-overflow loss.
#[derive(Clone, Debug)]
pub struct LossyChannel<M> {
    capacity: usize,
    residents: Vec<M>,
}

impl<M> LossyChannel<M> {
    /// An empty channel of the given capacity (≥ 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        Self { capacity, residents: Vec::with_capacity(capacity) }
    }

    /// The capacity bound `c`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Messages currently in transit.
    pub fn len(&self) -> usize {
        self.residents.len()
    }

    /// Whether the channel is empty.
    pub fn is_empty(&self) -> bool {
        self.residents.is_empty()
    }

    /// Send: if full, a random resident is displaced (lost) to make room —
    /// the new message always enters, which models a *fair* lossy channel
    /// (persistent retransmission cannot be starved forever).
    pub fn send(&mut self, msg: M, rng: &mut StdRng) {
        if self.residents.len() == self.capacity {
            let victim = rng.gen_range(0..self.residents.len());
            self.residents.swap_remove(victim);
        }
        self.residents.push(msg);
    }

    /// Deliver a uniformly random resident (non-FIFO), if any.
    pub fn deliver(&mut self, rng: &mut StdRng) -> Option<M> {
        if self.residents.is_empty() {
            return None;
        }
        let idx = rng.gen_range(0..self.residents.len());
        Some(self.residents.swap_remove(idx))
    }

    /// Transient fault: replace the content with arbitrary messages.
    pub fn corrupt(&mut self, msgs: impl IntoIterator<Item = M>) {
        self.residents.clear();
        for m in msgs {
            if self.residents.len() == self.capacity {
                break;
            }
            self.residents.push(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn bounded_capacity_displaces() {
        let mut ch = LossyChannel::new(3);
        let mut r = rng();
        for i in 0..10 {
            ch.send(i, &mut r);
        }
        assert_eq!(ch.len(), 3);
    }

    #[test]
    fn deliver_drains() {
        let mut ch = LossyChannel::new(4);
        let mut r = rng();
        for i in 0..4 {
            ch.send(i, &mut r);
        }
        let mut got = Vec::new();
        while let Some(m) = ch.deliver(&mut r) {
            got.push(m);
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert!(ch.is_empty());
    }

    #[test]
    fn corrupt_respects_capacity() {
        let mut ch = LossyChannel::new(2);
        ch.corrupt(0..100);
        assert_eq!(ch.len(), 2);
    }

    #[test]
    fn empty_channel_delivers_none() {
        let mut ch: LossyChannel<u32> = LossyChannel::new(2);
        assert_eq!(ch.deliver(&mut rng()), None);
    }
}
