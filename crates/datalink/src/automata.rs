//! [`Automaton`] adapters for the data-link endpoints, plus a lossy relay,
//! so the protocol runs on any [`Substrate`] — including the threaded
//! runtime, where the sender's retransmission loop exercises real timers.
//!
//! Topology (three processes):
//!
//! ```text
//!   0: SenderAuto  <-->  1: LossyRelay  <-->  2: ReceiverAuto
//! ```
//!
//! The relay models the paper's bounded non-reliable channel: each frame
//! or ack traversing it is dropped with a configurable probability. The
//! sender retransmits the head frame on a timer until `c + 1` acks with
//! the current label arrive, so the stream gets through despite the loss —
//! this is the constructive version of the Section II channel assumption,
//! measured end-to-end by experiment E10's substrate rows.

use rand::rngs::StdRng;
use rand::Rng;
use sbft_net::corruption::FaultPlan;
use sbft_net::substrate::{AnySubstrate, Backend, Pumped, Substrate, SubstrateConfig};
use sbft_net::{Automaton, Ctx, NetMetrics, ProcessId, ENV};

use crate::protocol::{DlReceiver, DlSender, Frame, Label};

/// Pid of the sender endpoint.
pub const SENDER: ProcessId = 0;
/// Pid of the lossy relay.
pub const RELAY: ProcessId = 1;
/// Pid of the receiver endpoint.
pub const RECEIVER: ProcessId = 2;

/// Wire messages of the data-link automata.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DlMsg {
    /// A data frame (sender → receiver direction).
    Data(Frame),
    /// An acknowledgement (receiver → sender direction).
    Ack(Label),
}

/// Observable outputs collected by the driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DlEvent {
    /// The receiver delivered a payload to the application.
    Delivered(u64),
    /// The sender completed its whole stream (every payload acked).
    SenderDone,
}

/// The sending endpoint as a timer-driven automaton: transmits the head
/// frame on start and retransmits it every `retransmit_every` ticks until
/// the [`DlSender`] ack rule advances the queue.
pub struct SenderAuto {
    /// The protocol state machine.
    pub inner: DlSender,
    retransmit_every: u64,
    done_emitted: bool,
}

impl SenderAuto {
    /// Sender for capacity `c`, preloaded with `stream`, retransmitting
    /// every `retransmit_every` time units.
    pub fn new(c: usize, stream: &[u64], retransmit_every: u64) -> Self {
        let mut inner = DlSender::new(c);
        for &p in stream {
            inner.push(p);
        }
        Self { inner, retransmit_every: retransmit_every.max(1), done_emitted: false }
    }

    fn transmit(&mut self, ctx: &mut Ctx<'_, DlMsg, DlEvent>) {
        if let Some(frame) = self.inner.frame() {
            ctx.send(RELAY, DlMsg::Data(frame));
            ctx.set_timer(self.retransmit_every, 0);
        } else if !self.done_emitted {
            self.done_emitted = true;
            ctx.output(DlEvent::SenderDone);
        }
    }
}

impl Automaton<DlMsg, DlEvent> for SenderAuto {
    fn on_start(&mut self, ctx: &mut Ctx<'_, DlMsg, DlEvent>) {
        self.transmit(ctx);
    }

    fn on_message(&mut self, _from: ProcessId, msg: DlMsg, ctx: &mut Ctx<'_, DlMsg, DlEvent>) {
        if let DlMsg::Ack(label) = msg {
            if self.inner.on_ack(label) {
                // Advanced to the next payload: transmit it immediately
                // (the pending retransmit timer keeps it alive).
                self.transmit(ctx);
            }
        }
    }

    fn on_timer(&mut self, _id: u64, ctx: &mut Ctx<'_, DlMsg, DlEvent>) {
        self.transmit(ctx);
    }

    fn corrupt(&mut self, rng: &mut StdRng) {
        self.inner.corrupt(rng);
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// The receiving endpoint: acks every frame, outputs fresh deliveries.
pub struct ReceiverAuto {
    /// The protocol state machine.
    pub inner: DlReceiver,
}

impl ReceiverAuto {
    /// Receiver for capacity `c`.
    pub fn new(c: usize) -> Self {
        Self { inner: DlReceiver::new(c) }
    }
}

impl Automaton<DlMsg, DlEvent> for ReceiverAuto {
    fn on_message(&mut self, _from: ProcessId, msg: DlMsg, ctx: &mut Ctx<'_, DlMsg, DlEvent>) {
        if let DlMsg::Data(frame) = msg {
            let (ack, delivered) = self.inner.on_frame(frame);
            ctx.send(RELAY, DlMsg::Ack(ack));
            if let Some(payload) = delivered {
                ctx.output(DlEvent::Delivered(payload));
            }
        }
    }

    fn corrupt(&mut self, rng: &mut StdRng) {
        self.inner.corrupt(rng);
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// A relay dropping each traversing message with probability `loss`,
/// forwarding data frames towards the receiver and acks towards the
/// sender. This is where the substrate's reliable channels become the
/// lossy medium the protocol is designed for.
pub struct LossyRelay {
    loss: f64,
}

impl LossyRelay {
    /// Relay with per-message drop probability `loss` in `[0, 1)`.
    pub fn new(loss: f64) -> Self {
        Self { loss }
    }
}

impl Automaton<DlMsg, DlEvent> for LossyRelay {
    fn on_message(&mut self, from: ProcessId, msg: DlMsg, ctx: &mut Ctx<'_, DlMsg, DlEvent>) {
        if from != ENV && ctx.rng().gen_bool(self.loss) {
            return; // dropped on the floor
        }
        match msg {
            DlMsg::Data(_) => ctx.send(RECEIVER, msg),
            DlMsg::Ack(_) => ctx.send(SENDER, msg),
        }
    }
}

/// Result of one substrate-hosted data-link run.
#[derive(Clone, Debug)]
pub struct DlRunReport {
    /// Payloads delivered, in delivery order.
    pub delivered: Vec<u64>,
    /// Whether the sender finished its whole stream.
    pub sender_done: bool,
    /// Network metrics of the run.
    pub metrics: NetMetrics,
}

impl DlRunReport {
    /// `true` when `delivered` is exactly `stream` (FIFO, no loss, no
    /// duplication) — the post-stabilization guarantee.
    pub fn matches(&self, stream: &[u64]) -> bool {
        self.sender_done && self.delivered == stream
    }
}

/// Run the data-link over a lossy relay on the chosen backend until the
/// sender completes (or `max_pumps` substrate pumps elapse).
///
/// `corrupt_endpoints` applies a [`FaultPlan`] before pumping: both
/// endpoint states are scrambled and garbage frames/acks are loaded on
/// the channels — the protocol must still deliver the stream after its
/// bounded dirty prefix, so callers should then check only a suffix.
pub fn run_on_substrate(
    backend: Backend,
    c: usize,
    loss: f64,
    seed: u64,
    stream: &[u64],
    corrupt_endpoints: bool,
    max_pumps: u64,
) -> DlRunReport {
    let procs: Vec<Box<dyn Automaton<DlMsg, DlEvent>>> = vec![
        Box::new(SenderAuto::new(c, stream, 8)),
        Box::new(LossyRelay::new(loss)),
        Box::new(ReceiverAuto::new(c)),
    ];
    let config = SubstrateConfig::seeded(seed);
    let mut sub = AnySubstrate::spawn(backend, procs, &config);

    if corrupt_endpoints {
        let domain = (2 * c + 2) as Label;
        let plan = FaultPlan {
            corrupt_processes: vec![SENDER, RECEIVER],
            garbage_channels: vec![(RELAY, SENDER), (RELAY, RECEIVER)],
            garbage_per_channel: c,
        };
        let mut garbage = move |rng: &mut StdRng| {
            if rng.gen_bool(0.5) {
                DlMsg::Data(Frame {
                    label: rng.gen::<Label>() % domain,
                    payload: rng.gen_range(0..1000u64),
                })
            } else {
                DlMsg::Ack(rng.gen::<Label>() % domain)
            }
        };
        sub.apply_fault(&plan, &mut garbage);
        // A corrupted sender label desynchronizes the exchange; kick the
        // sender so it (re)transmits under its corrupted state.
        sub.inject(SENDER, DlMsg::Ack(0));
    }

    let mut delivered = Vec::new();
    let mut sender_done = false;
    let mut pumps = max_pumps;
    let mut idle = 0u32;
    while !sender_done && pumps > 0 {
        pumps -= 1;
        match sub.pump() {
            Pumped::Quiescent => break,
            Pumped::Idle => {
                idle += 1;
                if idle >= 50 {
                    break;
                }
            }
            Pumped::Event { outputs, .. } => {
                idle = 0;
                for out in outputs {
                    match out {
                        DlEvent::Delivered(p) => delivered.push(p),
                        DlEvent::SenderDone => sender_done = true,
                    }
                }
            }
        }
    }
    // Outputs arrive on per-process channels: a causally-earlier delivery
    // may still be queued when `SenderDone` is pumped. Drain the tail.
    let mut drain = 1000u32;
    while drain > 0 {
        drain -= 1;
        match sub.pump() {
            Pumped::Quiescent | Pumped::Idle => break,
            Pumped::Event { outputs, .. } => {
                for out in outputs {
                    if let DlEvent::Delivered(p) = out {
                        delivered.push(p);
                    }
                }
            }
        }
    }
    let metrics = sub.metrics_snapshot();
    sub.stop();
    DlRunReport { delivered, sender_done, metrics }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: u64) -> Vec<u64> {
        (100..100 + n).collect()
    }

    #[test]
    fn lossless_sim_run_delivers_fifo() {
        let s = stream(10);
        let r = run_on_substrate(Backend::Sim, 2, 0.0, 1, &s, false, 200_000);
        assert!(r.matches(&s), "{r:?}");
    }

    #[test]
    fn lossy_sim_run_still_delivers_fifo() {
        for seed in 0..5 {
            let s = stream(8);
            let r = run_on_substrate(Backend::Sim, 2, 0.3, seed, &s, false, 400_000);
            assert!(r.matches(&s), "seed {seed}: {r:?}");
        }
    }

    #[test]
    fn corrupted_start_converges_to_fifo_suffix() {
        let s = stream(12);
        let r = run_on_substrate(Backend::Sim, 2, 0.2, 3, &s, true, 400_000);
        assert!(r.sender_done, "{r:?}");
        // Bounded dirty prefix: the delivered stream must end with a
        // clean FIFO suffix of the sent stream (at least the second half).
        let clean =
            s.iter().rev().zip(r.delivered.iter().rev()).take_while(|(a, b)| a == b).count();
        assert!(clean >= s.len() / 2, "clean suffix {clean} of {}: {r:?}", s.len());
    }

    #[test]
    fn threaded_run_delivers_fifo_with_metrics() {
        let s = stream(6);
        let r = run_on_substrate(Backend::Threaded, 1, 0.1, 7, &s, false, 400_000);
        assert!(r.matches(&s), "{r:?}");
        assert!(r.metrics.messages_sent > 0 && r.metrics.messages_delivered > 0, "{:?}", r.metrics);
    }
}
