//! # sbft-datalink — stabilizing data-link over lossy non-FIFO channels
//!
//! The register paper *assumes* reliable FIFO point-to-point channels and
//! notes (Section II) that they "can be ensured by using a stabilization
//! preserving data-link protocol built on top of bounded, non-reliable but
//! fair, non-FIFO communication channels" — citing Dolev, Dubois,
//! Potop-Butucaru and Tixeuil (IPL 2011). This crate makes that assumption
//! constructive with a **simplified ack-counting variant** of that
//! protocol, and measures its convergence (experiment E10).
//!
//! ## Model ([`lossy`])
//!
//! A channel holds at most `c` messages (`c` is known). Sends to a full
//! channel displace a random resident (loss); deliveries pick a random
//! resident (non-FIFO); the initial content is arbitrary (transient
//! corruption). Fairness: every resident is eventually delivered or
//! displaced.
//!
//! ## Protocol ([`protocol`])
//!
//! * The **sender** transmits the head payload tagged with the current
//!   label, retransmitting on every tick, until it has collected `c + 1`
//!   acknowledgements carrying that label. Since at most `c` stale acks
//!   with any given label can pre-exist in the return channel, `c + 1`
//!   acks prove the receiver really received this packet. It then advances
//!   to the next payload with the next label (labels cycle through a
//!   domain of `2c + 2`, so a label is reused only long after every stale
//!   copy of its previous incarnation has left the bounded channel).
//! * The **receiver** acknowledges every data message with its label and
//!   delivers a payload only on the `(c + 1)`-th reception of its label —
//!   at most `c` copies can be stale channel residents, so the extra copy
//!   proves the sender is actively transmitting it. Trailing
//!   retransmissions of the last delivered label are suppressed outright.
//!
//! ## Guarantee (pseudo-stabilization)
//!
//! From an arbitrary initial configuration, the execution has a bounded
//! *dirty prefix* — at most one label cycle's worth of payloads may be
//! lost or delivered spuriously (stale residents and corrupted counters,
//! each consumed at most once) — after which the delivered stream is
//! exactly the sent stream in FIFO order, the property the register
//! protocol builds on. Experiment E10 measures the dirty prefix and the
//! convergence steps as functions of the capacity bound `c`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod automata;
pub mod lossy;
pub mod protocol;
pub mod sim;

pub use automata::{
    run_on_substrate, DlEvent, DlMsg, DlRunReport, LossyRelay, ReceiverAuto, SenderAuto,
};
pub use lossy::LossyChannel;
pub use protocol::{DlReceiver, DlSender, Label};
pub use sim::{ConvergenceReport, DatalinkSim};
