//! Sender/receiver automata of the simplified stabilizing data-link.

use rand::rngs::StdRng;
use rand::Rng;
use std::collections::VecDeque;

/// A data-link label. Labels cycle through the domain `0..2c+2`.
pub type Label = u32;

/// A data frame `⟨label, payload⟩`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The frame's label.
    pub label: Label,
    /// The payload carried.
    pub payload: u64,
}

/// The sending endpoint.
#[derive(Clone, Debug)]
pub struct DlSender {
    c: usize,
    /// Label domain size: `2c + 2`.
    domain: Label,
    /// Outgoing payload queue (front = currently transmitting).
    pub queue: VecDeque<u64>,
    /// Label of the current exchange.
    pub label: Label,
    /// Acks with the current label collected so far.
    pub acks: usize,
    /// Completed transmissions (diagnostics).
    pub completed: u64,
}

impl DlSender {
    /// Sender for channel capacity `c`.
    pub fn new(c: usize) -> Self {
        Self {
            c,
            domain: (2 * c + 2) as Label,
            queue: VecDeque::new(),
            label: 0,
            acks: 0,
            completed: 0,
        }
    }

    /// Enqueue a payload for reliable FIFO transmission.
    pub fn push(&mut self, payload: u64) {
        self.queue.push_back(payload);
    }

    /// The frame to (re)transmit now, if any payload is pending.
    pub fn frame(&self) -> Option<Frame> {
        self.queue.front().map(|&payload| Frame { label: self.label, payload })
    }

    /// An ack arrived. Returns `true` when the current payload completed
    /// (`c + 1` acks with the current label — at most `c` can be stale).
    pub fn on_ack(&mut self, label: Label) -> bool {
        if self.queue.is_empty() || label != self.label {
            return false;
        }
        self.acks += 1;
        if self.acks > self.c {
            self.queue.pop_front();
            self.label = (self.label + 1) % self.domain;
            self.acks = 0;
            self.completed += 1;
            true
        } else {
            false
        }
    }

    /// Transient fault: arbitrary label/ack-count (queue is application
    /// state and survives; the protocol must still deliver it).
    pub fn corrupt(&mut self, rng: &mut StdRng) {
        self.label = rng.gen::<Label>() % self.domain;
        self.acks = rng.gen_range(0..=self.c);
    }
}

/// The receiving endpoint.
///
/// Delivery rule: a label is delivered only after **`c + 1` receptions**
/// since it was last delivered — at most `c` copies of any frame can be
/// stale channel residents, so the `(c+1)`-th reception proves the sender
/// is actively transmitting it. Copies of the *last delivered* label are
/// suppressed outright (they are the sender's trailing retransmissions).
/// Both protections use bounded memory: a counter per label of the finite
/// domain plus one label. A corrupted counter can cause at most one
/// spurious delivery per label; a corrupted `last` can eat at most one
/// payload — the bounded "dirty prefix" pseudo-stabilization permits.
#[derive(Clone, Debug)]
pub struct DlReceiver {
    /// Reception counters per label (domain-bounded).
    pub count: Vec<usize>,
    /// The last label delivered (its trailing copies are suppressed).
    pub last: Option<Label>,
    c: usize,
    domain: Label,
}

impl DlReceiver {
    /// Receiver for channel capacity `c`.
    pub fn new(c: usize) -> Self {
        let domain = (2 * c + 2) as Label;
        Self { count: vec![0; domain as usize], last: None, c, domain }
    }

    /// A data frame arrived: always returns the ack label; additionally
    /// returns the payload when the frame proved fresh and should be
    /// delivered to the application.
    pub fn on_frame(&mut self, frame: Frame) -> (Label, Option<u64>) {
        let label = frame.label % self.domain;
        if self.last == Some(label) {
            return (label, None);
        }
        let slot = &mut self.count[label as usize];
        *slot += 1;
        if *slot > self.c {
            *slot = 0;
            self.last = Some(label);
            (label, Some(frame.payload))
        } else {
            (label, None)
        }
    }

    /// Transient fault: arbitrary counters and last-label memory.
    pub fn corrupt(&mut self, rng: &mut StdRng) {
        for slot in &mut self.count {
            *slot = rng.gen_range(0..=self.c);
        }
        self.last = if rng.gen::<bool>() { Some(rng.gen::<Label>() % self.domain) } else { None };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sender_requires_c_plus_one_acks() {
        let mut s = DlSender::new(2);
        s.push(42);
        assert_eq!(s.frame(), Some(Frame { label: 0, payload: 42 }));
        assert!(!s.on_ack(0));
        assert!(!s.on_ack(0));
        assert!(s.on_ack(0), "third ack (c+1 = 3) completes");
        assert_eq!(s.completed, 1);
        assert_eq!(s.label, 1);
    }

    #[test]
    fn stale_acks_with_wrong_label_ignored() {
        let mut s = DlSender::new(2);
        s.push(1);
        for _ in 0..10 {
            assert!(!s.on_ack(5));
        }
        assert_eq!(s.acks, 0);
    }

    #[test]
    fn acks_without_pending_payload_ignored() {
        let mut s = DlSender::new(1);
        assert!(!s.on_ack(0));
    }

    #[test]
    fn labels_cycle_through_domain() {
        let mut s = DlSender::new(1); // domain = 4
        for i in 0..8 {
            s.push(i);
        }
        let mut labels = Vec::new();
        for _ in 0..8 {
            labels.push(s.frame().unwrap().label);
            for _ in 0..2 {
                s.on_ack(s.label);
            }
        }
        assert_eq!(labels, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn receiver_needs_c_plus_one_receptions() {
        let mut r = DlReceiver::new(1); // c = 1: deliver on 2nd reception
        let (ack, d) = r.on_frame(Frame { label: 0, payload: 7 });
        assert_eq!(ack, 0);
        assert_eq!(d, None, "a single copy could be a stale resident");
        let (_, d) = r.on_frame(Frame { label: 0, payload: 7 });
        assert_eq!(d, Some(7), "c+1 copies prove freshness");
        let (_, d) = r.on_frame(Frame { label: 0, payload: 7 });
        assert_eq!(d, None, "trailing retransmissions suppressed");
    }

    #[test]
    fn receiver_delivers_labels_in_sender_order() {
        let mut r = DlReceiver::new(1);
        let mut delivered = Vec::new();
        for l in [0u32, 0, 1, 1, 2, 2] {
            if let (_, Some(p)) = r.on_frame(Frame { label: l, payload: l as u64 }) {
                delivered.push(p);
            }
        }
        assert_eq!(delivered, vec![0, 1, 2]);
    }

    #[test]
    fn stale_copies_cannot_force_redelivery() {
        let mut r = DlReceiver::new(2); // c = 2: need 3 receptions
        for _ in 0..3 {
            r.on_frame(Frame { label: 0, payload: 9 });
        }
        // Move on to label 1 (delivered), then at most c = 2 stale copies
        // of label 0 arrive late: never enough to redeliver.
        for _ in 0..3 {
            r.on_frame(Frame { label: 1, payload: 10 });
        }
        for _ in 0..2 {
            let (_, d) = r.on_frame(Frame { label: 0, payload: 9 });
            assert_eq!(d, None);
        }
    }

    #[test]
    fn corrupt_stays_in_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = DlSender::new(2);
        s.push(1);
        s.corrupt(&mut rng);
        assert!(s.label < 6);
        assert!(s.acks <= 2);
        let mut r = DlReceiver::new(2);
        r.corrupt(&mut rng);
        assert!(r.count.iter().all(|&c| c <= 2));
        if let Some(l) = r.last {
            assert!(l < 6);
        }
    }
}
