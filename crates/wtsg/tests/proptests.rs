//! Property tests for WTsG invariants under arbitrary witness multisets,
//! including bounded (non-transitive) labels.

use proptest::prelude::*;
use sbft_labels::{BoundedLabel, BoundedLabeling, LabelingSystem, UnboundedLabeling};
use sbft_wtsg::{build_union, select_return_value, HistoryEntry, Witness, WtsGraph};

fn witnesses() -> impl Strategy<Value = Vec<Witness<u32, u64>>> {
    proptest::collection::vec((0usize..10, 0u32..5, 0u64..6), 0..40)
        .prop_map(|v| v.into_iter().map(|(s, val, ts)| Witness::new(s, val, ts)).collect())
}

fn bounded_witnesses(k: usize) -> impl Strategy<Value = Vec<Witness<u32, BoundedLabel>>> {
    let sys = BoundedLabeling::new(k);
    proptest::collection::vec(
        (0usize..10, 0u32..5, any::<u32>(), proptest::collection::vec(any::<u32>(), 0..6)),
        0..30,
    )
    .prop_map(move |v| {
        v.into_iter()
            .map(|(s, val, sting, anti)| {
                Witness::new(s, val, sys.sanitize(BoundedLabel::new(sting, anti)))
            })
            .collect()
    })
}

proptest! {
    /// Total weight equals the number of distinct (server, ts, value) triples.
    #[test]
    fn total_weight_counts_distinct_testimonies(ws in witnesses()) {
        let g = WtsGraph::build(&UnboundedLabeling, ws.clone());
        let mut distinct: Vec<(usize, u64, u32)> =
            ws.iter().map(|w| (w.server, w.ts, w.value)).collect();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(g.total_weight(), distinct.len());
    }

    /// Every edge respects precedence; no self edges.
    #[test]
    fn edges_sound(ws in bounded_witnesses(4)) {
        let sys = BoundedLabeling::new(4);
        let g = WtsGraph::build(&sys, ws);
        for &(i, j) in g.edges() {
            prop_assert_ne!(i, j);
            prop_assert!(sys.precedes(&g.nodes()[i].ts, &g.nodes()[j].ts));
        }
        // Antisymmetry at the graph level: no 2-cycles.
        for &(i, j) in g.edges() {
            prop_assert!(!g.edges().contains(&(j, i)));
        }
    }

    /// Selection is safe: the returned node really has >= threshold distinct
    /// witnesses, and the result is deterministic.
    #[test]
    fn selection_sound_and_deterministic(ws in bounded_witnesses(3), thr in 1usize..6) {
        let sys = BoundedLabeling::new(3);
        let g = WtsGraph::build(&sys, ws.clone());
        let a = select_return_value(&sys, &g, thr).map(|n| (n.ts.clone(), n.value));
        let g2 = WtsGraph::build(&sys, ws);
        let b = select_return_value(&sys, &g2, thr).map(|n| (n.ts.clone(), n.value));
        prop_assert_eq!(a.clone(), b);
        if let Some((ts, value)) = a {
            let n = g.nodes().iter().find(|n| n.ts == ts && n.value == value).unwrap();
            prop_assert!(n.weight() >= thr);
        }
    }

    /// Union graph weights are pointwise >= local graph weights.
    #[test]
    fn union_dominates_local(
        ws in witnesses(),
        hist in proptest::collection::vec((0usize..10, 0u32..5, 0u64..6), 0..20),
    ) {
        let local = WtsGraph::build(&UnboundedLabeling, ws.clone());
        let histories: Vec<(usize, Vec<HistoryEntry<u32, u64>>)> = hist
            .into_iter()
            .map(|(s, v, t)| (s, vec![HistoryEntry::new(v, t)]))
            .collect();
        let union = build_union(&UnboundedLabeling, ws, histories);
        for n in local.nodes() {
            let u = union
                .nodes()
                .iter()
                .find(|m| m.ts == n.ts && m.value == n.value)
                .expect("union must contain every local node");
            prop_assert!(u.weight() >= n.weight());
        }
    }

    /// f Byzantine servers can never push a forged pair to weight 2f+1 on
    /// their own, in either graph.
    #[test]
    fn byzantine_weight_cap(f in 1usize..4, reps in 1usize..5) {
        let sys = UnboundedLabeling;
        // f distinct Byzantine servers each repeat a forged pair `reps` times.
        let ws: Vec<Witness<u32, u64>> = (0..f)
            .flat_map(|s| (0..reps).map(move |_| Witness::new(s, 999, 77)))
            .collect();
        let g = WtsGraph::build(&sys, ws);
        prop_assert!(g.nodes()[0].weight() <= f);
        prop_assert!(g.nodes()[0].weight() < 2 * f + 1);
    }
}
