//! Delta-maintained WTsG (the E15 read hot-path optimization).
//!
//! [`crate::WtsGraph::build`] reconstructs the whole graph — node dedup,
//! witness sets, sort — on every call, and the reader calls it on every
//! `decide()`. Under sustained load a client decides once per read but the
//! evidence arrives one `REPLY` at a time, so the reader instead keeps an
//! [`IncrementalWtsg`] and applies each reply as a *delta*: replace that
//! server's previous testimony, touching only the (at most two) affected
//! nodes. Selection runs over the maintained node set through the
//! [`Wtsg`] trait, identical to a from-scratch graph — a property test in
//! this module drives both representations with the same random testimony
//! stream and asserts the node sets coincide exactly.
//!
//! Edges are not materialized: per Definition 3 they are the pure function
//! `ts_i ≺ ts_j` of the node set, and selection queries `precedes`
//! directly (see [`Wtsg`]).

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::hash::Hash;

use crate::graph::{Witness, WtsNode, Wtsg};

/// A Weighted Timestamp Graph maintained by testimony deltas.
///
/// Semantically the graph always equals `WtsGraph::build(sys, M)` (up to
/// node order) where `M` is the current testimony multiset: every
/// [`IncrementalWtsg::add_witness`] adds to `M`, and
/// [`IncrementalWtsg::set_current`] replaces the server's previous
/// *current* (recency-0) testimony in `M`. Nodes are kept sorted by
/// `(ts, value)` — the same deterministic order `WtsGraph` uses — so
/// tie-breaking in selection is representation-independent.
#[derive(Clone, Debug, Default)]
pub struct IncrementalWtsg<V, T> {
    /// Sorted by `(ts, value)`, deduplicated.
    nodes: Vec<WtsNode<V, T>>,
    /// Per node (parallel to `nodes`): server → recency → live testimony
    /// count. Needed to undo one testimony without forgetting the
    /// server's other testimonies (e.g. a historical one for the same
    /// pair) or their recencies.
    testimony: Vec<BTreeMap<usize, BTreeMap<usize, usize>>>,
    /// Each server's current (recency-0) pair, as last set by
    /// `set_current` — the testimony the next `set_current` replaces.
    current: BTreeMap<usize, (V, T)>,
}

impl<V, T> IncrementalWtsg<V, T>
where
    V: Clone + Eq + Ord + Hash + Debug,
    T: Clone + Eq + Ord + Hash + Debug,
{
    /// An empty graph.
    pub fn new() -> Self {
        Self { nodes: Vec::new(), testimony: Vec::new(), current: BTreeMap::new() }
    }

    /// Record one testimony (multiset add), like one element of the
    /// iterator fed to [`crate::WtsGraph::build`].
    pub fn add_witness(&mut self, w: Witness<V, T>) {
        let idx = match self.nodes.binary_search_by(|n| (&n.ts, &n.value).cmp(&(&w.ts, &w.value))) {
            Ok(i) => i,
            Err(i) => {
                self.nodes.insert(
                    i,
                    WtsNode {
                        ts: w.ts,
                        value: w.value,
                        witnesses: Default::default(),
                        best_recency: w.recency,
                    },
                );
                self.testimony.insert(i, BTreeMap::new());
                i
            }
        };
        let node = &mut self.nodes[idx];
        node.witnesses.insert(w.server);
        node.best_recency = node.best_recency.min(w.recency);
        *self.testimony[idx].entry(w.server).or_default().entry(w.recency).or_insert(0) += 1;
    }

    /// Replace `server`'s current (recency-0) testimony with `(value, ts)`
    /// — the delta a fresh `REPLY` applies. The server's previous current
    /// pair (if any) is withdrawn first; its node loses the witness and is
    /// dropped when no testimony for it remains. Returns the superseded
    /// pair, mirroring what the reply bookkeeping needs.
    pub fn set_current(&mut self, server: usize, value: V, ts: T) -> Option<(V, T)> {
        if let Some(pair) = self.current.get(&server) {
            if pair.0 == value && pair.1 == ts {
                // Same-pair re-reply: the multiset is unchanged.
                return Some(pair.clone());
            }
        }
        let prev = self.current.insert(server, (value.clone(), ts.clone()));
        if let Some((pv, pt)) = &prev {
            self.remove_testimony(server, pv, pt, 0);
        }
        self.add_witness(Witness::new(server, value, ts));
        prev
    }

    /// Withdraw one testimony `(server, value, ts)` at `recency`.
    fn remove_testimony(&mut self, server: usize, value: &V, ts: &T, recency: usize) {
        let Ok(idx) = self.nodes.binary_search_by(|n| (&n.ts, &n.value).cmp(&(ts, value))) else {
            return;
        };
        let per_server = &mut self.testimony[idx];
        let Some(recencies) = per_server.get_mut(&server) else { return };
        match recencies.get_mut(&recency) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                recencies.remove(&recency);
            }
            None => return,
        }
        if recencies.is_empty() {
            per_server.remove(&server);
            self.nodes[idx].witnesses.remove(&server);
        }
        if per_server.is_empty() {
            self.nodes.remove(idx);
            self.testimony.remove(idx);
        } else {
            // best_recency may have belonged to the removed testimony;
            // recompute from the surviving recencies.
            self.nodes[idx].best_recency =
                per_server.values().filter_map(|r| r.keys().next().copied()).min().unwrap_or(0);
        }
    }

    /// Drop every stored testimony (a read starting over).
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.testimony.clear();
        self.current.clear();
    }
}

impl<V, T> Wtsg<V, T> for IncrementalWtsg<V, T> {
    fn nodes(&self) -> &[WtsNode<V, T>] {
        &self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::WtsGraph;
    use crate::select::{select_with_policy, SelectionPolicy};
    use proptest::prelude::*;
    use sbft_labels::UnboundedLabeling;

    fn canon(nodes: &[WtsNode<u64, u64>]) -> Vec<(u64, u64, Vec<usize>, usize)> {
        let mut v: Vec<_> = nodes
            .iter()
            .map(|n| {
                (n.ts, n.value, n.witnesses.iter().copied().collect::<Vec<_>>(), n.best_recency)
            })
            .collect();
        v.sort();
        v
    }

    /// Replay a testimony stream through both representations: the
    /// from-scratch graph sees the *final* multiset, the incremental one
    /// sees it as deltas.
    fn replay(
        stream: &[(usize, u64, u64)],
        extra: &[(usize, u64, u64, usize)],
    ) -> (WtsGraph<u64, u64>, IncrementalWtsg<u64, u64>) {
        let mut inc = IncrementalWtsg::new();
        for &(server, value, ts, recency) in extra {
            inc.add_witness(Witness::with_recency(server, value, ts, recency));
        }
        let mut current: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
        for &(server, value, ts) in stream {
            inc.set_current(server, value, ts);
            current.insert(server, (value, ts));
        }
        let final_witnesses = extra
            .iter()
            .map(|&(s, v, t, r)| Witness::with_recency(s, v, t, r))
            .chain(current.iter().map(|(&s, &(v, t))| Witness::new(s, v, t)));
        let scratch = WtsGraph::build(&UnboundedLabeling, final_witnesses);
        (scratch, inc)
    }

    #[test]
    fn single_delta_matches_build() {
        let (scratch, inc) = replay(&[(0, 7, 1)], &[]);
        assert_eq!(canon(scratch.nodes()), canon(Wtsg::nodes(&inc)));
    }

    #[test]
    fn superseded_reply_removes_old_node() {
        let mut inc = IncrementalWtsg::new();
        inc.set_current(0, 1, 10);
        inc.set_current(1, 1, 10);
        let prev = inc.set_current(0, 2, 20);
        assert_eq!(prev, Some((1, 10)));
        let nodes = Wtsg::nodes(&inc);
        assert_eq!(nodes.len(), 2);
        let old = nodes.iter().find(|n| n.ts == 10).unwrap();
        assert_eq!(old.weight(), 1, "server 0's witness withdrawn");
    }

    #[test]
    fn last_witness_withdrawal_drops_node() {
        let mut inc = IncrementalWtsg::new();
        inc.set_current(0, 1, 10);
        inc.set_current(0, 2, 20);
        let nodes = Wtsg::nodes(&inc);
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].ts, 20);
    }

    #[test]
    fn same_pair_re_reply_is_idempotent() {
        let mut inc = IncrementalWtsg::new();
        inc.set_current(3, 9, 5);
        inc.set_current(3, 9, 5);
        inc.set_current(3, 9, 5);
        let nodes = Wtsg::nodes(&inc);
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].weight(), 1);
    }

    #[test]
    fn historical_testimony_keeps_node_alive_past_supersede() {
        // Server 0 has BOTH a historical and a current testimony for
        // (10, 1); superseding the current one must not drop the node.
        let mut inc = IncrementalWtsg::new();
        inc.add_witness(Witness::with_recency(0, 1, 10, 2));
        inc.set_current(0, 1, 10);
        inc.set_current(0, 5, 30);
        let nodes = Wtsg::nodes(&inc);
        let old = nodes.iter().find(|n| n.ts == 10).expect("historical survives");
        assert_eq!(old.weight(), 1);
        assert_eq!(old.best_recency, 2, "recency falls back to the historical rank");
    }

    #[test]
    fn clear_empties() {
        let mut inc = IncrementalWtsg::new();
        inc.set_current(0, 1, 10);
        inc.clear();
        assert_eq!(Wtsg::node_count(&inc), 0);
    }

    proptest! {
        /// The equivalence property the ISSUE requires: an arbitrary
        /// interleaving of current-testimony deltas (plus a sprinkle of
        /// fixed historical testimonies) yields exactly the node set a
        /// from-scratch `WtsGraph::build` computes over the final
        /// testimony multiset — same `(ts, value)` pairs, same witness
        /// sets, same best recencies — and the two representations make
        /// identical selection decisions at every threshold.
        #[test]
        fn delta_built_graph_equals_from_scratch(
            stream in proptest::collection::vec(
                (0usize..6, 0u64..5, 0u64..8), 0..40),
            extra in proptest::collection::vec(
                (0usize..6, 0u64..5, 0u64..8, 1usize..4), 0..6),
        ) {
            let (scratch, inc) = replay(&stream, &extra);
            prop_assert_eq!(canon(scratch.nodes()), canon(Wtsg::nodes(&inc)));
            for threshold in 1..=4usize {
                let a = select_with_policy(
                    &UnboundedLabeling, &scratch, threshold, SelectionPolicy::DominantSink);
                let b = select_with_policy(
                    &UnboundedLabeling, &inc, threshold, SelectionPolicy::DominantSink);
                prop_assert_eq!(a.map(|n| (n.ts, n.value)), b.map(|n| (n.ts, n.value)));
            }
        }
    }
}
