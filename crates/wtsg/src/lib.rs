//! # sbft-wtsg — Weighted Timestamp Graphs (Definition 3 of the paper)
//!
//! A *Weighted Timestamp Graph* (WTsG) is a node-weighted directed graph
//! over the timestamps a reader gathered from servers: vertices are the
//! distinct timestamps, a vertex's weight is the number of (distinct)
//! servers witnessing it, and there is an edge `ts_i → ts_j` whenever
//! `ts_i ≺ ts_j` in the (bounded, non-transitive) label order.
//!
//! The reader protocol builds two graphs:
//!
//! * the **local** graph over the `(value, ts)` pairs carried by the current
//!   `REPLY` quorum ([`WtsGraph::build`]), and
//! * the **union** graph that additionally folds in each server's recent
//!   write history (`old_vals`), used as a fallback when writes are
//!   concurrent with the read ([`union::build_union`]).
//!
//! A read returns the value of a node witnessed by at least `2f + 1`
//! servers — which pins at least `f + 1` *correct* witnesses — choosing the
//! dominant ("latest") such node ([`select::select_return_value`]). If no
//! node qualifies in either graph the read aborts: the servers are still in
//! a transitory (corrupted) phase.
//!
//! ## Byzantine value hijacking
//!
//! Nodes are keyed by the *pair* `(timestamp, value)`, not by the timestamp
//! alone. A Byzantine server echoing an honest timestamp with a forged value
//! creates a *separate* node whose weight can only be inflated by the `f`
//! faulty servers — never enough to reach `2f + 1` on its own.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod incremental;
pub mod select;
pub mod union;

pub use graph::{Witness, WtsGraph, WtsNode, Wtsg};
pub use incremental::IncrementalWtsg;
pub use select::{select_max_weight, select_return_value, select_with_policy, SelectionPolicy};
pub use union::{build_union, HistoryEntry};
