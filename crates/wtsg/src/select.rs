//! Return-value selection over a WTsG.
//!
//! Figure 2a asks for "a node with weight ≥ 2f+1" and returns its value.
//! When several nodes qualify (a read concurrent with writes can see both
//! the previous and the in-flight value at quorum strength) the protocol
//! must pick deterministically; regularity permits either the last written
//! or a concurrently written value, so any qualifying node is *safe*, but
//! we prefer the dominant one so that sequential reads do not regress.
//!
//! The default policy [`select_return_value`] picks a **sink** among the
//! qualifying candidates: a node that does not precede any other qualifying
//! node (i.e. is not provably older than another returnable value). Ties —
//! possible because `≺` is partial and non-transitive — break by weight,
//! then by the deterministic `(ts, value)` order. The alternative
//! [`select_max_weight`] policy (weight only, ignoring precedence) is kept
//! for the `ablate_selection` experiment; it is prone to returning the
//! older of two qualifying values.

use std::fmt::Debug;
use std::hash::Hash;

use sbft_labels::LabelingSystem;

use crate::graph::{WtsNode, Wtsg};

/// Which selection rule a reader uses (ablation knob).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SelectionPolicy {
    /// Dominant sink among candidates (the faithful rule).
    #[default]
    DominantSink,
    /// Highest weight, precedence ignored (ablation).
    MaxWeight,
}

/// Select the node whose value a read should return, under `policy`.
///
/// Generic over any [`Wtsg`] node view — the from-scratch
/// [`crate::WtsGraph`] and the delta-maintained [`crate::IncrementalWtsg`]
/// both qualify.
pub fn select_with_policy<'g, V, T, S, G>(
    sys: &S,
    graph: &'g G,
    threshold: usize,
    policy: SelectionPolicy,
) -> Option<&'g WtsNode<V, T>>
where
    V: Clone + Eq + Ord + Hash + Debug,
    T: Clone + Eq + Ord + Hash + Debug,
    S: LabelingSystem<Label = T>,
    G: Wtsg<V, T>,
{
    match policy {
        SelectionPolicy::DominantSink => select_return_value(sys, graph, threshold),
        SelectionPolicy::MaxWeight => select_max_weight(graph, threshold),
    }
}

/// The faithful selection rule: among nodes with weight ≥ `threshold`,
/// return a sink of the candidate sub-graph (a candidate that precedes no
/// other candidate), breaking ties by `(weight, ts, value)` descending
/// weight then ascending structural order.
///
/// Returns `None` when no node reaches the threshold — the caller then
/// falls back to the union graph or aborts (Figure 2a lines 14–19).
pub fn select_return_value<'g, V, T, S, G>(
    sys: &S,
    graph: &'g G,
    threshold: usize,
) -> Option<&'g WtsNode<V, T>>
where
    V: Clone + Eq + Ord + Hash + Debug,
    T: Clone + Eq + Ord + Hash + Debug,
    S: LabelingSystem<Label = T>,
    G: Wtsg<V, T>,
{
    let cands: Vec<usize> = Wtsg::candidates(graph, threshold).collect();
    if cands.is_empty() {
        return None;
    }
    // Sinks: candidates not preceding any other candidate.
    let mut sinks: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&i| {
            !cands
                .iter()
                .any(|&j| j != i && sys.precedes(&graph.nodes()[i].ts, &graph.nodes()[j].ts))
        })
        .collect();
    if sinks.is_empty() {
        // Precedence cycle among candidates (possible only while the label
        // space is corrupted): fall back to all candidates.
        sinks = cands;
    }
    sinks.into_iter().map(|i| &graph.nodes()[i]).min_by(|a, b| {
        // Freshest testimony first (keeps union decisions from
        // resurrecting long-superseded values), then heaviest, then a
        // deterministic structural residue.
        a.best_recency
            .cmp(&b.best_recency)
            .then_with(|| b.weight().cmp(&a.weight()))
            .then_with(|| a.ts.cmp(&b.ts).then_with(|| a.value.cmp(&b.value)))
    })
}

/// Ablation rule: pick the heaviest qualifying node, ignoring precedence.
pub fn select_max_weight<V, T, G>(graph: &G, threshold: usize) -> Option<&WtsNode<V, T>>
where
    V: Clone + Eq + Ord + Hash + Debug,
    T: Clone + Eq + Ord + Hash + Debug,
    G: Wtsg<V, T>,
{
    graph.nodes().iter().filter(|n| n.weight() >= threshold).max_by(|a, b| {
        a.weight()
            .cmp(&b.weight())
            .then_with(|| b.ts.cmp(&a.ts).then_with(|| b.value.cmp(&a.value)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Witness, WtsGraph};
    use sbft_labels::UnboundedLabeling;

    fn w(server: usize, value: &str, ts: u64) -> Witness<String, u64> {
        Witness::new(server, value.to_string(), ts)
    }

    fn graph(ws: Vec<Witness<String, u64>>) -> WtsGraph<String, u64> {
        WtsGraph::build(&UnboundedLabeling, ws)
    }

    #[test]
    fn no_candidate_returns_none() {
        let g = graph(vec![w(0, "a", 1), w(1, "b", 2)]);
        assert!(select_return_value(&UnboundedLabeling, &g, 2).is_none());
    }

    #[test]
    fn single_candidate_selected() {
        let g = graph(vec![w(0, "a", 1), w(1, "a", 1), w(2, "a", 1)]);
        let n = select_return_value(&UnboundedLabeling, &g, 3).unwrap();
        assert_eq!(n.value, "a");
        assert_eq!(n.weight(), 3);
    }

    #[test]
    fn dominant_sink_prefers_latest() {
        // Both old (ts=1) and new (ts=2) reach the threshold; the sink is
        // the one no candidate dominates — ts=2.
        let g = graph(vec![
            w(0, "old", 1),
            w(1, "old", 1),
            w(2, "old", 1),
            w(3, "new", 2),
            w(4, "new", 2),
            w(5, "new", 2),
        ]);
        let n = select_return_value(&UnboundedLabeling, &g, 3).unwrap();
        assert_eq!(n.value, "new");
    }

    #[test]
    fn max_weight_can_regress() {
        // Old value witnessed by 4, new by 3: the ablation rule returns the
        // *older* value — the behaviour the dominant-sink rule avoids.
        let g = graph(vec![
            w(0, "old", 1),
            w(1, "old", 1),
            w(2, "old", 1),
            w(3, "old", 1),
            w(4, "new", 2),
            w(5, "new", 2),
            w(6, "new", 2),
        ]);
        let sink = select_return_value(&UnboundedLabeling, &g, 3).unwrap();
        let heavy = select_max_weight(&g, 3).unwrap();
        assert_eq!(sink.value, "new");
        assert_eq!(heavy.value, "old");
    }

    #[test]
    fn deterministic_tiebreak_on_equal_ts() {
        // Two incomparable candidates (same ts, different values — only
        // possible under corruption): the structural order decides, stably.
        let g = graph(vec![w(0, "a", 5), w(1, "a", 5), w(2, "b", 5), w(3, "b", 5)]);
        let n1 = select_return_value(&UnboundedLabeling, &g, 2).unwrap().value.clone();
        let n2 = select_return_value(&UnboundedLabeling, &g, 2).unwrap().value.clone();
        assert_eq!(n1, n2);
    }

    #[test]
    fn recency_breaks_incomparable_ties_toward_fresh() {
        // Two qualifying nodes with *incomparable* timestamps (same ts
        // value cannot happen here, so use equal ts = incomparable under
        // `<`): one witnessed only in histories (recency 2), one current
        // (recency 0). The fresh one wins.
        let ws = vec![
            Witness::with_recency(0, "stale".to_string(), 5u64, 2),
            Witness::with_recency(1, "stale".to_string(), 5u64, 3),
            Witness::new(2, "fresh".to_string(), 5u64),
            Witness::new(3, "fresh".to_string(), 5u64),
        ];
        let g = WtsGraph::build(&UnboundedLabeling, ws);
        let n = select_return_value(&UnboundedLabeling, &g, 2).unwrap();
        assert_eq!(n.value, "fresh");
        assert_eq!(n.best_recency, 0);
    }

    #[test]
    fn best_recency_is_min_across_witnesses() {
        let ws = vec![
            Witness::with_recency(0, "v".to_string(), 1u64, 4),
            Witness::with_recency(1, "v".to_string(), 1u64, 1),
            Witness::with_recency(2, "v".to_string(), 1u64, 9),
        ];
        let g = WtsGraph::build(&UnboundedLabeling, ws);
        assert_eq!(g.nodes()[0].best_recency, 1);
    }

    #[test]
    fn dominance_still_beats_recency() {
        // A dominated-but-fresh node loses to the dominating sink even if
        // the sink's testimony is historical: sinks are computed first.
        let ws = vec![
            Witness::new(0, "old".to_string(), 1u64),
            Witness::new(1, "old".to_string(), 1u64),
            Witness::with_recency(2, "new".to_string(), 2u64, 3),
            Witness::with_recency(3, "new".to_string(), 2u64, 3),
        ];
        let g = WtsGraph::build(&UnboundedLabeling, ws);
        let n = select_return_value(&UnboundedLabeling, &g, 2).unwrap();
        assert_eq!(n.value, "new", "ts dominance decides before recency");
    }

    #[test]
    fn policy_dispatch() {
        let g = graph(vec![w(0, "a", 1), w(1, "a", 1)]);
        let a = select_with_policy(&UnboundedLabeling, &g, 2, SelectionPolicy::DominantSink);
        let b = select_with_policy(&UnboundedLabeling, &g, 2, SelectionPolicy::MaxWeight);
        assert_eq!(a.unwrap().value, b.unwrap().value);
    }
}
