//! WTsG construction (Definition 3).

use std::collections::BTreeSet;
use std::fmt::Debug;
use std::hash::Hash;

use sbft_labels::LabelingSystem;

/// One server's testimony: "server `server` holds `(value, ts)`".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness<V, T> {
    /// Reporting server's index.
    pub server: usize,
    /// The register value the server vouches for.
    pub value: V,
    /// The timestamp the server associates with the value.
    pub ts: T,
    /// How stale this testimony is: `0` = the server's *current* pair,
    /// `i + 1` = position `i` in its `old_vals` history. Selection prefers
    /// candidates with fresher testimony, which keeps the union graph from
    /// returning a long-superseded (but heavily witnessed) value whose
    /// timestamp happens to be incomparable to newer candidates.
    pub recency: usize,
}

impl<V, T> Witness<V, T> {
    /// A current-value testimony (recency 0).
    pub fn new(server: usize, value: V, ts: T) -> Self {
        Self { server, value, ts, recency: 0 }
    }

    /// A testimony with an explicit recency rank.
    pub fn with_recency(server: usize, value: V, ts: T, recency: usize) -> Self {
        Self { server, value, ts, recency }
    }
}

/// A vertex of the WTsG: a distinct `(timestamp, value)` pair together with
/// the set of servers witnessing it. The weight function `w` of Definition 3
/// is [`WtsNode::weight`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WtsNode<V, T> {
    /// The timestamp labelling this vertex.
    pub ts: T,
    /// The value carried with the timestamp.
    pub value: V,
    /// Distinct servers that vouched for this exact `(ts, value)` pair.
    pub witnesses: BTreeSet<usize>,
    /// Best (smallest) recency rank across the testimonies.
    pub best_recency: usize,
}

impl<V, T> WtsNode<V, T> {
    /// `w(v)` — the number of distinct servers witnessing this node.
    pub fn weight(&self) -> usize {
        self.witnesses.len()
    }
}

/// The node-level view of a Weighted Timestamp Graph that return-value
/// selection needs.
///
/// Both the from-scratch [`WtsGraph`] and the delta-maintained
/// [`crate::IncrementalWtsg`] implement it, so the selection rules in
/// [`crate::select`] run unchanged over either representation. Edges are
/// deliberately *not* part of this trait: per Definition 3 they are a pure
/// function of the node timestamps (`ts_i ≺ ts_j`), so selection queries
/// the labeling system's `precedes` directly instead of materializing
/// them.
pub trait Wtsg<V, T> {
    /// All vertices, in an implementation-defined but stable order.
    fn nodes(&self) -> &[WtsNode<V, T>];

    /// Number of vertices.
    fn node_count(&self) -> usize {
        self.nodes().len()
    }

    /// Indices (into [`Wtsg::nodes`]) of nodes whose weight is at least
    /// `threshold` — the `w(v) ≥ 2f+1` test of Figure 2a lines 10/16.
    /// Returns a lazy iterator; no intermediate `Vec` is allocated.
    fn candidates<'a>(&'a self, threshold: usize) -> impl Iterator<Item = usize> + 'a
    where
        V: 'a,
        T: 'a,
    {
        self.nodes()
            .iter()
            .enumerate()
            .filter(move |(_, n)| n.weight() >= threshold)
            .map(|(i, _)| i)
    }

    /// Total weight across nodes (equals the number of distinct
    /// `(server, ts, value)` testimonies).
    fn total_weight(&self) -> usize {
        self.nodes().iter().map(|n| n.weight()).sum()
    }
}

/// A Weighted Timestamp Graph.
///
/// Nodes are stored in deterministic order (sorted by `(ts, value)`), edges
/// as index pairs `(i, j)` meaning `nodes[i].ts ≺ nodes[j].ts`.
#[derive(Clone, Debug)]
pub struct WtsGraph<V, T> {
    nodes: Vec<WtsNode<V, T>>,
    edges: Vec<(usize, usize)>,
}

impl<V, T> WtsGraph<V, T>
where
    V: Clone + Eq + Ord + Hash + Debug,
    T: Clone + Eq + Ord + Hash + Debug,
{
    /// Build the graph from a set of witnesses under the precedence
    /// relation of `sys`. Duplicate testimonies from the same server for
    /// the same `(ts, value)` pair collapse (weights count *distinct*
    /// servers, so a Byzantine server cannot inflate a weight by repeating
    /// itself).
    pub fn build<S>(sys: &S, witnesses: impl IntoIterator<Item = Witness<V, T>>) -> Self
    where
        S: LabelingSystem<Label = T>,
    {
        let mut nodes: Vec<WtsNode<V, T>> = Vec::new();
        for w in witnesses {
            match nodes.iter_mut().find(|n| n.ts == w.ts && n.value == w.value) {
                Some(n) => {
                    n.witnesses.insert(w.server);
                    n.best_recency = n.best_recency.min(w.recency);
                }
                None => {
                    let mut set = BTreeSet::new();
                    set.insert(w.server);
                    nodes.push(WtsNode {
                        ts: w.ts,
                        value: w.value,
                        witnesses: set,
                        best_recency: w.recency,
                    });
                }
            }
        }
        nodes.sort_by(|a, b| (&a.ts, &a.value).cmp(&(&b.ts, &b.value)));

        let mut edges = Vec::new();
        for i in 0..nodes.len() {
            for j in 0..nodes.len() {
                if i != j && sys.precedes(&nodes[i].ts, &nodes[j].ts) {
                    edges.push((i, j));
                }
            }
        }
        Self { nodes, edges }
    }

    /// All vertices, in deterministic `(ts, value)` order.
    pub fn nodes(&self) -> &[WtsNode<V, T>] {
        &self.nodes
    }

    /// All precedence edges as `(from, to)` node indices.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Indices of nodes whose weight is at least `threshold` (the
    /// `node.weight ≥ 2f+1` test of Figure 2a lines 10/16), lazily.
    pub fn candidates(&self, threshold: usize) -> impl Iterator<Item = usize> + '_ {
        Wtsg::candidates(self, threshold)
    }

    /// Whether node `i` has an edge to node `j`. Edges are generated in
    /// lexicographic `(i, j)` order by [`WtsGraph::build`], so this is a
    /// binary search.
    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        self.edges.binary_search(&(i, j)).is_ok()
    }

    /// Total weight across nodes (equals the number of distinct
    /// `(server, ts, value)` testimonies).
    pub fn total_weight(&self) -> usize {
        self.nodes.iter().map(|n| n.weight()).sum()
    }
}

impl<V, T> Wtsg<V, T> for WtsGraph<V, T> {
    fn nodes(&self) -> &[WtsNode<V, T>] {
        &self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_labels::{LabelingSystem, UnboundedLabeling};

    fn w(server: usize, value: &str, ts: u64) -> Witness<String, u64> {
        Witness::new(server, value.to_string(), ts)
    }

    #[test]
    fn distinct_pairs_make_distinct_nodes() {
        let g = WtsGraph::build(
            &UnboundedLabeling,
            vec![w(0, "a", 1), w(1, "a", 1), w(2, "b", 1), w(3, "a", 2)],
        );
        assert_eq!(g.node_count(), 3);
        // (1,"a") has two witnesses, others one.
        let n = g.nodes().iter().find(|n| n.ts == 1 && n.value == "a").unwrap();
        assert_eq!(n.weight(), 2);
    }

    #[test]
    fn duplicate_server_testimony_collapses() {
        let g = WtsGraph::build(&UnboundedLabeling, vec![w(0, "a", 1), w(0, "a", 1), w(0, "a", 1)]);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.nodes()[0].weight(), 1);
    }

    #[test]
    fn edges_follow_precedence() {
        let g = WtsGraph::build(&UnboundedLabeling, vec![w(0, "a", 1), w(1, "b", 2)]);
        assert_eq!(g.edge_count(), 1);
        let (i, j) = g.edges()[0];
        assert!(UnboundedLabeling.precedes(&g.nodes()[i].ts, &g.nodes()[j].ts));
    }

    #[test]
    fn same_ts_different_value_no_edge() {
        let g = WtsGraph::build(&UnboundedLabeling, vec![w(0, "a", 5), w(1, "b", 5)]);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn candidates_respect_threshold() {
        let g = WtsGraph::build(
            &UnboundedLabeling,
            vec![w(0, "a", 1), w(1, "a", 1), w(2, "a", 1), w(3, "b", 2)],
        );
        assert_eq!(g.candidates(3).count(), 1);
        assert_eq!(g.candidates(1).count(), 2);
        assert_eq!(g.candidates(4).count(), 0);
    }

    #[test]
    fn empty_graph() {
        let g: WtsGraph<String, u64> = WtsGraph::build(&UnboundedLabeling, vec![]);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.candidates(1).count(), 0);
        assert_eq!(g.total_weight(), 0);
    }

    #[test]
    fn byzantine_hijack_creates_separate_node() {
        // 3 honest servers hold ("good", 7); a Byzantine echoes ts 7 with a
        // forged value. The forged node stays at weight 1.
        let g = WtsGraph::build(
            &UnboundedLabeling,
            vec![w(0, "good", 7), w(1, "good", 7), w(2, "good", 7), w(3, "evil", 7)],
        );
        let good = g.nodes().iter().find(|n| n.value == "good").unwrap();
        let evil = g.nodes().iter().find(|n| n.value == "evil").unwrap();
        assert_eq!(good.weight(), 3);
        assert_eq!(evil.weight(), 1);
    }
}
