//! The union WTsG (Figure 2a line 15).
//!
//! When a `read()` overlaps a burst of `write()`s, the *current* values held
//! by correct servers may be split across several in-flight timestamps and
//! no single node of the local graph reaches weight `2f+1`. The reader then
//! widens its evidence: each server's `REPLY` also carries its `old_vals`
//! sliding window (the last `n` writes it applied), and the union graph is
//! built over current **and** historical testimonies. Lemma 7 (scenario 2)
//! shows some recently-written value is then witnessed by `2f+1` servers as
//! long as the write burst fits the history window (Assumption 2).

use std::fmt::Debug;
use std::hash::Hash;

use sbft_labels::LabelingSystem;

use crate::graph::{Witness, WtsGraph};

/// One entry of a server's `old_vals` history as shipped in a `REPLY`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistoryEntry<V, T> {
    /// The historical value.
    pub value: V,
    /// Its timestamp.
    pub ts: T,
}

impl<V, T> HistoryEntry<V, T> {
    /// Convenience constructor.
    pub fn new(value: V, ts: T) -> Self {
        Self { value, ts }
    }
}

/// Build the union graph from, per server, its current `(value, ts)` pair
/// and its reported history window.
///
/// A server witnesses a node if the pair appears *anywhere* in its
/// testimony; per-server deduplication is inherent (witness sets), so a
/// server repeating a pair in both its current value and its history still
/// counts once.
pub fn build_union<V, T, S>(
    sys: &S,
    current: impl IntoIterator<Item = Witness<V, T>>,
    histories: impl IntoIterator<Item = (usize, Vec<HistoryEntry<V, T>>)>,
) -> WtsGraph<V, T>
where
    V: Clone + Eq + Ord + Hash + Debug,
    T: Clone + Eq + Ord + Hash + Debug,
    S: LabelingSystem<Label = T>,
{
    // Chain the testimonies straight into `build` — no intermediate
    // collection. History position idx (most recent first) → recency
    // idx + 1.
    let historical = histories.into_iter().flat_map(|(server, hist)| {
        hist.into_iter()
            .enumerate()
            .map(move |(idx, h)| Witness::with_recency(server, h.value, h.ts, idx + 1))
    });
    WtsGraph::build(sys, current.into_iter().chain(historical))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_labels::UnboundedLabeling;

    fn w(server: usize, value: &str, ts: u64) -> Witness<String, u64> {
        Witness::new(server, value.to_string(), ts)
    }

    fn h(value: &str, ts: u64) -> HistoryEntry<String, u64> {
        HistoryEntry::new(value.to_string(), ts)
    }

    #[test]
    fn history_raises_weight_to_quorum() {
        // Mid-write: servers 0-1 already adopted ("new", 2), servers 2-4
        // still hold ("old", 1). Locally neither value reaches weight 5,
        // but every early adopter still has "old" in its history.
        let current =
            vec![w(0, "new", 2), w(1, "new", 2), w(2, "old", 1), w(3, "old", 1), w(4, "old", 1)];
        let histories = vec![(0usize, vec![h("old", 1)]), (1usize, vec![h("old", 1)])];
        let g = build_union(&UnboundedLabeling, current, histories);
        let old = g.nodes().iter().find(|n| n.value == "old" && n.ts == 1).unwrap();
        assert_eq!(old.weight(), 5);
    }

    #[test]
    fn same_pair_in_current_and_history_counts_once() {
        let current = vec![w(0, "a", 1)];
        let histories = vec![(0usize, vec![h("a", 1), h("a", 1)])];
        let g = build_union(&UnboundedLabeling, current, histories);
        assert_eq!(g.nodes()[0].weight(), 1);
    }

    #[test]
    fn empty_histories_equal_local_graph() {
        let current = vec![w(0, "a", 1), w(1, "b", 2)];
        let g = build_union(&UnboundedLabeling, current.clone(), vec![]);
        let local = WtsGraph::build(&UnboundedLabeling, current);
        assert_eq!(g.node_count(), local.node_count());
        assert_eq!(g.edge_count(), local.edge_count());
    }

    #[test]
    fn history_from_byzantine_cannot_forge_quorum() {
        // A single Byzantine server flooding its history with a forged pair
        // still contributes weight 1 to that node.
        let current = vec![w(0, "good", 3), w(1, "good", 3), w(2, "good", 3)];
        let histories = vec![(4usize, vec![h("forged", 9), h("forged", 9), h("forged", 9)])];
        let g = build_union(&UnboundedLabeling, current, histories);
        let forged = g.nodes().iter().find(|n| n.value == "forged").unwrap();
        assert_eq!(forged.weight(), 1);
    }
}
