//! Offline stand-in for `serde`: exposes the `Serialize`/`Deserialize`
//! names (as no-op derives plus marker traits) so `#[derive(Serialize,
//! Deserialize)]` compiles. Nothing in the workspace performs actual
//! serialization; when a real wire format lands, swap this shim for the
//! real crate by restoring the registry dependency.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::ser::Serialize` (never implemented by
/// the no-op derive; present so trait bounds keep resolving if written).
pub trait SerializeTrait {}

/// Marker trait mirroring `serde::de::Deserialize` (see
/// [`SerializeTrait`]).
pub trait DeserializeTrait {}
