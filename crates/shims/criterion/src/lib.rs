//! Offline stand-in for `criterion`: same macro/builder surface
//! (`criterion_group!`, `criterion_main!`, benchmark groups, `black_box`),
//! measuring each benchmark with a simple warmup + timed-batch loop and
//! printing `name ... mean time` lines. No statistics, no HTML reports —
//! enough to keep `cargo bench` runnable and the bench code compiling.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one parameterized benchmark: `name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self { id: format!("{name}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Throughput annotation (accepted, echoed in output).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; runs the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _crit: std::marker::PhantomData,
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Display, f: F) {
        run_bench(&format!("{name}"), 10, None, f);
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _crit: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark `f` with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Benchmark a closure without separate input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, self.throughput, f);
        self
    }

    /// End the group (no-op; parity with criterion).
    pub fn finish(&mut self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warmup + calibration: find an iteration count taking ≥ ~5ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples.min(20) {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
    }
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:.0} elem/s", n as f64 * 1e9 / mean_ns)
        }
        Some(Throughput::Bytes(n)) => format!("  {:.0} B/s", n as f64 * 1e9 / mean_ns),
        None => String::new(),
    };
    println!("bench {label:<50} {:>12.1} ns/iter{rate}", mean_ns);
}

/// Collect benchmark functions into one runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut crit = $crate::Criterion::default();
            $($target(&mut crit);)+
        }
    };
}

/// Entry point running the groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut crit = Criterion::default();
        let mut group = crit.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Elements(4));
        let mut count = 0u64;
        group.bench_with_input(BenchmarkId::new("add", 3), &3u64, |b, &x| {
            b.iter(|| {
                count = count.wrapping_add(x);
                count
            })
        });
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
        crit.bench_function("free", |b| b.iter(|| black_box(2) * 2));
    }

    #[test]
    fn macros_compile() {
        fn sample(c: &mut Criterion) {
            c.bench_function("m", |b| b.iter(|| 0u8));
        }
        criterion_group!(benches, sample);
        benches();
    }
}
