//! No-op derive macros standing in for `serde_derive`. The workspace only
//! *derives* `Serialize`/`Deserialize` (no code actually serializes), so
//! empty expansions keep every type compiling without pulling syn/quote.

use proc_macro::TokenStream;

/// Expands to nothing: the types never get (or need) a real impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing: the types never get (or need) a real impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
