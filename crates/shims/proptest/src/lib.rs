//! Offline stand-in for `proptest`: deterministic seeded random testing
//! with the strategy combinators this workspace uses (`any`, ranges,
//! tuples, `vec`, `prop_map`, `prop_oneof!`, `Just`, `option::of`,
//! `sample::select`, `bool::weighted`) and the `proptest!` macro. Each
//! test function runs `ProptestConfig::cases` iterations with a seed
//! derived from the function name, so failures reproduce exactly.
//!
//! Differences from real proptest: no shrinking (a failure reports the
//! generated inputs via the panic message of the inner assertion only),
//! and `prop_assert*` panic immediately instead of returning `Err`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// Runtime re-exports used by the `proptest!` macro expansion.
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Per-test configuration (subset: case count only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy yielding a constant.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy for "any value of `T`" (uniform over the whole domain).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Uniform strategy over all of `T`.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(S1 / v1);
impl_tuple_strategy!(S1 / v1, S2 / v2);
impl_tuple_strategy!(S1 / v1, S2 / v2, S3 / v3);
impl_tuple_strategy!(S1 / v1, S2 / v2, S3 / v3, S4 / v4);
impl_tuple_strategy!(S1 / v1, S2 / v2, S3 / v3, S4 / v4, S5 / v5);
impl_tuple_strategy!(S1 / v1, S2 / v2, S3 / v3, S4 / v4, S5 / v5, S6 / v6);

/// Uniform choice between boxed alternative strategies (see
/// [`prop_oneof!`]).
pub struct OneOf<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> OneOf<V> {
    /// Build from the macro-collected arms.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Length distribution for [`vec()`](fn@vec).
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self { min: *r.start(), max_exclusive: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max_exclusive: n + 1 }
        }
    }

    /// Strategy for vectors of `elem` values with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    /// See [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::*;

    /// `Some(inner)` with probability 1/2, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen::<bool>() {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Sampling from fixed collections.
pub mod sample {
    use super::*;

    /// Uniform choice from a non-empty vector.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select from empty collection");
        Select { items }
    }

    /// See [`select`].
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.items.len());
            self.items[i].clone()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::*;

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted { p }
    }

    /// See [`weighted`].
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut StdRng) -> core::primitive::bool {
            rng.gen_bool(self.p)
        }
    }
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Assert inside a property; panics with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("property assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!($($fmt)+);
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current case when an assumption fails. Without shrinking we
/// simply return from the case body early.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($strat)),+];
        $crate::OneOf::new(arms)
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running `cases` deterministic random iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __seed: u64 = 0x5bf7_0001;
                for __b in stringify!($name).bytes() {
                    __seed = __seed.wrapping_mul(131).wrapping_add(__b as u64);
                }
                for __case in 0..__cfg.cases {
                    __run_one(__seed, __case);
                }
                #[allow(clippy::too_many_arguments)]
                fn __run_one(__seed: u64, __case: u32) {
                    let mut __rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                        __seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn tuples_and_maps(v in super::collection::vec((0u8..10, any::<u16>()).prop_map(|(a, b)| a as u32 + b as u32), 0..6)) {
            prop_assert!(v.len() < 6);
        }

        #[test]
        fn oneof_covers_arms(x in prop_oneof![Just(1u32), Just(2u32), 10u32..20]) {
            prop_assert!(x == 1 || x == 2 || (10..20).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7 })]

        #[test]
        fn config_applies(_x in any::<u64>()) {
            // Runs exactly 7 times; nothing to assert beyond not panicking.
        }
    }

    #[test]
    fn option_and_select_and_weighted() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let st = super::option::of(super::sample::select(vec![5u8, 6, 7]));
        let mut somes = 0;
        for _ in 0..200 {
            if let Some(v) = super::Strategy::generate(&st, &mut rng) {
                assert!((5..=7).contains(&v));
                somes += 1;
            }
        }
        assert!(somes > 40 && somes < 160);
        let w = super::bool::weighted(0.9);
        let hits = (0..200).filter(|_| super::Strategy::generate(&w, &mut rng)).count();
        assert!(hits > 150);
    }
}
