//! Offline stand-in for `crossbeam`, providing the `channel` module subset
//! the threaded substrate uses: unbounded MPMC FIFO channels with
//! blocking, timed, and non-blocking receives. Built on `Mutex` +
//! `Condvar`; per-producer FIFO order holds because each `send` appends to
//! one shared queue under the lock.

#![forbid(unsafe_code)]

/// Unbounded MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        cond: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        /// Receivers currently blocked in a condvar wait. Senders skip the
        /// notify (a futex syscall on Linux even when nobody waits) while
        /// this is zero — the dominant case under load, where receivers
        /// drain bursts without ever parking.
        waiting: usize,
    }

    /// Sending half; cloneable, usable from any thread.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC), usable from any thread.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by blocking [`Receiver::recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue empty but senders remain.
        Empty,
        /// Queue empty and every sender dropped.
        Disconnected,
    }

    /// Error returned by timed receives.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Deadline passed with no message.
        Timeout,
        /// Queue empty and every sender dropped.
        Disconnected,
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                waiting: 0,
            }),
            cond: Condvar::new(),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                self.shared.cond.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().receivers += 1;
            Receiver { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.inner.lock().unwrap().receivers -= 1;
        }
    }

    impl<T> Sender<T> {
        /// Append `msg` to the queue, waking one waiting receiver (the
        /// notify is skipped entirely when no receiver is parked).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.send_quiet(msg)? {
                self.shared.cond.notify_one();
            }
            Ok(())
        }

        /// Append `msg` without waking anyone; returns whether a receiver
        /// is parked and needs a [`Sender::wake`]. Lets a producer with a
        /// burst of sends to several channels publish everything first and
        /// issue the wakeups at the end, after the last message is
        /// visible — on a loaded single core this avoids being preempted
        /// by the first consumer while later messages are still unsent.
        pub fn send_quiet(&self, msg: T) -> Result<bool, SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            inner.queue.push_back(msg);
            Ok(inner.waiting > 0)
        }

        /// Wake one parked receiver; pairs with [`Sender::send_quiet`].
        pub fn wake(&self) {
            self.shared.cond.notify_one();
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner.waiting += 1;
                inner = self.shared.cond.wait(inner).unwrap();
                inner.waiting -= 1;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            match inner.queue.pop_front() {
                Some(v) => Ok(v),
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Block until a message arrives, `timeout` elapses, or all
        /// senders disconnect.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(Instant::now() + timeout)
        }

        /// Block until a message arrives, `deadline` passes, or all
        /// senders disconnect.
        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                inner.waiting += 1;
                let (guard, _res) = self.shared.cond.wait_timeout(inner, deadline - now).unwrap();
                inner = guard;
                inner.waiting -= 1;
            }
        }

        /// Number of queued messages (diagnostics).
        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

/// Work-stealing queue subset: a shared [`deque::Injector`] with the
/// `crossbeam-deque` `push`/`steal` API shape. The parallel schedule
/// explorer keeps per-worker LIFO stacks locally (plain `Vec`s — no
/// cross-thread access) and uses the injector only for branches exported
/// for stealing, so a single mutex-guarded FIFO suffices here; the real
/// crate's lock-free `Worker`/`Stealer` pair is not needed.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Outcome of a steal attempt, mirroring `crossbeam_deque::Steal`.
    #[derive(Debug)]
    pub enum Steal<T> {
        /// The queue was empty at the time of the attempt.
        Empty,
        /// A task was successfully stolen.
        Success(T),
        /// The attempt lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if the attempt succeeded.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// An unordered-consumer FIFO task injector shared by all workers.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Create an empty injector.
        pub fn new() -> Self {
            Injector { queue: Mutex::new(VecDeque::new()) }
        }

        /// Push a task onto the back of the queue.
        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        /// Attempt to steal the task at the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().unwrap().len()
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn fifo_single_producer() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn timeout_when_empty() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn disconnect_unblocks_recv() {
        let (tx, rx) = unbounded::<u32>();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert!(h.join().unwrap().is_err());
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = unbounded::<u64>();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..250 {
                        tx.send(t * 1000 + i).unwrap();
                    }
                });
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.try_recv() {
            got.push(v);
        }
        assert_eq!(got.len(), 1000);
        // Per-producer FIFO: each thread's values appear in send order.
        for t in 0..4u64 {
            let mine: Vec<u64> = got.iter().copied().filter(|v| v / 1000 == t).collect();
            assert!(mine.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn try_recv_reports_empty() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(5).unwrap();
        assert_eq!(rx.try_recv(), Ok(5));
    }

    #[test]
    fn injector_steals_fifo_across_threads() {
        use super::deque::{Injector, Steal};
        let inj = Injector::new();
        for i in 0..100u32 {
            inj.push(i);
        }
        let stolen = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| loop {
                    match inj.steal() {
                        Steal::Success(v) => stolen.lock().unwrap().push(v),
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                });
            }
        });
        let mut got = stolen.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert!(inj.is_empty());
        assert_eq!(inj.len(), 0);
    }
}
