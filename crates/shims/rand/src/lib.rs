//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this in-repo crate
//! provides the (small) API subset the workspace actually uses: a seedable
//! deterministic generator (`rngs::StdRng`, xoshiro256**), the [`Rng`]
//! extension trait with `gen`, `gen_range` and `gen_bool`, and the
//! [`SeedableRng`] constructor trait. Determinism per seed is the only
//! property the simulator relies on; statistical quality is a non-goal
//! beyond "not embarrassing".

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core generator trait: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of deterministic generators from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an `RngCore`.
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Sample a value uniformly from the range. Panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via SplitMix64 —
    /// API-compatible stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// `rand::prelude`-style re-exports.
pub mod prelude {
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0usize..=4);
            assert!(y <= 4);
            let z = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
