//! The store driver: blocking `put`/`get` with per-key history recording.
//!
//! Like the register driver, the store is generic over the [`Substrate`]
//! hosting the automata — the deterministic simulator by default, real
//! threads via [`KvClusterBuilder::build_threaded`], or a runtime choice
//! via [`KvClusterBuilder::backend`] + [`KvClusterBuilder::build_any`].
//!
//! ```
//! use sbft_kv::KvCluster;
//!
//! let mut store = KvCluster::bounded(1).seed(3).build();
//! let c = store.client(0);
//! store.put(c, 10, 111).unwrap();
//! store.put(c, 20, 222).unwrap();
//! assert_eq!(store.get(c, 10).unwrap(), 111);
//! assert_eq!(store.get(c, 20).unwrap(), 222);
//! assert!(store.check_all_histories().is_ok());
//! ```

use std::collections::BTreeMap;

use sbft_core::adversary::random_message;
use sbft_core::cluster::OpOutcome;
use sbft_core::config::ClusterConfig;
use sbft_core::messages::{ClientEvent, Value};
use sbft_core::reader::ReaderOptions;
use sbft_core::spec::{group_verdicts, GroupVerdict, HistoryRecorder, OpKind, RegularityError};
use sbft_core::{RetryPolicy, Sys, Ts};
use sbft_labels::{BoundedLabeling, LabelingSystem, MwmrLabeling};
use sbft_net::corruption::FaultPlan;
use sbft_net::substrate::{AnySubstrate, Backend, Substrate, SubstrateConfig};
use sbft_net::{
    Automaton, BatchPolicy, CorruptionSeverity, DelayModel, NetMetrics, ProcessId, Simulation,
    ThreadedCluster,
};
use sbft_storage::DiskSet;

use crate::client::KvClient;
use crate::messages::{Key, KvEvent, KvMsg};
use crate::server::KvServer;
use crate::shard::{ShardRouter, ShardedClient, ShardedServer};

/// The simulator substrate type for the store.
pub type KvSimSubstrate<B> = Simulation<KvMsg<Ts<B>>, KvEvent<Ts<B>>>;
/// The threaded substrate type for the store.
pub type KvThreadedSubstrate<B> = ThreadedCluster<KvMsg<Ts<B>>, KvEvent<Ts<B>>>;
/// The runtime-chosen substrate type for the store.
pub type AnyKvSubstrate<B> = AnySubstrate<KvMsg<Ts<B>>, KvEvent<Ts<B>>>;

/// Boxed automata in pid order, ready to hand to a substrate.
type KvProcs<B> = Vec<Box<dyn Automaton<KvMsg<Ts<B>>, KvEvent<Ts<B>>>>>;

/// Consecutive idle pumps (threaded runtime) before an op is stuck.
const MAX_IDLE_PUMPS: u32 = 50;

/// Why a store operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvError {
    /// Read aborted (register in a transitory phase).
    Aborted,
    /// Simulation drained / budget exhausted before completion.
    Stuck,
}

/// Map a terminal failure event onto the [`OpOutcome`] taxonomy (mirrors
/// the register driver's rule: a lone attempt dying on its deadline is a
/// timeout; anything that burned retries is exhaustion).
fn failure_outcome<T>(timed_out: bool, attempts: u32) -> OpOutcome<T> {
    if timed_out && attempts <= 1 {
        OpOutcome::TimedOut { attempts }
    } else {
        OpOutcome::Exhausted { attempts }
    }
}

/// Builder for a [`KvCluster`].
pub struct KvClusterBuilder<B: LabelingSystem> {
    cfg: ClusterConfig,
    base: B,
    n_clients: usize,
    seed: u64,
    delay: DelayModel,
    retry: RetryPolicy,
    backend: Backend,
    pump_timeout: Option<std::time::Duration>,
    durable: bool,
    shards: usize,
    pipeline: usize,
    batch: BatchPolicy,
}

impl<B: LabelingSystem> KvClusterBuilder<B> {
    /// Start from a config and base labeling system.
    pub fn new(cfg: ClusterConfig, base: B) -> Self {
        Self {
            cfg,
            base,
            n_clients: 2,
            seed: 0,
            delay: DelayModel::uniform(1, 10),
            retry: RetryPolicy::none(),
            backend: Backend::Sim,
            pump_timeout: None,
            durable: false,
            shards: 1,
            pipeline: 1,
            batch: BatchPolicy::disabled(),
        }
    }

    /// Hash-partition the keyspace over `s` independent `5f + 1` server
    /// groups (default 1 — the classic single-group store). Each shard is
    /// its own unit of placement and fault isolation.
    pub fn shards(mut self, s: usize) -> Self {
        self.shards = s.max(1);
        self
    }

    /// Let every client pipeline up to `depth` concurrent operations on
    /// distinct keys (default 1 — strictly sequential, the original
    /// discipline).
    pub fn pipeline(mut self, depth: usize) -> Self {
        self.pipeline = depth.max(1);
        self
    }

    /// Coalesce same-link messages into batched wire frames under
    /// `policy` (default [`BatchPolicy::disabled`]).
    pub fn batch(mut self, policy: BatchPolicy) -> Self {
        self.batch = policy;
        self
    }

    /// Give every storage node a simulated stable disk (per-pid seeds
    /// derived from the cluster seed, as in the register cluster), so
    /// nodes can be rebooted from their own — possibly damaged — disks
    /// via [`KvServer::recover`].
    pub fn durable(mut self) -> Self {
        self.durable = true;
        self
    }

    /// Number of clients (default 2).
    pub fn clients(mut self, n: usize) -> Self {
        self.n_clients = n.max(1);
        self
    }

    /// Simulation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Delay model (simulator only).
    pub fn delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Retry/timeout/backoff policy for every client (default
    /// [`RetryPolicy::none`]).
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Select the runtime used by [`KvClusterBuilder::build_any`].
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Longest one threaded `pump` blocks before reporting idle (threaded
    /// runtime only; default 100 ms). Open-loop drivers that pace arrivals
    /// between pumps want this close to the arrival interval.
    pub fn pump_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.pump_timeout = Some(timeout);
        self
    }

    fn substrate_config(&self) -> SubstrateConfig {
        let cfg =
            SubstrateConfig::seeded(self.seed).with_delay(self.delay).with_batching(self.batch);
        match self.pump_timeout {
            Some(t) => cfg.with_pump_timeout(t),
            None => cfg,
        }
    }

    fn procs(&self) -> (KvProcs<B>, Option<DiskSet>) {
        let sys: Sys<B> = MwmrLabeling::new(self.base.clone());
        let router = ShardRouter::new(self.cfg, self.shards);
        let disks =
            self.durable.then(|| DiskSet::sim(router.total_servers(), self.seed ^ 0xD15C_D15C));
        let mut procs: KvProcs<B> = Vec::new();
        if self.shards == 1 {
            // The classic single-group store: unwrapped automata, exactly
            // the layout every pre-sharding experiment runs on.
            for s in 0..self.cfg.n {
                let server = KvServer::new(sys.clone(), self.cfg);
                procs.push(match &disks {
                    Some(d) => Box::new(server.with_disk(d.get(s))),
                    None => Box::new(server),
                });
            }
            for c in 0..self.n_clients {
                let pid = self.cfg.client_pid(c);
                procs.push(Box::new(self.client_automaton(&sys, pid)));
            }
        } else {
            for shard in 0..self.shards {
                for pid in router.server_pids(shard) {
                    let server = KvServer::new(sys.clone(), self.cfg);
                    let server = match &disks {
                        Some(d) => server.with_disk(d.get(pid)),
                        None => server,
                    };
                    procs.push(Box::new(ShardedServer::new(server, router, shard)));
                }
            }
            for c in 0..self.n_clients {
                // The inner client keeps its local writer identity n + c —
                // unique per client, independent of the shard count.
                let inner = self.client_automaton(&sys, self.cfg.client_pid(c));
                procs.push(Box::new(ShardedClient::new(inner, router)));
            }
        }
        (procs, disks)
    }

    fn client_automaton(&self, sys: &Sys<B>, writer_pid: ProcessId) -> KvClient<B> {
        KvClient::with_retry(
            sys.clone(),
            self.cfg,
            writer_pid as u32,
            ReaderOptions::default(),
            self.retry,
        )
        .with_pipeline(self.pipeline)
    }

    fn assemble<S>(self, sim: S, disks: Option<DiskSet>) -> KvCluster<B, S> {
        KvCluster {
            sim,
            cfg: self.cfg,
            sys: MwmrLabeling::new(self.base.clone()),
            router: ShardRouter::new(self.cfg, self.shards),
            n_clients: self.n_clients,
            recorders: BTreeMap::new(),
            op_budget: 400_000,
            disks,
        }
    }

    /// Assemble the store on the deterministic simulator.
    pub fn build(self) -> KvCluster<B> {
        let (procs, disks) = self.procs();
        let sim = Simulation::from_procs(procs, &self.substrate_config());
        self.assemble(sim, disks)
    }

    /// Assemble the store on the threaded runtime.
    pub fn build_threaded(self) -> KvCluster<B, KvThreadedSubstrate<B>> {
        let (procs, disks) = self.procs();
        let sub = ThreadedCluster::spawn_with(procs, &self.substrate_config());
        self.assemble(sub, disks)
    }

    /// Assemble the store on the backend chosen with
    /// [`KvClusterBuilder::backend`].
    pub fn build_any(self) -> KvCluster<B, AnyKvSubstrate<B>> {
        let (procs, disks) = self.procs();
        let sub = AnySubstrate::spawn(self.backend, procs, &self.substrate_config());
        self.assemble(sub, disks)
    }
}

/// A key-value store on a substrate `S` — the simulator by default.
pub struct KvCluster<B: LabelingSystem, S = KvSimSubstrate<B>> {
    /// Underlying substrate.
    pub sim: S,
    /// Cluster arithmetic.
    pub cfg: ClusterConfig,
    /// The labeling system.
    pub sys: Sys<B>,
    /// Key → shard placement (one shard unless the builder asked for more).
    pub router: ShardRouter,
    n_clients: usize,
    /// One history per key.
    pub recorders: BTreeMap<Key, HistoryRecorder<B>>,
    /// Max events per blocking op.
    pub op_budget: u64,
    /// Per-server stable disks when the builder asked for durability.
    pub disks: Option<DiskSet>,
}

impl KvCluster<BoundedLabeling> {
    /// The paper's configuration: bounded labels, `n = 5f + 1`.
    pub fn bounded(f: usize) -> KvClusterBuilder<BoundedLabeling> {
        let cfg = ClusterConfig::stabilizing(f);
        KvClusterBuilder::new(cfg, BoundedLabeling::new(cfg.label_k()))
    }
}

impl<B, S> KvCluster<B, S>
where
    B: LabelingSystem,
    S: Substrate<KvMsg<Ts<B>>, KvEvent<Ts<B>>>,
{
    /// Pid of client `i` (clients sit after every shard's servers).
    pub fn client(&self, i: usize) -> ProcessId {
        assert!(i < self.n_clients);
        self.router.client_pid(i)
    }

    /// Which backend the store runs on.
    pub fn backend(&self) -> Backend {
        self.sim.backend()
    }

    /// Snapshot of the network metrics so far.
    pub fn metrics(&self) -> NetMetrics {
        self.sim.metrics_snapshot()
    }

    fn recorder(&mut self, key: Key) -> &mut HistoryRecorder<B> {
        self.recorders.entry(key).or_default()
    }

    fn await_client(&mut self, client: ProcessId) -> Result<KvEvent<Ts<B>>, KvError> {
        let recorders = &mut self.recorders;
        self.sim
            .pump_until(self.op_budget, MAX_IDLE_PUMPS, &mut |time, pid, out: KvEvent<Ts<B>>| {
                recorders.entry(out.key).or_default().complete(pid, time, &out.inner);
                (pid == client).then_some(out)
            })
            .ok_or(KvError::Stuck)
    }

    /// The instant to record for an operation invoked now: `now + 1` on
    /// the simulator (commands arrive after one tick of channel delay),
    /// `now` exactly on wall-clock ticks where the `+1` would manufacture
    /// false precedence edges.
    fn invoke_time(&self) -> u64 {
        match self.sim.backend() {
            Backend::Sim => self.sim.now() + 1,
            Backend::Threaded => self.sim.now(),
        }
    }

    /// Blocking `put(key, value)`.
    pub fn put(&mut self, client: ProcessId, key: Key, value: Value) -> Result<Ts<B>, KvError> {
        let now = self.invoke_time();
        self.recorder(key).begin_with_intent(client, OpKind::Write, now, Some(value));
        self.sim.inject(client, KvMsg::new(key, sbft_core::messages::Msg::InvokeWrite { value }));
        match self.await_client(client)? {
            KvEvent { inner: ClientEvent::WriteDone { ts, .. }, .. } => Ok(ts),
            _ => Err(KvError::Stuck),
        }
    }

    /// Blocking `get(key)`.
    pub fn get(&mut self, client: ProcessId, key: Key) -> Result<Value, KvError> {
        let now = self.invoke_time();
        self.recorder(key).begin(client, OpKind::Read, now);
        self.sim.inject(client, KvMsg::new(key, sbft_core::messages::Msg::InvokeRead));
        match self.await_client(client)? {
            KvEvent { inner: ClientEvent::ReadDone { value, .. }, .. } => Ok(value),
            KvEvent { inner: ClientEvent::ReadAborted, .. } => Err(KvError::Aborted),
            KvEvent { inner: ClientEvent::ReadFailed { timed_out: false, .. }, .. } => {
                Err(KvError::Aborted)
            }
            _ => Err(KvError::Stuck),
        }
    }

    /// Blocking `put` under the retry policy, reporting the typed outcome
    /// instead of an error.
    pub fn put_outcome(&mut self, client: ProcessId, key: Key, value: Value) -> OpOutcome<Ts<B>> {
        let now = self.invoke_time();
        self.recorder(key).begin_with_intent(client, OpKind::Write, now, Some(value));
        self.sim.inject(client, KvMsg::new(key, sbft_core::messages::Msg::InvokeWrite { value }));
        match self.await_client(client) {
            Ok(KvEvent { inner: ClientEvent::WriteDone { ts, .. }, .. }) => OpOutcome::Ok(ts),
            Ok(KvEvent { inner: ClientEvent::WriteFailed { timed_out, attempts, .. }, .. }) => {
                failure_outcome(timed_out, attempts)
            }
            _ => OpOutcome::TimedOut { attempts: 0 },
        }
    }

    /// Blocking `get` under the retry policy, reporting the typed outcome.
    pub fn get_outcome(&mut self, client: ProcessId, key: Key) -> OpOutcome<Value> {
        let now = self.invoke_time();
        self.recorder(key).begin(client, OpKind::Read, now);
        self.sim.inject(client, KvMsg::new(key, sbft_core::messages::Msg::InvokeRead));
        match self.await_client(client) {
            Ok(KvEvent { inner: ClientEvent::ReadDone { value, .. }, .. }) => OpOutcome::Ok(value),
            Ok(KvEvent { inner: ClientEvent::ReadAborted, .. }) => OpOutcome::Aborted,
            Ok(KvEvent { inner: ClientEvent::ReadFailed { timed_out, attempts }, .. }) => {
                failure_outcome(timed_out, attempts)
            }
            _ => OpOutcome::TimedOut { attempts: 0 },
        }
    }

    /// Transient fault on the whole store (all nodes, clients, channels).
    pub fn corrupt_everything(&mut self, severity: CorruptionSeverity) {
        let total = self.router.total_servers() + self.n_clients;
        let plan = FaultPlan::total(total, severity);
        let sys = self.sys.clone();
        let cfg = self.cfg;
        let mut gen = move |rng: &mut rand::rngs::StdRng| {
            let key = rand::Rng::gen_range(rng, 0..4u64);
            KvMsg::new(key, random_message::<B>(&sys, &cfg, rng))
        };
        self.sim.apply_fault(&plan, &mut gen);
    }

    /// Tear down the substrate (joins worker threads on threads).
    pub fn stop(&mut self) {
        self.sim.stop();
    }

    /// Check one key's history against MWMR regularity.
    pub fn check_history(&self, key: Key) -> Result<(), Vec<RegularityError>> {
        match self.recorders.get(&key) {
            Some(rec) => rec.check(&self.sys),
            None => Ok(()),
        }
    }

    /// Check every key's history; `Err` maps keys to their violations.
    pub fn check_all_histories(&self) -> Result<(), BTreeMap<Key, Vec<RegularityError>>> {
        let mut bad = BTreeMap::new();
        for (&key, rec) in &self.recorders {
            if let Err(errs) = rec.check(&self.sys) {
                bad.insert(key, errs);
            }
        }
        if bad.is_empty() {
            Ok(())
        } else {
            Err(bad)
        }
    }

    /// Fold every key's regularity verdict by hosting shard: how many keys
    /// each shard served and how many violations its histories carry. A
    /// shard with zero violations is regular as a unit — fault isolation
    /// means a Byzantine or crashed neighbour shard cannot change that.
    pub fn check_per_shard(&self) -> BTreeMap<usize, GroupVerdict> {
        group_verdicts(
            self.recorders
                .iter()
                .map(|(&key, rec)| (self.router.shard_of(key), rec.check(&self.sys))),
        )
    }

    /// Check every key's suffix from `t` (post-stabilization verdict).
    pub fn check_all_from(&self, t: u64) -> Result<(), BTreeMap<Key, Vec<RegularityError>>> {
        let mut bad = BTreeMap::new();
        for (&key, rec) in &self.recorders {
            if let Err(errs) = rec.check_from(&self.sys, t) {
                bad.insert(key, errs);
            }
        }
        if bad.is_empty() {
            Ok(())
        } else {
            Err(bad)
        }
    }

    /// Current time: virtual (simulator) or elapsed ticks (threads).
    pub fn now(&self) -> u64 {
        self.sim.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_keys_round_trip() {
        let mut store = KvCluster::bounded(1).seed(1).build();
        let c = store.client(0);
        for key in 0..5u64 {
            store.put(c, key, 100 + key).unwrap();
        }
        for key in 0..5u64 {
            assert_eq!(store.get(c, key).unwrap(), 100 + key);
        }
        assert!(store.check_all_histories().is_ok());
    }

    #[test]
    fn two_clients_share_the_store() {
        let mut store = KvCluster::bounded(1).clients(2).seed(2).build();
        let (a, b) = (store.client(0), store.client(1));
        store.put(a, 1, 11).unwrap();
        store.put(b, 2, 22).unwrap();
        assert_eq!(store.get(b, 1).unwrap(), 11);
        assert_eq!(store.get(a, 2).unwrap(), 22);
        assert!(store.check_all_histories().is_ok());
    }

    #[test]
    fn overwrites_read_latest_per_key() {
        let mut store = KvCluster::bounded(1).seed(3).build();
        let c = store.client(0);
        for v in 1..=5 {
            store.put(c, 9, v).unwrap();
        }
        assert_eq!(store.get(c, 9).unwrap(), 5);
        assert!(store.check_history(9).is_ok());
    }

    #[test]
    fn whole_store_recovers_from_total_corruption() {
        let mut store = KvCluster::bounded(1).seed(4).build();
        let c = store.client(0);
        store.put(c, 1, 11).unwrap();
        store.put(c, 2, 22).unwrap();
        store.corrupt_everything(CorruptionSeverity::Heavy);
        // Assumption 1, per key: one complete write re-stabilizes a key.
        store.put(c, 1, 111).unwrap();
        store.put(c, 2, 222).unwrap();
        let stable = store.now();
        assert_eq!(store.get(c, 1).unwrap(), 111);
        assert_eq!(store.get(c, 2).unwrap(), 222);
        assert!(store.check_all_from(stable).is_ok());
    }

    #[test]
    fn unwritten_key_reads_genesis() {
        let mut store = KvCluster::bounded(1).seed(5).build();
        let c = store.client(0);
        assert_eq!(store.get(c, 777).unwrap(), 0);
        assert!(store.check_history(777).is_ok());
    }

    #[test]
    fn retries_ride_out_a_healed_link_cut() {
        use sbft_net::LinkFault;
        let mut store = KvCluster::bounded(1).seed(8).retry(RetryPolicy::chaos()).build();
        let c = store.client(0);
        store.put(c, 1, 11).unwrap();
        // Cut the client off from two servers: no quorum, puts exhaust.
        for s in [0usize, 1] {
            store.sim.set_link_fault(c, s, Some(LinkFault::cut()));
            store.sim.set_link_fault(s, c, Some(LinkFault::cut()));
        }
        let out = store.put_outcome(c, 1, 22);
        assert!(!out.is_ok(), "{out:?}");
        for s in [0usize, 1] {
            store.sim.set_link_fault(c, s, None);
            store.sim.set_link_fault(s, c, None);
        }
        assert!(store.put_outcome(c, 1, 33).is_ok());
        let got = store.get_outcome(c, 1);
        assert_eq!(got, OpOutcome::Ok(33), "{got:?}");
        assert!(store.check_all_histories().is_ok());
    }

    #[test]
    fn durable_store_reboots_a_node_from_its_damaged_disk() {
        use crate::server::KvServer;
        use sbft_storage::DiskFault;
        let mut store = KvCluster::bounded(1).seed(9).durable().build();
        let c = store.client(0);
        for key in 0..3u64 {
            store.put(c, key, 100 + key).unwrap();
            store.put(c, key, 200 + key).unwrap();
        }
        let disks = store.disks.clone().unwrap();
        store.sim.crash(0);
        let disk = disks.get(0);
        disk.crash(DiskFault::LostSuffix);
        let recovered = KvServer::recover(store.sys.clone(), store.cfg, disk);
        assert!(recovered.key_count() >= 1, "nothing salvaged from the disk");
        store.sim.restart_with(0, Box::new(recovered));
        // The store keeps serving with the rebooted node back in the pool.
        store.put(c, 1, 999).unwrap();
        assert_eq!(store.get(c, 1).unwrap(), 999);
        assert!(store.check_all_histories().is_ok());
    }

    #[test]
    fn threaded_store_round_trips_and_reports_metrics() {
        let mut store = KvCluster::bounded(1).seed(6).build_threaded();
        assert_eq!(store.backend(), Backend::Threaded);
        let c = store.client(0);
        store.put(c, 1, 11).unwrap();
        store.put(c, 2, 22).unwrap();
        assert_eq!(store.get(c, 1).unwrap(), 11);
        assert_eq!(store.get(c, 2).unwrap(), 22);
        assert!(store.check_all_histories().is_ok());
        let m = store.metrics();
        assert!(m.messages_sent > 0 && m.messages_delivered > 0, "{m:?}");
        store.stop();
    }

    #[test]
    fn sharded_store_round_trips_across_all_shards() {
        let mut store = KvCluster::bounded(1).shards(4).seed(11).build();
        let c = store.client(0);
        for key in 0..16u64 {
            store.put(c, key, 1000 + key).unwrap();
        }
        for key in 0..16u64 {
            assert_eq!(store.get(c, key).unwrap(), 1000 + key);
        }
        assert!(store.check_all_histories().is_ok());
        let verdicts = store.check_per_shard();
        assert_eq!(verdicts.values().map(|v| v.registers).sum::<usize>(), 16);
        assert!(verdicts.values().all(|v| v.is_regular()), "{verdicts:?}");
        assert!(verdicts.len() > 1, "16 keys should span several shards");
    }

    #[test]
    fn sharded_store_with_batching_and_pipelining_stays_regular() {
        use sbft_net::BatchPolicy;
        let mut store = KvCluster::bounded(1)
            .shards(2)
            .pipeline(4)
            .batch(BatchPolicy::new(8, 4))
            .seed(12)
            .build();
        let c = store.client(0);
        for key in 0..8u64 {
            store.put(c, key, 7 + key).unwrap();
        }
        for key in 0..8u64 {
            assert_eq!(store.get(c, key).unwrap(), 7 + key);
        }
        assert!(store.check_all_histories().is_ok());
        let m = store.metrics();
        assert!(m.frames_delivered > 0 && m.frames_delivered <= m.messages_delivered, "{m:?}");
    }

    #[test]
    fn sharded_store_recovers_from_total_corruption() {
        let mut store = KvCluster::bounded(1).shards(2).seed(13).build();
        let c = store.client(0);
        store.put(c, 1, 11).unwrap();
        store.put(c, 2, 22).unwrap();
        store.corrupt_everything(CorruptionSeverity::Heavy);
        store.put(c, 1, 111).unwrap();
        store.put(c, 2, 222).unwrap();
        let stable = store.now();
        assert_eq!(store.get(c, 1).unwrap(), 111);
        assert_eq!(store.get(c, 2).unwrap(), 222);
        assert!(store.check_all_from(stable).is_ok());
    }

    #[test]
    fn backend_switch_selects_runtime() {
        for backend in [Backend::Sim, Backend::Threaded] {
            let mut store = KvCluster::bounded(1).seed(7).backend(backend).build_any();
            assert_eq!(store.backend(), backend);
            let c = store.client(0);
            store.put(c, 5, 55).unwrap();
            assert_eq!(store.get(c, 5).unwrap(), 55, "{backend:?}");
            assert!(store.check_all_histories().is_ok(), "{backend:?}");
            store.stop();
        }
    }
}
