//! The storage node: one register-server state per key, one process.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::Rng;
use sbft_core::config::ClusterConfig;
use sbft_core::messages::Msg;
use sbft_core::server::{Server, SNAPSHOT_EVERY, SYNC_EVERY};
use sbft_core::{Sys, Ts};
use sbft_labels::LabelingSystem;
use sbft_net::{Automaton, Ctx, ProcessId, ENV};
use sbft_storage::{ByteReader, Codec, DiskHandle};

use crate::messages::{Key, KvEvent, KvMsg};

/// A server hosting the registers of every key it has ever been asked
/// about. Unknown keys materialize in the genesis state on first contact —
/// exactly like a fresh register.
pub struct KvServer<B: LabelingSystem> {
    sys: Sys<B>,
    cfg: ClusterConfig,
    /// Per-key register state.
    pub registers: BTreeMap<Key, Server<B>>,
    /// Stable storage for the whole node (all keys share one disk).
    disk: Option<DiskHandle>,
    /// Writes applied across all keys; drives the sync/snapshot cadence.
    pub writes_applied: u64,
}

impl<B: LabelingSystem> KvServer<B> {
    /// A storage node with no keys yet.
    pub fn new(sys: Sys<B>, cfg: ClusterConfig) -> Self {
        Self { sys, cfg, registers: BTreeMap::new(), disk: None, writes_applied: 0 }
    }

    /// Attach stable storage: every subsequently applied write appends a
    /// `(key, value, ts)` record, with periodic sync and whole-map
    /// snapshots on the same cadence as the plain register server.
    pub fn with_disk(mut self, disk: DiskHandle) -> Self {
        self.disk = Some(disk);
        self
    }

    /// Number of keys materialized on this node.
    pub fn key_count(&self) -> usize {
        self.registers.len()
    }

    /// Encode the node's durable state: the node-wide write counter plus
    /// every key's register snapshot (each key reuses the register
    /// server's own snapshot payload).
    pub fn state_bytes(&self) -> Vec<u8> {
        let entries: Vec<(Key, Vec<u8>)> =
            self.registers.iter().map(|(&k, reg)| (k, reg.state_bytes())).collect();
        (self.writes_applied, entries).to_bytes()
    }

    /// Reboot a storage node from its (possibly crash-damaged) disk.
    ///
    /// Never fails: a structurally unreadable snapshot falls back to an
    /// empty store, a key whose embedded register state is unreadable
    /// boots that key clean, and log records replay only up to the first
    /// undecodable one per key. The surviving state may be stale or carry
    /// ill-formed labels — exactly the arbitrary-state class the per-key
    /// protocol stabilizes from. The disk stays attached.
    pub fn recover(sys: Sys<B>, cfg: ClusterConfig, disk: DiskHandle) -> Self {
        let salvaged = disk.load();
        let mut node = Self::new(sys.clone(), cfg);
        if let Some(bytes) = &salvaged.snapshot {
            if let Some((writes, entries)) = <(u64, Vec<(Key, Vec<u8>)>)>::from_bytes(bytes) {
                node.writes_applied = writes;
                for (key, state) in entries {
                    let reg = Server::from_state_bytes(sys.clone(), cfg, &state)
                        .unwrap_or_else(|| Server::new(sys.clone(), cfg));
                    node.registers.insert(key, reg);
                }
            }
        }
        for rec in &salvaged.records {
            let mut r = ByteReader::new(rec);
            let Some(key) = Key::decode(&mut r) else { continue };
            let Some(rest) = r.take(r.remaining()) else { continue };
            let reg = node.registers.entry(key).or_insert_with(|| Server::new(sys.clone(), cfg));
            if reg.replay_record(rest) {
                node.writes_applied += 1;
            }
        }
        node.disk = Some(disk);
        node
    }

    /// Persist the write just applied to `key`'s register: snapshot the
    /// whole map every [`SNAPSHOT_EVERY`] writes, otherwise append one
    /// `(key, (value, ts))` record and sync every [`SYNC_EVERY`].
    fn persist_write(&mut self, key: Key) {
        self.writes_applied += 1;
        let Some(disk) = self.disk.clone() else { return };
        if self.writes_applied.is_multiple_of(SNAPSHOT_EVERY) {
            disk.put_snapshot(&self.state_bytes());
        } else if let Some(reg) = self.registers.get(&key) {
            let mut rec = Vec::new();
            key.encode(&mut rec);
            (reg.value, reg.ts.clone()).encode(&mut rec);
            disk.append(&rec);
            if self.writes_applied.is_multiple_of(SYNC_EVERY) {
                disk.sync();
            }
        }
    }
}

impl<B: LabelingSystem> Automaton<KvMsg<Ts<B>>, KvEvent<Ts<B>>> for KvServer<B> {
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: KvMsg<Ts<B>>,
        ctx: &mut Ctx<'_, KvMsg<Ts<B>>, KvEvent<Ts<B>>>,
    ) {
        if from == ENV {
            return;
        }
        let key = msg.key;
        let is_write = matches!(msg.inner, Msg::Write { .. });
        let register =
            self.registers.entry(key).or_insert_with(|| Server::new(self.sys.clone(), self.cfg));
        let (me, now) = (ctx.me, ctx.now);
        let (sends, outputs) = {
            let mut inner = Ctx::detached(me, now, ctx.rng());
            register.on_message(from, msg.inner, &mut inner);
            let (s, o, _) = inner.drain();
            (s, o)
        };
        if is_write {
            // The register adopts every sanitized write unconditionally
            // (Figure 1), so a Write message always advanced (value, ts).
            self.persist_write(key);
        }
        for (to, m) in sends {
            ctx.send(to, KvMsg::new(key, m));
        }
        for o in outputs {
            ctx.output(KvEvent { key, inner: o });
        }
    }

    fn corrupt(&mut self, rng: &mut StdRng) {
        // Scramble every materialized key's register state...
        for register in self.registers.values_mut() {
            register.corrupt(rng);
        }
        // ...and materialize a few phantom keys with corrupted state (the
        // arbitrary-memory model does not respect key boundaries).
        for _ in 0..rng.gen_range(0..3usize) {
            let key = rng.gen::<Key>() % 8;
            let mut phantom = Server::new(self.sys.clone(), self.cfg);
            phantom.corrupt(rng);
            self.registers.insert(key, phantom);
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sbft_core::messages::Msg;
    use sbft_labels::{BoundedLabeling, MwmrLabeling};

    type B = BoundedLabeling;

    fn node() -> KvServer<B> {
        let cfg = ClusterConfig::stabilizing(1);
        KvServer::new(MwmrLabeling::new(BoundedLabeling::new(cfg.label_k())), cfg)
    }

    fn deliver(
        s: &mut KvServer<B>,
        from: ProcessId,
        msg: KvMsg<Ts<B>>,
    ) -> Vec<(ProcessId, KvMsg<Ts<B>>)> {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = Ctx::detached(0, 0, &mut rng);
        s.on_message(from, msg, &mut ctx);
        ctx.drain().0
    }

    #[test]
    fn keys_materialize_lazily_and_stay_isolated() {
        let mut s = node();
        assert_eq!(s.key_count(), 0);
        let out = deliver(&mut s, 7, KvMsg::new(1, Msg::GetTs));
        assert_eq!(s.key_count(), 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.key, 1, "replies carry the key");
        deliver(&mut s, 7, KvMsg::new(2, Msg::GetTs));
        assert_eq!(s.key_count(), 2);
    }

    #[test]
    fn writes_to_one_key_do_not_touch_another() {
        let mut s = node();
        deliver(&mut s, 7, KvMsg::new(1, Msg::GetTs));
        deliver(&mut s, 7, KvMsg::new(2, Msg::GetTs));
        let ts = {
            let reg = s.registers.get(&1).unwrap();
            s.sys.next_for(9, std::slice::from_ref(&reg.ts))
        };
        deliver(&mut s, 7, KvMsg::new(1, Msg::Write { value: 42, ts }));
        assert_eq!(s.registers.get(&1).unwrap().value, 42);
        assert_eq!(s.registers.get(&2).unwrap().value, 0, "key 2 untouched");
    }

    #[test]
    fn corruption_scrambles_all_keys() {
        let mut s = node();
        deliver(&mut s, 7, KvMsg::new(1, Msg::GetTs));
        let mut rng = StdRng::seed_from_u64(9);
        s.corrupt(&mut rng);
        assert!(s.key_count() >= 1);
    }

    /// Deliver a well-formed `Write` advancing `key`'s register.
    fn put(s: &mut KvServer<B>, key: Key, value: u64) {
        let cur = s.registers.get(&key).map_or_else(|| s.sys.genesis(), |r| r.ts.clone());
        let ts = s.sys.next_for(9, std::slice::from_ref(&cur));
        deliver(s, 7, KvMsg::new(key, Msg::Write { value, ts }));
    }

    #[test]
    fn node_recovers_every_key_after_clean_crash() {
        use sbft_storage::{DiskFault, DiskHandle};
        let disk = DiskHandle::sim(11);
        let mut s = node().with_disk(disk.clone());
        for i in 0..20u64 {
            put(&mut s, i % 3, 100 + i);
        }
        assert_eq!(s.writes_applied, 20);
        disk.crash(DiskFault::Pristine);
        let r = KvServer::<B>::recover(s.sys.clone(), s.cfg, disk);
        assert_eq!(r.key_count(), 3);
        assert_eq!(r.writes_applied, 20);
        for key in 0..3u64 {
            assert_eq!(
                r.registers.get(&key).unwrap().value,
                s.registers.get(&key).unwrap().value,
                "key {key} diverged through recovery"
            );
        }
    }

    #[test]
    fn node_recovery_is_total_under_every_fault() {
        use sbft_storage::{DiskFault, DiskHandle};
        for fault in DiskFault::ALL {
            let disk = DiskHandle::sim(5);
            let mut s = node().with_disk(disk.clone());
            for i in 0..40u64 {
                put(&mut s, i % 4, i);
            }
            disk.crash(fault);
            // Recovery must never panic and never invent keys; stale or
            // missing keys are fine (the protocol re-stabilizes them).
            let r = KvServer::<B>::recover(s.sys.clone(), s.cfg, disk);
            assert!(r.key_count() <= 4, "{fault:?} invented keys");
            for (key, reg) in &r.registers {
                assert!(
                    reg.value <= s.registers.get(key).map_or(u64::MAX, |o| o.value)
                        || reg.writes_applied <= s.registers[key].writes_applied,
                    "{fault:?} produced impossible state for key {key}"
                );
            }
        }
    }

    #[test]
    fn recovered_node_resumes_persisting() {
        use sbft_storage::{DiskFault, DiskHandle};
        let disk = DiskHandle::sim(3);
        let mut s = node().with_disk(disk.clone());
        for i in 0..6u64 {
            put(&mut s, 1, i);
        }
        disk.crash(DiskFault::LostSuffix);
        let appends_before = disk.stats().appends;
        let mut r = KvServer::<B>::recover(s.sys.clone(), s.cfg, disk.clone());
        put(&mut r, 1, 99);
        assert!(disk.stats().appends > appends_before, "recovered node stopped persisting");
        disk.crash(DiskFault::Pristine);
        let r2 = KvServer::<B>::recover(s.sys.clone(), s.cfg, disk);
        assert_eq!(r2.registers.get(&1).unwrap().value, 99);
    }
}
