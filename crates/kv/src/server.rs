//! The storage node: one register-server state per key, one process.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::Rng;
use sbft_core::config::ClusterConfig;
use sbft_core::server::Server;
use sbft_core::{Sys, Ts};
use sbft_labels::LabelingSystem;
use sbft_net::{Automaton, Ctx, ProcessId, ENV};

use crate::messages::{Key, KvEvent, KvMsg};

/// A server hosting the registers of every key it has ever been asked
/// about. Unknown keys materialize in the genesis state on first contact —
/// exactly like a fresh register.
pub struct KvServer<B: LabelingSystem> {
    sys: Sys<B>,
    cfg: ClusterConfig,
    /// Per-key register state.
    pub registers: BTreeMap<Key, Server<B>>,
}

impl<B: LabelingSystem> KvServer<B> {
    /// A storage node with no keys yet.
    pub fn new(sys: Sys<B>, cfg: ClusterConfig) -> Self {
        Self { sys, cfg, registers: BTreeMap::new() }
    }

    /// Number of keys materialized on this node.
    pub fn key_count(&self) -> usize {
        self.registers.len()
    }
}

impl<B: LabelingSystem> Automaton<KvMsg<Ts<B>>, KvEvent<Ts<B>>> for KvServer<B> {
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: KvMsg<Ts<B>>,
        ctx: &mut Ctx<'_, KvMsg<Ts<B>>, KvEvent<Ts<B>>>,
    ) {
        if from == ENV {
            return;
        }
        let key = msg.key;
        let register =
            self.registers.entry(key).or_insert_with(|| Server::new(self.sys.clone(), self.cfg));
        let (me, now) = (ctx.me, ctx.now);
        let (sends, outputs) = {
            let mut inner = Ctx::detached(me, now, ctx.rng());
            register.on_message(from, msg.inner, &mut inner);
            let (s, o, _) = inner.drain();
            (s, o)
        };
        for (to, m) in sends {
            ctx.send(to, KvMsg::new(key, m));
        }
        for o in outputs {
            ctx.output(KvEvent { key, inner: o });
        }
    }

    fn corrupt(&mut self, rng: &mut StdRng) {
        // Scramble every materialized key's register state...
        for register in self.registers.values_mut() {
            register.corrupt(rng);
        }
        // ...and materialize a few phantom keys with corrupted state (the
        // arbitrary-memory model does not respect key boundaries).
        for _ in 0..rng.gen_range(0..3usize) {
            let key = rng.gen::<Key>() % 8;
            let mut phantom = Server::new(self.sys.clone(), self.cfg);
            phantom.corrupt(rng);
            self.registers.insert(key, phantom);
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sbft_core::messages::Msg;
    use sbft_labels::{BoundedLabeling, MwmrLabeling};

    type B = BoundedLabeling;

    fn node() -> KvServer<B> {
        let cfg = ClusterConfig::stabilizing(1);
        KvServer::new(MwmrLabeling::new(BoundedLabeling::new(cfg.label_k())), cfg)
    }

    fn deliver(
        s: &mut KvServer<B>,
        from: ProcessId,
        msg: KvMsg<Ts<B>>,
    ) -> Vec<(ProcessId, KvMsg<Ts<B>>)> {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = Ctx::detached(0, 0, &mut rng);
        s.on_message(from, msg, &mut ctx);
        ctx.drain().0
    }

    #[test]
    fn keys_materialize_lazily_and_stay_isolated() {
        let mut s = node();
        assert_eq!(s.key_count(), 0);
        let out = deliver(&mut s, 7, KvMsg::new(1, Msg::GetTs));
        assert_eq!(s.key_count(), 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.key, 1, "replies carry the key");
        deliver(&mut s, 7, KvMsg::new(2, Msg::GetTs));
        assert_eq!(s.key_count(), 2);
    }

    #[test]
    fn writes_to_one_key_do_not_touch_another() {
        let mut s = node();
        deliver(&mut s, 7, KvMsg::new(1, Msg::GetTs));
        deliver(&mut s, 7, KvMsg::new(2, Msg::GetTs));
        let ts = {
            let reg = s.registers.get(&1).unwrap();
            s.sys.next_for(9, std::slice::from_ref(&reg.ts))
        };
        deliver(&mut s, 7, KvMsg::new(1, Msg::Write { value: 42, ts }));
        assert_eq!(s.registers.get(&1).unwrap().value, 42);
        assert_eq!(s.registers.get(&2).unwrap().value, 0, "key 2 untouched");
    }

    #[test]
    fn corruption_scrambles_all_keys() {
        let mut s = node();
        deliver(&mut s, 7, KvMsg::new(1, Msg::GetTs));
        let mut rng = StdRng::seed_from_u64(9);
        s.corrupt(&mut rng);
        assert!(s.key_count() >= 1);
    }
}
