//! The store client: one register-client state per key.
//!
//! The register protocol's client bookkeeping — the bounded read-label
//! pool, the `recent_labels` matrix, the `recent_vals` caches — is all
//! per-register state, so it lives per key. Operations on *different*
//! keys are therefore independent and may run concurrently up to the
//! configured pipeline depth ([`KvClient::with_pipeline`]); the default
//! depth of 1 keeps the original one-op-at-a-time discipline. At most one
//! operation per key is ever in flight — a command for a busy key is
//! dropped, like any command beyond the depth.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use sbft_core::client::Client;
use sbft_core::config::ClusterConfig;
use sbft_core::reader::ReaderOptions;
use sbft_core::{RetryPolicy, Sys, Ts};
use sbft_labels::{LabelingSystem, WriterId};
use sbft_net::{Automaton, Ctx, ProcessId, ENV};

use crate::messages::{Key, KvEvent, KvMsg};

/// A key-value client multiplexing per-key register clients.
pub struct KvClient<B: LabelingSystem> {
    sys: Sys<B>,
    cfg: ClusterConfig,
    opts: ReaderOptions,
    writer_id: WriterId,
    policy: RetryPolicy,
    /// Per-key register-client state.
    pub per_key: BTreeMap<Key, Client<B>>,
    /// Keys with an operation in flight (at most `max_inflight` of them,
    /// at most one per key).
    pub active: BTreeSet<Key>,
    /// Pipeline depth: how many distinct keys may have an operation in
    /// flight simultaneously.
    max_inflight: usize,
    /// Outer → `(key, inner)` timer-id indirection: per-key register
    /// clients pick timer ids independently of each other, so their
    /// timers must be disambiguated before entering the process-wide
    /// timer namespace.
    timer_routes: BTreeMap<u64, (Key, u64)>,
    timer_seq: u64,
}

impl<B: LabelingSystem> KvClient<B> {
    /// A clean client.
    pub fn new(sys: Sys<B>, cfg: ClusterConfig, writer_id: WriterId, opts: ReaderOptions) -> Self {
        Self::with_retry(sys, cfg, writer_id, opts, RetryPolicy::none())
    }

    /// A clean client whose per-key register clients all follow `policy`.
    pub fn with_retry(
        sys: Sys<B>,
        cfg: ClusterConfig,
        writer_id: WriterId,
        opts: ReaderOptions,
        policy: RetryPolicy,
    ) -> Self {
        Self {
            sys,
            cfg,
            opts,
            writer_id,
            policy,
            per_key: BTreeMap::new(),
            active: BTreeSet::new(),
            max_inflight: 1,
            timer_routes: BTreeMap::new(),
            timer_seq: 0,
        }
    }

    /// Allow up to `depth` concurrent operations on distinct keys (clamped
    /// to ≥ 1). Depth 1 is the original one-op-at-a-time client.
    pub fn with_pipeline(mut self, depth: usize) -> Self {
        self.max_inflight = depth.max(1);
        self
    }

    /// Number of operations currently in flight.
    pub fn inflight(&self) -> usize {
        self.active.len()
    }

    fn client_for(&mut self, key: Key) -> &mut Client<B> {
        let (sys, cfg, wid, opts) = (self.sys.clone(), self.cfg, self.writer_id, self.opts);
        let policy = self.policy;
        self.per_key.entry(key).or_insert_with(|| Client::with_retry(sys, cfg, wid, opts, policy))
    }

    /// Re-arm an inner client's timer under a fresh outer id.
    fn arm(
        &mut self,
        key: Key,
        delay: u64,
        inner_id: u64,
        ctx: &mut Ctx<'_, KvMsg<Ts<B>>, KvEvent<Ts<B>>>,
    ) {
        let outer = self.timer_seq;
        self.timer_seq += 1;
        self.timer_routes.insert(outer, (key, inner_id));
        ctx.set_timer(delay, outer);
    }
}

impl<B: LabelingSystem> Automaton<KvMsg<Ts<B>>, KvEvent<Ts<B>>> for KvClient<B> {
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: KvMsg<Ts<B>>,
        ctx: &mut Ctx<'_, KvMsg<Ts<B>>, KvEvent<Ts<B>>>,
    ) {
        let key = msg.key;
        if from == ENV {
            if self.active.contains(&key) || self.active.len() >= self.max_inflight {
                return; // key busy, or the pipeline is full
            }
            self.active.insert(key);
        } else if !self.active.contains(&key) {
            // A late reply for a finished (or foreign) key's operation:
            // deliver it to that key's client anyway so its label
            // bookkeeping stays accurate — but no new op can start there.
            if let Some(client) = self.per_key.get_mut(&key) {
                let (me, now) = (ctx.me, ctx.now);
                let mut inner = Ctx::detached(me, now, ctx.rng());
                client.on_message(from, msg.inner, &mut inner);
                let (sends, _outs, timers) = inner.drain();
                drop(inner);
                for (to, m) in sends {
                    ctx.send(to, KvMsg::new(key, m));
                }
                for (delay, tid) in timers {
                    self.arm(key, delay, tid, ctx);
                }
            }
            return;
        }

        let (me, now) = (ctx.me, ctx.now);
        let client = self.client_for(key);
        let (sends, outputs, timers) = {
            let mut inner = Ctx::detached(me, now, ctx.rng());
            client.on_message(from, msg.inner, &mut inner);
            inner.drain()
        };
        for (to, m) in sends {
            ctx.send(to, KvMsg::new(key, m));
        }
        for (delay, tid) in timers {
            self.arm(key, delay, tid, ctx);
        }
        for o in outputs {
            if o.is_read_end() || o.is_write_end() {
                self.active.remove(&key);
            }
            ctx.output(KvEvent { key, inner: o });
        }
    }

    fn on_timer(&mut self, id: u64, ctx: &mut Ctx<'_, KvMsg<Ts<B>>, KvEvent<Ts<B>>>) {
        let Some((key, inner_id)) = self.timer_routes.remove(&id) else {
            return;
        };
        let Some(client) = self.per_key.get_mut(&key) else {
            return;
        };
        let (me, now) = (ctx.me, ctx.now);
        let (sends, outputs, timers) = {
            let mut inner = Ctx::detached(me, now, ctx.rng());
            client.on_timer(inner_id, &mut inner);
            inner.drain()
        };
        for (to, m) in sends {
            ctx.send(to, KvMsg::new(key, m));
        }
        for (delay, tid) in timers {
            self.arm(key, delay, tid, ctx);
        }
        for o in outputs {
            if o.is_read_end() || o.is_write_end() {
                self.active.remove(&key);
            }
            ctx.output(KvEvent { key, inner: o });
        }
    }

    fn corrupt(&mut self, rng: &mut StdRng) {
        for client in self.per_key.values_mut() {
            client.corrupt(rng);
        }
        self.active.clear();
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sbft_core::messages::Msg;
    use sbft_labels::{BoundedLabeling, MwmrLabeling};

    type B = BoundedLabeling;

    fn client() -> KvClient<B> {
        let cfg = ClusterConfig::stabilizing(1);
        KvClient::new(
            MwmrLabeling::new(BoundedLabeling::new(cfg.label_k())),
            cfg,
            7,
            ReaderOptions::default(),
        )
    }

    fn deliver(
        c: &mut KvClient<B>,
        from: ProcessId,
        msg: KvMsg<Ts<B>>,
    ) -> Vec<(ProcessId, KvMsg<Ts<B>>)> {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = Ctx::detached(6, 0, &mut rng);
        c.on_message(from, msg, &mut ctx);
        ctx.drain().0
    }

    #[test]
    fn put_broadcasts_get_ts_under_the_key() {
        let mut c = client();
        let out = deliver(&mut c, ENV, KvMsg::new(5, Msg::InvokeWrite { value: 1 }));
        assert_eq!(out.len(), 6);
        assert!(out.iter().all(|(_, m)| m.key == 5 && matches!(m.inner, Msg::GetTs)));
        assert!(c.active.contains(&5) && c.inflight() == 1);
    }

    #[test]
    fn second_op_while_busy_is_dropped() {
        let mut c = client();
        deliver(&mut c, ENV, KvMsg::new(5, Msg::InvokeWrite { value: 1 }));
        let out = deliver(&mut c, ENV, KvMsg::new(6, Msg::InvokeRead));
        assert!(out.is_empty());
        assert!(c.active.contains(&5) && c.inflight() == 1);
    }

    #[test]
    fn replies_for_foreign_keys_do_not_disturb_the_active_op() {
        let mut c = client();
        deliver(&mut c, ENV, KvMsg::new(5, Msg::InvokeWrite { value: 1 }));
        // A reply under key 9 (never touched): ignored entirely.
        let genesis = c.sys.genesis();
        let out = deliver(&mut c, 0, KvMsg::new(9, Msg::TsReply { ts: genesis }));
        assert!(out.is_empty());
        assert!(c.active.contains(&5) && c.inflight() == 1);
    }

    #[test]
    fn pipelining_admits_distinct_keys_up_to_depth() {
        let mut c = client().with_pipeline(2);
        let out = deliver(&mut c, ENV, KvMsg::new(5, Msg::InvokeWrite { value: 1 }));
        assert_eq!(out.len(), 6);
        // A second op on a distinct key rides alongside the first.
        let out = deliver(&mut c, ENV, KvMsg::new(6, Msg::InvokeRead));
        assert_eq!(out.len(), 6);
        assert!(out.iter().all(|(_, m)| m.key == 6));
        assert_eq!(c.inflight(), 2);
        // A third op (pipeline full) and a duplicate on a busy key are both
        // dropped.
        assert!(deliver(&mut c, ENV, KvMsg::new(7, Msg::InvokeRead)).is_empty());
        assert!(deliver(&mut c, ENV, KvMsg::new(5, Msg::InvokeRead)).is_empty());
        assert_eq!(c.inflight(), 2);
    }
}
