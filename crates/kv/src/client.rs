//! The store client: one register-client state per key.
//!
//! The register protocol's client bookkeeping — the bounded read-label
//! pool, the `recent_labels` matrix, the `recent_vals` caches — is all
//! per-register state, so it lives per key. Operations on *different*
//! keys could in principle run concurrently; this client keeps the
//! one-op-at-a-time discipline across the whole store for simplicity (the
//! driver serializes per client anyway).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use sbft_core::client::Client;
use sbft_core::config::ClusterConfig;
use sbft_core::reader::ReaderOptions;
use sbft_core::{Sys, Ts};
use sbft_labels::{LabelingSystem, WriterId};
use sbft_net::{Automaton, Ctx, ProcessId, ENV};

use crate::messages::{Key, KvEvent, KvMsg};

/// A key-value client multiplexing per-key register clients.
pub struct KvClient<B: LabelingSystem> {
    sys: Sys<B>,
    cfg: ClusterConfig,
    opts: ReaderOptions,
    writer_id: WriterId,
    /// Per-key register-client state.
    pub per_key: BTreeMap<Key, Client<B>>,
    /// Key of the operation in flight, if any.
    pub active: Option<Key>,
}

impl<B: LabelingSystem> KvClient<B> {
    /// A clean client.
    pub fn new(sys: Sys<B>, cfg: ClusterConfig, writer_id: WriterId, opts: ReaderOptions) -> Self {
        Self { sys, cfg, opts, writer_id, per_key: BTreeMap::new(), active: None }
    }

    fn client_for(&mut self, key: Key) -> &mut Client<B> {
        let (sys, cfg, wid, opts) = (self.sys.clone(), self.cfg, self.writer_id, self.opts);
        self.per_key.entry(key).or_insert_with(|| Client::new(sys, cfg, wid, opts))
    }
}

impl<B: LabelingSystem> Automaton<KvMsg<Ts<B>>, KvEvent<Ts<B>>> for KvClient<B> {
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: KvMsg<Ts<B>>,
        ctx: &mut Ctx<'_, KvMsg<Ts<B>>, KvEvent<Ts<B>>>,
    ) {
        let key = msg.key;
        if from == ENV {
            if self.active.is_some() {
                return; // one store operation at a time
            }
            self.active = Some(key);
        } else if self.active != Some(key) {
            // A late reply for a finished (or foreign) key's operation:
            // deliver it to that key's client anyway so its label
            // bookkeeping stays accurate — but no new op can start there.
            if let Some(client) = self.per_key.get_mut(&key) {
                let (me, now) = (ctx.me, ctx.now);
                let mut inner = Ctx::detached(me, now, ctx.rng());
                client.on_message(from, msg.inner, &mut inner);
                let (sends, _outs, _) = inner.drain();
                drop(inner);
                for (to, m) in sends {
                    ctx.send(to, KvMsg::new(key, m));
                }
            }
            return;
        }

        let (me, now) = (ctx.me, ctx.now);
        let client = self.client_for(key);
        let (sends, outputs) = {
            let mut inner = Ctx::detached(me, now, ctx.rng());
            client.on_message(from, msg.inner, &mut inner);
            let (s, o, _) = inner.drain();
            (s, o)
        };
        for (to, m) in sends {
            ctx.send(to, KvMsg::new(key, m));
        }
        for o in outputs {
            if o.is_read_end() || o.is_write_end() {
                self.active = None;
            }
            ctx.output(KvEvent { key, inner: o });
        }
    }

    fn corrupt(&mut self, rng: &mut StdRng) {
        for client in self.per_key.values_mut() {
            client.corrupt(rng);
        }
        self.active = None;
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sbft_core::messages::Msg;
    use sbft_labels::{BoundedLabeling, MwmrLabeling};

    type B = BoundedLabeling;

    fn client() -> KvClient<B> {
        let cfg = ClusterConfig::stabilizing(1);
        KvClient::new(
            MwmrLabeling::new(BoundedLabeling::new(cfg.label_k())),
            cfg,
            7,
            ReaderOptions::default(),
        )
    }

    fn deliver(
        c: &mut KvClient<B>,
        from: ProcessId,
        msg: KvMsg<Ts<B>>,
    ) -> Vec<(ProcessId, KvMsg<Ts<B>>)> {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = Ctx::detached(6, 0, &mut rng);
        c.on_message(from, msg, &mut ctx);
        ctx.drain().0
    }

    #[test]
    fn put_broadcasts_get_ts_under_the_key() {
        let mut c = client();
        let out = deliver(&mut c, ENV, KvMsg::new(5, Msg::InvokeWrite { value: 1 }));
        assert_eq!(out.len(), 6);
        assert!(out.iter().all(|(_, m)| m.key == 5 && matches!(m.inner, Msg::GetTs)));
        assert_eq!(c.active, Some(5));
    }

    #[test]
    fn second_op_while_busy_is_dropped() {
        let mut c = client();
        deliver(&mut c, ENV, KvMsg::new(5, Msg::InvokeWrite { value: 1 }));
        let out = deliver(&mut c, ENV, KvMsg::new(6, Msg::InvokeRead));
        assert!(out.is_empty());
        assert_eq!(c.active, Some(5));
    }

    #[test]
    fn replies_for_foreign_keys_do_not_disturb_the_active_op() {
        let mut c = client();
        deliver(&mut c, ENV, KvMsg::new(5, Msg::InvokeWrite { value: 1 }));
        // A reply under key 9 (never touched): ignored entirely.
        let genesis = c.sys.genesis();
        let out = deliver(&mut c, 0, KvMsg::new(9, Msg::TsReply { ts: genesis }));
        assert!(out.is_empty());
        assert_eq!(c.active, Some(5));
    }
}
