//! Keyed wrappers around the register wire protocol.

use sbft_core::messages::{ClientEvent, Msg};

/// A key of the store. Applications hash richer keys down to this.
pub type Key = u64;

/// A register-protocol message scoped to one key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KvMsg<T> {
    /// The key whose register this message belongs to.
    pub key: Key,
    /// The underlying register-protocol message.
    pub inner: Msg<T>,
}

impl<T> KvMsg<T> {
    /// Wrap a register message under a key.
    pub fn new(key: Key, inner: Msg<T>) -> Self {
        Self { key, inner }
    }
}

/// A client event scoped to one key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KvEvent<T> {
    /// The key the operation targeted.
    pub key: Key,
    /// The underlying client event.
    pub inner: ClientEvent<T>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_round_trip() {
        let m: KvMsg<u64> = KvMsg::new(7, Msg::GetTs);
        assert_eq!(m.key, 7);
        assert_eq!(m.clone(), m);
    }
}
