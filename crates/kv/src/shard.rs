//! Sharding: hash-partitioning the keyspace across independent server
//! groups.
//!
//! A **shard** is the unit of placement and fault isolation: its own
//! `n = 5f + 1` server group running the unmodified per-key register
//! protocol, sharing nothing with the other shards. Keys are assigned to
//! shards by a fixed multiplicative hash, so routing is stateless and every
//! client agrees on the placement without coordination. Because each key's
//! register lives entirely inside one shard's `5f + 1` group, Theorem 1
//! applies to it verbatim — sharding multiplies capacity without touching
//! the proof.
//!
//! The wrappers in this module keep the inner automata oblivious:
//! [`ShardedServer`] and [`ShardedClient`] translate between the **global**
//! pid space of the substrate (shard `s`'s servers at `[s·n, (s+1)·n)`,
//! clients after all servers) and the **local** pid space each inner
//! automaton was written for (servers `0..n`, clients `n..`). Traffic that
//! violates placement — a message for a key the shard does not host, or a
//! reply from a server outside the key's shard — is dropped at the wrapper,
//! so a Byzantine server can never reach across a shard boundary.

use rand::rngs::StdRng;
use sbft_core::config::ClusterConfig;
use sbft_core::Ts;
use sbft_labels::LabelingSystem;
use sbft_net::process::Effects;
use sbft_net::{Automaton, Ctx, ProcessId, ENV};

use crate::client::KvClient;
use crate::messages::{Key, KvEvent, KvMsg};
use crate::server::KvServer;

/// Stateless shard placement: key → shard, and the global↔local pid
/// arithmetic of the flattened `shards × n + clients` process layout.
#[derive(Clone, Copy, Debug)]
pub struct ShardRouter {
    cfg: ClusterConfig,
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` groups of `cfg.n` servers each (clamped to
    /// at least one shard).
    pub fn new(cfg: ClusterConfig, shards: usize) -> Self {
        Self { cfg, shards: shards.max(1) }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard hosting `key`: Fibonacci multiplicative hash so adjacent
    /// keys spread across shards instead of striping.
    pub fn shard_of(&self, key: Key) -> usize {
        ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % self.shards
    }

    /// Total servers across all shards.
    pub fn total_servers(&self) -> usize {
        self.shards * self.cfg.n
    }

    /// Global pid of client `i` (clients sit after every shard's servers).
    pub fn client_pid(&self, i: usize) -> ProcessId {
        self.total_servers() + i
    }

    /// Global pids of `shard`'s server group.
    pub fn server_pids(&self, shard: usize) -> std::ops::Range<ProcessId> {
        shard * self.cfg.n..(shard + 1) * self.cfg.n
    }

    /// Which shard a global server pid belongs to.
    pub fn shard_of_server(&self, pid: ProcessId) -> usize {
        debug_assert!(pid < self.total_servers());
        pid / self.cfg.n
    }

    /// Translate a global pid into `shard`'s local pid space: that shard's
    /// servers map to `0..n`, clients to `n..`; servers of *other* shards
    /// have no local identity and yield `None`.
    pub fn to_local(&self, shard: usize, global: ProcessId) -> Option<ProcessId> {
        let servers = self.total_servers();
        if global >= servers {
            Some(self.cfg.n + (global - servers))
        } else if self.server_pids(shard).contains(&global) {
            Some(global - shard * self.cfg.n)
        } else {
            None
        }
    }

    /// Translate `shard`'s local pid back into the global space.
    pub fn to_global(&self, shard: usize, local: ProcessId) -> ProcessId {
        if local < self.cfg.n {
            shard * self.cfg.n + local
        } else {
            self.total_servers() + (local - self.cfg.n)
        }
    }
}

/// Replay one inner-automaton dispatch's drained effects onto the outer
/// context, translating send targets from `shard`-local pids to global.
fn replay<B: LabelingSystem>(
    router: &ShardRouter,
    shard: usize,
    effects: Effects<KvMsg<Ts<B>>, KvEvent<Ts<B>>>,
    ctx: &mut Ctx<'_, KvMsg<Ts<B>>, KvEvent<Ts<B>>>,
) {
    let (sends, outputs, timers) = effects;
    for (to, m) in sends {
        ctx.send(router.to_global(shard, to), m);
    }
    for o in outputs {
        ctx.output(o);
    }
    for (delay, tid) in timers {
        ctx.set_timer(delay, tid);
    }
}

/// A storage node of one shard: an unmodified [`KvServer`] behind pid
/// translation and placement enforcement.
pub struct ShardedServer<B: LabelingSystem> {
    /// The wrapped storage node.
    pub inner: KvServer<B>,
    router: ShardRouter,
    shard: usize,
}

impl<B: LabelingSystem> ShardedServer<B> {
    /// Wrap `inner` as a member of `shard`'s server group.
    pub fn new(inner: KvServer<B>, router: ShardRouter, shard: usize) -> Self {
        Self { inner, router, shard }
    }

    /// Which shard this node serves.
    pub fn shard(&self) -> usize {
        self.shard
    }
}

impl<B: LabelingSystem> Automaton<KvMsg<Ts<B>>, KvEvent<Ts<B>>> for ShardedServer<B> {
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: KvMsg<Ts<B>>,
        ctx: &mut Ctx<'_, KvMsg<Ts<B>>, KvEvent<Ts<B>>>,
    ) {
        // Placement enforcement: this shard only serves its own keys, and
        // only talks to processes with a local identity here. Anything else
        // is a misroute or a cross-shard spoof — dropped.
        if from != ENV && self.router.shard_of(msg.key) != self.shard {
            return;
        }
        let local_from = if from == ENV {
            ENV
        } else {
            match self.router.to_local(self.shard, from) {
                Some(l) => l,
                None => return,
            }
        };
        let me = self.router.to_local(self.shard, ctx.me).expect("own pid is in shard");
        let now = ctx.now;
        let effects = {
            let mut inner = Ctx::detached(me, now, ctx.rng());
            self.inner.on_message(local_from, msg, &mut inner);
            inner.drain()
        };
        replay::<B>(&self.router, self.shard, effects, ctx);
    }

    fn on_timer(&mut self, id: u64, ctx: &mut Ctx<'_, KvMsg<Ts<B>>, KvEvent<Ts<B>>>) {
        let me = self.router.to_local(self.shard, ctx.me).expect("own pid is in shard");
        let now = ctx.now;
        let effects = {
            let mut inner = Ctx::detached(me, now, ctx.rng());
            self.inner.on_timer(id, &mut inner);
            inner.drain()
        };
        replay::<B>(&self.router, self.shard, effects, ctx);
    }

    fn corrupt(&mut self, rng: &mut StdRng) {
        self.inner.corrupt(rng);
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// A store client over the full sharded deployment: an unmodified
/// [`KvClient`] whose per-key broadcasts are routed to the key's shard.
pub struct ShardedClient<B: LabelingSystem> {
    /// The wrapped client.
    pub inner: KvClient<B>,
    router: ShardRouter,
}

impl<B: LabelingSystem> ShardedClient<B> {
    /// Wrap `inner` behind the router.
    pub fn new(inner: KvClient<B>, router: ShardRouter) -> Self {
        Self { inner, router }
    }

    /// Local pid of this client in every shard's local space (`n + i`).
    fn local_me(&self, ctx_me: ProcessId) -> ProcessId {
        // Clients sit after all servers globally and after n locally; the
        // translation is shard-independent, so shard 0 serves for all.
        self.router.to_local(0, ctx_me).expect("own pid is a client pid")
    }
}

impl<B: LabelingSystem> Automaton<KvMsg<Ts<B>>, KvEvent<Ts<B>>> for ShardedClient<B> {
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: KvMsg<Ts<B>>,
        ctx: &mut Ctx<'_, KvMsg<Ts<B>>, KvEvent<Ts<B>>>,
    ) {
        // Route by the message's key. Replies must come from a server of
        // the key's own shard (or the environment); a server answering for
        // a key it does not host is spoofing across the boundary — dropped.
        let shard = self.router.shard_of(msg.key);
        let local_from = if from == ENV {
            ENV
        } else if from < self.router.total_servers() {
            if self.router.shard_of_server(from) != shard {
                return;
            }
            match self.router.to_local(shard, from) {
                Some(l) => l,
                None => return,
            }
        } else {
            return; // clients never talk to each other
        };
        let me = self.local_me(ctx.me);
        let now = ctx.now;
        let effects = {
            let mut inner = Ctx::detached(me, now, ctx.rng());
            self.inner.on_message(local_from, msg, &mut inner);
            inner.drain()
        };
        // The inner client's sends are broadcasts to local servers 0..n of
        // the key's shard — but a single drain may carry sends for several
        // keys (pipelining), so translate per message by its own key.
        let (sends, outputs, timers) = effects;
        for (to, m) in sends {
            let s = self.router.shard_of(m.key);
            ctx.send(self.router.to_global(s, to), m);
        }
        for o in outputs {
            ctx.output(o);
        }
        for (delay, tid) in timers {
            ctx.set_timer(delay, tid);
        }
    }

    fn on_timer(&mut self, id: u64, ctx: &mut Ctx<'_, KvMsg<Ts<B>>, KvEvent<Ts<B>>>) {
        let me = self.local_me(ctx.me);
        let now = ctx.now;
        let (sends, outputs, timers) = {
            let mut inner = Ctx::detached(me, now, ctx.rng());
            self.inner.on_timer(id, &mut inner);
            inner.drain()
        };
        for (to, m) in sends {
            let s = self.router.shard_of(m.key);
            ctx.send(self.router.to_global(s, to), m);
        }
        for o in outputs {
            ctx.output(o);
        }
        for (delay, tid) in timers {
            ctx.set_timer(delay, tid);
        }
    }

    fn corrupt(&mut self, rng: &mut StdRng) {
        self.inner.corrupt(rng);
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sbft_core::messages::Msg;
    use sbft_core::reader::ReaderOptions;
    use sbft_labels::{BoundedLabeling, MwmrLabeling};

    type B = BoundedLabeling;

    fn router(shards: usize) -> ShardRouter {
        ShardRouter::new(ClusterConfig::stabilizing(1), shards)
    }

    #[test]
    fn placement_arithmetic_round_trips() {
        let r = router(4); // n = 6, servers 0..24, clients 24..
        assert_eq!(r.total_servers(), 24);
        assert_eq!(r.client_pid(0), 24);
        assert_eq!(r.server_pids(2), 12..18);
        for g in 0..24 {
            let s = r.shard_of_server(g);
            let l = r.to_local(s, g).unwrap();
            assert!(l < 6);
            assert_eq!(r.to_global(s, l), g);
        }
        // Clients translate in every shard's local space.
        for shard in 0..4 {
            assert_eq!(r.to_local(shard, 25), Some(7));
            assert_eq!(r.to_global(shard, 7), 25);
        }
        // A foreign shard's server has no local identity.
        assert_eq!(r.to_local(0, 12), None);
    }

    #[test]
    fn keys_spread_over_all_shards() {
        let r = router(4);
        let mut seen = [false; 4];
        for key in 0..64u64 {
            let s = r.shard_of(key);
            assert!(s < 4);
            seen[s] = true;
        }
        assert!(seen.iter().all(|&b| b), "{seen:?}");
    }

    #[test]
    fn single_shard_matches_unsharded_layout() {
        let r = router(1);
        let cfg = ClusterConfig::stabilizing(1);
        assert_eq!(r.total_servers(), cfg.n);
        assert_eq!(r.client_pid(3), cfg.client_pid(3));
        for key in 0..32u64 {
            assert_eq!(r.shard_of(key), 0);
        }
    }

    fn sharded_client(shards: usize) -> ShardedClient<B> {
        let cfg = ClusterConfig::stabilizing(1);
        let sys = MwmrLabeling::new(BoundedLabeling::new(cfg.label_k()));
        let inner = KvClient::new(sys, cfg, 7, ReaderOptions::default());
        ShardedClient::new(inner, router(shards))
    }

    fn deliver(
        c: &mut ShardedClient<B>,
        me: ProcessId,
        from: ProcessId,
        msg: KvMsg<Ts<B>>,
    ) -> Vec<(ProcessId, KvMsg<Ts<B>>)> {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = Ctx::detached(me, 0, &mut rng);
        c.on_message(from, msg, &mut ctx);
        ctx.drain().0
    }

    #[test]
    fn client_broadcasts_land_in_the_keys_shard() {
        let mut c = sharded_client(4);
        let me = c.router.client_pid(0);
        let key = 5u64;
        let shard = c.router.shard_of(key);
        let out = deliver(&mut c, me, ENV, KvMsg::new(key, Msg::InvokeWrite { value: 1 }));
        assert_eq!(out.len(), 6);
        let want = c.router.server_pids(shard);
        assert!(out.iter().all(|(to, m)| want.contains(to) && m.key == key), "{out:?}");
    }

    #[test]
    fn replies_from_foreign_shards_are_dropped() {
        let mut c = sharded_client(4);
        let me = c.router.client_pid(0);
        let key = 5u64;
        let shard = c.router.shard_of(key);
        deliver(&mut c, me, ENV, KvMsg::new(key, Msg::InvokeWrite { value: 1 }));
        // A server of a *different* shard claims a reply for this key.
        let foreign = c.router.server_pids((shard + 1) % 4).start;
        let cfg = ClusterConfig::stabilizing(1);
        let sys: sbft_core::Sys<B> = MwmrLabeling::new(BoundedLabeling::new(cfg.label_k()));
        let genesis = sys.genesis();
        let out = deliver(&mut c, me, foreign, KvMsg::new(key, Msg::TsReply { ts: genesis }));
        assert!(out.is_empty());
    }

    #[test]
    fn server_drops_misplaced_keys_and_foreign_servers() {
        let cfg = ClusterConfig::stabilizing(1);
        let sys: sbft_core::Sys<B> = MwmrLabeling::new(BoundedLabeling::new(cfg.label_k()));
        let r = router(4);
        let key = 5u64;
        let home = r.shard_of(key);
        let other = (home + 1) % 4;
        let mut s = ShardedServer::new(KvServer::new(sys, cfg), r, other);
        let me = r.server_pids(other).start;
        let client = r.client_pid(0);
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = Ctx::detached(me, 0, &mut rng);
        // A key this shard does not host: dropped, nothing materializes.
        s.on_message(client, KvMsg::new(key, Msg::GetTs), &mut ctx);
        assert_eq!(s.inner.key_count(), 0);
        // A key it does host, but sent by a foreign shard's server: dropped.
        let hosted = (0..64).find(|&k| r.shard_of(k) == other).unwrap();
        let foreign = r.server_pids(home).start;
        s.on_message(foreign, KvMsg::new(hosted, Msg::GetTs), &mut ctx);
        assert_eq!(s.inner.key_count(), 0);
        // The same key from a client: served, reply routed back globally.
        s.on_message(client, KvMsg::new(hosted, Msg::GetTs), &mut ctx);
        assert_eq!(s.inner.key_count(), 1);
        let (sends, _, _) = ctx.drain();
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].0, client);
    }
}
