//! # sbft-kv — a keyed object store over stabilizing BFT registers
//!
//! The paper's introduction motivates the register abstraction with cloud
//! *storage services*. This crate closes the loop: a **key–value store**
//! where every key is an independent MWMR regular register of the paper's
//! protocol, and all keys multiplex the **same** `n = 5f + 1` server pool
//! (and the same channels), so one deployment serves the whole keyspace.
//!
//! ## Design
//!
//! * Wire format: [`KvMsg`] wraps the register protocol's messages with a
//!   key; key spaces are fully independent (a Byzantine server lying
//!   about key A cannot touch key B's witness counts).
//! * [`server::KvServer`] holds one register-server state *per key it has
//!   heard of* (lazily materialized, persistent thereafter — like a
//!   storage node's on-disk objects).
//! * [`client::KvClient`] holds one register-client state per key
//!   (read-label pools and `recent_vals` caches are per key, as the
//!   protocol's bookkeeping requires).
//! * [`cluster::KvCluster`] is the driver: blocking `put`/`get`, one
//!   history recorder per key, and the per-key regularity verdicts.
//! * [`shard::ShardRouter`] optionally hash-partitions the keyspace over
//!   several independent `5f + 1` server groups ("shards" — each its own
//!   unit of placement and fault isolation), behind the same facade:
//!   [`KvClusterBuilder::shards`](cluster::KvClusterBuilder::shards) is
//!   the only knob, and clients, retries, nemesis schedules, and spec
//!   checking are untouched.
//!
//! All of the paper's guarantees lift pointwise: each key is exactly the
//! register of `sbft-core`, so termination, regularity, and
//! pseudo-stabilization hold per key (tests exercise cross-key isolation
//! and recovery of the whole store from total corruption).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod messages;
pub mod server;
pub mod shard;

pub use cluster::KvCluster;
pub use messages::{Key, KvEvent, KvMsg};
pub use shard::{ShardRouter, ShardedClient, ShardedServer};
