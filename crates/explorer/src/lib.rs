//! # sbft-explorer — bounded-exhaustive schedule exploration
//!
//! The paper's guarantees are quantified over *every* asynchronous
//! schedule, but the harness otherwise only samples schedules (seeded
//! delays, nemesis scripts). This crate checks small configurations
//! *exhaustively*: a depth-bounded DFS forks on every enabled event of the
//! deterministic simulator — the FIFO head of each in-flight channel, each
//! pending timer — and asserts the register specification after every
//! transition.
//!
//! ## Design: step-replay, not state-forking
//!
//! Protocol processes are `Box<dyn Automaton>` state machines and are
//! deliberately **not** cloneable (real implementations hold whatever they
//! hold), so the explorer cannot snapshot a simulator mid-run and fork it.
//! Instead it relies on the substrate's end-to-end determinism: a
//! [`Scenario`] rebuilds the *identical* initial state on every
//! [`Scenario::start`], and a schedule is re-entered by replaying its
//! [`EventKey`] choice sequence through [`Simulation::step_key`]. Replay
//! costs `O(depth)` per schedule, but keys — `(src, dst)` channel
//! identities and `(pid, id)` timer identities — stay meaningful across
//! interleavings, which is also what makes shrunk counterexample traces
//! replayable verbatim.
//!
//! [`Simulation::step_key`]: sbft_net::Simulation::step_key
//!
//! ## Pruning: sleep sets over an independence relation
//!
//! Two enabled events *commute* when they touch different destination
//! processes: per-channel FIFO plus deterministic automata mean delivering
//! to `p` then `q` or `q` then `p` reaches the same state. The classic
//! sleep-set construction (Godefroid) exploits this: after exploring
//! candidate `c₀` from a node, the sibling branch taken instead inherits
//! `c₀` in its *sleep set* and never re-executes it first while it stays
//! independent of everything chosen since — cutting the factorial blowup
//! of equivalent orderings without missing any inequivalent one.
//!
//! On violation the offending schedule is shrunk to a 1-minimal event
//! sequence ([`shrink`]) and serialized as a replayable trace file
//! ([`format_trace`] / [`parse_trace`]) that `harness explore --replay`
//! re-executes verbatim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dedup;
pub mod parallel;
pub mod scenario;

pub use parallel::{explore_parallel, shrink_parallel, ParallelConfig};

use sbft_net::{EventKey, ProcessId, ENV};

/// Result of executing one explorer-chosen event against a scenario run.
#[derive(Clone, Debug)]
pub enum StepResult {
    /// The event executed and every invariant still holds.
    Ok,
    /// The event executed and broke an invariant (description attached).
    Violation(String),
    /// The key is not enabled in this run — replaying a schedule against
    /// the wrong scenario state, or a shrink candidate that removed an
    /// event some later event depended on.
    Infeasible,
}

/// A deterministic, restartable system-under-test.
///
/// `start` must rebuild the *identical* initial state every time it is
/// called — the explorer re-enters schedules by replaying key sequences
/// from scratch, so any nondeterminism in setup breaks both exploration
/// and counterexample replay.
pub trait Scenario {
    /// Per-run state.
    type Run: ScenarioRun;
    /// Stable name, used in trace files and reports.
    fn name(&self) -> &str;
    /// Build a fresh run at the schedule's fork point.
    fn start(&self) -> Self::Run;
}

/// One run of a scenario, stepped event-by-event by the explorer.
pub trait ScenarioRun {
    /// The currently enabled event keys (sorted, deduplicated).
    fn enabled(&self) -> Vec<EventKey>;
    /// Execute one enabled event and re-check the invariants.
    fn step(&mut self, key: EventKey) -> StepResult;
    /// A schedule ended: `bounded` is true when it was cut by the step
    /// budget rather than reaching quiescence. Returns a violation
    /// description for end-of-schedule invariants (e.g. termination —
    /// a quiescent network with operations still open means some op can
    /// never complete; only checkable when `!bounded`).
    fn finish(&mut self, bounded: bool) -> Option<String>;
    /// Stable fingerprint of the complete current state, or `None` when the
    /// state cannot be soundly summarized (e.g. hidden nondeterminism such
    /// as pending RNG draws). Contract: within one scenario, two runs with
    /// equal digests after schedules of equal length behave identically
    /// under every future key sequence — same [`Self::enabled`] sets, same
    /// [`Self::step`] results, same [`Self::finish`] verdicts. The parallel
    /// explorer keys its state-hash dedup on this; the default `None`
    /// disables dedup at the node (always sound, never prunes).
    fn state_digest(&self) -> Option<u64> {
        None
    }
}

/// Exploration bounds and toggles.
#[derive(Clone, Debug)]
pub struct ExplorerConfig {
    /// Fork on every enabled event for the first `branch_depth` events of
    /// a schedule; beyond that, follow the first candidate only. Bounds
    /// the tree width without cutting schedules short.
    pub branch_depth: usize,
    /// Hard cap on events per schedule (guards non-terminating runs).
    pub max_steps: usize,
    /// Stop exploring after this many complete schedules.
    pub max_schedules: u64,
    /// Enable sleep-set pruning. Sound for deterministic automata over
    /// FIFO channels; disable to count the raw schedule tree.
    pub prune: bool,
    /// Abandon the remaining tree at the first violation.
    pub stop_on_violation: bool,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        Self {
            branch_depth: 5,
            max_steps: 5_000,
            max_schedules: 20_000,
            prune: true,
            stop_on_violation: false,
        }
    }
}

/// Counters accumulated over one [`explore`] call.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Complete schedules executed (to quiescence, the step cap, or a
    /// violation).
    pub schedules: u64,
    /// Branches abandoned because every enabled event was sleeping — each
    /// stands for a subtree equivalent to one already explored.
    pub pruned: u64,
    /// Total `step` calls, including prefix replays.
    pub transitions: u64,
    /// Longest schedule seen.
    pub max_depth: usize,
    /// Whether the `max_schedules` cap cut the exploration short.
    pub hit_schedule_cap: bool,
    /// Subtrees skipped by state-hash dedup: an equal-state node at the
    /// same depth whose recorded sleep set is a subset of this one was
    /// already expanded, so every future explored here would be explored
    /// there. Always 0 in the sequential explorer and with dedup off.
    pub deduped: u64,
    /// Nodes where a state digest was computed and looked up in the dedup
    /// seen-set (hit rate = `deduped / dedup_checks`). Always 0 in the
    /// sequential explorer and with dedup off.
    pub dedup_checks: u64,
}

/// A schedule that broke an invariant: the exact `EventKey` sequence from
/// the scenario's fork point up to and including the violating event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The violating schedule (replay with [`replay`]).
    pub schedule: Vec<EventKey>,
    /// Human-readable description of the broken invariant.
    pub description: String,
}

/// Everything [`explore`] found.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Exploration counters.
    pub stats: ExploreStats,
    /// Violations in discovery order (empty on a clean sweep).
    pub violations: Vec<Violation>,
}

/// Destination process of an event — the process whose state it mutates.
fn dest(key: EventKey) -> ProcessId {
    match key {
        EventKey::Channel { to, .. } => to,
        EventKey::Timer { pid, .. } => pid,
    }
}

/// Whether two *distinct* enabled events commute: they mutate different
/// destination processes, so (with per-channel FIFO and deterministic
/// automata) executing them in either order reaches the same state. Events
/// with the same destination never commute — the handler order is visible
/// in that process's state.
pub fn independent(a: EventKey, b: EventKey) -> bool {
    a != b && dest(a) != dest(b)
}

/// One pending DFS branch: a schedule prefix to replay plus the sleep set
/// it inherited at its fork point. Because replay by [`EventKey`] is exact,
/// a `Branch` is fully self-contained — any worker can pick it up, replay
/// the prefix on a fresh [`Scenario::start`], and own the subtree.
///
/// Invariant: `sleep` is sorted ascending and duplicate-free. The root
/// starts empty, sibling sets are built by sorted merge
/// ([`sibling_sleep`]), and the in-place `retain` filter preserves order,
/// so the invariant holds everywhere without re-sorting.
pub(crate) struct Branch {
    pub(crate) prefix: Vec<EventKey>,
    pub(crate) sleep: Vec<EventKey>,
}

/// `enabled \ sleep` in a single merge walk — both inputs are sorted
/// ascending and duplicate-free (`enabled` by `Simulation::enabled_events`,
/// `sleep` by the [`Branch`] invariant), so this replaces the former
/// per-candidate `sleep.contains` linear scan on the innermost loop.
pub(crate) fn awake_candidates(enabled: &[EventKey], sleep: &[EventKey]) -> Vec<EventKey> {
    let mut out = Vec::with_capacity(enabled.len());
    let mut s = 0;
    for &e in enabled {
        while s < sleep.len() && sleep[s] < e {
            s += 1;
        }
        if sleep.get(s) != Some(&e) {
            out.push(e);
        }
    }
    out
}

/// The sleep set a sibling branch inherits: everything the node already
/// slept on plus the siblings explored before it, filtered to what stays
/// independent of the sibling's first move `of`. `sleep` and `explored`
/// are sorted and disjoint (explored candidates are awake by definition),
/// so a sorted merge replaces the former `O(|sleep|·|candidates|)`
/// chain-and-filter and keeps the output sorted for free.
pub(crate) fn sibling_sleep(
    sleep: &[EventKey],
    explored: &[EventKey],
    of: EventKey,
) -> Vec<EventKey> {
    let mut out = Vec::with_capacity(sleep.len() + explored.len());
    let (mut a, mut b) = (0, 0);
    loop {
        let next = match (sleep.get(a), explored.get(b)) {
            (Some(&x), Some(&y)) if x <= y => {
                a += 1;
                x
            }
            (_, Some(&y)) => {
                b += 1;
                y
            }
            (Some(&x), None) => {
                a += 1;
                x
            }
            (None, None) => break,
        };
        if independent(next, of) {
            out.push(next);
        }
    }
    out
}

/// Depth-bounded exhaustive DFS over the scenario's schedule tree.
///
/// For the first [`ExplorerConfig::branch_depth`] events of a schedule the
/// explorer forks on every enabled (non-sleeping) event; beyond the bound
/// it follows the first candidate in sorted key order. Every transition is
/// invariant-checked by the scenario; end-of-schedule invariants run via
/// [`ScenarioRun::finish`].
pub fn explore<S: Scenario>(scenario: &S, config: &ExplorerConfig) -> ExploreReport {
    let mut stats = ExploreStats::default();
    let mut violations: Vec<Violation> = Vec::new();
    let mut stack = vec![Branch { prefix: Vec::new(), sleep: Vec::new() }];

    'branches: while let Some(branch) = stack.pop() {
        if stats.schedules >= config.max_schedules {
            stats.hit_schedule_cap = true;
            break;
        }
        let mut run = scenario.start();
        let mut schedule: Vec<EventKey> = Vec::with_capacity(branch.prefix.len() + 16);

        // Replay the prefix that led to this fork point.
        for &key in &branch.prefix {
            stats.transitions += 1;
            match run.step(key) {
                StepResult::Ok => schedule.push(key),
                StepResult::Violation(description) => {
                    // Possible when a *prefix* already violates but the
                    // sibling order explored first did not; record it.
                    schedule.push(key);
                    stats.schedules += 1;
                    stats.max_depth = stats.max_depth.max(schedule.len());
                    violations.push(Violation { schedule, description });
                    if config.stop_on_violation {
                        break 'branches;
                    }
                    continue 'branches;
                }
                StepResult::Infeasible => {
                    // A previously-enabled key is gone: the scenario is not
                    // deterministic. Surface loudly instead of silently
                    // exploring a different tree.
                    panic!(
                        "explorer replay diverged at step {} of {:?} — scenario::start is not deterministic",
                        schedule.len(),
                        branch.prefix
                    );
                }
            }
        }

        // Extend to a complete schedule, forking while within the bound.
        let mut sleep = branch.sleep;
        loop {
            let enabled = run.enabled();
            if enabled.is_empty() {
                stats.schedules += 1;
                stats.max_depth = stats.max_depth.max(schedule.len());
                if let Some(description) = run.finish(false) {
                    violations.push(Violation { schedule, description });
                    if config.stop_on_violation {
                        break 'branches;
                    }
                }
                break;
            }
            if schedule.len() >= config.max_steps {
                stats.schedules += 1;
                stats.max_depth = stats.max_depth.max(schedule.len());
                if let Some(description) = run.finish(true) {
                    violations.push(Violation { schedule, description });
                    if config.stop_on_violation {
                        break 'branches;
                    }
                }
                break;
            }
            let candidates: Vec<EventKey> =
                if config.prune { awake_candidates(&enabled, &sleep) } else { enabled };
            let Some(&first) = candidates.first() else {
                // Every enabled event sleeps: this subtree is a reordering
                // of one already explored.
                stats.pruned += 1;
                break;
            };
            if schedule.len() < config.branch_depth {
                // Push siblings deepest-priority-last so candidates[1] is
                // explored next. Sibling i sleeps on everything the node
                // already slept on plus the siblings explored before it,
                // filtered to what stays independent of i's first move.
                for i in (1..candidates.len()).rev() {
                    let ci = candidates[i];
                    let alt_sleep: Vec<EventKey> = if config.prune {
                        sibling_sleep(&sleep, &candidates[..i], ci)
                    } else {
                        Vec::new()
                    };
                    let mut prefix = schedule.clone();
                    prefix.push(ci);
                    stack.push(Branch { prefix, sleep: alt_sleep });
                }
            }
            if config.prune {
                sleep.retain(|&z| independent(z, first));
            }
            stats.transitions += 1;
            match run.step(first) {
                StepResult::Ok => schedule.push(first),
                StepResult::Violation(description) => {
                    schedule.push(first);
                    stats.schedules += 1;
                    stats.max_depth = stats.max_depth.max(schedule.len());
                    violations.push(Violation { schedule, description });
                    if config.stop_on_violation {
                        break 'branches;
                    }
                    break;
                }
                StepResult::Infeasible => {
                    panic!(
                        "enabled key {first:?} refused to step — substrate and scenario disagree"
                    );
                }
            }
        }
    }

    ExploreReport { stats, violations }
}

/// Outcome of replaying a schedule against a fresh run of a scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// Event `at` (0-based) broke an invariant.
    Violation {
        /// Index of the violating event in the schedule.
        at: usize,
        /// Description of the broken invariant.
        description: String,
    },
    /// Every event executed without violation.
    Clean {
        /// Number of events executed.
        steps: usize,
    },
    /// Event `at` was not enabled — the schedule does not fit this
    /// scenario state.
    Infeasible {
        /// Index of the infeasible event.
        at: usize,
        /// The key that failed to step.
        key: EventKey,
    },
}

/// Replay `schedule` verbatim against a fresh run of `scenario`.
pub fn replay<S: Scenario>(scenario: &S, schedule: &[EventKey]) -> ReplayOutcome {
    let mut run = scenario.start();
    for (at, &key) in schedule.iter().enumerate() {
        match run.step(key) {
            StepResult::Ok => {}
            StepResult::Violation(description) => {
                return ReplayOutcome::Violation { at, description }
            }
            StepResult::Infeasible => return ReplayOutcome::Infeasible { at, key },
        }
    }
    ReplayOutcome::Clean { steps: schedule.len() }
}

/// Shrink a violating schedule to a 1-minimal one: repeatedly try removing
/// each event; a candidate that still violates (anywhere — the violation
/// may move earlier) replaces the current schedule, truncated at its
/// violating event. Terminates because length strictly decreases; the
/// result violates on replay and no single further removal keeps it
/// violating. `O(n²)` replays in the worst case, on schedules that are
/// typically tens of events.
pub fn shrink<S: Scenario>(scenario: &S, violation: &Violation) -> Violation {
    let mut current = violation.schedule.clone();
    let mut description = violation.description.clone();
    'outer: loop {
        for i in 0..current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if let ReplayOutcome::Violation { at, description: d } = replay(scenario, &candidate) {
                candidate.truncate(at + 1);
                current = candidate;
                description = d;
                continue 'outer;
            }
        }
        break;
    }
    Violation { schedule: current, description }
}

/// A parsed counterexample trace file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceFile {
    /// Name of the scenario the schedule belongs to.
    pub scenario: String,
    /// Description of the violation the schedule triggers.
    pub violation: String,
    /// The event schedule.
    pub schedule: Vec<EventKey>,
}

/// Pid serialization: the environment pseudo-process is spelled `env`.
fn pid_str(pid: ProcessId) -> String {
    if pid == ENV {
        "env".into()
    } else {
        pid.to_string()
    }
}

fn parse_pid(s: &str) -> Result<ProcessId, String> {
    if s == "env" {
        Ok(ENV)
    } else {
        s.parse().map_err(|_| format!("bad process id {s:?}"))
    }
}

/// Serialize a found-and-shrunk counterexample as a replayable trace file.
/// The format is line-oriented plain text (one `event` line per schedule
/// entry) so a trace diff reads as a schedule diff.
pub fn format_trace(scenario: &str, violation: &Violation) -> String {
    let mut out = String::new();
    out.push_str("# sbft explorer counterexample trace\n");
    out.push_str(&format!("scenario {scenario}\n"));
    out.push_str(&format!("violation {}\n", violation.description.replace('\n', " ")));
    for &key in &violation.schedule {
        match key {
            EventKey::Channel { from, to } => {
                out.push_str(&format!("event channel {} {}\n", pid_str(from), pid_str(to)));
            }
            EventKey::Timer { pid, id } => {
                out.push_str(&format!("event timer {} {}\n", pid_str(pid), id));
            }
        }
    }
    out
}

/// Parse a trace file produced by [`format_trace`].
pub fn parse_trace(text: &str) -> Result<TraceFile, String> {
    let mut scenario = None;
    let mut violation = String::new();
    let mut schedule = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
        if let Some(rest) = line.strip_prefix("scenario ") {
            scenario = Some(rest.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("violation ") {
            violation = rest.trim().to_string();
        } else if let Some(rest) = line.strip_prefix("event ") {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            let key = match parts.as_slice() {
                ["channel", from, to] => EventKey::Channel {
                    from: parse_pid(from).map_err(|e| err(&e))?,
                    to: parse_pid(to).map_err(|e| err(&e))?,
                },
                ["timer", pid, id] => EventKey::Timer {
                    pid: parse_pid(pid).map_err(|e| err(&e))?,
                    id: id.parse().map_err(|_| err("bad timer id"))?,
                },
                _ => return Err(err("unknown event form")),
            };
            schedule.push(key);
        } else {
            return Err(err("unknown directive"));
        }
    }
    let scenario = scenario.ok_or("missing `scenario` line".to_string())?;
    Ok(TraceFile { scenario, violation, schedule })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic toy system: three messages in flight to three
    /// distinct processes, plus one follow-up unlocked by the first. A
    /// violation triggers iff process 2's message is delivered before
    /// process 1's.
    struct Toy;

    struct ToyRun {
        delivered: Vec<EventKey>,
        pending: Vec<EventKey>,
    }

    fn chan(from: ProcessId, to: ProcessId) -> EventKey {
        EventKey::Channel { from, to }
    }

    impl Scenario for Toy {
        type Run = ToyRun;
        fn name(&self) -> &str {
            "toy"
        }
        fn start(&self) -> ToyRun {
            ToyRun { delivered: Vec::new(), pending: vec![chan(0, 1), chan(0, 2), chan(0, 3)] }
        }
    }

    impl ScenarioRun for ToyRun {
        fn enabled(&self) -> Vec<EventKey> {
            let mut v = self.pending.clone();
            v.sort_unstable();
            v
        }
        fn step(&mut self, key: EventKey) -> StepResult {
            let Some(i) = self.pending.iter().position(|&k| k == key) else {
                return StepResult::Infeasible;
            };
            self.pending.remove(i);
            if key == chan(0, 1) {
                self.pending.push(chan(1, 3)); // follow-up hop
            }
            self.delivered.push(key);
            let d2 = self.delivered.iter().position(|&k| k == chan(0, 2));
            let d1 = self.delivered.iter().position(|&k| k == chan(0, 1));
            match (d1, d2) {
                (None, Some(_)) => StepResult::Violation("2 before 1".into()),
                _ => StepResult::Ok,
            }
        }
        fn finish(&mut self, _bounded: bool) -> Option<String> {
            (!self.pending.is_empty()).then(|| "pending left".into())
        }
        fn state_digest(&self) -> Option<u64> {
            // Sound for the toy: future `step`/`finish` behavior depends
            // only on the pending multiset and on whether each watched
            // message was delivered — never on delivery order (the order
            // check fires, and ends the schedule, at delivery time).
            let mut pending = self.pending.clone();
            pending.sort_unstable();
            let mut h = sbft_storage::Fnv64::new();
            h.bytes(format!("{pending:?}").as_bytes()).sep();
            h.u64(u64::from(self.delivered.contains(&chan(0, 1))));
            h.u64(u64::from(self.delivered.contains(&chan(0, 2))));
            Some(h.finish())
        }
    }

    fn cfg(prune: bool) -> ExplorerConfig {
        ExplorerConfig { branch_depth: 16, prune, stop_on_violation: false, ..Default::default() }
    }

    #[test]
    fn unpruned_exploration_counts_the_full_tree() {
        let report = explore(&Toy, &cfg(false));
        // Orders of {1,2,3,then 1→3}: schedules that deliver 2 first stop
        // immediately (violation), so the tree is smaller than 4!; the
        // exact count just needs to be stable and every 2-before-1 order
        // must be caught.
        assert!(report.stats.schedules > 4, "{:?}", report.stats);
        assert!(!report.violations.is_empty());
        assert!(report.violations.iter().all(|v| v.description == "2 before 1"));
        // Deterministic: same config, same result.
        let again = explore(&Toy, &cfg(false));
        assert_eq!(report.stats, again.stats);
        assert_eq!(report.violations, again.violations);
    }

    #[test]
    fn pruning_preserves_the_violation_set_shape() {
        let full = explore(&Toy, &cfg(false));
        let pruned = explore(&Toy, &cfg(true));
        assert!(pruned.stats.schedules < full.stats.schedules, "sleep sets must prune");
        assert!(pruned.stats.pruned > 0);
        // Every distinct violation description survives pruning.
        assert!(!pruned.violations.is_empty());
        assert!(pruned.violations.iter().all(|v| v.description == "2 before 1"));
    }

    #[test]
    fn shrink_reaches_the_minimal_counterexample() {
        let report = explore(&Toy, &cfg(true));
        let v = report.violations.first().expect("toy violates");
        let min = shrink(&Toy, v);
        // Minimal: deliver (0,2) alone.
        assert_eq!(min.schedule, vec![chan(0, 2)]);
        assert_eq!(min.description, "2 before 1");
        assert_eq!(
            replay(&Toy, &min.schedule),
            ReplayOutcome::Violation { at: 0, description: "2 before 1".into() }
        );
    }

    #[test]
    fn trace_round_trips() {
        let v = Violation {
            schedule: vec![chan(ENV, 0), chan(0, 2), EventKey::Timer { pid: 3, id: 42 }],
            description: "something\nbroke".into(),
        };
        let text = format_trace("toy", &v);
        let parsed = parse_trace(&text).expect("round trip");
        assert_eq!(parsed.scenario, "toy");
        assert_eq!(parsed.violation, "something broke");
        assert_eq!(parsed.schedule, v.schedule);
        assert!(parse_trace("event warp 1 2\n").is_err());
        assert!(parse_trace("").is_err(), "missing scenario line");
    }

    #[test]
    fn awake_candidates_is_sorted_set_difference() {
        let enabled = vec![chan(0, 1), chan(0, 2), chan(1, 3), chan(2, 3)];
        let sleep = vec![chan(0, 2), chan(2, 3)];
        assert_eq!(awake_candidates(&enabled, &sleep), vec![chan(0, 1), chan(1, 3)]);
        assert_eq!(awake_candidates(&enabled, &[]), enabled);
        assert_eq!(awake_candidates(&[], &sleep), Vec::<EventKey>::new());
        // Sleepers not currently enabled are simply skipped over.
        let sleep = vec![chan(0, 0), chan(9, 9)];
        assert_eq!(awake_candidates(&enabled, &sleep), enabled);
    }

    #[test]
    fn sibling_sleep_merges_sorted_and_filters_dependents() {
        let sleep = vec![chan(0, 1), chan(1, 3)];
        let explored = vec![chan(0, 2), chan(0, 4)];
        // Sibling's first move targets process 4: chan(0,4) is dependent
        // (same destination) and must not survive into its sleep set.
        let got = sibling_sleep(&sleep, &explored, chan(1, 4));
        assert_eq!(got, vec![chan(0, 1), chan(0, 2), chan(1, 3)]);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(got, sorted, "merge output must stay sorted");
        // Matches the original chain-and-filter construction.
        let reference: Vec<EventKey> = sleep
            .iter()
            .chain(explored.iter())
            .copied()
            .filter(|&z| independent(z, chan(1, 4)))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        assert_eq!(got, reference);
    }

    /// Sort a violation list the way [`explore_parallel`] does, for
    /// comparing against sequential discovery order.
    fn sorted(mut v: Vec<Violation>) -> Vec<Violation> {
        v.sort_by(|a, b| {
            a.schedule.cmp(&b.schedule).then_with(|| a.description.cmp(&b.description))
        });
        v
    }

    #[test]
    fn parallel_matches_sequential_for_every_worker_count() {
        for prune in [false, true] {
            let seq = explore(&Toy, &cfg(prune));
            for jobs in [1, 2, 4] {
                for split_depth in [0, 2, 16] {
                    let par = ParallelConfig { jobs, split_depth, dedup: false };
                    let rep = explore_parallel(&Toy, &cfg(prune), &par);
                    assert_eq!(
                        rep.stats, seq.stats,
                        "jobs={jobs} split={split_depth} prune={prune}"
                    );
                    assert_eq!(rep.violations, sorted(seq.violations.clone()));
                }
            }
        }
    }

    #[test]
    fn dedup_skips_subtrees_but_keeps_every_violation_description() {
        use std::collections::BTreeSet;
        let base = explore(&Toy, &cfg(true));
        let par = ParallelConfig { jobs: 2, split_depth: 2, dedup: true };
        let rep = explore_parallel(&Toy, &cfg(true), &par);
        assert!(rep.stats.dedup_checks > 0, "toy digests are Some, so nodes must be checked");
        // Every branch a deduped sweep explores, the full sweep explores
        // too (dedup only returns early), so counts can only shrink.
        assert!(rep.stats.schedules <= base.stats.schedules);
        assert!(rep.stats.transitions <= base.stats.transitions);
        let full: BTreeSet<&str> = base.violations.iter().map(|v| v.description.as_str()).collect();
        let deduped: BTreeSet<&str> =
            rep.violations.iter().map(|v| v.description.as_str()).collect();
        assert_eq!(full, deduped, "dedup must preserve the violation-description set");
    }

    #[test]
    fn parallel_shrink_matches_sequential_shrink() {
        let report = explore(&Toy, &cfg(true));
        let v = report.violations.first().expect("toy violates");
        let seq = shrink(&Toy, v);
        for jobs in [1, 2, 4] {
            let par = shrink_parallel(&Toy, v, jobs);
            assert_eq!(par, seq, "jobs={jobs}");
        }
    }

    #[test]
    fn step_cap_cuts_schedules_and_flags_bounded_finish() {
        let config = ExplorerConfig { max_steps: 1, branch_depth: 0, ..Default::default() };
        let report = explore(&Toy, &config);
        assert_eq!(report.stats.schedules, 1, "branch_depth 0 follows one schedule");
        assert_eq!(report.stats.max_depth, 1);
        // finish(bounded=true) in the toy still reports pending events.
        assert_eq!(report.violations.len(), 1);
    }
}
