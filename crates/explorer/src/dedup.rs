//! State-hash deduplication with sleep-set subsumption.
//!
//! Sleep sets already collapse *equivalent* interleavings (reorderings of
//! independent events), so a naive exact-state cache has a near-zero hit
//! rate inside one subtree: the schedules that survive pruning reach
//! distinct states or carry distinct sleep sets. The convergence worth
//! catching is between **inequivalent** traces that happen to rebuild the
//! same system state — and those arrive with *different* sleep sets, so
//! the cache key cannot demand sleep-set equality.
//!
//! This is Godefroid's state caching with sleep sets: at a node with state
//! digest `d`, depth `n`, and sleep set `S`, the subtree explored is
//! exactly the futures whose first move is awake — and that subtree is
//! *antitone* in `S` (a larger sleep set explores a subset: candidates
//! shrink, and by induction every child and sibling sleep set only grows).
//! So if some earlier expansion at `(d, n)` ran with sleep `S' ⊆ S`, every
//! future reachable here is reachable there, and this node can be skipped
//! without losing any violation *description* (the schedules differ — they
//! have different prefixes — but the violating states are the same).
//!
//! Depth is part of the key because the explorer's budgets are
//! depth-indexed: two equal states at different depths have different
//! remaining `max_steps` and different `branch_depth` forking behavior.
//!
//! **Determinism caveat**: which node of an equal-state pair gets expanded
//! depends on arrival order, which under work stealing depends on thread
//! interleaving. Violation-description coverage is arrival-order-invariant
//! (by the subsumption argument above), but transition/schedule counts are
//! not — so [`crate::explore_parallel`] guarantees bit-identical stats
//! across worker counts only with dedup off. See DESIGN.md §14.

use std::collections::HashMap;
use std::sync::Mutex;

use sbft_net::EventKey;

/// Shard count for the seen-set: bounds lock contention without any
/// cross-shard coordination (a digest always maps to the same shard).
const SHARDS: usize = 16;

/// A concurrent seen-set of `(state digest, depth) → expanded sleep sets`.
///
/// Recorded sleep sets are kept as an append-only list per key; an
/// insertion whose sleep set is subsumed by a recorded one reports a hit
/// instead of inserting. Lists stay short in practice (most keys see one
/// or two distinct sleep sets), so a linear subsumption scan beats any
/// index structure here.
type Shard = Mutex<HashMap<(u64, usize), Vec<Box<[EventKey]>>>>;

pub(crate) struct SeenSet {
    shards: Vec<Shard>,
}

impl SeenSet {
    pub(crate) fn new() -> Self {
        SeenSet { shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect() }
    }

    /// Returns `true` when a sleep set previously recorded at
    /// `(digest, depth)` is a subset of `sleep` — the caller's subtree is
    /// covered by that earlier expansion and must be skipped. Otherwise
    /// records `sleep` (claiming the expansion the caller is about to do)
    /// and returns `false`. `sleep` must be sorted and duplicate-free (the
    /// `Branch` invariant).
    pub(crate) fn subsumed_or_insert(&self, digest: u64, depth: usize, sleep: &[EventKey]) -> bool {
        let shard = &self.shards[(digest as usize) % SHARDS];
        let mut map = shard.lock().unwrap();
        let entry = map.entry((digest, depth)).or_default();
        if entry.iter().any(|seen| is_subset(seen, sleep)) {
            return true;
        }
        entry.push(sleep.to_vec().into_boxed_slice());
        false
    }
}

/// `a ⊆ b` for sorted, duplicate-free slices — one merge walk.
fn is_subset(a: &[EventKey], b: &[EventKey]) -> bool {
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if b.get(j) != Some(&x) {
            return false;
        }
        j += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan(from: usize, to: usize) -> EventKey {
        EventKey::Channel { from, to }
    }

    #[test]
    fn subset_on_sorted_slices() {
        let a = [chan(0, 1), chan(1, 2)];
        let b = [chan(0, 1), chan(0, 2), chan(1, 2)];
        assert!(is_subset(&a, &b));
        assert!(!is_subset(&b, &a));
        assert!(is_subset(&[], &a));
        assert!(is_subset(&a, &a));
        assert!(!is_subset(&[chan(5, 5)], &b));
    }

    #[test]
    fn seen_set_subsumption_semantics() {
        let seen = SeenSet::new();
        let s1 = [chan(0, 1)];
        let s2 = [chan(0, 1), chan(0, 2)];
        // First arrival at a key always expands.
        assert!(!seen.subsumed_or_insert(7, 3, &s1));
        // Equal sleep set: subsumed.
        assert!(seen.subsumed_or_insert(7, 3, &s1));
        // Superset sleep set: subsumed (its subtree is smaller).
        assert!(seen.subsumed_or_insert(7, 3, &s2));
        // Subset sleep set: NOT subsumed — it explores more than what was
        // recorded, so it must expand (and is recorded in turn).
        assert!(!seen.subsumed_or_insert(7, 3, &[]));
        assert!(seen.subsumed_or_insert(7, 3, &[]));
        // Different depth or digest: independent keys.
        assert!(!seen.subsumed_or_insert(7, 4, &s1));
        assert!(!seen.subsumed_or_insert(8, 3, &s1));
    }
}
