//! Register-protocol scenarios for the explorer (experiment E16).
//!
//! Each scenario performs a *deterministic* setup phase (driven to
//! completion with the normal pump loop), then leaves one or more
//! operations in flight and hands the simulator to the explorer, which
//! forks on every delivery order of the remaining messages. Invariants
//! checked after every transition:
//!
//! * **Regularity** — [`HistoryRecorder::check`] (validity of every
//!   completed read) re-runs whenever a transition completes an operation;
//! * **label-order sanity** — the write-order half of the same checker:
//!   consecutive completed writes must carry timestamps extending their
//!   real-time order (Lemma 8);
//! * **termination** — at quiescence no operation may remain open
//!   ([`HistoryRecorder::open_ops`]): a drained network with an open op
//!   means that op can never complete.
//!
//! [`HistoryRecorder::check`]: sbft_core::spec::HistoryRecorder::check
//! [`HistoryRecorder::open_ops`]: sbft_core::spec::HistoryRecorder::open_ops
//!
//! All scenarios run with [`DelayModel::unit`]: delay sampling then
//! consumes no randomness, so the schedule alone (not the RNG stream)
//! determines the execution — exactly what key-sequence replay requires.

use sbft_core::adversary::ByzStrategy;
use sbft_core::cluster::{RegisterCluster, SimSubstrate};
use sbft_core::reader::ReaderOptions;
use sbft_labels::{BoundedLabeling, LabelingSystem};
use sbft_net::{DelayModel, EventKey};

use crate::{Scenario, ScenarioRun, StepResult};

type B = BoundedLabeling;

/// Which register scenario to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    /// Honest n=6/f=1 cluster, one write ∥ one read from a settled state.
    ConcurrentWriteRead,
    /// The Theorem 1 adversary (scripted Byzantine server + transiently
    /// corrupted server holding a dominating timestamp) at `n` servers,
    /// with the victim read left to the explorer — at n=5 some delivery
    /// order returns the planted garbage; at n=6 none may.
    Theorem1 { n: usize },
    /// Honest n=6/f=1 cluster, *two* writers racing each other and one
    /// reader — the MWMR label-merge path under exploration.
    MwmrTwoWriters,
    /// Durable n=6/f=1 cluster: a server crashes and reboots from a
    /// suffix-damaged disk ([`DiskFault::LostSuffix`]) while a write and a
    /// read are in flight; the explorer searches the delivery orders
    /// around the rejoining stale server.
    CrashRecover,
}

/// A named, seeded register scenario.
#[derive(Clone, Debug)]
pub struct RegisterScenario {
    kind: Kind,
    name: String,
    seed: u64,
}

impl RegisterScenario {
    /// Honest n=6/f=1 cluster: a settled first write, then one write
    /// concurrent with one read, explored over all delivery orders.
    pub fn concurrent_write_read() -> Self {
        Self { kind: Kind::ConcurrentWriteRead, name: "concurrent-wr-n6".into(), seed: 7 }
    }

    /// The Theorem 1 adversary at `n` servers (`f = 1`), victim read under
    /// exploration. `n = 5` is the paper's impossibility configuration;
    /// `n = 6` the same adversary one server above the bound.
    pub fn theorem1(n: usize) -> Self {
        Self { kind: Kind::Theorem1 { n }, name: format!("theorem1-n{n}"), seed: 7 }
    }

    /// Honest n=6/f=1 cluster with three clients: two writers racing and
    /// one concurrent reader, from a settled state.
    pub fn mwmr_two_writers() -> Self {
        Self { kind: Kind::MwmrTwoWriters, name: "mwmr2-n6".into(), seed: 7 }
    }

    /// Durable n=6/f=1 cluster with a crash-recovery from a damaged disk
    /// fired mid-operation, then handed to the explorer.
    pub fn crash_recover() -> Self {
        Self { kind: Kind::CrashRecover, name: "crash-recover-n6".into(), seed: 7 }
    }

    /// Look a scenario up by its stable name (the `scenario` line of a
    /// trace file / the harness `--scenario` flag).
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "concurrent-wr-n6" => Some(Self::concurrent_write_read()),
            "theorem1-n5" => Some(Self::theorem1(5)),
            "theorem1-n6" => Some(Self::theorem1(6)),
            "mwmr2-n6" => Some(Self::mwmr_two_writers()),
            "crash-recover-n6" => Some(Self::crash_recover()),
            _ => None,
        }
    }

    /// Every scenario the E16 experiment sweeps.
    pub fn all() -> Vec<Self> {
        vec![
            Self::concurrent_write_read(),
            Self::mwmr_two_writers(),
            Self::crash_recover(),
            Self::theorem1(6),
            Self::theorem1(5),
        ]
    }
}

impl Scenario for RegisterScenario {
    type Run = RegisterRun;

    fn name(&self) -> &str {
        &self.name
    }

    fn start(&self) -> RegisterRun {
        match self.kind {
            Kind::ConcurrentWriteRead => concurrent_write_read(self.seed),
            Kind::Theorem1 { n } => theorem1(n, self.seed),
            Kind::MwmrTwoWriters => mwmr_two_writers(self.seed),
            Kind::CrashRecover => crash_recover(self.seed),
        }
    }
}

/// A running register scenario: a sim-backed cluster whose recorder grows
/// as the explorer completes operations.
pub struct RegisterRun {
    cluster: RegisterCluster<B, SimSubstrate<B>>,
}

impl ScenarioRun for RegisterRun {
    fn enabled(&self) -> Vec<EventKey> {
        self.cluster.sim.enabled_events()
    }

    fn step(&mut self, key: EventKey) -> StepResult {
        let Some(ev) = self.cluster.sim.step_key(key) else {
            return StepResult::Infeasible;
        };
        let mut completed = false;
        for out in &ev.outputs {
            if self.cluster.observe_event(ev.time, ev.pid, out).is_some() {
                completed = true;
            }
        }
        // The history only grows when an operation completes, so that is
        // the only moment the regularity verdict can flip.
        if completed {
            if let Err(errors) = self.cluster.check_history() {
                return StepResult::Violation(format!("{:?}", errors[0]));
            }
        }
        StepResult::Ok
    }

    fn finish(&mut self, bounded: bool) -> Option<String> {
        if bounded {
            // The step budget cut the schedule: open ops are expected.
            return None;
        }
        let open = self.cluster.recorder.open_ops();
        (open > 0)
            .then(|| format!("termination: {open} operation(s) still open at network quiescence"))
    }

    fn state_digest(&self) -> Option<u64> {
        // Everything the future depends on: the simulator world (automata
        // states, in-flight messages in FIFO order, live timers, crash
        // flags — `None` for anything with hidden randomness) plus the
        // recorder's view of the history, abstracted to what the
        // whole-window regularity checker can distinguish.
        let sim = self.cluster.sim.state_digest()?;
        let mut h = sbft_storage::Fnv64::new();
        h.u64(sim).sep().u64(self.cluster.recorder.explore_digest());
        Some(h.finish())
    }
}

/// Honest-cluster setup: settle `write(1)`, then leave `write(7) ∥ read`
/// in flight for the explorer.
fn concurrent_write_read(seed: u64) -> RegisterRun {
    let mut c = RegisterCluster::bounded_with_n(6, 1)
        .clients(2)
        .seed(seed)
        .delay(DelayModel::unit())
        .build();
    let w = c.client(0);
    let r = c.client(1);
    c.write(w, 1).expect("setup write terminates");
    c.settle(100_000);
    c.invoke_write(w, 7);
    c.invoke_read(r);
    RegisterRun { cluster: c }
}

/// The E1 adversary with the victim read left in flight: scripted
/// Byzantine at `n-1`, server `n-2` slow through two writes then
/// transiently corrupted to hold value 999 under a timestamp dominating
/// both, and the Byzantine server scripted to echo the same pair. The E1
/// script then hand-pauses one up-to-date server during the read; here the
/// explorer instead searches the delivery orders for one where the read
/// quorum assembles around the corrupted pair.
fn theorem1(n: usize, seed: u64) -> RegisterRun {
    let byz_idx = n - 1;
    let corrupt_idx = n - 2;
    let mut c = RegisterCluster::bounded_with_n(n, 1)
        .scripted(byz_idx)
        .clients(2)
        .reader_options(ReaderOptions { forced_return: true, ..Default::default() })
        .seed(seed)
        .delay(DelayModel::unit())
        .build();
    let genesis = c.sys.genesis();
    c.scripted_server(byz_idx).expect("scripted").ts_reply = Some(genesis);

    let w = c.client(0);
    let r = c.client(1);

    // The to-be-corrupted server sleeps through both writes, keeping its
    // pre-write state (the proof's s4).
    c.sim.pause_process_channels(corrupt_idx);
    c.write(w, 1).expect("w0 terminates without the slow server");
    let ts1 = c.write(w, 2).expect("w1 terminates");
    c.sim.resume_process_channels(corrupt_idx);
    c.settle(100_000);

    // Adversarial foresight: plant a timestamp dominating ts1 with a
    // garbage value, and script the Byzantine server to corroborate it.
    let ts2 = c.sys.next_for(u32::MAX, std::slice::from_ref(&ts1));
    {
        let srv = c.server_state(corrupt_idx).expect("honest server");
        srv.value = 999;
        srv.ts = ts2.clone();
        srv.old_vals.clear();
    }
    c.scripted_server(byz_idx).expect("scripted").read_reply = Some((999, ts2));

    // The victim read goes to the explorer with every channel open.
    c.invoke_read(r);
    RegisterRun { cluster: c }
}

/// MWMR setup: settle `write(1)` from the first writer, then leave
/// `write(7) ∥ write(8) ∥ read` — two distinct writers and a reader — in
/// flight. Exploration covers every interleaving of the two write
/// quorums, exercising the label-merge (dominating-timestamp) path that
/// single-writer scenarios never reach.
fn mwmr_two_writers(seed: u64) -> RegisterRun {
    let mut c = RegisterCluster::bounded_with_n(6, 1)
        .clients(3)
        .seed(seed)
        .delay(DelayModel::unit())
        .build();
    let w1 = c.client(0);
    let w2 = c.client(1);
    let r = c.client(2);
    c.write(w1, 1).expect("setup write terminates");
    c.settle(100_000);
    c.invoke_write(w1, 7);
    c.invoke_write(w2, 8);
    c.invoke_read(r);
    RegisterRun { cluster: c }
}

/// Crash-recovery setup: a durable cluster settles two writes, invokes
/// `write(7) ∥ read`, and *then* server 0 crashes and reboots from its
/// own disk with the log suffix torn off ([`DiskFault::LostSuffix`]) —
/// rejoining with stale state while both operations' messages are still
/// in flight. The explorer searches the delivery orders around the
/// recovering server; regularity must hold in every one (recovery is a
/// cure, not a fault, per the paper's crash-recovery extension).
fn crash_recover(seed: u64) -> RegisterRun {
    use sbft_net::nemesis::{NemesisEvent, NemesisSchedule};
    use sbft_storage::DiskFault;

    let mut c = RegisterCluster::bounded_with_n(6, 1)
        .clients(2)
        .durable()
        .seed(seed)
        .delay(DelayModel::unit())
        .build();
    let w = c.client(0);
    let r = c.client(1);
    c.write(w, 1).expect("setup write terminates");
    c.write(w, 2).expect("setup write terminates");
    c.settle(100_000);

    c.invoke_write(w, 7);
    c.invoke_read(r);
    let sched = NemesisSchedule::scripted(vec![
        (0, NemesisEvent::Crash(0)),
        (0, NemesisEvent::CrashRecover { pid: 0, fault: DiskFault::LostSuffix }),
    ]);
    let mut runner = c.nemesis_runner(sched, Vec::new(), ByzStrategy::Silent);
    assert!(runner.fire_next(&mut c.sim), "crash fires");
    assert!(runner.fire_next(&mut c.sim), "recovery fires");
    RegisterRun { cluster: c }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        explore, explore_parallel, replay, shrink, shrink_parallel, ExplorerConfig, ParallelConfig,
        ReplayOutcome,
    };

    #[test]
    fn scenario_lookup_by_name() {
        for s in RegisterScenario::all() {
            let found = RegisterScenario::by_name(s.name()).expect("all scenarios resolvable");
            assert_eq!(found.name(), s.name());
        }
        assert!(RegisterScenario::by_name("nope").is_none());
    }

    #[test]
    fn runs_start_identically() {
        let s = RegisterScenario::concurrent_write_read();
        let (a, b) = (s.start(), s.start());
        assert_eq!(a.enabled(), b.enabled());
        assert!(!a.enabled().is_empty(), "setup leaves ops in flight");
    }

    #[test]
    fn default_schedule_of_concurrent_wr_is_clean() {
        let s = RegisterScenario::concurrent_write_read();
        let mut run = s.start();
        let mut steps = 0;
        while let Some(&key) = run.enabled().first() {
            match run.step(key) {
                StepResult::Ok => steps += 1,
                other => panic!("default schedule must be clean, got {other:?} at {steps}"),
            }
            assert!(steps < 10_000, "runaway schedule");
        }
        assert_eq!(run.finish(false), None, "both ops must have completed");
    }

    #[test]
    fn theorem1_n5_has_a_violating_schedule_and_it_shrinks() {
        let s = RegisterScenario::theorem1(5);
        let config =
            ExplorerConfig { branch_depth: 12, stop_on_violation: true, ..Default::default() };
        let report = explore(&s, &config);
        let v = report.violations.first().expect("Theorem 1 counterexample must be rediscovered");
        assert!(v.description.contains("UnknownValue"), "{}", v.description);
        let min = shrink(&s, v);
        assert!(min.schedule.len() <= v.schedule.len());
        match replay(&s, &min.schedule) {
            ReplayOutcome::Violation { at, description } => {
                assert_eq!(at, min.schedule.len() - 1);
                assert_eq!(description, min.description);
            }
            other => panic!("shrunk schedule must still violate, got {other:?}"),
        }
    }

    /// Satellite 5: same config + bound ⇒ identical schedule count and
    /// violation set across independent explorations, and each recorded
    /// violation replays to the same verdict (the `--replay` path).
    #[test]
    fn exploration_is_deterministic_across_runs_and_replay() {
        let clean = RegisterScenario::concurrent_write_read();
        let config = ExplorerConfig { branch_depth: 3, max_schedules: 300, ..Default::default() };
        let a = explore(&clean, &config);
        let b = explore(&clean, &config);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.violations, b.violations);

        let dirty = RegisterScenario::theorem1(5);
        let config = ExplorerConfig {
            branch_depth: 10,
            max_schedules: 2_000,
            stop_on_violation: true,
            ..Default::default()
        };
        let a = explore(&dirty, &config);
        let b = explore(&dirty, &config);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.violations, b.violations);
        for v in &a.violations {
            match replay(&dirty, &v.schedule) {
                ReplayOutcome::Violation { at, description } => {
                    assert_eq!(at, v.schedule.len() - 1);
                    assert_eq!(description, v.description);
                }
                other => panic!("recorded violation must replay, got {other:?}"),
            }
        }
    }

    /// Focused throughput measurement for the sleep-set hot path (run with
    /// `cargo test --release -p sbft-explorer -- --ignored --nocapture`).
    /// Deep fork bound ⇒ large sleep sets ⇒ the candidate filter and
    /// sibling-sleep construction dominate; prints transitions/sec.
    #[test]
    #[ignore = "timing measurement, not a correctness check"]
    fn sleep_hot_path_throughput() {
        let s = RegisterScenario::concurrent_write_read();
        let config =
            ExplorerConfig { branch_depth: 9, max_schedules: 1_000_000, ..Default::default() };
        let t0 = std::time::Instant::now();
        let report = explore(&s, &config);
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "prune-on depth-9: {} schedules, {} pruned, {} transitions in {:.2}s = {:.0} transitions/sec",
            report.stats.schedules,
            report.stats.pruned,
            report.stats.transitions,
            dt,
            report.stats.transitions as f64 / dt,
        );
        assert!(report.violations.is_empty(), "concurrent-wr-n6 is clean");
    }

    #[test]
    fn theorem1_n6_default_schedule_is_clean() {
        let s = RegisterScenario::theorem1(6);
        let mut run = s.start();
        let mut steps = 0;
        while let Some(&key) = run.enabled().first() {
            match run.step(key) {
                StepResult::Ok => steps += 1,
                other => panic!("n=6 must absorb the adversary, got {other:?}"),
            }
            assert!(steps < 10_000, "runaway schedule");
        }
        assert_eq!(run.finish(false), None);
    }

    /// The new scenarios complete their default schedules cleanly and —
    /// being honest, unit-delay, single-attempt setups — expose a state
    /// digest at every node, so dedup actually engages on them.
    #[test]
    fn mwmr_and_crash_recover_default_schedules_are_clean_and_digestible() {
        for s in [RegisterScenario::mwmr_two_writers(), RegisterScenario::crash_recover()] {
            let mut run = s.start();
            assert!(!run.enabled().is_empty(), "{}: setup leaves ops in flight", s.name());
            assert!(run.state_digest().is_some(), "{}: initial state must digest", s.name());
            let mut steps = 0;
            while let Some(&key) = run.enabled().first() {
                match run.step(key) {
                    StepResult::Ok => steps += 1,
                    other => panic!("{}: default schedule must be clean, got {other:?}", s.name()),
                }
                assert!(run.state_digest().is_some(), "{}: digest at step {steps}", s.name());
                assert!(steps < 10_000, "runaway schedule");
            }
            assert_eq!(run.finish(false), None, "{}: all ops must complete", s.name());
        }
    }

    /// The crash-recovery setup must actually perturb state: server 0's
    /// first syncs happen every [`sbft_core::server::SYNC_EVERY`] applied
    /// writes, so both settled writes sit in the unflushed tail that
    /// [`sbft_storage::DiskFault::LostSuffix`] eats — the server rejoins
    /// behind its peers, not as a clone of them.
    #[test]
    fn crash_recover_server_rejoins_stale() {
        let s = RegisterScenario::crash_recover();
        let mut run = s.start();
        let (v0, applied0) = {
            let srv = run.cluster.server_state(0).expect("recovered server is honest");
            (srv.value, srv.writes_applied)
        };
        let srv1 = run.cluster.server_state(1).expect("honest peer");
        assert!(
            applied0 < srv1.writes_applied,
            "server 0 must rejoin stale: {applied0} vs {} applied writes",
            srv1.writes_applied
        );
        assert_ne!(v0, srv1.value, "stale server must hold an older value");
    }

    /// Tentpole determinism: with dedup off, the parallel explorer returns
    /// bit-identical stats and violations for jobs 1, 2, and 4 — and they
    /// match the sequential sweep (violations modulo the parallel sort) —
    /// on both a clean scenario and the violating one.
    #[test]
    fn parallel_exploration_is_deterministic_across_worker_counts() {
        let clean = RegisterScenario::concurrent_write_read();
        let config = ExplorerConfig { branch_depth: 3, max_schedules: 300, ..Default::default() };
        let seq = explore(&clean, &config);
        for jobs in [1, 2, 4] {
            let par = ParallelConfig { jobs, split_depth: 2, dedup: false };
            let a = explore_parallel(&clean, &config, &par);
            let b = explore_parallel(&clean, &config, &par);
            assert_eq!(a.stats, seq.stats, "jobs={jobs} vs sequential");
            assert_eq!(a.stats, b.stats, "jobs={jobs} repeated run");
            assert_eq!(a.violations, b.violations, "jobs={jobs} repeated run");
            assert!(a.violations.is_empty());
        }
    }

    /// Tentpole end-to-end: the n=5 Theorem 1 counterexample is
    /// rediscovered by the parallel explorer (with and without dedup),
    /// shrinks in parallel to the sequential minimum, and replays.
    #[test]
    fn theorem1_n5_counterexample_survives_parallel_and_dedup() {
        let s = RegisterScenario::theorem1(5);
        let config =
            ExplorerConfig { branch_depth: 12, stop_on_violation: true, ..Default::default() };
        for dedup in [false, true] {
            let par = ParallelConfig { jobs: 2, split_depth: 2, dedup };
            let report = explore_parallel(&s, &config, &par);
            let v = report.violations.first().expect("counterexample rediscovered");
            assert!(v.description.contains("UnknownValue"), "{}", v.description);
            let min = shrink_parallel(&s, v, 2);
            assert!(min.schedule.len() <= v.schedule.len());
            match replay(&s, &min.schedule) {
                ReplayOutcome::Violation { at, description } => {
                    assert_eq!(at, min.schedule.len() - 1);
                    assert_eq!(description, min.description);
                }
                other => panic!("shrunk schedule must still violate, got {other:?}"),
            }
        }
    }

    /// Dedup soundness on the real counterexample scenario: every
    /// violation description an un-deduped sweep finds, a deduped sweep of
    /// the same bounds also finds. (Schedules may differ — dedup reroutes
    /// coverage through equal-state representatives — but no failure mode
    /// may vanish.)
    #[test]
    fn dedup_preserves_violation_descriptions_on_theorem1_n5() {
        use std::collections::BTreeSet;
        let s = RegisterScenario::theorem1(5);
        let config = ExplorerConfig {
            branch_depth: 10,
            max_schedules: 2_000,
            stop_on_violation: false,
            ..Default::default()
        };
        let base = ParallelConfig { jobs: 2, split_depth: 2, dedup: false };
        let full = explore_parallel(&s, &config, &base);
        let deduped =
            explore_parallel(&s, &config, &ParallelConfig { dedup: true, ..base.clone() });
        // The coverage argument needs complete sweeps: a capped sweep
        // explores a traversal-order-dependent subset.
        assert!(!full.stats.hit_schedule_cap, "bounds must fit the cap: {:?}", full.stats);
        assert!(deduped.stats.dedup_checks > 0, "digests must be available");
        let full_set: BTreeSet<&str> =
            full.violations.iter().map(|v| v.description.as_str()).collect();
        let deduped_set: BTreeSet<&str> =
            deduped.violations.iter().map(|v| v.description.as_str()).collect();
        assert_eq!(full_set, deduped_set, "dedup must not lose any violation description");
    }
}
