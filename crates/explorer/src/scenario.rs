//! Register-protocol scenarios for the explorer (experiment E16).
//!
//! Each scenario performs a *deterministic* setup phase (driven to
//! completion with the normal pump loop), then leaves one or more
//! operations in flight and hands the simulator to the explorer, which
//! forks on every delivery order of the remaining messages. Invariants
//! checked after every transition:
//!
//! * **Regularity** — [`HistoryRecorder::check`] (validity of every
//!   completed read) re-runs whenever a transition completes an operation;
//! * **label-order sanity** — the write-order half of the same checker:
//!   consecutive completed writes must carry timestamps extending their
//!   real-time order (Lemma 8);
//! * **termination** — at quiescence no operation may remain open
//!   ([`HistoryRecorder::open_ops`]): a drained network with an open op
//!   means that op can never complete.
//!
//! [`HistoryRecorder::check`]: sbft_core::spec::HistoryRecorder::check
//! [`HistoryRecorder::open_ops`]: sbft_core::spec::HistoryRecorder::open_ops
//!
//! All scenarios run with [`DelayModel::unit`]: delay sampling then
//! consumes no randomness, so the schedule alone (not the RNG stream)
//! determines the execution — exactly what key-sequence replay requires.

use sbft_core::cluster::{RegisterCluster, SimSubstrate};
use sbft_core::reader::ReaderOptions;
use sbft_labels::{BoundedLabeling, LabelingSystem};
use sbft_net::{DelayModel, EventKey};

use crate::{Scenario, ScenarioRun, StepResult};

type B = BoundedLabeling;

/// Which register scenario to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    /// Honest n=6/f=1 cluster, one write ∥ one read from a settled state.
    ConcurrentWriteRead,
    /// The Theorem 1 adversary (scripted Byzantine server + transiently
    /// corrupted server holding a dominating timestamp) at `n` servers,
    /// with the victim read left to the explorer — at n=5 some delivery
    /// order returns the planted garbage; at n=6 none may.
    Theorem1 { n: usize },
}

/// A named, seeded register scenario.
#[derive(Clone, Debug)]
pub struct RegisterScenario {
    kind: Kind,
    name: String,
    seed: u64,
}

impl RegisterScenario {
    /// Honest n=6/f=1 cluster: a settled first write, then one write
    /// concurrent with one read, explored over all delivery orders.
    pub fn concurrent_write_read() -> Self {
        Self { kind: Kind::ConcurrentWriteRead, name: "concurrent-wr-n6".into(), seed: 7 }
    }

    /// The Theorem 1 adversary at `n` servers (`f = 1`), victim read under
    /// exploration. `n = 5` is the paper's impossibility configuration;
    /// `n = 6` the same adversary one server above the bound.
    pub fn theorem1(n: usize) -> Self {
        Self { kind: Kind::Theorem1 { n }, name: format!("theorem1-n{n}"), seed: 7 }
    }

    /// Look a scenario up by its stable name (the `scenario` line of a
    /// trace file / the harness `--scenario` flag).
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "concurrent-wr-n6" => Some(Self::concurrent_write_read()),
            "theorem1-n5" => Some(Self::theorem1(5)),
            "theorem1-n6" => Some(Self::theorem1(6)),
            _ => None,
        }
    }

    /// Every scenario the E16 experiment sweeps.
    pub fn all() -> Vec<Self> {
        vec![Self::concurrent_write_read(), Self::theorem1(6), Self::theorem1(5)]
    }
}

impl Scenario for RegisterScenario {
    type Run = RegisterRun;

    fn name(&self) -> &str {
        &self.name
    }

    fn start(&self) -> RegisterRun {
        match self.kind {
            Kind::ConcurrentWriteRead => concurrent_write_read(self.seed),
            Kind::Theorem1 { n } => theorem1(n, self.seed),
        }
    }
}

/// A running register scenario: a sim-backed cluster whose recorder grows
/// as the explorer completes operations.
pub struct RegisterRun {
    cluster: RegisterCluster<B, SimSubstrate<B>>,
}

impl ScenarioRun for RegisterRun {
    fn enabled(&self) -> Vec<EventKey> {
        self.cluster.sim.enabled_events()
    }

    fn step(&mut self, key: EventKey) -> StepResult {
        let Some(ev) = self.cluster.sim.step_key(key) else {
            return StepResult::Infeasible;
        };
        let mut completed = false;
        for out in &ev.outputs {
            if self.cluster.observe_event(ev.time, ev.pid, out).is_some() {
                completed = true;
            }
        }
        // The history only grows when an operation completes, so that is
        // the only moment the regularity verdict can flip.
        if completed {
            if let Err(errors) = self.cluster.check_history() {
                return StepResult::Violation(format!("{:?}", errors[0]));
            }
        }
        StepResult::Ok
    }

    fn finish(&mut self, bounded: bool) -> Option<String> {
        if bounded {
            // The step budget cut the schedule: open ops are expected.
            return None;
        }
        let open = self.cluster.recorder.open_ops();
        (open > 0)
            .then(|| format!("termination: {open} operation(s) still open at network quiescence"))
    }
}

/// Honest-cluster setup: settle `write(1)`, then leave `write(7) ∥ read`
/// in flight for the explorer.
fn concurrent_write_read(seed: u64) -> RegisterRun {
    let mut c = RegisterCluster::bounded_with_n(6, 1)
        .clients(2)
        .seed(seed)
        .delay(DelayModel::unit())
        .build();
    let w = c.client(0);
    let r = c.client(1);
    c.write(w, 1).expect("setup write terminates");
    c.settle(100_000);
    c.invoke_write(w, 7);
    c.invoke_read(r);
    RegisterRun { cluster: c }
}

/// The E1 adversary with the victim read left in flight: scripted
/// Byzantine at `n-1`, server `n-2` slow through two writes then
/// transiently corrupted to hold value 999 under a timestamp dominating
/// both, and the Byzantine server scripted to echo the same pair. The E1
/// script then hand-pauses one up-to-date server during the read; here the
/// explorer instead searches the delivery orders for one where the read
/// quorum assembles around the corrupted pair.
fn theorem1(n: usize, seed: u64) -> RegisterRun {
    let byz_idx = n - 1;
    let corrupt_idx = n - 2;
    let mut c = RegisterCluster::bounded_with_n(n, 1)
        .scripted(byz_idx)
        .clients(2)
        .reader_options(ReaderOptions { forced_return: true, ..Default::default() })
        .seed(seed)
        .delay(DelayModel::unit())
        .build();
    let genesis = c.sys.genesis();
    c.scripted_server(byz_idx).expect("scripted").ts_reply = Some(genesis);

    let w = c.client(0);
    let r = c.client(1);

    // The to-be-corrupted server sleeps through both writes, keeping its
    // pre-write state (the proof's s4).
    c.sim.pause_process_channels(corrupt_idx);
    c.write(w, 1).expect("w0 terminates without the slow server");
    let ts1 = c.write(w, 2).expect("w1 terminates");
    c.sim.resume_process_channels(corrupt_idx);
    c.settle(100_000);

    // Adversarial foresight: plant a timestamp dominating ts1 with a
    // garbage value, and script the Byzantine server to corroborate it.
    let ts2 = c.sys.next_for(u32::MAX, std::slice::from_ref(&ts1));
    {
        let srv = c.server_state(corrupt_idx).expect("honest server");
        srv.value = 999;
        srv.ts = ts2.clone();
        srv.old_vals.clear();
    }
    c.scripted_server(byz_idx).expect("scripted").read_reply = Some((999, ts2));

    // The victim read goes to the explorer with every channel open.
    c.invoke_read(r);
    RegisterRun { cluster: c }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore, replay, shrink, ExplorerConfig, ReplayOutcome};

    #[test]
    fn scenario_lookup_by_name() {
        for s in RegisterScenario::all() {
            let found = RegisterScenario::by_name(s.name()).expect("all scenarios resolvable");
            assert_eq!(found.name(), s.name());
        }
        assert!(RegisterScenario::by_name("nope").is_none());
    }

    #[test]
    fn runs_start_identically() {
        let s = RegisterScenario::concurrent_write_read();
        let (a, b) = (s.start(), s.start());
        assert_eq!(a.enabled(), b.enabled());
        assert!(!a.enabled().is_empty(), "setup leaves ops in flight");
    }

    #[test]
    fn default_schedule_of_concurrent_wr_is_clean() {
        let s = RegisterScenario::concurrent_write_read();
        let mut run = s.start();
        let mut steps = 0;
        while let Some(&key) = run.enabled().first() {
            match run.step(key) {
                StepResult::Ok => steps += 1,
                other => panic!("default schedule must be clean, got {other:?} at {steps}"),
            }
            assert!(steps < 10_000, "runaway schedule");
        }
        assert_eq!(run.finish(false), None, "both ops must have completed");
    }

    #[test]
    fn theorem1_n5_has_a_violating_schedule_and_it_shrinks() {
        let s = RegisterScenario::theorem1(5);
        let config =
            ExplorerConfig { branch_depth: 12, stop_on_violation: true, ..Default::default() };
        let report = explore(&s, &config);
        let v = report.violations.first().expect("Theorem 1 counterexample must be rediscovered");
        assert!(v.description.contains("UnknownValue"), "{}", v.description);
        let min = shrink(&s, v);
        assert!(min.schedule.len() <= v.schedule.len());
        match replay(&s, &min.schedule) {
            ReplayOutcome::Violation { at, description } => {
                assert_eq!(at, min.schedule.len() - 1);
                assert_eq!(description, min.description);
            }
            other => panic!("shrunk schedule must still violate, got {other:?}"),
        }
    }

    /// Satellite 5: same config + bound ⇒ identical schedule count and
    /// violation set across independent explorations, and each recorded
    /// violation replays to the same verdict (the `--replay` path).
    #[test]
    fn exploration_is_deterministic_across_runs_and_replay() {
        let clean = RegisterScenario::concurrent_write_read();
        let config = ExplorerConfig { branch_depth: 3, max_schedules: 300, ..Default::default() };
        let a = explore(&clean, &config);
        let b = explore(&clean, &config);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.violations, b.violations);

        let dirty = RegisterScenario::theorem1(5);
        let config = ExplorerConfig {
            branch_depth: 10,
            max_schedules: 2_000,
            stop_on_violation: true,
            ..Default::default()
        };
        let a = explore(&dirty, &config);
        let b = explore(&dirty, &config);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.violations, b.violations);
        for v in &a.violations {
            match replay(&dirty, &v.schedule) {
                ReplayOutcome::Violation { at, description } => {
                    assert_eq!(at, v.schedule.len() - 1);
                    assert_eq!(description, v.description);
                }
                other => panic!("recorded violation must replay, got {other:?}"),
            }
        }
    }

    #[test]
    fn theorem1_n6_default_schedule_is_clean() {
        let s = RegisterScenario::theorem1(6);
        let mut run = s.start();
        let mut steps = 0;
        while let Some(&key) = run.enabled().first() {
            match run.step(key) {
                StepResult::Ok => steps += 1,
                other => panic!("n=6 must absorb the adversary, got {other:?}"),
            }
            assert!(steps < 10_000, "runaway schedule");
        }
        assert_eq!(run.finish(false), None);
    }
}
