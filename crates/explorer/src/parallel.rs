//! Work-stealing parallel schedule exploration.
//!
//! The sequential explorer's unit of work — a `Branch` — is already
//! self-contained: replay by [`EventKey`] is exact, so any worker can pick
//! a branch up, replay its prefix on a fresh [`Scenario::start`], and own
//! the subtree. This module exploits that: `jobs` OS threads share a
//! global injector queue (`crossbeam::deque`); each keeps a private LIFO
//! stack for depth-first locality and exports shallow siblings — forked at
//! schedule depth below [`ParallelConfig::split_depth`] — to the injector,
//! where idle workers steal them. Shallow forks root the largest subtrees,
//! so exporting only those keeps stealing coarse-grained (a steal costs a
//! prefix replay) while still spreading work.
//!
//! ## Determinism
//!
//! With pruning, the schedule tree is a *fixed object*: every node's
//! candidate list and sleep set depend only on its path, never on
//! traversal order. Any work partition therefore covers exactly the same
//! schedules, so with dedup off — and when neither the schedule cap nor
//! `stop_on_violation` cuts the sweep short — [`explore_parallel`] returns
//! bit-identical [`ExploreStats`] and violations for every worker count,
//! with violations sorted by `(schedule, description)` to erase completion
//! order. State-hash dedup trades this away: which of two equal-state
//! nodes is expanded depends on arrival order, so stats become
//! timing-dependent while the *violation-description set* stays invariant
//! (see `crate::dedup` and DESIGN.md §14).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crossbeam::deque::{Injector, Steal};
use sbft_net::EventKey;

use crate::dedup::SeenSet;
use crate::{
    awake_candidates, independent, replay, sibling_sleep, Branch, ExploreReport, ExploreStats,
    ExplorerConfig, ReplayOutcome, Scenario, ScenarioRun, StepResult, Violation,
};

/// Parallel exploration knobs, layered over an [`ExplorerConfig`].
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// Worker threads. `0` is treated as `1`.
    pub jobs: usize,
    /// Siblings forked at schedule depth `< split_depth` go to the shared
    /// injector (stealable); deeper forks stay on the forking worker's
    /// local stack. Shallow forks root big subtrees, so small values keep
    /// steals coarse; `split_depth >= branch_depth` exports everything.
    pub split_depth: usize,
    /// Enable state-hash dedup (`crate::dedup`): skip a node when an
    /// equal-state node at the same depth was already expanded under a
    /// subset sleep set. Preserves the violation-description set; makes
    /// stats timing-dependent under `jobs > 1`.
    pub dedup: bool,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self { jobs: 1, split_depth: 3, dedup: false }
    }
}

/// State shared by all workers of one [`explore_parallel`] call.
struct Shared<'a> {
    injector: Injector<Branch>,
    /// Branches handed to the injector whose subtrees are not yet fully
    /// explored. A worker that steals one owns it — including every
    /// descendant it keeps on its local stack — and decrements only when
    /// its local stack drains. Termination: injector empty and
    /// `outstanding == 0`.
    outstanding: AtomicUsize,
    /// Global completed-schedule count, checked against `max_schedules`
    /// at each branch start (like the sequential explorer; under races
    /// the cap may be overshot by at most `jobs - 1` schedules).
    schedules: AtomicU64,
    /// Set when the schedule cap was hit.
    capped: AtomicBool,
    /// Set to abandon the remaining tree (cap hit or stop-on-violation).
    stop: AtomicBool,
    /// The dedup seen-set, present iff [`ParallelConfig::dedup`].
    seen: Option<SeenSet>,
    config: &'a ExplorerConfig,
    split_depth: usize,
}

/// Explore `scenario`'s schedule tree with `par.jobs` work-stealing
/// workers. Semantics match [`crate::explore`] (same tree, same bounds);
/// merged stats are sums (`max_depth`: max) over workers and violations
/// are sorted by `(schedule, description)` so the report is independent
/// of completion order.
pub fn explore_parallel<S: Scenario + Sync>(
    scenario: &S,
    config: &ExplorerConfig,
    par: &ParallelConfig,
) -> ExploreReport {
    let jobs = par.jobs.max(1);
    let shared = Shared {
        injector: Injector::new(),
        outstanding: AtomicUsize::new(1),
        schedules: AtomicU64::new(0),
        capped: AtomicBool::new(false),
        stop: AtomicBool::new(false),
        seen: par.dedup.then(SeenSet::new),
        config,
        split_depth: par.split_depth,
    };
    shared.injector.push(Branch { prefix: Vec::new(), sleep: Vec::new() });

    let results: Vec<(ExploreStats, Vec<Violation>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs).map(|_| s.spawn(|| worker(scenario, &shared))).collect();
        handles.into_iter().map(|h| h.join().expect("explorer worker panicked")).collect()
    });

    let mut stats = ExploreStats::default();
    let mut violations: Vec<Violation> = Vec::new();
    for (ws, wv) in results {
        stats.schedules += ws.schedules;
        stats.pruned += ws.pruned;
        stats.transitions += ws.transitions;
        stats.max_depth = stats.max_depth.max(ws.max_depth);
        stats.deduped += ws.deduped;
        stats.dedup_checks += ws.dedup_checks;
        violations.extend(wv);
    }
    stats.hit_schedule_cap = shared.capped.load(Ordering::Relaxed);
    violations.sort_by(|a, b| {
        a.schedule.cmp(&b.schedule).then_with(|| a.description.cmp(&b.description))
    });
    ExploreReport { stats, violations }
}

/// One worker: drain the local stack depth-first, steal from the injector
/// when it runs dry, exit when the whole pool is out of work.
fn worker<S: Scenario>(scenario: &S, sh: &Shared<'_>) -> (ExploreStats, Vec<Violation>) {
    let mut stats = ExploreStats::default();
    let mut violations: Vec<Violation> = Vec::new();
    let mut local: Vec<Branch> = Vec::new();
    // Whether this worker currently owns an injector unit: a stolen branch
    // whose descendants (the local stack) are still being explored.
    let mut owns_unit = false;
    loop {
        if sh.stop.load(Ordering::Relaxed) {
            break;
        }
        let branch = match local.pop() {
            Some(b) => b,
            None => {
                if owns_unit {
                    owns_unit = false;
                    sh.outstanding.fetch_sub(1, Ordering::AcqRel);
                }
                match sh.injector.steal() {
                    Steal::Success(b) => {
                        owns_unit = true;
                        b
                    }
                    Steal::Retry => continue,
                    Steal::Empty => {
                        if sh.outstanding.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        std::thread::yield_now();
                        continue;
                    }
                }
            }
        };
        if sh.schedules.load(Ordering::Relaxed) >= sh.config.max_schedules {
            stats.hit_schedule_cap = true;
            sh.capped.store(true, Ordering::Relaxed);
            sh.stop.store(true, Ordering::Relaxed);
            break;
        }
        explore_branch(scenario, sh, branch, &mut local, &mut stats, &mut violations);
    }
    if owns_unit {
        sh.outstanding.fetch_sub(1, Ordering::AcqRel);
    }
    (stats, violations)
}

/// Replay one branch's prefix and extend it to a complete schedule,
/// forking siblings to the local stack or the injector. The body mirrors
/// [`crate::explore`]'s loop; a completed schedule also bumps the global
/// counter so the `max_schedules` cap is pool-wide.
fn explore_branch<S: Scenario>(
    scenario: &S,
    sh: &Shared<'_>,
    branch: Branch,
    local: &mut Vec<Branch>,
    stats: &mut ExploreStats,
    violations: &mut Vec<Violation>,
) {
    let config = sh.config;
    let mut run = scenario.start();
    let mut schedule: Vec<EventKey> = Vec::with_capacity(branch.prefix.len() + 16);

    let complete = |stats: &mut ExploreStats, len: usize| {
        stats.schedules += 1;
        stats.max_depth = stats.max_depth.max(len);
        sh.schedules.fetch_add(1, Ordering::Relaxed);
    };

    for &key in &branch.prefix {
        stats.transitions += 1;
        match run.step(key) {
            StepResult::Ok => schedule.push(key),
            StepResult::Violation(description) => {
                schedule.push(key);
                complete(stats, schedule.len());
                violations.push(Violation { schedule, description });
                if config.stop_on_violation {
                    sh.stop.store(true, Ordering::Relaxed);
                }
                return;
            }
            StepResult::Infeasible => {
                panic!(
                    "explorer replay diverged at step {} of {:?} — scenario::start is not deterministic",
                    schedule.len(),
                    branch.prefix
                );
            }
        }
    }

    let mut sleep = branch.sleep;
    loop {
        // State-hash dedup, fork region only: deeper nodes are on a
        // forced linear tail whose outcome dedup could only hide.
        if schedule.len() <= config.branch_depth {
            if let Some(seen) = &sh.seen {
                if let Some(digest) = run.state_digest() {
                    stats.dedup_checks += 1;
                    if seen.subsumed_or_insert(digest, schedule.len(), &sleep) {
                        stats.deduped += 1;
                        return;
                    }
                }
            }
        }
        let enabled = run.enabled();
        if enabled.is_empty() {
            complete(stats, schedule.len());
            if let Some(description) = run.finish(false) {
                violations.push(Violation { schedule, description });
                if config.stop_on_violation {
                    sh.stop.store(true, Ordering::Relaxed);
                }
            }
            return;
        }
        if schedule.len() >= config.max_steps {
            complete(stats, schedule.len());
            if let Some(description) = run.finish(true) {
                violations.push(Violation { schedule, description });
                if config.stop_on_violation {
                    sh.stop.store(true, Ordering::Relaxed);
                }
            }
            return;
        }
        let candidates: Vec<EventKey> =
            if config.prune { awake_candidates(&enabled, &sleep) } else { enabled };
        let Some(&first) = candidates.first() else {
            stats.pruned += 1;
            return;
        };
        if schedule.len() < config.branch_depth {
            for i in (1..candidates.len()).rev() {
                let ci = candidates[i];
                let alt_sleep: Vec<EventKey> = if config.prune {
                    sibling_sleep(&sleep, &candidates[..i], ci)
                } else {
                    Vec::new()
                };
                let mut prefix = schedule.clone();
                prefix.push(ci);
                let sibling = Branch { prefix, sleep: alt_sleep };
                if schedule.len() < sh.split_depth {
                    // Export for stealing: count it outstanding *before*
                    // it becomes visible, so no worker can observe an
                    // empty injector with a zero count while it is alive.
                    sh.outstanding.fetch_add(1, Ordering::AcqRel);
                    sh.injector.push(sibling);
                } else {
                    local.push(sibling);
                }
            }
        }
        if config.prune {
            sleep.retain(|&z| independent(z, first));
        }
        stats.transitions += 1;
        match run.step(first) {
            StepResult::Ok => schedule.push(first),
            StepResult::Violation(description) => {
                schedule.push(first);
                complete(stats, schedule.len());
                violations.push(Violation { schedule, description });
                if config.stop_on_violation {
                    sh.stop.store(true, Ordering::Relaxed);
                }
                return;
            }
            StepResult::Infeasible => {
                panic!("enabled key {first:?} refused to step — substrate and scenario disagree");
            }
        }
    }
}

/// Parallel 1-minimal shrink. Each round tests every single-event removal
/// concurrently and applies the one at the **lowest** index that still
/// violates — exactly the candidate the sequential [`crate::shrink`]'s
/// first-hit scan would take, so the result is identical for every `jobs`
/// value. Workers skip indexes above the best hit found so far.
pub fn shrink_parallel<S: Scenario + Sync>(
    scenario: &S,
    violation: &Violation,
    jobs: usize,
) -> Violation {
    let jobs = jobs.max(1);
    let mut current = violation.schedule.clone();
    let mut description = violation.description.clone();
    loop {
        let n = current.len();
        let best = AtomicUsize::new(usize::MAX);
        let found: Mutex<Vec<(usize, Vec<EventKey>, String)>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for w in 0..jobs {
                let (current, best, found) = (&current, &best, &found);
                s.spawn(move || {
                    let mut i = w;
                    while i < n {
                        if i > best.load(Ordering::Relaxed) {
                            break; // a lower index already violates
                        }
                        let mut candidate = current.clone();
                        candidate.remove(i);
                        if let ReplayOutcome::Violation { at, description } =
                            replay(scenario, &candidate)
                        {
                            candidate.truncate(at + 1);
                            best.fetch_min(i, Ordering::Relaxed);
                            found.lock().unwrap().push((i, candidate, description));
                        }
                        i += jobs;
                    }
                });
            }
        });
        let round = found.into_inner().unwrap();
        match round.into_iter().min_by_key(|(i, _, _)| *i) {
            Some((_, cand, desc)) => {
                current = cand;
                description = desc;
            }
            None => break,
        }
    }
    Violation { schedule: current, description }
}
