//! # sbft-core — the stabilizing Byzantine-fault-tolerant regular register
//!
//! Implementation of the register emulation of Bonomi, Potop-Butucaru and
//! Tixeuil, *Stabilizing Byzantine-Fault Tolerant Storage* (IPPS 2015):
//! a multi-writer multi-reader **regular** register on top of asynchronous
//! message passing with `n ≥ 5f + 1` servers, of which up to `f` may be
//! Byzantine, where **every** process (and every channel) may additionally
//! start in an arbitrarily corrupted state, using **bounded** timestamps.
//!
//! ## Layout
//!
//! * [`config`] — cluster arithmetic: `n`, `f`, the `n−f` quorum, the
//!   `2f+1` witness threshold, the `3f+1` propagation bound.
//! * [`messages`] — the wire protocol (Figures 1–3): `GET_TS`, `WRITE`,
//!   `ACK`/`NACK`, `READ`, `REPLY`, `COMPLETE_READ`, `FLUSH`, `FLUSH_ACK`.
//! * [`server`] — the server automaton: register copy, bounded `old_vals`
//!   history, `running_read` forwarding.
//! * [`client`] — the client automaton, composed of the two-phase writer
//!   ([`writer`]) and the one-phase reader with WTsG decision plus the
//!   FLUSH-based bounded read-label recycling ([`reader`]).
//! * [`adversary`] — Byzantine server strategies, including the scripted
//!   components of the Theorem 1 lower-bound execution.
//! * [`byzclient`] — Byzantine *reader* strategies (the paper's §VI claim
//!   that one-phase reads make hostile readers harmless).
//! * [`swmr`] — the typed single-writer facade of the §IV-B protocol
//!   (unique writer capability enforced at the type level).
//! * [`spec`] — execution recording and the MWMR-regularity checker.
//! * [`cluster`] — one-call assembly of a simulated register cluster plus
//!   blocking-style operation helpers (the scenario driver).
//!
//! ## Quick start
//!
//! ```
//! use sbft_core::cluster::RegisterCluster;
//!
//! // n = 6 servers tolerate f = 1 Byzantine server (n ≥ 5f + 1).
//! let mut cluster = RegisterCluster::bounded(1).seed(42).build();
//! let w = cluster.client(0);
//! cluster.write(w, 7).expect("write terminates");
//! let read = cluster.read(w).expect("read terminates");
//! assert_eq!(read.value, 7);
//! assert!(cluster.check_history().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod byzclient;
pub mod client;
pub mod cluster;
pub mod config;
pub mod messages;
pub mod reader;
pub mod retry;
pub mod server;
pub mod spec;
pub mod swmr;
pub mod writer;

pub use cluster::{OpOutcome, RegisterCluster};
pub use config::ClusterConfig;
pub use messages::{ClientEvent, Msg, Value};
pub use retry::RetryPolicy;
pub use spec::{HistoryRecorder, RegularityError, WindowTracker};

use sbft_labels::{LabelingSystem, MwmrTimestamp};

/// The timestamp type the protocol runs on: an MWMR `(label, writer)` pair
/// over the base labeling system `B`.
pub type Ts<B> = MwmrTimestamp<<B as LabelingSystem>::Label>;

/// The MWMR-wrapped labeling system over base `B`.
pub type Sys<B> = sbft_labels::MwmrLabeling<B>;
