//! The two-phase write state machine (Figure 1, client side).
//!
//! Phase 1 (`Collect`): broadcast `GET_TS`, gather current timestamps from
//! at least `n − f` servers, and compute the operation's timestamp with the
//! labeling system's `next()` — which dominates every gathered label even
//! if some were corrupted garbage.
//!
//! Phase 2 (`WaitAcks`): broadcast `WRITE(v, ts)` and wait until at least
//! `n − f` servers answered **and** at least `2f + 1` of the answers are
//! ACKs (Lemma 1 shows this wait is non-blocking for `n ≥ 5f + 1`).
//!
//! Stale `WRITE_ACK`s from earlier operations are filtered by timestamp
//! equality; stale `TS_REPLY`s are absorbed per-server (a later reply from
//! the same server overwrites), which is harmless within the `f`-slow-server
//! allowance of the proofs.

use std::collections::{BTreeMap, BTreeSet};

use sbft_labels::{LabelingSystem, WriterId};
use sbft_net::ProcessId;

use crate::config::ClusterConfig;
use crate::messages::Value;
use crate::{Sys, Ts};

/// Result of absorbing one phase-2 acknowledgement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteProgress {
    /// Still waiting.
    Pending,
    /// The write completed.
    Done,
    /// All servers answered without enough ACKs (in-flight transient
    /// garbage): the phase machine reset to phase 1 — re-broadcast
    /// `GET_TS`.
    Retry,
}

/// Progress of an in-flight write.
#[derive(Debug)]
pub enum WriteStage<B: LabelingSystem> {
    /// Phase 1: gathering `TS_REPLY`s.
    Collect {
        /// Timestamps received so far, one per server (latest wins).
        wts: BTreeMap<ProcessId, Ts<B>>,
    },
    /// Phase 2: waiting for `WRITE_ACK`s on the computed timestamp.
    WaitAcks {
        /// The timestamp this write installs.
        ts: Ts<B>,
        /// Servers that ACKed.
        acks: BTreeSet<ProcessId>,
        /// Servers that NACKed.
        nacks: BTreeSet<ProcessId>,
    },
}

/// An in-flight `write(value)` operation.
#[derive(Debug)]
pub struct WritePhase<B: LabelingSystem> {
    /// The value being written.
    pub value: Value,
    /// Current stage.
    pub stage: WriteStage<B>,
}

impl<B: LabelingSystem> WritePhase<B> {
    /// Start phase 1 (caller broadcasts `GET_TS`).
    pub fn new(value: Value) -> Self {
        Self { value, stage: WriteStage::Collect { wts: BTreeMap::new() } }
    }

    /// Record a phase-1 `TS_REPLY`. When the quorum fills, computes the
    /// write timestamp and switches to phase 2; returns `Some(ts)` exactly
    /// once, at that transition (caller then broadcasts `WRITE`).
    pub fn on_ts_reply(
        &mut self,
        sys: &Sys<B>,
        cfg: &ClusterConfig,
        writer: WriterId,
        from: ProcessId,
        ts: Ts<B>,
    ) -> Option<Ts<B>> {
        let WriteStage::Collect { wts } = &mut self.stage else {
            return None; // phase-2 or stale reply
        };
        if !cfg.is_server(from) {
            return None;
        }
        wts.insert(from, sys.sanitize(ts));
        if wts.len() < cfg.quorum() {
            return None;
        }
        let seen: Vec<Ts<B>> = wts.values().cloned().collect();
        let new_ts = sys.next_for(writer, &seen);
        self.stage = WriteStage::WaitAcks {
            ts: new_ts.clone(),
            acks: BTreeSet::new(),
            nacks: BTreeSet::new(),
        };
        Some(new_ts)
    }

    /// Record a phase-2 `WRITE_ACK`.
    ///
    /// Completes (`Done`) on ≥ `n − f` answers with ≥ `2f + 1` ACKs.
    ///
    /// If a full `n − f` quorum has answered **without** reaching the ACK
    /// threshold, the operation restarts from phase 1 (`Retry`). The
    /// paper's Lemma 1 argues this cannot happen with a quiescent single
    /// writer — but it *can* when (a) stale garbage writes from the
    /// transient fault are still racing through the channels, or (b) a
    /// concurrent writer's interleaved `WRITE`s changed server timestamps
    /// between this writer's two phases (an MWMR case the paper's proof
    /// does not treat; mechanization surfaced it). Waiting for more than
    /// `n − f` answers instead would block forever on silent Byzantine
    /// servers, so the quorum boundary is the only sound retry trigger.
    /// Retrying recomputes `next()` over the *current* labels, so each
    /// retry round absorbs everything it raced with; under quiescence the
    /// retries terminate, matching Assumption 1's "the first write … does
    /// not stop until completed".
    pub fn on_write_ack(
        &mut self,
        cfg: &ClusterConfig,
        from: ProcessId,
        ack_ts: &Ts<B>,
        ack: bool,
    ) -> WriteProgress {
        let WriteStage::WaitAcks { ts, acks, nacks } = &mut self.stage else {
            return WriteProgress::Pending;
        };
        if !cfg.is_server(from) || ack_ts != ts {
            return WriteProgress::Pending; // stale ack from a previous write
        }
        if ack {
            acks.insert(from);
            nacks.remove(&from);
        } else if !acks.contains(&from) {
            nacks.insert(from);
        }
        if acks.len() + nacks.len() >= cfg.quorum() {
            if acks.len() >= cfg.witness_threshold() {
                return WriteProgress::Done;
            }
            self.stage = WriteStage::Collect { wts: BTreeMap::new() };
            return WriteProgress::Retry;
        }
        WriteProgress::Pending
    }

    /// The timestamp of this write, once phase 2 started.
    pub fn ts(&self) -> Option<&Ts<B>> {
        match &self.stage {
            WriteStage::WaitAcks { ts, .. } => Some(ts),
            WriteStage::Collect { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_labels::{BoundedLabeling, MwmrLabeling};

    type B = BoundedLabeling;

    fn setup() -> (Sys<B>, ClusterConfig) {
        let cfg = ClusterConfig::stabilizing(1); // n=6, f=1, quorum=5, 2f+1=3
        (MwmrLabeling::new(BoundedLabeling::new(cfg.label_k())), cfg)
    }

    #[test]
    fn quorum_of_ts_replies_triggers_phase_two() {
        let (sys, cfg) = setup();
        let mut w = WritePhase::<B>::new(9);
        let g = sys.genesis();
        for s in 0..4 {
            assert!(w.on_ts_reply(&sys, &cfg, 1, s, g.clone()).is_none());
        }
        let ts = w.on_ts_reply(&sys, &cfg, 1, 4, g.clone()).expect("quorum reached");
        assert!(sys.precedes(&g, &ts));
        assert_eq!(ts.writer, 1);
        // Further TS replies are ignored.
        assert!(w.on_ts_reply(&sys, &cfg, 1, 5, g).is_none());
    }

    #[test]
    fn duplicate_server_replies_do_not_fill_quorum() {
        let (sys, cfg) = setup();
        let mut w = WritePhase::<B>::new(9);
        let g = sys.genesis();
        for _ in 0..10 {
            assert!(w.on_ts_reply(&sys, &cfg, 1, 0, g.clone()).is_none());
        }
    }

    #[test]
    fn computed_ts_dominates_corrupted_inputs() {
        let (sys, cfg) = setup();
        let mut w = WritePhase::<B>::new(9);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        let mut garbage = Vec::new();
        let mut ts = None;
        for s in 0..5 {
            let raw = sys.arbitrary(&mut rng);
            garbage.push(sys.sanitize(raw.clone()));
            ts = w.on_ts_reply(&sys, &cfg, 1, s, raw);
        }
        let ts = ts.expect("quorum");
        for g in &garbage {
            assert!(sys.precedes(g, &ts), "{g:?} must precede {ts:?}");
        }
    }

    #[test]
    fn completes_on_quorum_with_enough_acks() {
        let (sys, cfg) = setup();
        let mut w = WritePhase::<B>::new(9);
        let g = sys.genesis();
        for s in 0..5 {
            w.on_ts_reply(&sys, &cfg, 1, s, g.clone());
        }
        let ts = w.ts().unwrap().clone();
        // 3 ACKs + 1 NACK = 4 answers < quorum(5): not done.
        assert_eq!(w.on_write_ack(&cfg, 0, &ts, true), WriteProgress::Pending);
        assert_eq!(w.on_write_ack(&cfg, 1, &ts, true), WriteProgress::Pending);
        assert_eq!(w.on_write_ack(&cfg, 2, &ts, true), WriteProgress::Pending);
        assert_eq!(w.on_write_ack(&cfg, 3, &ts, false), WriteProgress::Pending);
        // Fifth answer completes (acks=4 >= 3, total=5 >= 5).
        assert_eq!(w.on_write_ack(&cfg, 4, &ts, false), WriteProgress::Done);
    }

    #[test]
    fn nack_flood_does_not_complete_without_ack_threshold() {
        let (sys, cfg) = setup();
        let mut w = WritePhase::<B>::new(9);
        let g = sys.genesis();
        for s in 0..5 {
            w.on_ts_reply(&sys, &cfg, 1, s, g.clone());
        }
        let ts = w.ts().unwrap().clone();
        for s in 0..4 {
            assert_eq!(w.on_write_ack(&cfg, s, &ts, false), WriteProgress::Pending);
        }
        // Quorum (5 answers) reached with only 1 < 3 ACKs: the writer
        // restarts phase 1 rather than blocking on the 6th (possibly
        // Byzantine-silent) server.
        assert_eq!(w.on_write_ack(&cfg, 4, &ts, true), WriteProgress::Retry);
        assert!(w.ts().is_none(), "back in phase 1 after retry");
    }

    #[test]
    fn stale_acks_filtered_by_timestamp() {
        let (sys, cfg) = setup();
        let mut w = WritePhase::<B>::new(9);
        let g = sys.genesis();
        for s in 0..5 {
            w.on_ts_reply(&sys, &cfg, 1, s, g.clone());
        }
        let stale = sys.genesis();
        for s in 0..6 {
            assert_eq!(
                w.on_write_ack(&cfg, s, &stale, true),
                WriteProgress::Pending,
                "stale ts must not count"
            );
        }
    }

    #[test]
    fn acks_ignored_during_phase_one() {
        let (sys, cfg) = setup();
        let mut w = WritePhase::<B>::new(9);
        assert_eq!(w.on_write_ack(&cfg, 0, &sys.genesis(), true), WriteProgress::Pending);
        assert!(w.ts().is_none());
    }

    #[test]
    fn non_server_replies_ignored() {
        let (sys, cfg) = setup();
        let mut w = WritePhase::<B>::new(9);
        let g = sys.genesis();
        for s in 0..4 {
            w.on_ts_reply(&sys, &cfg, 1, s, g.clone());
        }
        // A client pid (>= n) cannot fill the quorum.
        assert!(w.on_ts_reply(&sys, &cfg, 1, cfg.client_pid(0), g.clone()).is_none());
        assert!(w.on_ts_reply(&sys, &cfg, 1, 4, g).is_some());
    }
}
