//! The wire protocol of Figures 1–3, plus environment commands and
//! client-observable events.
//!
//! One message enum covers the whole protocol so that a single simulation
//! can host servers, clients, and Byzantine processes exchanging arbitrary
//! (including forged or stale) messages. `T` is the timestamp type
//! ([`crate::Ts`] over some base labeling system).

use std::sync::Arc;

use sbft_labels::ReadLabel;

/// Values stored in the register. A fixed scalar keeps the protocol layer
/// monomorphic; workloads encode whatever payload identity they need.
pub type Value = u64;

/// A `(value, timestamp)` pair as stored in server histories and `REPLY`
/// payloads.
pub type ValTs<T> = (Value, T);

/// A shared, immutable `old_vals` snapshot as shipped in [`Msg::Reply`].
///
/// `Arc<[..]>` instead of `Vec<..>` because a server fans the same history
/// out to every running reader on each write (Figure 1 server side, last
/// step): with `n` readers blocked on concurrent writes, a `Vec` payload
/// deep-clones the window (timestamps included) once per recipient, while
/// the `Arc` is built once per state change and each send is a reference
/// bump. Measured by the E15 sustained-load benchmark (EXPERIMENTS.md).
pub type History<T> = Arc<[ValTs<T>]>;

/// Every message of the register protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg<T> {
    // ---- write protocol (Figure 1) ----
    /// Writer → servers: request current timestamps (phase 1).
    GetTs,
    /// Server → writer: its current timestamp.
    TsReply {
        /// The server's current timestamp.
        ts: T,
    },
    /// Writer → servers: write `value` with the freshly computed `ts`
    /// (phase 2).
    Write {
        /// Value being written.
        value: Value,
        /// Timestamp computed by `next()` over the phase-1 quorum.
        ts: T,
    },
    /// Server → writer: ACK (`ack == true`) when the write's timestamp
    /// followed the server's local one, NACK otherwise. Sent in either
    /// case (the server adopts the value regardless).
    WriteAck {
        /// Timestamp this ack refers to (matches a specific write).
        ts: T,
        /// ACK or NACK.
        ack: bool,
    },

    // ---- read protocol (Figure 2) ----
    /// Reader → servers in its safe set: request the current value, tagged
    /// with a bounded read label.
    Read {
        /// The read operation's label.
        label: ReadLabel,
    },
    /// Server → reader: current value + timestamp + recent-write history,
    /// echoing the read label. Also sent spontaneously to running readers
    /// when a write lands (Figure 1 server side, last step).
    Reply {
        /// The server's current value.
        value: Value,
        /// The server's current timestamp.
        ts: T,
        /// The server's `old_vals` sliding window (most recent first),
        /// shared across all recipients of the same snapshot.
        old: History<T>,
        /// Label of the read this reply answers.
        label: ReadLabel,
    },
    /// Reader → servers: the labelled read finished; stop forwarding.
    CompleteRead {
        /// Label of the finished read.
        label: ReadLabel,
    },

    // ---- find_read_label (Figure 3) ----
    /// Reader → servers: flush marker; its reflection certifies that the
    /// FIFO channel holds no stale reply with this label.
    Flush {
        /// Candidate label being recycled.
        label: ReadLabel,
    },
    /// Server → reader: flush reflection.
    FlushAck {
        /// The echoed label.
        label: ReadLabel,
    },

    // ---- environment commands (driver → client) ----
    /// Start a `write(value)` operation.
    InvokeWrite {
        /// Value to write.
        value: Value,
    },
    /// Start a `read()` operation.
    InvokeRead,
}

/// Observable client events, emitted as simulation outputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientEvent<T> {
    /// A `write(value)` returned; `ts` is the timestamp it installed.
    WriteDone {
        /// The written value.
        value: Value,
        /// Timestamp computed for this write.
        ts: T,
    },
    /// A `read()` returned `value`.
    ReadDone {
        /// The value read.
        value: Value,
        /// The timestamp witnessing the value.
        ts: T,
        /// Whether the union-graph fallback (Figure 2a line 15) decided.
        via_union: bool,
    },
    /// A `read()` aborted: no value reached the witness threshold in the
    /// local or union graph — servers are in a transitory phase. Emitted
    /// only when the client's [`crate::retry::RetryPolicy`] allows a single
    /// attempt; with retries enabled, aborts re-enter the read silently
    /// until the policy is exhausted.
    ReadAborted,
    /// A `read()` gave up: every attempt the retry policy allowed aborted
    /// or timed out. `timed_out` tells whether the *final* attempt died on
    /// its deadline rather than an abort decision.
    ReadFailed {
        /// Whether the last attempt hit its deadline (vs. aborting).
        timed_out: bool,
        /// Attempts consumed.
        attempts: u32,
    },
    /// A `write(value)` gave up after `attempts` deadline-bounded attempts.
    /// The value may nevertheless land at servers later — the history
    /// checker treats a failed write as permanently concurrent, like a
    /// crashed writer.
    WriteFailed {
        /// The value whose write failed.
        value: Value,
        /// Whether the last attempt hit its deadline.
        timed_out: bool,
        /// Attempts consumed.
        attempts: u32,
    },
}

impl<T> ClientEvent<T> {
    /// Whether this event terminates a read operation.
    pub fn is_read_end(&self) -> bool {
        matches!(
            self,
            ClientEvent::ReadDone { .. }
                | ClientEvent::ReadAborted
                | ClientEvent::ReadFailed { .. }
        )
    }

    /// Whether this event terminates a write operation.
    pub fn is_write_end(&self) -> bool {
        matches!(self, ClientEvent::WriteDone { .. } | ClientEvent::WriteFailed { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_classifiers() {
        let w: ClientEvent<u64> = ClientEvent::WriteDone { value: 1, ts: 2 };
        let r: ClientEvent<u64> = ClientEvent::ReadDone { value: 1, ts: 2, via_union: false };
        let a: ClientEvent<u64> = ClientEvent::ReadAborted;
        assert!(w.is_write_end() && !w.is_read_end());
        assert!(r.is_read_end() && !r.is_write_end());
        assert!(a.is_read_end());
    }

    #[test]
    fn messages_are_cloneable_and_comparable() {
        let m: Msg<u64> = Msg::Write { value: 3, ts: 9 };
        assert_eq!(m.clone(), m);
        let r: Msg<u64> = Msg::Reply { value: 1, ts: 2, old: vec![(0, 1)].into(), label: 3 };
        assert_ne!(m, r);
    }
}
