//! One-call assembly of a register cluster, with blocking-style operation
//! helpers and integrated history recording — the scenario driver shared by
//! tests, examples, benches and the experiment harness.
//!
//! The driver is generic over the [`Substrate`] hosting the automata: the
//! default is the deterministic [`Simulation`] (all correctness work), and
//! the same scenarios run on the [`ThreadedCluster`] via
//! [`ClusterBuilder::build_threaded`], or on a runtime-chosen backend via
//! [`ClusterBuilder::backend`] + [`ClusterBuilder::build_any`].
//!
//! ```
//! use sbft_core::cluster::RegisterCluster;
//!
//! let mut cluster = RegisterCluster::bounded(1).clients(2).seed(7).build();
//! let (w, r) = (cluster.client(0), cluster.client(1));
//! cluster.write(w, 10).unwrap();
//! assert_eq!(cluster.read(r).unwrap().value, 10);
//! assert!(cluster.check_history().is_ok());
//! ```

use std::collections::BTreeMap;

use sbft_labels::{BoundedLabeling, LabelingSystem, MwmrLabeling, UnboundedLabeling};
use sbft_net::corruption::FaultPlan;
use sbft_net::nemesis::{AutomatonFactory, NemesisRunner, NemesisSchedule};
use sbft_net::substrate::{AnySubstrate, Backend, Substrate, SubstrateConfig};
use sbft_net::{
    Automaton, CorruptionSeverity, DelayModel, NetMetrics, ProcessId, Simulation, ThreadedCluster,
};
use sbft_storage::DiskSet;

use crate::adversary::{random_message, ByzServer, ByzStrategy, ScriptedServer};
use crate::byzclient::{ByzClient, ByzReaderStrategy};
use crate::client::Client;
use crate::config::ClusterConfig;
use crate::messages::{ClientEvent, Msg, Value};
use crate::reader::ReaderOptions;
use crate::retry::RetryPolicy;
use crate::server::Server;
use crate::spec::{HistoryRecorder, OpKind, RegularityError};
use crate::{Sys, Ts};

/// The simulator substrate type for a labeling system `B`.
pub type SimSubstrate<B> = Simulation<Msg<Ts<B>>, ClientEvent<Ts<B>>>;
/// The threaded substrate type for a labeling system `B`.
pub type ThreadedSubstrate<B> = ThreadedCluster<Msg<Ts<B>>, ClientEvent<Ts<B>>>;
/// The runtime-chosen substrate type for a labeling system `B`.
pub type AnyRegisterSubstrate<B> = AnySubstrate<Msg<Ts<B>>, ClientEvent<Ts<B>>>;

/// Boxed automata in pid order, ready to hand to a substrate.
type RegisterProcs<B> = Vec<Box<dyn Automaton<Msg<Ts<B>>, ClientEvent<Ts<B>>>>>;

/// Consecutive idle pumps (threaded runtime) before an operation is
/// declared stuck. With the default pump timeout this bounds a blocking
/// operation to a few wall-clock seconds.
const MAX_IDLE_PUMPS: u32 = 50;

/// Why a blocking operation helper failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpError {
    /// The read returned `abort` (servers in a transitory phase).
    Aborted,
    /// The event budget ran out or the simulation went quiet before the
    /// operation completed.
    Stuck,
}

/// Typed outcome of one driver-level operation under a [`RetryPolicy`] —
/// what chaos experiments tally instead of panicking on failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpOutcome<T> {
    /// The operation completed; `T` carries its result.
    Ok(T),
    /// The read aborted and the policy allowed no retry.
    Aborted,
    /// The operation stalled: either its single attempt died on the
    /// deadline, or the driver's event budget ran dry with no terminal
    /// event (`attempts == 0`).
    TimedOut {
        /// Attempts consumed (0 when the driver itself gave up).
        attempts: u32,
    },
    /// Every attempt the retry policy allowed failed.
    Exhausted {
        /// Attempts consumed.
        attempts: u32,
    },
}

impl<T> OpOutcome<T> {
    /// Whether the operation completed.
    pub fn is_ok(&self) -> bool {
        matches!(self, OpOutcome::Ok(_))
    }

    /// The success payload, if any.
    pub fn ok(self) -> Option<T> {
        match self {
            OpOutcome::Ok(v) => Some(v),
            _ => None,
        }
    }
}

/// Map a terminal failure event onto the outcome taxonomy: a lone attempt
/// dying on its deadline is a [`OpOutcome::TimedOut`]; anything that burned
/// through retries is [`OpOutcome::Exhausted`].
fn failure_outcome<T>(timed_out: bool, attempts: u32) -> OpOutcome<T> {
    if timed_out && attempts <= 1 {
        OpOutcome::TimedOut { attempts }
    } else {
        OpOutcome::Exhausted { attempts }
    }
}

/// A successful read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadOk<B: LabelingSystem> {
    /// The value read.
    pub value: Value,
    /// The timestamp witnessing it.
    pub ts: Ts<B>,
    /// Whether the union-graph fallback decided.
    pub via_union: bool,
}

/// An operation request for [`RegisterCluster::run_concurrent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// `write(value)`.
    Write(Value),
    /// `read()`.
    Read,
}

/// Builder for a [`RegisterCluster`].
pub struct ClusterBuilder<B: LabelingSystem> {
    cfg: ClusterConfig,
    base: B,
    n_clients: usize,
    byz: BTreeMap<usize, ByzStrategy>,
    scripted: Vec<usize>,
    hostile_clients: Vec<ByzReaderStrategy>,
    seed: u64,
    delay: DelayModel,
    trace: usize,
    reader_opts: ReaderOptions,
    retry: RetryPolicy,
    backend: Backend,
    pump_timeout: Option<std::time::Duration>,
    durable: bool,
}

impl<B: LabelingSystem> ClusterBuilder<B> {
    /// Start from a config and base labeling system.
    pub fn new(cfg: ClusterConfig, base: B) -> Self {
        Self {
            cfg,
            base,
            n_clients: 2,
            byz: BTreeMap::new(),
            scripted: Vec::new(),
            hostile_clients: Vec::new(),
            seed: 0,
            delay: DelayModel::uniform(1, 10),
            trace: 0,
            reader_opts: ReaderOptions::default(),
            retry: RetryPolicy::none(),
            backend: Backend::Sim,
            pump_timeout: None,
            durable: false,
        }
    }

    /// Give every honest server a simulated disk: applied writes persist,
    /// and the cluster can reboot crashed servers *from their own
    /// (possibly damaged) storage* via
    /// [`sbft_net::NemesisEvent::CrashRecover`] — see
    /// [`RegisterCluster::disks`]. Disk seeds derive from the cluster
    /// seed, so identical builds produce byte-identical disks on either
    /// backend.
    pub fn durable(mut self) -> Self {
        self.durable = true;
        self
    }

    /// Number of clients to attach (default 2).
    pub fn clients(mut self, n: usize) -> Self {
        self.n_clients = n.max(1);
        self
    }

    /// Make server `idx` Byzantine with the given strategy.
    pub fn byzantine(mut self, idx: usize, strategy: ByzStrategy) -> Self {
        assert!(idx < self.cfg.n);
        self.byz.insert(idx, strategy);
        self
    }

    /// Make the *last* `f` servers Byzantine with one strategy.
    pub fn byzantine_tail(mut self, strategy: ByzStrategy) -> Self {
        for idx in self.cfg.n - self.cfg.f..self.cfg.n {
            self.byz.insert(idx, strategy);
        }
        self
    }

    /// Make server `idx` a fully scripted (driver-controlled) adversary.
    pub fn scripted(mut self, idx: usize) -> Self {
        assert!(idx < self.cfg.n);
        self.scripted.push(idx);
        self
    }

    /// Attach a Byzantine (hostile) client after the correct clients. Its
    /// pid is reported by [`RegisterCluster::hostile_client`]; kick it
    /// with [`RegisterCluster::kick_hostile`] to emit traffic volleys.
    pub fn hostile_client(mut self, strategy: ByzReaderStrategy) -> Self {
        self.hostile_clients.push(strategy);
        self
    }

    /// Simulation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Message delay model (default uniform 1..=10; simulator only).
    pub fn delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Enable the substrate's debug trace.
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace = capacity;
        self
    }

    /// Reader ablation switches.
    pub fn reader_options(mut self, opts: ReaderOptions) -> Self {
        self.reader_opts = opts;
        self
    }

    /// Retry/timeout/backoff policy for every correct client (default
    /// [`RetryPolicy::none`]: single attempts, the historical behaviour).
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Select the runtime used by [`ClusterBuilder::build_any`]
    /// (default [`Backend::Sim`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Longest one threaded `pump` blocks before reporting idle (threaded
    /// runtime only; default 100 ms). Open-loop drivers that pace arrivals
    /// between pumps want this close to the arrival interval.
    pub fn pump_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.pump_timeout = Some(timeout);
        self
    }

    fn substrate_config(&self) -> SubstrateConfig {
        let cfg = SubstrateConfig::seeded(self.seed).with_delay(self.delay).with_trace(self.trace);
        match self.pump_timeout {
            Some(t) => cfg.with_pump_timeout(t),
            None => cfg,
        }
    }

    /// The automata, in pid order, plus the hostile clients' pids and the
    /// per-server disks (when the cluster is durable).
    fn procs(&self) -> (RegisterProcs<B>, Vec<ProcessId>, Option<DiskSet>) {
        let sys: Sys<B> = MwmrLabeling::new(self.base.clone());
        let disks = self.durable.then(|| DiskSet::sim(self.cfg.n, self.seed ^ 0xD15C_D15C));
        let mut procs: RegisterProcs<B> = Vec::new();
        for s in 0..self.cfg.n {
            if self.scripted.contains(&s) {
                procs.push(Box::new(ScriptedServer::<B>::new(sys.clone())));
            } else if let Some(&strategy) = self.byz.get(&s) {
                // Adversaries don't persist: their seat's disk stays empty
                // (or stale), which is itself a realistic recovery input.
                procs.push(Box::new(ByzServer::new(sys.clone(), self.cfg, strategy)));
            } else {
                let mut server = Server::new(sys.clone(), self.cfg);
                if let Some(disks) = &disks {
                    server = server.with_disk(disks.get(s));
                }
                procs.push(Box::new(server));
            }
        }
        for c in 0..self.n_clients {
            let pid = self.cfg.client_pid(c);
            procs.push(Box::new(Client::with_retry(
                sys.clone(),
                self.cfg,
                pid as u32,
                self.reader_opts,
                self.retry,
            )));
        }
        let mut hostile_pids = Vec::new();
        for strategy in &self.hostile_clients {
            hostile_pids.push(procs.len());
            procs.push(Box::new(ByzClient::new(sys.clone(), self.cfg, *strategy)));
        }
        (procs, hostile_pids, disks)
    }

    fn assemble<S>(
        self,
        sim: S,
        hostile_pids: Vec<ProcessId>,
        disks: Option<DiskSet>,
    ) -> RegisterCluster<B, S> {
        RegisterCluster {
            sim,
            cfg: self.cfg,
            sys: MwmrLabeling::new(self.base.clone()),
            n_clients: self.n_clients,
            hostile_pids,
            recorder: HistoryRecorder::new(),
            op_budget: 400_000,
            disks,
        }
    }

    /// Assemble the cluster on the deterministic simulator.
    pub fn build(self) -> RegisterCluster<B> {
        let (procs, hostile_pids, disks) = self.procs();
        let sim = Simulation::from_procs(procs, &self.substrate_config());
        self.assemble(sim, hostile_pids, disks)
    }

    /// Assemble the cluster on the threaded runtime.
    pub fn build_threaded(self) -> RegisterCluster<B, ThreadedSubstrate<B>> {
        let (procs, hostile_pids, disks) = self.procs();
        let sub = ThreadedCluster::spawn_with(procs, &self.substrate_config());
        self.assemble(sub, hostile_pids, disks)
    }

    /// Assemble the cluster on the backend chosen with
    /// [`ClusterBuilder::backend`].
    pub fn build_any(self) -> RegisterCluster<B, AnyRegisterSubstrate<B>> {
        let (procs, hostile_pids, disks) = self.procs();
        let sub = AnySubstrate::spawn(self.backend, procs, &self.substrate_config());
        self.assemble(sub, hostile_pids, disks)
    }
}

/// A register cluster (servers + clients + recorder) on a substrate `S` —
/// the simulator by default.
pub struct RegisterCluster<B: LabelingSystem, S = SimSubstrate<B>> {
    /// The underlying substrate (exposed for schedule steering when `S` is
    /// the simulator).
    pub sim: S,
    /// Cluster arithmetic.
    pub cfg: ClusterConfig,
    /// The MWMR labeling system in use.
    pub sys: Sys<B>,
    n_clients: usize,
    hostile_pids: Vec<ProcessId>,
    /// Operation history (public so experiments can inspect records).
    pub recorder: HistoryRecorder<B>,
    /// Max substrate events per blocking operation.
    pub op_budget: u64,
    /// Per-server stable storage, when built with
    /// [`ClusterBuilder::durable`]. The driver holds these handles
    /// alongside the servers (works on both backends), so it can damage a
    /// crashed server's disk and rebuild the automaton from it — and
    /// parity tests can compare disk digests across substrates.
    pub disks: Option<DiskSet>,
}

impl RegisterCluster<BoundedLabeling> {
    /// Builder for the paper's protocol: bounded labels, `n = 5f + 1`.
    pub fn bounded(f: usize) -> ClusterBuilder<BoundedLabeling> {
        let cfg = ClusterConfig::stabilizing(f);
        ClusterBuilder::new(cfg, BoundedLabeling::new(cfg.label_k()))
    }

    /// Builder with explicit `n` (e.g. `n = 5f` for the lower bound).
    pub fn bounded_with_n(n: usize, f: usize) -> ClusterBuilder<BoundedLabeling> {
        let cfg = ClusterConfig::with_n(n, f);
        ClusterBuilder::new(cfg, BoundedLabeling::new(cfg.label_k()))
    }
}

impl RegisterCluster<UnboundedLabeling> {
    /// Builder for the same protocol over unbounded timestamps (used by
    /// E6 to isolate the effect of boundedness).
    pub fn unbounded(f: usize) -> ClusterBuilder<UnboundedLabeling> {
        let cfg = ClusterConfig::stabilizing(f);
        ClusterBuilder::new(cfg, UnboundedLabeling)
    }
}

impl<B, S> RegisterCluster<B, S>
where
    B: LabelingSystem,
    S: Substrate<Msg<Ts<B>>, ClientEvent<Ts<B>>>,
{
    /// Pid of the `i`-th client.
    pub fn client(&self, i: usize) -> ProcessId {
        assert!(i < self.n_clients, "client {i} not attached");
        self.cfg.client_pid(i)
    }

    /// Number of attached clients.
    pub fn client_count(&self) -> usize {
        self.n_clients
    }

    /// Pid of the `i`-th hostile (Byzantine) client.
    pub fn hostile_client(&self, i: usize) -> ProcessId {
        self.hostile_pids[i]
    }

    /// Kick every hostile client once (each kick triggers a volley of
    /// hostile traffic; server replies re-trigger throttled volleys).
    pub fn kick_hostile(&mut self) {
        for i in 0..self.hostile_pids.len() {
            let pid = self.hostile_pids[i];
            self.sim.inject(pid, Msg::InvokeRead);
        }
    }

    /// Which backend the cluster runs on.
    pub fn backend(&self) -> Backend {
        self.sim.backend()
    }

    /// Current time: virtual (simulator) or elapsed ticks (threads).
    pub fn now(&self) -> u64 {
        self.sim.now()
    }

    /// Snapshot of the network metrics so far.
    pub fn metrics(&self) -> NetMetrics {
        self.sim.metrics_snapshot()
    }

    /// The instant to record for an operation invoked now. On the
    /// simulator this is `now + 1`: the command reaches the client only
    /// after at least one tick of channel delay, so an operation completing
    /// at time `t` strictly precedes one invoked at the same driver step.
    /// On wall-clock ticks the `+1` would claim the invocation happened
    /// later than it did and manufacture false precedence edges, so the
    /// threaded backend stamps `now` exactly — two stamps from the same
    /// monotonic clock order soundly without adjustment.
    fn invoke_time(&self) -> u64 {
        match self.sim.backend() {
            Backend::Sim => self.sim.now() + 1,
            Backend::Threaded => self.sim.now(),
        }
    }

    /// Non-blocking: start a write on `client`.
    pub fn invoke_write(&mut self, client: ProcessId, value: Value) {
        self.recorder.begin_with_intent(client, OpKind::Write, self.invoke_time(), Some(value));
        self.sim.inject(client, Msg::InvokeWrite { value });
    }

    /// Non-blocking: start a read on `client` (timing as for writes).
    pub fn invoke_read(&mut self, client: ProcessId) {
        self.recorder.begin(client, OpKind::Read, self.invoke_time());
        self.sim.inject(client, Msg::InvokeRead);
    }

    /// Pump the substrate until `client` emits a terminal event (recording
    /// every event from every client along the way).
    pub fn await_client(&mut self, client: ProcessId) -> Result<ClientEvent<Ts<B>>, OpError> {
        let recorder = &mut self.recorder;
        self.sim
            .pump_until(self.op_budget, MAX_IDLE_PUMPS, &mut |time, pid, out| {
                recorder.complete(pid, time, &out);
                (pid == client).then_some(out)
            })
            .ok_or(OpError::Stuck)
    }

    /// Blocking write: returns the installed timestamp.
    pub fn write(&mut self, client: ProcessId, value: Value) -> Result<Ts<B>, OpError> {
        self.invoke_write(client, value);
        match self.await_client(client)? {
            ClientEvent::WriteDone { ts, .. } => Ok(ts),
            ClientEvent::WriteFailed { .. } => Err(OpError::Stuck),
            other => unreachable!("write terminated by non-write event {other:?}"),
        }
    }

    /// Blocking read.
    pub fn read(&mut self, client: ProcessId) -> Result<ReadOk<B>, OpError> {
        self.invoke_read(client);
        match self.await_client(client)? {
            ClientEvent::ReadDone { value, ts, via_union } => Ok(ReadOk { value, ts, via_union }),
            ClientEvent::ReadAborted => Err(OpError::Aborted),
            ClientEvent::ReadFailed { timed_out: false, .. } => Err(OpError::Aborted),
            ClientEvent::ReadFailed { timed_out: true, .. } => Err(OpError::Stuck),
            other => unreachable!("read terminated by non-read event {other:?}"),
        }
    }

    /// Blocking write under the retry policy, reporting the typed outcome
    /// instead of an error — the chaos-experiment surface.
    pub fn write_outcome(&mut self, client: ProcessId, value: Value) -> OpOutcome<Ts<B>> {
        self.invoke_write(client, value);
        match self.await_client(client) {
            Ok(ClientEvent::WriteDone { ts, .. }) => OpOutcome::Ok(ts),
            Ok(ClientEvent::WriteFailed { timed_out, attempts, .. }) => {
                failure_outcome(timed_out, attempts)
            }
            Ok(other) => unreachable!("write terminated by non-write event {other:?}"),
            Err(_) => OpOutcome::TimedOut { attempts: 0 },
        }
    }

    /// Blocking read under the retry policy, reporting the typed outcome.
    pub fn read_outcome(&mut self, client: ProcessId) -> OpOutcome<ReadOk<B>> {
        self.invoke_read(client);
        match self.await_client(client) {
            Ok(ClientEvent::ReadDone { value, ts, via_union }) => {
                OpOutcome::Ok(ReadOk { value, ts, via_union })
            }
            Ok(ClientEvent::ReadAborted) => OpOutcome::Aborted,
            Ok(ClientEvent::ReadFailed { timed_out, attempts }) => {
                failure_outcome(timed_out, attempts)
            }
            Ok(other) => unreachable!("read terminated by non-read event {other:?}"),
            Err(_) => OpOutcome::TimedOut { attempts: 0 },
        }
    }

    /// Launch several operations concurrently (one per distinct client
    /// index) and run until each has terminated (or the budget runs out).
    /// Returns the terminal event per client index, in input order.
    pub fn run_concurrent(&mut self, ops: &[(usize, Op)]) -> Vec<Option<ClientEvent<Ts<B>>>> {
        let mut pending: BTreeMap<ProcessId, usize> = BTreeMap::new();
        for (slot, &(ci, op)) in ops.iter().enumerate() {
            let pid = self.client(ci);
            assert!(pending.insert(pid, slot).is_none(), "one concurrent op per client");
            match op {
                Op::Write(v) => self.invoke_write(pid, v),
                Op::Read => self.invoke_read(pid),
            }
        }
        let mut results: Vec<Option<ClientEvent<Ts<B>>>> = vec![None; ops.len()];
        let recorder = &mut self.recorder;
        self.sim.pump_until(self.op_budget, MAX_IDLE_PUMPS, &mut |time, pid, out| {
            recorder.complete(pid, time, &out);
            if let Some(slot) = pending.remove(&pid) {
                results[slot] = Some(out);
            }
            pending.is_empty().then_some(())
        });
        results
    }

    /// Let in-flight background traffic (late replies, forwards) drain.
    pub fn settle(&mut self, max_events: u64) {
        let recorder = &mut self.recorder;
        self.sim.pump_until(max_events, 1, &mut |time, pid, out| {
            recorder.complete(pid, time, &out);
            None::<()>
        });
    }

    /// Transient fault: corrupt the local state of **all** servers and
    /// clients and load garbage messages on every server-adjacent channel.
    pub fn corrupt_everything(&mut self, severity: CorruptionSeverity) {
        let total = self.cfg.n + self.n_clients;
        let plan = FaultPlan::total(total, severity);
        self.apply_plan(&plan);
    }

    /// Transient fault hitting only the listed servers.
    pub fn corrupt_servers(&mut self, victims: &[usize], severity: CorruptionSeverity) {
        let plan = FaultPlan::targeting(victims, self.cfg.n + self.n_clients, severity);
        self.apply_plan(&plan);
    }

    fn apply_plan(&mut self, plan: &FaultPlan) {
        let sys = self.sys.clone();
        let cfg = self.cfg;
        let mut gen = move |rng: &mut rand::rngs::StdRng| random_message::<B>(&sys, &cfg, rng);
        self.sim.apply_fault(plan, &mut gen);
    }

    /// Tear down the substrate (joins worker threads on the threaded
    /// backend; no-op beyond queue draining on the simulator).
    pub fn stop(&mut self) {
        self.sim.stop();
    }

    /// Check the whole recorded history against MWMR regularity.
    pub fn check_history(&self) -> Result<(), Vec<RegularityError>> {
        self.recorder.check(&self.sys)
    }

    /// Check only the suffix from `t` (pseudo-stabilization verdict).
    pub fn check_history_from(&self, t: u64) -> Result<(), Vec<RegularityError>> {
        self.recorder.check_from(&self.sys, t)
    }

    /// Record one externally-observed client event into the history — the
    /// spec hook for drivers that step the substrate *themselves* (the
    /// schedule explorer) instead of going through the pump helpers above.
    /// Returns the closed op's index when `ev` was terminal for an open op,
    /// so callers can re-check regularity exactly when the history grew.
    pub fn observe_event(
        &mut self,
        time: u64,
        pid: ProcessId,
        ev: &ClientEvent<Ts<B>>,
    ) -> Option<usize> {
        self.recorder.complete(pid, time, ev)
    }

    /// Build a [`NemesisRunner`] wired to this cluster: honest restarts
    /// spawn fresh [`Server`]s, Byzantine seats spawn [`ByzServer`]s with
    /// `strat`, and corruption garbage is drawn from the cluster's
    /// labeling system. `byz_seats` is the initial seat set — it must
    /// match the seats the cluster was *built* with (e.g.
    /// [`ClusterBuilder::byzantine_tail`]), since the runner only tracks
    /// movement from there. The one place seat bookkeeping is defined,
    /// shared by the chaos soak, the mobile frontier, and tests.
    pub fn nemesis_runner(
        &self,
        schedule: NemesisSchedule,
        byz_seats: Vec<ProcessId>,
        strat: ByzStrategy,
    ) -> NemesisRunner<Msg<Ts<B>>, ClientEvent<Ts<B>>> {
        let cfg = self.cfg;
        let sys_h = self.sys.clone();
        let make_honest: AutomatonFactory<Msg<Ts<B>>, ClientEvent<Ts<B>>> = Box::new(move |_pid| {
            Box::new(Server::new(sys_h.clone(), cfg)) as Box<dyn Automaton<_, _>>
        });
        let sys_b = self.sys.clone();
        let make_byz: AutomatonFactory<Msg<Ts<B>>, ClientEvent<Ts<B>>> = Box::new(move |_pid| {
            Box::new(ByzServer::new(sys_b.clone(), cfg, strat)) as Box<dyn Automaton<_, _>>
        });
        let sys_g = self.sys.clone();
        let garbage =
            Box::new(move |rng: &mut rand::rngs::StdRng| random_message::<B>(&sys_g, &cfg, rng));
        let runner =
            NemesisRunner::new_multi(schedule, make_honest, Some(make_byz), byz_seats, garbage);
        match &self.disks {
            Some(disks) => {
                // Durable cluster: CrashRecover damages the server's own
                // disk and reboots it from whatever survives.
                let disks = disks.clone();
                let sys_r = self.sys.clone();
                runner.recovery(Box::new(move |pid, fault| {
                    let disk = disks.get(pid);
                    disk.crash(fault);
                    Box::new(Server::recover(sys_r.clone(), cfg, disk)) as Box<dyn Automaton<_, _>>
                }))
            }
            None => runner,
        }
    }
}

/// Simulator-only surface: typed state inspection requires in-process
/// access to the automata, which threads cannot share.
impl<B: LabelingSystem> RegisterCluster<B, SimSubstrate<B>> {
    /// Typed access to an honest server's state (None for adversaries).
    pub fn server_state(&mut self, idx: usize) -> Option<&mut Server<B>> {
        self.sim.process_mut(idx).as_any_mut()?.downcast_mut::<Server<B>>()
    }

    /// Typed access to a scripted server (None otherwise).
    pub fn scripted_server(&mut self, idx: usize) -> Option<&mut ScriptedServer<B>> {
        self.sim.process_mut(idx).as_any_mut()?.downcast_mut::<ScriptedServer<B>>()
    }

    /// Typed access to a client's state.
    pub fn client_state(&mut self, i: usize) -> Option<&mut Client<B>> {
        let pid = self.client(i);
        self.sim.process_mut(pid).as_any_mut()?.downcast_mut::<Client<B>>()
    }

    /// Count of honest servers currently storing `(value, ts)` — the
    /// Lemma 2 propagation measurement of experiment E3.
    pub fn servers_storing(&mut self, value: Value, ts: &Ts<B>) -> usize {
        let n = self.cfg.n;
        (0..n)
            .filter(|&s| {
                self.server_state(s).map(|srv| srv.value == value && &srv.ts == ts).unwrap_or(false)
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_write_read_roundtrip() {
        let mut c = RegisterCluster::bounded(1).seed(1).build();
        let w = c.client(0);
        let ts = c.write(w, 123).unwrap();
        let r = c.read(c.client(1)).unwrap();
        assert_eq!(r.value, 123);
        assert_eq!(r.ts, ts);
        assert!(!r.via_union);
        assert!(c.check_history().is_ok());
    }

    #[test]
    fn sequential_writes_read_latest() {
        let mut c = RegisterCluster::bounded(1).seed(2).build();
        let w = c.client(0);
        for v in 1..=10 {
            c.write(w, v).unwrap();
        }
        let r = c.read(c.client(1)).unwrap();
        assert_eq!(r.value, 10);
        assert!(c.check_history().is_ok());
    }

    #[test]
    fn lemma2_propagation_bound_holds() {
        let mut c = RegisterCluster::bounded(1).seed(3).build();
        let w = c.client(0);
        for v in 1..=5 {
            let ts = c.write(w, v).unwrap();
            let stored = c.servers_storing(v, &ts);
            assert!(
                stored >= c.cfg.propagation_bound(),
                "write {v}: {stored} servers < 3f+1 = {}",
                c.cfg.propagation_bound()
            );
        }
    }

    #[test]
    fn works_with_each_byzantine_strategy() {
        for (i, strat) in ByzStrategy::all().into_iter().enumerate() {
            let mut c =
                RegisterCluster::bounded(1).byzantine_tail(strat).seed(100 + i as u64).build();
            let w = c.client(0);
            c.write(w, 7).unwrap_or_else(|e| panic!("write under {strat:?}: {e:?}"));
            let r = c.read(c.client(1)).unwrap_or_else(|e| panic!("read under {strat:?}: {e:?}"));
            assert_eq!(r.value, 7, "value under {strat:?}");
            assert!(c.check_history().is_ok(), "history under {strat:?}");
        }
    }

    #[test]
    fn concurrent_write_and_read_satisfy_regularity() {
        let mut c = RegisterCluster::bounded(1).clients(3).seed(5).build();
        let w = c.client(0);
        c.write(w, 1).unwrap();
        let evs = c.run_concurrent(&[(0, Op::Write(2)), (1, Op::Read), (2, Op::Read)]);
        assert!(evs.iter().all(|e| e.is_some()), "all ops must terminate");
        c.settle(50_000);
        assert!(c.check_history().is_ok());
    }

    #[test]
    fn unbounded_base_works_fault_free() {
        let mut c = RegisterCluster::unbounded(1).seed(6).build();
        let w = c.client(0);
        c.write(w, 9).unwrap();
        assert_eq!(c.read(c.client(1)).unwrap().value, 9);
        assert!(c.check_history().is_ok());
    }

    #[test]
    fn stabilizes_after_total_corruption() {
        let mut c = RegisterCluster::bounded(1).seed(7).build();
        let w = c.client(0);
        c.write(w, 1).unwrap();
        c.corrupt_everything(CorruptionSeverity::Heavy);
        // Assumption 1: the first post-fault write runs to completion.
        c.write(w, 2).unwrap();
        let t_stable = c.now();
        // Every subsequent read must satisfy regularity.
        for _ in 0..5 {
            let r = c.read(c.client(1)).unwrap();
            assert!(r.value == 2 || r.value == 0 || r.value == 1 || r.value > 2);
        }
        assert!(
            c.check_history_from(t_stable).is_ok(),
            "suffix after first complete write must be regular"
        );
    }

    #[test]
    fn genesis_read_without_writes() {
        let mut c = RegisterCluster::bounded(1).seed(8).build();
        let r = c.read(c.client(0)).unwrap();
        assert_eq!(r.value, 0);
        assert!(c.check_history().is_ok());
    }

    #[test]
    fn threaded_backend_runs_the_same_scenario() {
        let mut c = RegisterCluster::bounded(1).clients(2).seed(21).build_threaded();
        assert_eq!(c.backend(), Backend::Threaded);
        let (w, r) = (c.client(0), c.client(1));
        for v in 1..=5 {
            c.write(w, v).unwrap();
        }
        assert_eq!(c.read(r).unwrap().value, 5);
        assert!(c.check_history().is_ok());
        let m = c.metrics();
        assert!(m.messages_sent > 0 && m.messages_delivered > 0, "{m:?}");
        c.stop();
    }

    #[test]
    fn backend_switch_selects_runtime() {
        for backend in [Backend::Sim, Backend::Threaded] {
            let mut c = RegisterCluster::bounded(1).seed(22).backend(backend).build_any();
            assert_eq!(c.backend(), backend);
            let w = c.client(0);
            c.write(w, 77).unwrap();
            assert_eq!(c.read(c.client(1)).unwrap().value, 77, "{backend:?}");
            assert!(c.check_history().is_ok(), "{backend:?}");
            c.stop();
        }
    }

    #[test]
    fn deadline_exhausts_write_when_quorum_is_gone() {
        let policy =
            RetryPolicy { max_attempts: 2, deadline: 200, backoff_base: 10, backoff_max: 40 };
        let mut c = RegisterCluster::bounded(1).seed(30).retry(policy).build();
        let w = c.client(0);
        c.write(w, 1).unwrap();
        // Two crashed servers leave 4 < n − f = 5 repliers: phase 1 stalls,
        // the deadline fires, and both attempts burn out.
        c.sim.crash(0);
        c.sim.crash(1);
        let out = c.write_outcome(w, 2);
        assert_eq!(out, OpOutcome::Exhausted { attempts: 2 }, "{out:?}");
        // The failed write is permanently concurrent, never a violation.
        assert!(c.check_history().is_ok());
    }

    #[test]
    fn retries_ride_out_a_healed_link_cut() {
        use sbft_net::LinkFault;
        let mut c = RegisterCluster::bounded(1).seed(31).retry(RetryPolicy::chaos()).build();
        let w = c.client(0);
        c.write(w, 1).unwrap();
        // Cut the writer off from two servers: no quorum, writes exhaust.
        for s in [0usize, 1] {
            c.sim.set_link_fault(w, s, Some(LinkFault::cut()));
            c.sim.set_link_fault(s, w, Some(LinkFault::cut()));
        }
        let out = c.write_outcome(w, 2);
        assert!(!out.is_ok(), "{out:?}");
        for s in [0usize, 1] {
            c.sim.set_link_fault(w, s, None);
            c.sim.set_link_fault(s, w, None);
        }
        let out = c.write_outcome(w, 3);
        assert!(out.is_ok(), "post-heal write must complete: {out:?}");
        let r = c.read_outcome(c.client(1));
        assert!(r.is_ok(), "{r:?}");
        c.settle(50_000);
        assert!(c.check_history().is_ok());
    }

    #[test]
    fn durable_cluster_recovers_server_from_damaged_disk() {
        use sbft_net::nemesis::{NemesisEvent, NemesisSchedule};
        use sbft_storage::DiskFault;
        let mut c = RegisterCluster::bounded(1).seed(40).durable().build();
        let w = c.client(0);
        for v in 1..=6 {
            c.write(w, v).unwrap();
        }
        let disks = c.disks.clone().expect("durable cluster has disks");
        assert!(disks.get(0).stats().appends > 0, "servers persist applied writes");
        let sched = NemesisSchedule::scripted(vec![
            (0, NemesisEvent::Crash(0)),
            (1, NemesisEvent::CrashRecover { pid: 0, fault: DiskFault::LostSuffix }),
        ]);
        let mut runner = c.nemesis_runner(sched, vec![], ByzStrategy::Silent);
        assert!(runner.fire_next(&mut c.sim));
        assert!(runner.fire_next(&mut c.sim));
        assert_eq!(runner.cures.len(), 1, "recovery counts as a cure");
        // The recovered server rejoined with the synced prefix of its
        // state; normal operation continues and regularity holds.
        let srv = c.server_state(0).expect("recovered server is honest");
        assert!(srv.writes_applied > 0, "state came back from disk, not genesis");
        c.write(w, 7).unwrap();
        assert_eq!(c.read(c.client(1)).unwrap().value, 7);
        assert!(c.check_history().is_ok());
    }

    #[test]
    fn durable_cluster_byte_identical_across_backends() {
        let digests = |threaded: bool| {
            let b = RegisterCluster::bounded(1).seed(41).durable();
            let mut c = if threaded {
                b.backend(Backend::Threaded).build_any()
            } else {
                b.backend(Backend::Sim).build_any()
            };
            let w = c.client(0);
            for v in 1..=9 {
                c.write(w, v).unwrap();
            }
            c.settle(200_000);
            let d = c.disks.clone().unwrap().digests();
            c.stop();
            d
        };
        assert_eq!(digests(false), digests(true), "same writes, same bytes on disk");
    }

    #[test]
    fn threaded_backend_recovers_from_corruption() {
        let mut c = RegisterCluster::bounded(1).seed(23).build_threaded();
        let w = c.client(0);
        c.write(w, 1).unwrap();
        c.corrupt_everything(CorruptionSeverity::Heavy);
        // Assumption 1: first post-fault write completes; suffix regular.
        c.write(w, 2).unwrap();
        let t_stable = c.now();
        for _ in 0..3 {
            let _ = c.read(c.client(1));
        }
        assert!(c.check_history_from(t_stable).is_ok());
        c.stop();
    }
}
