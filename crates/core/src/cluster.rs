//! One-call assembly of a simulated register cluster, with blocking-style
//! operation helpers and integrated history recording — the scenario driver
//! shared by tests, examples, benches and the experiment harness.
//!
//! ```
//! use sbft_core::cluster::RegisterCluster;
//!
//! let mut cluster = RegisterCluster::bounded(1).clients(2).seed(7).build();
//! let (w, r) = (cluster.client(0), cluster.client(1));
//! cluster.write(w, 10).unwrap();
//! assert_eq!(cluster.read(r).unwrap().value, 10);
//! assert!(cluster.check_history().is_ok());
//! ```

use std::collections::BTreeMap;

use sbft_labels::{BoundedLabeling, LabelingSystem, MwmrLabeling, UnboundedLabeling};
use sbft_net::corruption::FaultPlan;
use sbft_net::{CorruptionSeverity, DelayModel, NetMetrics, ProcessId, SimConfig, Simulation};

use crate::adversary::{random_message, ByzServer, ByzStrategy, ScriptedServer};
use crate::byzclient::{ByzClient, ByzReaderStrategy};
use crate::client::Client;
use crate::config::ClusterConfig;
use crate::messages::{ClientEvent, Msg, Value};
use crate::reader::ReaderOptions;
use crate::server::Server;
use crate::spec::{HistoryRecorder, OpKind, RegularityError};
use crate::{Sys, Ts};

/// Why a blocking operation helper failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpError {
    /// The read returned `abort` (servers in a transitory phase).
    Aborted,
    /// The event budget ran out or the simulation went quiet before the
    /// operation completed.
    Stuck,
}

/// A successful read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadOk<B: LabelingSystem> {
    /// The value read.
    pub value: Value,
    /// The timestamp witnessing it.
    pub ts: Ts<B>,
    /// Whether the union-graph fallback decided.
    pub via_union: bool,
}

/// An operation request for [`RegisterCluster::run_concurrent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// `write(value)`.
    Write(Value),
    /// `read()`.
    Read,
}

/// Builder for a [`RegisterCluster`].
pub struct ClusterBuilder<B: LabelingSystem> {
    cfg: ClusterConfig,
    base: B,
    n_clients: usize,
    byz: BTreeMap<usize, ByzStrategy>,
    scripted: Vec<usize>,
    hostile_clients: Vec<ByzReaderStrategy>,
    seed: u64,
    delay: DelayModel,
    trace: usize,
    reader_opts: ReaderOptions,
}

impl<B: LabelingSystem> ClusterBuilder<B> {
    /// Start from a config and base labeling system.
    pub fn new(cfg: ClusterConfig, base: B) -> Self {
        Self {
            cfg,
            base,
            n_clients: 2,
            byz: BTreeMap::new(),
            scripted: Vec::new(),
            hostile_clients: Vec::new(),
            seed: 0,
            delay: DelayModel::uniform(1, 10),
            trace: 0,
            reader_opts: ReaderOptions::default(),
        }
    }

    /// Number of clients to attach (default 2).
    pub fn clients(mut self, n: usize) -> Self {
        self.n_clients = n.max(1);
        self
    }

    /// Make server `idx` Byzantine with the given strategy.
    pub fn byzantine(mut self, idx: usize, strategy: ByzStrategy) -> Self {
        assert!(idx < self.cfg.n);
        self.byz.insert(idx, strategy);
        self
    }

    /// Make the *last* `f` servers Byzantine with one strategy.
    pub fn byzantine_tail(mut self, strategy: ByzStrategy) -> Self {
        for idx in self.cfg.n - self.cfg.f..self.cfg.n {
            self.byz.insert(idx, strategy);
        }
        self
    }

    /// Make server `idx` a fully scripted (driver-controlled) adversary.
    pub fn scripted(mut self, idx: usize) -> Self {
        assert!(idx < self.cfg.n);
        self.scripted.push(idx);
        self
    }

    /// Attach a Byzantine (hostile) client after the correct clients. Its
    /// pid is reported by [`RegisterCluster::hostile_client`]; kick it
    /// with [`RegisterCluster::kick_hostile`] to emit traffic volleys.
    pub fn hostile_client(mut self, strategy: ByzReaderStrategy) -> Self {
        self.hostile_clients.push(strategy);
        self
    }

    /// Simulation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Message delay model (default uniform 1..=10).
    pub fn delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Enable the simulator's debug trace.
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace = capacity;
        self
    }

    /// Reader ablation switches.
    pub fn reader_options(mut self, opts: ReaderOptions) -> Self {
        self.reader_opts = opts;
        self
    }

    /// Assemble the cluster.
    pub fn build(self) -> RegisterCluster<B> {
        let sys: Sys<B> = MwmrLabeling::new(self.base.clone());
        let sim_cfg = SimConfig { seed: self.seed, delay: self.delay, trace_capacity: self.trace };
        let mut sim: Simulation<Msg<Ts<B>>, ClientEvent<Ts<B>>> = Simulation::new(sim_cfg);

        for s in 0..self.cfg.n {
            if self.scripted.contains(&s) {
                sim.add_process(Box::new(ScriptedServer::<B>::new(sys.clone())));
            } else if let Some(&strategy) = self.byz.get(&s) {
                sim.add_process(Box::new(ByzServer::new(sys.clone(), self.cfg, strategy)));
            } else {
                sim.add_process(Box::new(Server::new(sys.clone(), self.cfg)));
            }
        }
        for c in 0..self.n_clients {
            let pid = self.cfg.client_pid(c);
            sim.add_process(Box::new(Client::new(
                sys.clone(),
                self.cfg,
                pid as u32,
                self.reader_opts,
            )));
        }
        let mut hostile_pids = Vec::new();
        for strategy in &self.hostile_clients {
            let pid = sim.add_process(Box::new(ByzClient::new(sys.clone(), self.cfg, *strategy)));
            hostile_pids.push(pid);
        }

        RegisterCluster {
            sim,
            cfg: self.cfg,
            sys,
            n_clients: self.n_clients,
            hostile_pids,
            recorder: HistoryRecorder::new(),
            op_budget: 400_000,
        }
    }
}

/// A simulated register cluster: servers + clients + recorder.
pub struct RegisterCluster<B: LabelingSystem> {
    /// The underlying simulation (exposed for schedule steering).
    pub sim: Simulation<Msg<Ts<B>>, ClientEvent<Ts<B>>>,
    /// Cluster arithmetic.
    pub cfg: ClusterConfig,
    /// The MWMR labeling system in use.
    pub sys: Sys<B>,
    n_clients: usize,
    hostile_pids: Vec<ProcessId>,
    /// Operation history (public so experiments can inspect records).
    pub recorder: HistoryRecorder<B>,
    /// Max simulator events per blocking operation.
    pub op_budget: u64,
}

impl RegisterCluster<BoundedLabeling> {
    /// Builder for the paper's protocol: bounded labels, `n = 5f + 1`.
    pub fn bounded(f: usize) -> ClusterBuilder<BoundedLabeling> {
        let cfg = ClusterConfig::stabilizing(f);
        ClusterBuilder::new(cfg, BoundedLabeling::new(cfg.label_k()))
    }

    /// Builder with explicit `n` (e.g. `n = 5f` for the lower bound).
    pub fn bounded_with_n(n: usize, f: usize) -> ClusterBuilder<BoundedLabeling> {
        let cfg = ClusterConfig::with_n(n, f);
        ClusterBuilder::new(cfg, BoundedLabeling::new(cfg.label_k()))
    }
}

impl RegisterCluster<UnboundedLabeling> {
    /// Builder for the same protocol over unbounded timestamps (used by
    /// E6 to isolate the effect of boundedness).
    pub fn unbounded(f: usize) -> ClusterBuilder<UnboundedLabeling> {
        let cfg = ClusterConfig::stabilizing(f);
        ClusterBuilder::new(cfg, UnboundedLabeling)
    }
}

impl<B: LabelingSystem> RegisterCluster<B> {
    /// Pid of the `i`-th client.
    pub fn client(&self, i: usize) -> ProcessId {
        assert!(i < self.n_clients, "client {i} not attached");
        self.cfg.client_pid(i)
    }

    /// Number of attached clients.
    pub fn client_count(&self) -> usize {
        self.n_clients
    }

    /// Pid of the `i`-th hostile (Byzantine) client.
    pub fn hostile_client(&self, i: usize) -> ProcessId {
        self.hostile_pids[i]
    }

    /// Kick every hostile client once (each kick triggers a volley of
    /// hostile traffic; server replies re-trigger throttled volleys).
    pub fn kick_hostile(&mut self) {
        for i in 0..self.hostile_pids.len() {
            let pid = self.hostile_pids[i];
            self.sim.inject(pid, Msg::InvokeRead);
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.sim.now()
    }

    /// Network metrics so far.
    pub fn metrics(&self) -> &NetMetrics {
        self.sim.metrics()
    }

    /// Non-blocking: start a write on `client`. The invocation instant is
    /// recorded as `now + 1`: the command reaches the client only after at
    /// least one tick of channel delay, so an operation completing at time
    /// `t` strictly precedes one invoked at the same driver step.
    pub fn invoke_write(&mut self, client: ProcessId, value: Value) {
        self.recorder
            .begin_with_intent(client, OpKind::Write, self.sim.now() + 1, Some(value));
        self.sim.inject(client, Msg::InvokeWrite { value });
    }

    /// Non-blocking: start a read on `client` (timing as for writes).
    pub fn invoke_read(&mut self, client: ProcessId) {
        self.recorder.begin(client, OpKind::Read, self.sim.now() + 1);
        self.sim.inject(client, Msg::InvokeRead);
    }

    /// Pump the simulation until `client` emits a terminal event (recording
    /// every event from every client along the way).
    pub fn await_client(&mut self, client: ProcessId) -> Result<ClientEvent<Ts<B>>, OpError> {
        let mut budget = self.op_budget;
        while budget > 0 {
            let Some(ev) = self.sim.step() else {
                return Err(OpError::Stuck); // network drained, op incomplete
            };
            budget -= 1;
            let time = ev.time;
            let pid = ev.pid;
            for out in ev.outputs {
                self.recorder.complete(pid, time, &out);
                if pid == client {
                    return Ok(out);
                }
            }
        }
        Err(OpError::Stuck)
    }

    /// Blocking write: returns the installed timestamp.
    pub fn write(&mut self, client: ProcessId, value: Value) -> Result<Ts<B>, OpError> {
        self.invoke_write(client, value);
        match self.await_client(client)? {
            ClientEvent::WriteDone { ts, .. } => Ok(ts),
            other => unreachable!("write terminated by non-write event {other:?}"),
        }
    }

    /// Blocking read.
    pub fn read(&mut self, client: ProcessId) -> Result<ReadOk<B>, OpError> {
        self.invoke_read(client);
        match self.await_client(client)? {
            ClientEvent::ReadDone { value, ts, via_union } => Ok(ReadOk { value, ts, via_union }),
            ClientEvent::ReadAborted => Err(OpError::Aborted),
            other => unreachable!("read terminated by non-read event {other:?}"),
        }
    }

    /// Launch several operations concurrently (one per distinct client
    /// index) and run until each has terminated (or the budget runs out).
    /// Returns the terminal event per client index, in input order.
    pub fn run_concurrent(&mut self, ops: &[(usize, Op)]) -> Vec<Option<ClientEvent<Ts<B>>>> {
        let mut pending: BTreeMap<ProcessId, usize> = BTreeMap::new();
        for (slot, &(ci, op)) in ops.iter().enumerate() {
            let pid = self.client(ci);
            assert!(
                pending.insert(pid, slot).is_none(),
                "one concurrent op per client"
            );
            match op {
                Op::Write(v) => self.invoke_write(pid, v),
                Op::Read => self.invoke_read(pid),
            }
        }
        let mut results: Vec<Option<ClientEvent<Ts<B>>>> = vec![None; ops.len()];
        let mut budget = self.op_budget;
        while !pending.is_empty() && budget > 0 {
            let Some(ev) = self.sim.step() else { break };
            budget -= 1;
            let (time, pid) = (ev.time, ev.pid);
            for out in ev.outputs {
                self.recorder.complete(pid, time, &out);
                if let Some(slot) = pending.remove(&pid) {
                    results[slot] = Some(out);
                }
            }
        }
        results
    }

    /// Let in-flight background traffic (late replies, forwards) drain.
    pub fn settle(&mut self, max_events: u64) {
        let mut budget = max_events;
        while budget > 0 {
            let Some(ev) = self.sim.step() else { return };
            budget -= 1;
            let (time, pid) = (ev.time, ev.pid);
            for out in ev.outputs {
                self.recorder.complete(pid, time, &out);
            }
        }
    }

    /// Transient fault: corrupt the local state of **all** servers and
    /// clients and load garbage messages on every server-adjacent channel.
    pub fn corrupt_everything(&mut self, severity: CorruptionSeverity) {
        let total = self.cfg.n + self.n_clients;
        let plan = FaultPlan::total(total, severity);
        self.apply_plan(&plan);
    }

    /// Transient fault hitting only the listed servers.
    pub fn corrupt_servers(&mut self, victims: &[usize], severity: CorruptionSeverity) {
        let plan = FaultPlan::targeting(victims, self.cfg.n + self.n_clients, severity);
        self.apply_plan(&plan);
    }

    fn apply_plan(&mut self, plan: &FaultPlan) {
        let sys = self.sys.clone();
        let cfg = self.cfg;
        self.sim.apply_fault(plan, move |rng| random_message::<B>(&sys, &cfg, rng));
    }

    /// Check the whole recorded history against MWMR regularity.
    pub fn check_history(&self) -> Result<(), Vec<RegularityError>> {
        self.recorder.check(&self.sys)
    }

    /// Check only the suffix from `t` (pseudo-stabilization verdict).
    pub fn check_history_from(&self, t: u64) -> Result<(), Vec<RegularityError>> {
        self.recorder.check_from(&self.sys, t)
    }

    /// Typed access to an honest server's state (None for adversaries).
    pub fn server_state(&mut self, idx: usize) -> Option<&mut Server<B>> {
        self.sim
            .process_mut(idx)
            .as_any_mut()?
            .downcast_mut::<Server<B>>()
    }

    /// Typed access to a scripted server (None otherwise).
    pub fn scripted_server(&mut self, idx: usize) -> Option<&mut ScriptedServer<B>> {
        self.sim
            .process_mut(idx)
            .as_any_mut()?
            .downcast_mut::<ScriptedServer<B>>()
    }

    /// Typed access to a client's state.
    pub fn client_state(&mut self, i: usize) -> Option<&mut Client<B>> {
        let pid = self.client(i);
        self.sim
            .process_mut(pid)
            .as_any_mut()?
            .downcast_mut::<Client<B>>()
    }

    /// Count of honest servers currently storing `(value, ts)` — the
    /// Lemma 2 propagation measurement of experiment E3.
    pub fn servers_storing(&mut self, value: Value, ts: &Ts<B>) -> usize {
        let n = self.cfg.n;
        (0..n)
            .filter(|&s| {
                self.server_state(s)
                    .map(|srv| srv.value == value && &srv.ts == ts)
                    .unwrap_or(false)
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_write_read_roundtrip() {
        let mut c = RegisterCluster::bounded(1).seed(1).build();
        let w = c.client(0);
        let ts = c.write(w, 123).unwrap();
        let r = c.read(c.client(1)).unwrap();
        assert_eq!(r.value, 123);
        assert_eq!(r.ts, ts);
        assert!(!r.via_union);
        assert!(c.check_history().is_ok());
    }

    #[test]
    fn sequential_writes_read_latest() {
        let mut c = RegisterCluster::bounded(1).seed(2).build();
        let w = c.client(0);
        for v in 1..=10 {
            c.write(w, v).unwrap();
        }
        let r = c.read(c.client(1)).unwrap();
        assert_eq!(r.value, 10);
        assert!(c.check_history().is_ok());
    }

    #[test]
    fn lemma2_propagation_bound_holds() {
        let mut c = RegisterCluster::bounded(1).seed(3).build();
        let w = c.client(0);
        for v in 1..=5 {
            let ts = c.write(w, v).unwrap();
            let stored = c.servers_storing(v, &ts);
            assert!(
                stored >= c.cfg.propagation_bound(),
                "write {v}: {stored} servers < 3f+1 = {}",
                c.cfg.propagation_bound()
            );
        }
    }

    #[test]
    fn works_with_each_byzantine_strategy() {
        for (i, strat) in ByzStrategy::all().into_iter().enumerate() {
            let mut c = RegisterCluster::bounded(1)
                .byzantine_tail(strat)
                .seed(100 + i as u64)
                .build();
            let w = c.client(0);
            c.write(w, 7).unwrap_or_else(|e| panic!("write under {strat:?}: {e:?}"));
            let r = c.read(c.client(1)).unwrap_or_else(|e| panic!("read under {strat:?}: {e:?}"));
            assert_eq!(r.value, 7, "value under {strat:?}");
            assert!(c.check_history().is_ok(), "history under {strat:?}");
        }
    }

    #[test]
    fn concurrent_write_and_read_satisfy_regularity() {
        let mut c = RegisterCluster::bounded(1).clients(3).seed(5).build();
        let w = c.client(0);
        c.write(w, 1).unwrap();
        let evs = c.run_concurrent(&[(0, Op::Write(2)), (1, Op::Read), (2, Op::Read)]);
        assert!(evs.iter().all(|e| e.is_some()), "all ops must terminate");
        c.settle(50_000);
        assert!(c.check_history().is_ok());
    }

    #[test]
    fn unbounded_base_works_fault_free() {
        let mut c = RegisterCluster::unbounded(1).seed(6).build();
        let w = c.client(0);
        c.write(w, 9).unwrap();
        assert_eq!(c.read(c.client(1)).unwrap().value, 9);
        assert!(c.check_history().is_ok());
    }

    #[test]
    fn stabilizes_after_total_corruption() {
        let mut c = RegisterCluster::bounded(1).seed(7).build();
        let w = c.client(0);
        c.write(w, 1).unwrap();
        c.corrupt_everything(CorruptionSeverity::Heavy);
        // Assumption 1: the first post-fault write runs to completion.
        c.write(w, 2).unwrap();
        let t_stable = c.now();
        // Every subsequent read must satisfy regularity.
        for _ in 0..5 {
            let r = c.read(c.client(1)).unwrap();
            assert!(r.value == 2 || r.value == 0 || r.value == 1 || r.value > 2);
        }
        assert!(
            c.check_history_from(t_stable).is_ok(),
            "suffix after first complete write must be regular"
        );
    }

    #[test]
    fn genesis_read_without_writes() {
        let mut c = RegisterCluster::bounded(1).seed(8).build();
        let r = c.read(c.client(0)).unwrap();
        assert_eq!(r.value, 0);
        assert!(c.check_history().is_ok());
    }
}
