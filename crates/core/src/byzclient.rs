//! Byzantine **clients** — validating the paper's concluding remark:
//!
//! > "when reader clients are Byzantine our protocol still verifies the
//! > MWMR regular register specification. That is, the read protocol is
//! > performed in one phase so Byzantine readers cannot modify the value
//! > and the timestamp maintained by the correct servers."
//!
//! A Byzantine reader can only *send* `READ`/`FLUSH`/`COMPLETE_READ`
//! messages (none of which mutate a server's register state) and flood
//! servers with garbage. The strategies here exercise exactly that attack
//! surface; experiment E11 measures that correct clients' operations keep
//! terminating with correct values while the hostile client sprays the
//! cluster.
//!
//! Note the claim is deliberately about **readers**: a Byzantine *writer*
//! is indistinguishable from a correct writer writing attacker-chosen
//! values — the register's spec says nothing about value provenance.

use rand::Rng;
use sbft_labels::LabelingSystem;
use sbft_net::{Automaton, Ctx, ProcessId, ENV};

use crate::adversary::random_message;
use crate::config::ClusterConfig;
use crate::messages::{ClientEvent, Msg};
use crate::{Sys, Ts};

/// Hostile reader behaviours.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ByzReaderStrategy {
    /// Spray `READ`s with random labels at every server, never completing
    /// any of them (bloats `running_read` tables and triggers forwarding
    /// traffic on every write).
    ReadFlood,
    /// Send `COMPLETE_READ`/`FLUSH` with random labels (tries to confuse
    /// server-side read bookkeeping and other readers' flush certificates
    /// — it cannot, because bookkeeping is per-client).
    ControlNoise,
    /// Fully random well-typed protocol messages, including `WRITE`s with
    /// forged timestamps. The `WRITE`s do mutate servers — but only like
    /// any legitimate write would, which is the boundary of the claim
    /// (and the witness threshold keeps lone forgeries invisible to
    /// readers).
    GarbageSpray,
}

/// A Byzantine client driven by the simulation clock: on every `ENV` kick
/// it emits one volley of hostile traffic. Drive it by injecting arbitrary
/// commands (e.g. `Msg::InvokeRead`) at the cadence the scenario wants.
pub struct ByzClient<B: LabelingSystem> {
    sys: Sys<B>,
    cfg: ClusterConfig,
    strategy: ByzReaderStrategy,
    /// Volleys emitted (diagnostics).
    pub volleys: u64,
}

impl<B: LabelingSystem> ByzClient<B> {
    /// New hostile client.
    pub fn new(sys: Sys<B>, cfg: ClusterConfig, strategy: ByzReaderStrategy) -> Self {
        Self { sys, cfg, strategy, volleys: 0 }
    }
}

impl<B: LabelingSystem> Automaton<Msg<Ts<B>>, ClientEvent<Ts<B>>> for ByzClient<B> {
    fn on_message(
        &mut self,
        from: ProcessId,
        _msg: Msg<Ts<B>>,
        ctx: &mut Ctx<'_, Msg<Ts<B>>, ClientEvent<Ts<B>>>,
    ) {
        // Any stimulus — an ENV kick or any server reply — triggers a
        // volley, so the hostile client stays as chatty as the simulation
        // allows without flooding the event queue unboundedly.
        if from != ENV && self.volleys > 0 && !self.volleys.is_multiple_of(8) {
            self.volleys += 1;
            return;
        }
        self.volleys += 1;
        let n = self.cfg.n;
        match self.strategy {
            ByzReaderStrategy::ReadFlood => {
                for s in 0..n {
                    let label = ctx.rng().gen_range(0..self.cfg.read_labels as u32 * 2);
                    ctx.send(s, Msg::Read { label });
                }
            }
            ByzReaderStrategy::ControlNoise => {
                for s in 0..n {
                    let label = ctx.rng().gen_range(0..self.cfg.read_labels as u32 * 2);
                    if ctx.rng().gen::<bool>() {
                        ctx.send(s, Msg::CompleteRead { label });
                    } else {
                        ctx.send(s, Msg::Flush { label });
                    }
                }
            }
            ByzReaderStrategy::GarbageSpray => {
                for s in 0..n {
                    let sys = self.sys.clone();
                    let cfg = self.cfg;
                    let msg = random_message::<B>(&sys, &cfg, ctx.rng());
                    ctx.send(s, msg);
                }
            }
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

impl ByzReaderStrategy {
    /// The strategies that stay within the paper's "Byzantine reader"
    /// claim (no forged `WRITE`s).
    pub fn reader_only() -> [ByzReaderStrategy; 2] {
        [ByzReaderStrategy::ReadFlood, ByzReaderStrategy::ControlNoise]
    }

    /// All hostile client strategies.
    pub fn all() -> [ByzReaderStrategy; 3] {
        [
            ByzReaderStrategy::ReadFlood,
            ByzReaderStrategy::ControlNoise,
            ByzReaderStrategy::GarbageSpray,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sbft_labels::{BoundedLabeling, MwmrLabeling};

    type B = BoundedLabeling;

    #[test]
    fn volleys_target_every_server() {
        let cfg = ClusterConfig::stabilizing(1);
        let sys = MwmrLabeling::new(BoundedLabeling::new(cfg.label_k()));
        for strategy in ByzReaderStrategy::all() {
            let mut c = ByzClient::<B>::new(sys.clone(), cfg, strategy);
            let mut rng = StdRng::seed_from_u64(1);
            let mut ctx = Ctx::detached(cfg.client_pid(0), 0, &mut rng);
            c.on_message(ENV, Msg::InvokeRead, &mut ctx);
            let (sends, outs, _) = ctx.drain();
            assert_eq!(sends.len(), cfg.n, "{strategy:?}");
            assert!(outs.is_empty(), "hostile clients emit no client events");
            assert!(sends.iter().all(|(to, _)| *to < cfg.n));
        }
    }

    #[test]
    fn reader_only_strategies_never_send_writes() {
        let cfg = ClusterConfig::stabilizing(1);
        let sys = MwmrLabeling::new(BoundedLabeling::new(cfg.label_k()));
        for strategy in ByzReaderStrategy::reader_only() {
            let mut c = ByzClient::<B>::new(sys.clone(), cfg, strategy);
            let mut rng = StdRng::seed_from_u64(2);
            for round in 0..20 {
                let mut ctx = Ctx::detached(cfg.client_pid(0), round, &mut rng);
                c.on_message(ENV, Msg::InvokeRead, &mut ctx);
                let (sends, _, _) = ctx.drain();
                assert!(
                    sends.iter().all(|(_, m)| !matches!(
                        m,
                        Msg::Write { .. } | Msg::GetTs | Msg::WriteAck { .. }
                    )),
                    "{strategy:?} must stay within the reader interface"
                );
            }
        }
    }

    #[test]
    fn throttles_on_reply_storms() {
        // Server replies must not make the hostile client amplify 1:1
        // forever (that would melt the simulation, not the protocol).
        let cfg = ClusterConfig::stabilizing(1);
        let sys = MwmrLabeling::new(BoundedLabeling::new(cfg.label_k()));
        let mut c = ByzClient::<B>::new(sys.clone(), cfg, ByzReaderStrategy::ReadFlood);
        let mut rng = StdRng::seed_from_u64(3);
        let mut total = 0;
        for round in 0..64 {
            let mut ctx = Ctx::detached(cfg.client_pid(0), round, &mut rng);
            c.on_message(0, Msg::FlushAck { label: 0 }, &mut ctx);
            total += ctx.drain().0.len();
        }
        assert!(total < 64 * cfg.n, "volleys must be throttled, sent {total}");
    }
}
