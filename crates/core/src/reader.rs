//! The read state machine (Figure 2a) and the `find_read_label()` flush
//! procedure (Figure 3a), fused into one phase.
//!
//! A read proceeds as follows:
//!
//! 1. **Label selection**: pick a pool label different from the last one
//!    used ([`sbft_labels::ReadLabelPool::candidate`]).
//! 2. **Flush**: broadcast `FLUSH(ℓ)`. A server's `FLUSH_ACK(ℓ)` certifies —
//!    by channel FIFO-ness — that no stale `REPLY(…, ℓ)` from an earlier
//!    read can still be in flight from that server (Lemma 5). Each acking
//!    server joins the `safe` set and is immediately sent `READ(ℓ)`
//!    (Figure 3a line 15 merges the flush wait with the read fan-out).
//! 3. **Collect**: replies are accepted only from `safe` servers carrying
//!    the current label; superseded replies from the same server (a write
//!    landed mid-read and was forwarded) roll into the reader's
//!    `recent_vals` evidence.
//! 4. **Decide** once `≥ n − f` safe servers replied: return the value of a
//!    WTsG node with weight `≥ 2f + 1` from the local graph; else from the
//!    union graph (replies + histories); else **abort** — the servers are
//!    still transitorily corrupted.

use std::collections::{BTreeMap, BTreeSet};

use sbft_labels::{LabelingSystem, ReadLabel};
use sbft_net::ProcessId;
use sbft_wtsg::{
    build_union, select_with_policy, HistoryEntry, IncrementalWtsg, SelectionPolicy, Witness,
};

use crate::config::ClusterConfig;
use crate::messages::{ValTs, Value};
use crate::{Sys, Ts};

/// Reader behaviour knobs (ablation switches; defaults are paper-faithful).
#[derive(Clone, Copy, Debug)]
pub struct ReaderOptions {
    /// WTsG node selection rule.
    pub policy: SelectionPolicy,
    /// Whether the union-graph fallback is enabled (Figure 2a line 15).
    pub use_union: bool,
    /// Ablation: skip the FLUSH round of `find_read_label()` and treat
    /// every server as immediately safe. Loses Lemma 5's stale-reply
    /// protection — measurable as wrong reads under churn (`ablate_flush`).
    pub skip_flush: bool,
    /// Model the paper's TM_1R protocol class (Theorem 1): a one-phase
    /// read that must **return** — when no node reaches `2f + 1`
    /// witnesses it falls back to a majority-of-correct decision (`f + 1`
    /// witnesses, then any dominant node) instead of aborting. Used only
    /// by the lower-bound experiment E1.
    pub forced_return: bool,
    /// **Atomic-register extension** (not in the paper): before returning,
    /// a read writes its decided `(value, ts)` back to the servers and
    /// waits for an `n − f` quorum of acknowledgements. This propagates
    /// the returned pair to ≥ `3f + 1` correct servers, preventing the
    /// new/old inversion that regular registers permit between reads
    /// concurrent with a write (experiment E12). The price: reads become
    /// two-phase and *mutate* server state — surrendering the paper's §VI
    /// guarantee that Byzantine readers are harmless.
    pub write_back: bool,
}

impl Default for ReaderOptions {
    fn default() -> Self {
        Self {
            policy: SelectionPolicy::DominantSink,
            use_union: true,
            skip_flush: false,
            forced_return: false,
            write_back: false,
        }
    }
}

impl ReaderOptions {
    /// The atomic-register configuration: regular reads + write-back.
    pub fn atomic() -> Self {
        Self { write_back: true, ..Self::default() }
    }
}

/// What a finished read decided.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadDecision<B: LabelingSystem> {
    /// Return `value` (witnessed at `ts`); `via_union` marks the fallback.
    Return {
        /// The value to return.
        value: Value,
        /// Its witnessing timestamp.
        ts: Ts<B>,
        /// Decided by the union graph rather than the local graph.
        via_union: bool,
    },
    /// No value reached the witness threshold: abort.
    Abort,
}

/// An in-flight `read()` operation.
#[derive(Debug)]
pub struct ReadPhase<B: LabelingSystem> {
    /// The bounded label identifying this read.
    pub label: ReadLabel,
    /// Servers whose `FLUSH_ACK` arrived (eligible repliers).
    pub safe: BTreeSet<ProcessId>,
    /// Latest `(value, ts)` reply per safe server.
    pub replies: BTreeMap<ProcessId, ValTs<Ts<B>>>,
    /// The local WTsG, maintained incrementally as replies arrive: each
    /// accepted `REPLY` is applied as a testimony delta instead of
    /// rebuilding the whole graph at decision time (the E15 read
    /// hot-path optimization; equivalence with the from-scratch build is
    /// property-tested in `sbft_wtsg::incremental`).
    graph: IncrementalWtsg<Value, Ts<B>>,
}

impl<B: LabelingSystem> ReadPhase<B> {
    /// Start a read under `label` (caller broadcasts `FLUSH(label)`).
    pub fn new(label: ReadLabel) -> Self {
        Self {
            label,
            safe: BTreeSet::new(),
            replies: BTreeMap::new(),
            graph: IncrementalWtsg::new(),
        }
    }

    /// A `FLUSH_ACK(label)` arrived from `from`. Returns `true` when the
    /// server newly joined `safe` (caller then sends it `READ(label)`).
    pub fn on_flush_ack(&mut self, cfg: &ClusterConfig, from: ProcessId, label: ReadLabel) -> bool {
        if !cfg.is_server(from) || label != self.label {
            return false;
        }
        self.safe.insert(from)
    }

    /// A `REPLY` arrived. Accepts it only from safe servers with the
    /// current label; returns the superseded pair when the server had
    /// already replied (forwarded write), so the caller can fold it into
    /// `recent_vals`.
    #[allow(clippy::type_complexity)]
    pub fn on_reply(
        &mut self,
        sys: &Sys<B>,
        cfg: &ClusterConfig,
        from: ProcessId,
        value: Value,
        ts: Ts<B>,
        label: ReadLabel,
    ) -> (bool, Option<ValTs<Ts<B>>>) {
        if !cfg.is_server(from) || label != self.label || !self.safe.contains(&from) {
            return (false, None);
        }
        let ts = sys.sanitize(ts);
        self.graph.set_current(from, value, ts.clone());
        let superseded = self.replies.insert(from, (value, ts));
        (true, superseded)
    }

    /// Whether the `≥ n − f` safe-reply wait (Figure 2a line 08) is over.
    pub fn quorum_reached(&self, cfg: &ClusterConfig) -> bool {
        self.replies.len() >= cfg.quorum()
    }

    /// The decision of Figure 2a lines 09–19: local WTsG, then (optionally)
    /// the union WTsG over `recent_vals`, else abort.
    pub fn decide(
        &self,
        sys: &Sys<B>,
        cfg: &ClusterConfig,
        opts: &ReaderOptions,
        recent_vals: &BTreeMap<ProcessId, Vec<ValTs<Ts<B>>>>,
    ) -> ReadDecision<B> {
        let threshold = cfg.witness_threshold();
        // The local graph is already up to date: `on_reply` maintained it
        // delta-by-delta, so the common case (a clean quorum) decides with
        // no graph construction at all.
        if let Some(node) = select_with_policy(sys, &self.graph, threshold, opts.policy) {
            return ReadDecision::Return {
                value: node.value,
                ts: node.ts.clone(),
                via_union: false,
            };
        }

        if opts.use_union {
            let current = self.replies.iter().map(|(&s, (v, t))| Witness::new(s, *v, t.clone()));
            let histories = recent_vals.iter().map(|(&s, hist)| {
                (
                    s,
                    hist.iter()
                        .map(|(v, t)| HistoryEntry::new(*v, sys.sanitize(t.clone())))
                        .collect::<Vec<_>>(),
                )
            });
            let union = build_union(sys, current, histories);
            if let Some(node) = select_with_policy(sys, &union, threshold, opts.policy) {
                return ReadDecision::Return {
                    value: node.value,
                    ts: node.ts.clone(),
                    via_union: true,
                };
            }
        }
        if opts.forced_return {
            // TM_1R semantics: the read must return. Fall back to the
            // majority-of-correct bar (f + 1 witnesses pins one correct
            // server), then to any dominant node at all.
            for thr in [cfg.f + 1, 1] {
                if let Some(node) = select_with_policy(sys, &self.graph, thr, opts.policy) {
                    return ReadDecision::Return {
                        value: node.value,
                        ts: node.ts.clone(),
                        via_union: false,
                    };
                }
            }
        }
        ReadDecision::Abort
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_labels::{BoundedLabeling, MwmrLabeling};

    type B = BoundedLabeling;

    fn setup() -> (Sys<B>, ClusterConfig) {
        let cfg = ClusterConfig::stabilizing(1); // n=6, quorum=5, threshold=3
        (MwmrLabeling::new(BoundedLabeling::new(cfg.label_k())), cfg)
    }

    fn ts_of(sys: &Sys<B>, gen: u32) -> Ts<B> {
        let mut t = sys.genesis();
        for _ in 0..gen {
            t = sys.next_for(1, std::slice::from_ref(&t));
        }
        t
    }

    #[test]
    fn flush_acks_build_safe_set() {
        let (_sys, cfg) = setup();
        let mut r = ReadPhase::<B>::new(2);
        assert!(r.on_flush_ack(&cfg, 0, 2));
        assert!(!r.on_flush_ack(&cfg, 0, 2), "duplicate ack not new");
        assert!(!r.on_flush_ack(&cfg, 1, 3), "wrong label rejected");
        assert!(!r.on_flush_ack(&cfg, cfg.client_pid(0), 2), "non-server rejected");
        assert_eq!(r.safe.len(), 1);
    }

    #[test]
    fn replies_only_from_safe_servers() {
        let (sys, cfg) = setup();
        let mut r = ReadPhase::<B>::new(1);
        let t = ts_of(&sys, 1);
        let (ok, _) = r.on_reply(&sys, &cfg, 3, 7, t.clone(), 1);
        assert!(!ok, "server 3 is not safe yet");
        r.on_flush_ack(&cfg, 3, 1);
        let (ok, prev) = r.on_reply(&sys, &cfg, 3, 7, t.clone(), 1);
        assert!(ok);
        assert!(prev.is_none());
        // A forwarded write supersedes; previous pair is surfaced.
        let t2 = sys.next_for(2, std::slice::from_ref(&t));
        let (ok, prev) = r.on_reply(&sys, &cfg, 3, 8, t2, 1);
        assert!(ok);
        assert_eq!(prev, Some((7, t)));
    }

    #[test]
    fn unanimous_quorum_returns_locally() {
        let (sys, cfg) = setup();
        let mut r = ReadPhase::<B>::new(0);
        let t = ts_of(&sys, 1);
        for s in 0..5 {
            r.on_flush_ack(&cfg, s, 0);
            r.on_reply(&sys, &cfg, s, 42, t.clone(), 0);
        }
        assert!(r.quorum_reached(&cfg));
        let d = r.decide(&sys, &cfg, &ReaderOptions::default(), &BTreeMap::new());
        assert_eq!(d, ReadDecision::Return { value: 42, ts: t, via_union: false });
    }

    #[test]
    fn byzantine_minority_cannot_hijack() {
        let (sys, cfg) = setup();
        let mut r = ReadPhase::<B>::new(0);
        let t = ts_of(&sys, 1);
        for s in 0..5 {
            r.on_flush_ack(&cfg, s, 0);
        }
        for s in 0..4 {
            r.on_reply(&sys, &cfg, s, 42, t.clone(), 0);
        }
        // One Byzantine server echoes the honest ts with a forged value.
        r.on_reply(&sys, &cfg, 4, 666, t.clone(), 0);
        let d = r.decide(&sys, &cfg, &ReaderOptions::default(), &BTreeMap::new());
        assert_eq!(d, ReadDecision::Return { value: 42, ts: t, via_union: false });
    }

    #[test]
    fn split_replies_fall_back_to_union() {
        let (sys, cfg) = setup();
        let mut r = ReadPhase::<B>::new(0);
        let t1 = ts_of(&sys, 1);
        let t2 = sys.next_for(2, std::slice::from_ref(&t1));
        for s in 0..5 {
            r.on_flush_ack(&cfg, s, 0);
        }
        // Mid-write split: 2 servers already at t2, 3 still at t1 — no
        // value reaches 3 witnesses locally... (2 vs 3: t1 has exactly 3).
        // Make it 2/2/1 to force the union path.
        let t0 = sys.genesis();
        r.on_reply(&sys, &cfg, 0, 2, t2.clone(), 0);
        r.on_reply(&sys, &cfg, 1, 2, t2.clone(), 0);
        r.on_reply(&sys, &cfg, 2, 1, t1.clone(), 0);
        r.on_reply(&sys, &cfg, 3, 1, t1.clone(), 0);
        r.on_reply(&sys, &cfg, 4, 0, t0.clone(), 0);
        // Histories: the two t2 adopters both saw (1, t1) before.
        let mut recent = BTreeMap::new();
        recent.insert(0, vec![(1, t1.clone())]);
        recent.insert(1, vec![(1, t1.clone())]);
        let d = r.decide(&sys, &cfg, &ReaderOptions::default(), &recent);
        assert_eq!(d, ReadDecision::Return { value: 1, ts: t1, via_union: true });
    }

    #[test]
    fn union_disabled_aborts_on_split() {
        let (sys, cfg) = setup();
        let mut r = ReadPhase::<B>::new(0);
        let t1 = ts_of(&sys, 1);
        let t2 = sys.next_for(2, std::slice::from_ref(&t1));
        let t0 = sys.genesis();
        for s in 0..5 {
            r.on_flush_ack(&cfg, s, 0);
        }
        r.on_reply(&sys, &cfg, 0, 2, t2.clone(), 0);
        r.on_reply(&sys, &cfg, 1, 2, t2, 0);
        r.on_reply(&sys, &cfg, 2, 1, t1.clone(), 0);
        r.on_reply(&sys, &cfg, 3, 1, t1.clone(), 0);
        r.on_reply(&sys, &cfg, 4, 0, t0, 0);
        let mut recent = BTreeMap::new();
        recent.insert(0, vec![(1, t1.clone())]);
        recent.insert(1, vec![(1, t1)]);
        let opts = ReaderOptions { use_union: false, ..Default::default() };
        assert_eq!(r.decide(&sys, &cfg, &opts, &recent), ReadDecision::Abort);
    }

    #[test]
    fn corrupted_scatter_aborts() {
        let (sys, cfg) = setup();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let mut r = ReadPhase::<B>::new(0);
        for s in 0..5 {
            r.on_flush_ack(&cfg, s, 0);
            // Five servers, five different corrupted pairs.
            r.on_reply(&sys, &cfg, s, 100 + s as u64, sys.arbitrary(&mut rng), 0);
        }
        let d = r.decide(&sys, &cfg, &ReaderOptions::default(), &BTreeMap::new());
        assert_eq!(d, ReadDecision::Abort);
    }

    #[test]
    fn concurrent_reads_prefer_latest_quorumed_value() {
        let (sys, cfg) = setup();
        let mut r = ReadPhase::<B>::new(0);
        let t1 = ts_of(&sys, 1);
        let t2 = sys.next_for(2, std::slice::from_ref(&t1));
        for s in 0..6 {
            r.on_flush_ack(&cfg, s, 0);
        }
        // Both the old and the new value have >= 3 witnesses (read
        // concurrent with a write caught mid-flight on 6 servers).
        for s in 0..3 {
            r.on_reply(&sys, &cfg, s, 1, t1.clone(), 0);
        }
        for s in 3..6 {
            r.on_reply(&sys, &cfg, s, 2, t2.clone(), 0);
        }
        let d = r.decide(&sys, &cfg, &ReaderOptions::default(), &BTreeMap::new());
        assert_eq!(d, ReadDecision::Return { value: 2, ts: t2, via_union: false });
    }
}
