//! Typed single-writer multi-reader facade (the paper's §IV-B protocol).
//!
//! The paper presents the SWMR register first and derives MWMR by tagging
//! timestamps with writer identities (§IV-D). The implementation runs the
//! MWMR machinery throughout (an SWMR system is an MWMR system with one
//! writer), but the *interface* discipline — exactly one client may write —
//! is worth enforcing at the type level: [`SwmrHandle::writer`] hands out
//! a unique [`WriterHandle`]; every other client is a [`ReaderHandle`]
//! that simply has no write method.
//!
//! ```
//! use sbft_core::cluster::RegisterCluster;
//! use sbft_core::swmr::SwmrHandle;
//!
//! let cluster = RegisterCluster::bounded(1).clients(3).seed(9).build();
//! let mut swmr = SwmrHandle::new(cluster);
//! let w = swmr.writer().expect("first claim succeeds");
//! assert!(swmr.writer().is_none(), "the writer handle is unique");
//! let r = swmr.reader(1);
//!
//! swmr.write(&w, 5).unwrap();
//! assert_eq!(swmr.read(&r).unwrap().value, 5);
//! assert!(swmr.check_history().is_ok());
//! ```

use sbft_labels::LabelingSystem;
use sbft_net::ProcessId;

use crate::cluster::{OpError, ReadOk, RegisterCluster};
use crate::messages::Value;
use crate::spec::RegularityError;
use crate::Ts;

/// The unique write capability of an SWMR register.
#[derive(Debug)]
pub struct WriterHandle {
    pid: ProcessId,
}

/// A read capability (freely duplicable across clients).
#[derive(Clone, Copy, Debug)]
pub struct ReaderHandle {
    pid: ProcessId,
}

/// An SWMR register: a [`RegisterCluster`] with the single-writer
/// discipline enforced by handle types.
pub struct SwmrHandle<B: LabelingSystem> {
    cluster: RegisterCluster<B>,
    writer_claimed: bool,
}

impl<B: LabelingSystem> SwmrHandle<B> {
    /// Wrap a cluster. Client 0 is reserved for the writer.
    pub fn new(cluster: RegisterCluster<B>) -> Self {
        Self { cluster, writer_claimed: false }
    }

    /// Claim the unique writer capability (client 0). Returns `None` if
    /// already claimed — there is exactly one writer in SWMR.
    pub fn writer(&mut self) -> Option<WriterHandle> {
        if self.writer_claimed {
            return None;
        }
        self.writer_claimed = true;
        Some(WriterHandle { pid: self.cluster.client(0) })
    }

    /// A reader capability for client `i` (`i ≥ 1`; client 0 is the
    /// writer's).
    pub fn reader(&self, i: usize) -> ReaderHandle {
        assert!(i >= 1, "client 0 is reserved for the writer");
        ReaderHandle { pid: self.cluster.client(i) }
    }

    /// `write(v)` — requires the writer capability.
    pub fn write(&mut self, w: &WriterHandle, value: Value) -> Result<Ts<B>, OpError> {
        self.cluster.write(w.pid, value)
    }

    /// `read()` from any reader.
    pub fn read(&mut self, r: &ReaderHandle) -> Result<ReadOk<B>, OpError> {
        self.cluster.read(r.pid)
    }

    /// The writer may also read (it is a client like any other).
    pub fn read_as_writer(&mut self, w: &WriterHandle) -> Result<ReadOk<B>, OpError> {
        self.cluster.read(w.pid)
    }

    /// Check the recorded history (SWMR histories are MWMR histories with
    /// one writer, so the same checker applies).
    pub fn check_history(&self) -> Result<(), Vec<RegularityError>> {
        self.cluster.check_history()
    }

    /// Access the underlying cluster (fault injection, metrics, steering).
    pub fn cluster_mut(&mut self) -> &mut RegisterCluster<B> {
        &mut self.cluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_net::CorruptionSeverity;

    fn swmr() -> SwmrHandle<sbft_labels::BoundedLabeling> {
        SwmrHandle::new(RegisterCluster::bounded(1).clients(3).seed(17).build())
    }

    #[test]
    fn writer_capability_is_unique() {
        let mut s = swmr();
        assert!(s.writer().is_some());
        assert!(s.writer().is_none());
    }

    #[test]
    fn single_writer_roundtrip_with_two_readers() {
        let mut s = swmr();
        let w = s.writer().unwrap();
        let (r1, r2) = (s.reader(1), s.reader(2));
        for v in 1..=4 {
            s.write(&w, v).unwrap();
            assert_eq!(s.read(&r1).unwrap().value, v);
            assert_eq!(s.read(&r2).unwrap().value, v);
        }
        assert_eq!(s.read_as_writer(&w).unwrap().value, 4);
        assert!(s.check_history().is_ok());
    }

    #[test]
    #[should_panic]
    fn reader_zero_is_rejected() {
        let s = swmr();
        let _ = s.reader(0);
    }

    #[test]
    fn swmr_stabilizes_like_mwmr() {
        let mut s = swmr();
        let w = s.writer().unwrap();
        let r = s.reader(1);
        s.write(&w, 1).unwrap();
        s.cluster_mut().corrupt_everything(CorruptionSeverity::Heavy);
        s.write(&w, 2).unwrap();
        assert_eq!(s.read(&r).unwrap().value, 2);
    }
}
