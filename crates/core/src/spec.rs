//! Execution histories and the MWMR regular-register specification checker.
//!
//! The recorder captures, per operation, its invocation and return times on
//! the simulator's fictional global clock — exactly the device Section II-A
//! uses to define precedence (`op ≺ op'` iff `t_E(op) < t_B(op')`) and
//! concurrency. The checker then verifies:
//!
//! * **Validity** — every completed read returns either the value of the
//!   last write preceding it or of a write concurrent with it. A read `r`
//!   returning write `w` is a violation if some other write `w'` satisfies
//!   `w ≺ w' ≺ r` (a *stale read*), if `r ≺ w` (a *future read*), or if no
//!   write (nor the genesis value) matches what was returned (an *unknown
//!   value* — possible only while servers are corrupted).
//! * **Write order** (the MWMR consistency requirement, Lemma 8) — the
//!   timestamp order of writes must extend their real-time order for
//!   **consecutive** writes: if `w1 ≺ w2` in real time with no third write
//!   strictly between them, then `ts(w1) ≺ ts(w2)`. (Lemma 8 claims exactly
//!   consecutive-or-concurrent pairs; distant pairs are *expected* to be
//!   incomparable under the non-transitive bounded label order — that is
//!   what lets the label space stay finite.)
//!
//! Pseudo-stabilization (Definition 1) is checked by running the verifier
//! on the execution **suffix** following the first complete write after the
//! transient fault ([`HistoryRecorder::check_from`]); violations before the
//! suffix are permitted and counted separately (experiment E4).

use sbft_labels::LabelingSystem;
use sbft_net::ProcessId;

use crate::messages::{ClientEvent, Value};
use crate::{Sys, Ts};

/// The kind of operation a record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// A `write(value)`.
    Write,
    /// A `read()`.
    Read,
}

/// How a completed operation ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpOutcome<B: LabelingSystem> {
    /// Write installed `value` at `ts`.
    Wrote {
        /// The written value.
        value: Value,
        /// The installed timestamp.
        ts: Ts<B>,
    },
    /// Read returned `value` witnessed at `ts`.
    ReadValue {
        /// The returned value.
        value: Value,
        /// The witnessing timestamp.
        ts: Ts<B>,
        /// Whether the union-graph fallback decided.
        via_union: bool,
    },
    /// Read aborted (transitory phase).
    ReadAbort,
}

/// One operation of the history.
#[derive(Clone, Debug)]
pub struct OpRecord<B: LabelingSystem> {
    /// The invoking client.
    pub client: ProcessId,
    /// Read or write.
    pub kind: OpKind,
    /// `t_B` — invocation time.
    pub invoked_at: u64,
    /// `t_E` — return time (`None` while pending / failed).
    pub returned_at: Option<u64>,
    /// The outcome, once returned.
    pub outcome: Option<OpOutcome<B>>,
    /// For writes: the value the invocation intends to install, known
    /// from the start (used to bind reads to *incomplete* writes — a
    /// crashed writer's value may legally be returned by readers).
    pub intent: Option<Value>,
}

impl<B: LabelingSystem> OpRecord<B> {
    /// Whether this operation completed.
    pub fn is_complete(&self) -> bool {
        self.returned_at.is_some()
    }

    /// `self ≺ other` in the real-time precedence of Section II-A.
    pub fn precedes(&self, other: &OpRecord<B>) -> bool {
        match self.returned_at {
            Some(end) => end < other.invoked_at,
            None => false,
        }
    }

    /// Whether this is a completed write, returning its value/timestamp.
    pub fn as_write(&self) -> Option<(Value, &Ts<B>)> {
        match &self.outcome {
            Some(OpOutcome::Wrote { value, ts }) => Some((*value, ts)),
            _ => None,
        }
    }
}

/// A regularity violation found by the checker. Indices refer to
/// [`HistoryRecorder::ops`]; `usize::MAX` denotes the genesis pseudo-write.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegularityError {
    /// Read `read` returned write `write`, but `superseding` completely
    /// falls between them.
    StaleRead {
        /// Index of the read in the history.
        read: usize,
        /// Index of the returned write (`usize::MAX` = genesis).
        write: usize,
        /// Index of the superseding write.
        superseding: usize,
    },
    /// Read `read` returned a write invoked only after the read returned.
    FutureRead {
        /// Index of the read.
        read: usize,
        /// Index of the future write.
        write: usize,
    },
    /// Read `read` returned a value no write produced (nor genesis).
    UnknownValue {
        /// Index of the read.
        read: usize,
        /// The mystery value.
        value: Value,
    },
    /// Writes `first ≺ second` in real time but not in timestamp order.
    WriteOrderInversion {
        /// Index of the earlier write.
        first: usize,
        /// Index of the later write.
        second: usize,
    },
}

/// Records operations as the driver injects commands and observes events.
#[derive(Clone, Debug)]
pub struct HistoryRecorder<B: LabelingSystem> {
    ops: Vec<OpRecord<B>>,
    open: std::collections::BTreeMap<ProcessId, usize>,
}

impl<B: LabelingSystem> Default for HistoryRecorder<B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<B: LabelingSystem> HistoryRecorder<B> {
    /// Fresh empty history.
    pub fn new() -> Self {
        Self { ops: Vec::new(), open: Default::default() }
    }

    /// All records.
    pub fn ops(&self) -> &[OpRecord<B>] {
        &self.ops
    }

    /// Number of operations still open (invoked, no terminal event yet).
    /// The schedule explorer uses this as its termination invariant: a
    /// quiescent network with open operations means some op can never
    /// finish.
    pub fn open_ops(&self) -> usize {
        self.open.len()
    }

    /// Number of reads that completed with an abort.
    pub fn aborted_reads(&self) -> usize {
        self.ops.iter().filter(|o| matches!(o.outcome, Some(OpOutcome::ReadAbort))).count()
    }

    /// Number of completed writes.
    pub fn completed_writes(&self) -> usize {
        self.ops.iter().filter(|o| o.as_write().is_some()).count()
    }

    /// An operation began on `client` at `now`. Returns its index.
    pub fn begin(&mut self, client: ProcessId, kind: OpKind, now: u64) -> usize {
        self.begin_with_intent(client, kind, now, None)
    }

    /// Like [`HistoryRecorder::begin`], also recording a write's intended
    /// value (so reads can be bound to in-flight/failed writes).
    pub fn begin_with_intent(
        &mut self,
        client: ProcessId,
        kind: OpKind,
        now: u64,
        intent: Option<Value>,
    ) -> usize {
        let idx = self.ops.len();
        self.ops.push(OpRecord {
            client,
            kind,
            invoked_at: now,
            returned_at: None,
            outcome: None,
            intent,
        });
        self.open.insert(client, idx);
        idx
    }

    /// A terminal [`ClientEvent`] was observed from `client` at `now`;
    /// closes that client's open operation. Returns the op index.
    pub fn complete(
        &mut self,
        client: ProcessId,
        now: u64,
        ev: &ClientEvent<Ts<B>>,
    ) -> Option<usize> {
        let idx = self.open.remove(&client)?;
        let outcome = match ev {
            ClientEvent::WriteDone { value, ts } => {
                OpOutcome::Wrote { value: *value, ts: ts.clone() }
            }
            ClientEvent::ReadDone { value, ts, via_union } => {
                OpOutcome::ReadValue { value: *value, ts: ts.clone(), via_union: *via_union }
            }
            ClientEvent::ReadAborted => OpOutcome::ReadAbort,
            ClientEvent::ReadFailed { .. } | ClientEvent::WriteFailed { .. } => {
                // A failed operation never "returns" in the spec's sense:
                // its record stays permanently incomplete, exactly like a
                // crashed writer's, so a failed write's value remains a
                // legal (forever-concurrent) read result should it land
                // at the servers later.
                return Some(idx);
            }
        };
        let op = &mut self.ops[idx];
        // On the threaded substrate an operation can complete within the
        // same wall-clock tick it was invoked in; clamp so records stay
        // well-formed (returned_at >= invoked_at).
        op.returned_at = Some(now.max(op.invoked_at));
        op.outcome = Some(outcome);
        Some(idx)
    }

    /// Drop all records (e.g. to restart accounting after a fault).
    pub fn clear(&mut self) {
        self.ops.clear();
        self.open.clear();
    }

    /// Stable fingerprint of the history under the *precedence
    /// abstraction*, for the explorer's state-hash dedup.
    ///
    /// Absolute completion times are path-dependent (two interleavings of
    /// independent events complete the same op at different virtual
    /// times), but [`HistoryRecorder::check`] only ever consumes times
    /// through [`OpRecord::precedes`] — `end < other.begin` — and through
    /// window boundaries, which whole-history checks pin to `(0, MAX)`.
    /// So `returned_at` enters the digest only as the *set of operations
    /// this one precedes*: exactly the information any future `check` can
    /// observe, and invariant across re-converging interleavings (every
    /// op's `invoked_at` is fixed before exploration starts, and any
    /// completion during exploration happens at/after every invocation).
    /// Everything else — client, kind, invocation time, outcome, intent,
    /// open/closed status — is hashed verbatim.
    pub fn explore_digest(&self) -> u64 {
        let mut h = sbft_storage::Fnv64::new();
        for op in &self.ops {
            h.usize(op.client).u64(op.invoked_at);
            h.bytes(format!("{:?}|{:?}|{:?}", op.kind, op.outcome, op.intent).as_bytes());
            h.u64(u64::from(op.returned_at.is_some()));
            if let Some(end) = op.returned_at {
                for (j, other) in self.ops.iter().enumerate() {
                    if end < other.invoked_at {
                        h.usize(j);
                    }
                }
            }
            h.sep();
        }
        h.finish()
    }

    /// Check the full history against MWMR regularity.
    pub fn check(&self, sys: &Sys<B>) -> Result<(), Vec<RegularityError>> {
        self.check_from(sys, 0)
    }

    /// Check the suffix: equivalent to [`HistoryRecorder::check_window`]
    /// with `to_time = u64::MAX`, so only operations running **entirely**
    /// at/after `from_time` are scrutinized. (Writes from before the suffix
    /// still participate as candidate return values.)
    pub fn check_from(&self, sys: &Sys<B>, from_time: u64) -> Result<(), Vec<RegularityError>> {
        self.check_window(sys, from_time, u64::MAX)
    }

    /// Check one stable window of a longer, nemesis-disturbed execution.
    ///
    /// **Window membership rule:** the window is the *closed* interval
    /// `[from_time, to_time]`, and an operation is scrutinized iff it runs
    /// entirely inside it — `invoked_at >= from_time` **and**
    /// `returned_at <= to_time`. The rule is the same for reads (validity)
    /// and writes (timestamp order). An operation that *straddles* either
    /// edge — started before `from_time`, or finished after `to_time`, or
    /// still pending — overlaps a disturbance and is exempt (it gets the
    /// next window's scrutiny if it retries). Consequently adjacent windows
    /// `[a, b]` and `[b+1, c]` scrutinize each op at most once, and the only
    /// ops neither window checks are the true straddlers of the shared
    /// boundary. Writes from *anywhere* still participate as candidate
    /// sources for the reads under check (and as consecutiveness breakers
    /// for the write-order check).
    pub fn check_window(
        &self,
        sys: &Sys<B>,
        from_time: u64,
        to_time: u64,
    ) -> Result<(), Vec<RegularityError>> {
        let mut errors = Vec::new();
        self.check_reads(from_time, to_time, &mut errors);
        self.check_write_order(sys, from_time, to_time, &mut errors);
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    fn check_reads(&self, from_time: u64, to_time: u64, errors: &mut Vec<RegularityError>) {
        for (ri, read) in self.ops.iter().enumerate() {
            if read.invoked_at < from_time || read.returned_at.unwrap_or(u64::MAX) > to_time {
                continue;
            }
            let Some(OpOutcome::ReadValue { value, .. }) = &read.outcome else {
                continue;
            };
            // An *incomplete* write (crashed writer) of this value is a
            // permanently concurrent operation: its value is a legal
            // return for any read it does not strictly follow.
            let pending_source = self.ops.iter().any(|w| {
                w.kind == OpKind::Write
                    && w.outcome.is_none()
                    && w.intent == Some(*value)
                    && !read.precedes(w)
            });
            if pending_source {
                continue;
            }
            // Candidate source writes: completed writes of the same value.
            let candidates: Vec<usize> = self
                .ops
                .iter()
                .enumerate()
                .filter(|(_, w)| w.as_write().map(|(v, _)| v == *value).unwrap_or(false))
                .map(|(i, _)| i)
                .collect();

            if candidates.is_empty() {
                if *value == 0 {
                    // Genesis read: valid only if no write completed before
                    // the read began.
                    if let Some((wi, _)) = self
                        .ops
                        .iter()
                        .enumerate()
                        .find(|(_, w)| w.as_write().is_some() && w.precedes(read))
                    {
                        errors.push(RegularityError::StaleRead {
                            read: ri,
                            write: usize::MAX,
                            superseding: wi,
                        });
                    }
                } else {
                    errors.push(RegularityError::UnknownValue { read: ri, value: *value });
                }
                continue;
            }

            // Valid if at least one candidate satisfies regularity.
            let mut first_violation: Option<RegularityError> = None;
            let valid = candidates.iter().any(|&wi| {
                let w = &self.ops[wi];
                if read.precedes(w) {
                    first_violation
                        .get_or_insert(RegularityError::FutureRead { read: ri, write: wi });
                    return false;
                }
                let superseding = self
                    .ops
                    .iter()
                    .enumerate()
                    .find(|(wj, wp)| {
                        *wj != wi && wp.as_write().is_some() && w.precedes(wp) && wp.precedes(read)
                    })
                    .map(|(wj, _)| wj);
                match superseding {
                    Some(wj) => {
                        first_violation.get_or_insert(RegularityError::StaleRead {
                            read: ri,
                            write: wi,
                            superseding: wj,
                        });
                        false
                    }
                    None => true,
                }
            });
            if !valid {
                if let Some(v) = first_violation {
                    errors.push(v);
                }
            }
        }
    }

    /// Count **new/old inversions** — the behaviour a *regular* register
    /// permits but an *atomic* one forbids: two reads `r1 ≺ r2` (real
    /// time) where `r2` returns a write strictly older than the write
    /// `r1` returned. Reads are bound to writes by value (completed
    /// outcome or recorded intent; `None` binding = the genesis value,
    /// which precedes every write). This is a *necessary* condition for
    /// atomicity, not a full linearizability check (which is the
    /// Gibbons–Korach construction and out of scope); experiment E12 uses
    /// it to separate the paper's regular reads from the write-back
    /// extension.
    pub fn new_old_inversions(&self) -> Vec<(usize, usize)> {
        // Bind each completed value-returning read to a source write.
        let bind = |value: Value| -> Option<usize> {
            self.ops
                .iter()
                .enumerate()
                .filter(|(_, o)| {
                    o.kind == OpKind::Write
                        && (o.as_write().map(|(v, _)| v == value).unwrap_or(false)
                            || (o.outcome.is_none() && o.intent == Some(value)))
                })
                .map(|(i, _)| i)
                .next_back() // most recent matching write
        };
        let reads: Vec<(usize, Option<usize>)> = self
            .ops
            .iter()
            .enumerate()
            .filter_map(|(i, o)| match &o.outcome {
                Some(OpOutcome::ReadValue { value, .. }) => Some((i, bind(*value))),
                _ => None,
            })
            .collect();
        let mut inversions = Vec::new();
        for &(r1, wa) in &reads {
            for &(r2, wb) in &reads {
                if r1 == r2 || !self.ops[r1].precedes(&self.ops[r2]) {
                    continue;
                }
                let older = match (wa, wb) {
                    // r2 bound strictly earlier than r1's binding?
                    (Some(wa), Some(wb)) => {
                        wb != wa
                            && self.ops[wb]
                                .returned_at
                                .map(|e| e < self.ops[wa].invoked_at)
                                .unwrap_or(false)
                    }
                    // r2 returned genesis while r1 returned a real write.
                    (Some(_), None) => true,
                    _ => false,
                };
                if older {
                    inversions.push((r1, r2));
                }
            }
        }
        inversions
    }

    fn check_write_order(
        &self,
        sys: &Sys<B>,
        from_time: u64,
        to_time: u64,
        errors: &mut Vec<RegularityError>,
    ) {
        // Same membership rule as check_reads: a write is scrutinized only
        // when it ran entirely inside the closed window. (Filtering on
        // returned_at alone used to pull in writes that *started* before
        // from_time — ops straddling the leading edge overlap a disturbance
        // and may legitimately carry a pre-fault timestamp.)
        let suffix: Vec<usize> = self
            .ops
            .iter()
            .enumerate()
            .filter(|(_, o)| {
                o.as_write().is_some()
                    && o.invoked_at >= from_time
                    && o.returned_at.unwrap_or(u64::MAX) <= to_time
            })
            .map(|(i, _)| i)
            .collect();
        for &i in &suffix {
            for &j in &suffix {
                if i == j {
                    continue;
                }
                let (a, b) = (&self.ops[i], &self.ops[j]);
                if !a.precedes(b) {
                    continue;
                }
                // Lemma 8 covers *consecutive* pairs only ("no other write
                // operation is executed between w1 and w2"): skip if any
                // third write's execution intersects the window — i.e. it
                // neither completely precedes `a` nor completely follows
                // `b`. A write merely *concurrent* with either endpoint
                // already breaks consecutiveness, because the endpoint's
                // quorum may have absorbed its (incomparable) timestamp.
                // Any completed write counts here — including window
                // straddlers that are themselves exempt from scrutiny.
                let intervening = self.ops.iter().enumerate().any(|(k, w)| {
                    k != i && k != j && w.as_write().is_some() && !w.precedes(a) && !b.precedes(w)
                });
                if intervening {
                    continue;
                }
                let (Some((_, ta)), Some((_, tb))) = (a.as_write(), b.as_write()) else {
                    continue;
                };
                if !sys.precedes(ta, tb) {
                    errors.push(RegularityError::WriteOrderInversion { first: i, second: j });
                }
            }
        }
    }
}

/// Cure-aware stable-window bookkeeping for nemesis-disturbed runs.
///
/// Chaos drivers hand the resulting `(start, end)` windows to
/// [`HistoryRecorder::check_window`]. The rules:
///
/// * A window **opens** at a completed write while the nemesis is
///   all-clear (the paper's Assumption 1 anchor: that write's value is
///   propagated to every correct server).
/// * A **disturbance** closes any open window.
/// * A **cure** — a server vacated by a mobile-Byzantine seat rejoining
///   amnesiac — *also* closes any open window, even though the nemesis
///   reports all-clear the moment the seat lands: the cured server is
///   unconverged, so there are transiently `f + 1` servers (the new seat
///   plus the amnesiac rejoiner) whose state cannot be trusted, which is
///   outside the proof's fault budget. The cured server counts as
///   *unstable* until the next completed all-clear write converges it
///   (Assumption A1: a completed stabilizing write propagates its value
///   to all correct servers, wiping the arbitrary state). Only then may
///   a window reopen.
///
/// Without the cure rule, ops concurrent with an amnesiac rejoin would
/// be scrutinized as if the cluster were stable — exactly the reads the
/// mobile-Byzantine model says may legitimately return garbage.
#[derive(Debug, Default)]
pub struct WindowTracker {
    open: Option<u64>,
    windows: Vec<(u64, u64)>,
    unconverged: std::collections::BTreeSet<ProcessId>,
}

impl WindowTracker {
    /// A tracker with no open window and no unconverged servers.
    pub fn new() -> Self {
        Self::default()
    }

    /// A disturbance fired at `now`: close any open window.
    pub fn disturbance(&mut self, now: u64) {
        if let Some(start) = self.open.take() {
            if now > start {
                self.windows.push((start, now));
            }
        }
    }

    /// Server `pid` rejoined cured-but-amnesiac at `now`: close any open
    /// window and mark `pid` unconverged until the next completed
    /// all-clear write.
    pub fn cured(&mut self, pid: ProcessId, now: u64) {
        self.disturbance(now);
        self.unconverged.insert(pid);
    }

    /// A write completed at `now`; `all_clear` is the nemesis runner's
    /// current disturbance-window state. If all-clear, the write
    /// converges every cured server (A1) and opens a window if none is
    /// open.
    pub fn write_completed(&mut self, now: u64, all_clear: bool) {
        if all_clear {
            self.unconverged.clear();
            if self.open.is_none() {
                self.open = Some(now);
            }
        }
    }

    /// Servers cured since the last converging write.
    pub fn unconverged(&self) -> &std::collections::BTreeSet<ProcessId> {
        &self.unconverged
    }

    /// Whether a stable window is currently open.
    pub fn is_open(&self) -> bool {
        self.open.is_some()
    }

    /// Close any open window at `end` and return all recorded windows.
    pub fn finish(mut self, end: u64) -> Vec<(u64, u64)> {
        self.disturbance(end);
        self.windows
    }
}

/// Aggregate verdict for one group of per-register histories (e.g. all the
/// keys a shard hosts): how many registers the group contains and how many
/// regularity violations its histories carry in total. A group with
/// `violations == 0` is regular as a whole, because the per-key histories
/// are independent (Theorem 1 applies register by register).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupVerdict {
    /// Registers whose histories fell into this group.
    pub registers: usize,
    /// Total regularity violations across the group's histories.
    pub violations: usize,
}

impl GroupVerdict {
    /// Whether every history in the group checked out regular.
    pub fn is_regular(&self) -> bool {
        self.violations == 0
    }
}

/// Fold per-register check results into per-group verdicts.
///
/// The iterator yields `(group, result)` pairs — a group id (shard index,
/// placement domain, …) with that register's [`HistoryRecorder::check`]
/// outcome. Groups with no registers simply do not appear; callers wanting
/// a row per group can seed the map themselves.
pub fn group_verdicts<I>(results: I) -> std::collections::BTreeMap<usize, GroupVerdict>
where
    I: IntoIterator<Item = (usize, Result<(), Vec<RegularityError>>)>,
{
    let mut groups = std::collections::BTreeMap::<usize, GroupVerdict>::new();
    for (group, result) in results {
        let v = groups.entry(group).or_default();
        v.registers += 1;
        if let Err(errs) = result {
            v.violations += errs.len();
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_labels::{BoundedLabeling, MwmrLabeling};

    type B = BoundedLabeling;

    fn sys() -> Sys<B> {
        MwmrLabeling::new(BoundedLabeling::new(7))
    }

    fn write_done(s: &Sys<B>, v: Value, prev: &Ts<B>) -> (ClientEvent<Ts<B>>, Ts<B>) {
        let ts = s.next_for(1, std::slice::from_ref(prev));
        (ClientEvent::WriteDone { value: v, ts: ts.clone() }, ts)
    }

    #[test]
    fn sequential_write_then_read_is_regular() {
        let s = sys();
        let mut h = HistoryRecorder::<B>::new();
        let g = s.genesis();
        h.begin(10, OpKind::Write, 0);
        let (ev, ts) = write_done(&s, 5, &g);
        h.complete(10, 10, &ev);
        h.begin(11, OpKind::Read, 20);
        h.complete(11, 30, &ClientEvent::ReadDone { value: 5, ts, via_union: false });
        assert!(h.check(&s).is_ok());
    }

    #[test]
    fn stale_read_detected() {
        let s = sys();
        let mut h = HistoryRecorder::<B>::new();
        let g = s.genesis();
        // w1 [0,10] then w2 [20,30], then read [40,50] returning w1's value.
        h.begin(10, OpKind::Write, 0);
        let (ev1, ts1) = write_done(&s, 5, &g);
        h.complete(10, 10, &ev1);
        h.begin(10, OpKind::Write, 20);
        let (ev2, _ts2) = write_done(&s, 6, &ts1);
        h.complete(10, 30, &ev2);
        h.begin(11, OpKind::Read, 40);
        h.complete(11, 50, &ClientEvent::ReadDone { value: 5, ts: ts1, via_union: false });
        let errs = h.check(&s).unwrap_err();
        assert!(matches!(errs[0], RegularityError::StaleRead { .. }));
    }

    #[test]
    fn concurrent_write_value_is_allowed() {
        let s = sys();
        let mut h = HistoryRecorder::<B>::new();
        let g = s.genesis();
        // Write [0,100] concurrent with read [10,20] that returns it.
        h.begin(10, OpKind::Write, 0);
        h.begin(11, OpKind::Read, 10);
        let ts = s.next_for(1, std::slice::from_ref(&g));
        h.complete(11, 20, &ClientEvent::ReadDone { value: 7, ts: ts.clone(), via_union: false });
        h.complete(10, 100, &ClientEvent::WriteDone { value: 7, ts });
        assert!(h.check(&s).is_ok());
    }

    #[test]
    fn genesis_read_before_any_write_is_valid() {
        let s = sys();
        let mut h = HistoryRecorder::<B>::new();
        h.begin(11, OpKind::Read, 0);
        h.complete(11, 5, &ClientEvent::ReadDone { value: 0, ts: s.genesis(), via_union: false });
        assert!(h.check(&s).is_ok());
    }

    #[test]
    fn genesis_read_after_a_write_is_stale() {
        let s = sys();
        let mut h = HistoryRecorder::<B>::new();
        let g = s.genesis();
        h.begin(10, OpKind::Write, 0);
        let (ev, _) = write_done(&s, 5, &g);
        h.complete(10, 10, &ev);
        h.begin(11, OpKind::Read, 20);
        h.complete(11, 30, &ClientEvent::ReadDone { value: 0, ts: s.genesis(), via_union: false });
        let errs = h.check(&s).unwrap_err();
        assert!(matches!(errs[0], RegularityError::StaleRead { write: usize::MAX, .. }));
    }

    #[test]
    fn unknown_value_detected() {
        let s = sys();
        let mut h = HistoryRecorder::<B>::new();
        h.begin(11, OpKind::Read, 0);
        h.complete(11, 5, &ClientEvent::ReadDone { value: 999, ts: s.genesis(), via_union: false });
        let errs = h.check(&s).unwrap_err();
        assert_eq!(errs[0], RegularityError::UnknownValue { read: 0, value: 999 });
    }

    #[test]
    fn write_order_inversion_detected() {
        let s = sys();
        let mut h = HistoryRecorder::<B>::new();
        let g = s.genesis();
        let ts1 = s.next_for(1, std::slice::from_ref(&g));
        let ts2 = s.next_for(2, std::slice::from_ref(&ts1));
        // Real time: w(ts2) [0,10] ≺ w(ts1) [20,30] — but ts1 ≺ ts2: inverted.
        h.begin(10, OpKind::Write, 0);
        h.complete(10, 10, &ClientEvent::WriteDone { value: 1, ts: ts2 });
        h.begin(10, OpKind::Write, 20);
        h.complete(10, 30, &ClientEvent::WriteDone { value: 2, ts: ts1 });
        let errs = h.check(&s).unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, RegularityError::WriteOrderInversion { .. })));
    }

    #[test]
    fn suffix_check_forgives_pre_fault_reads() {
        let s = sys();
        let mut h = HistoryRecorder::<B>::new();
        // Garbage read at t=5 (pre-suffix), clean behaviour after t=100.
        h.begin(11, OpKind::Read, 0);
        h.complete(11, 5, &ClientEvent::ReadDone { value: 999, ts: s.genesis(), via_union: false });
        assert!(h.check(&s).is_err());
        assert!(h.check_from(&s, 100).is_ok());
    }

    #[test]
    fn aborts_are_counted_not_violations() {
        let s = sys();
        let mut h = HistoryRecorder::<B>::new();
        h.begin(11, OpKind::Read, 0);
        h.complete(11, 5, &ClientEvent::ReadAborted);
        assert!(h.check(&s).is_ok());
        assert_eq!(h.aborted_reads(), 1);
    }

    #[test]
    fn inversion_detector_finds_new_then_old() {
        let s = sys();
        let mut h = HistoryRecorder::<B>::new();
        let g = s.genesis();
        // w1 [0,10] completes; w2 [20,∞) crashes (intent 6).
        h.begin_with_intent(10, OpKind::Write, 0, Some(5));
        let (ev1, ts1) = write_done(&s, 5, &g);
        h.complete(10, 10, &ev1);
        h.begin_with_intent(12, OpKind::Write, 20, Some(6));
        // r1 [30,40] returns the in-flight 6; r2 [50,60] regresses to 5.
        let ts2 = s.next_for(2, std::slice::from_ref(&ts1));
        h.begin(11, OpKind::Read, 30);
        h.complete(11, 40, &ClientEvent::ReadDone { value: 6, ts: ts2, via_union: false });
        h.begin(11, OpKind::Read, 50);
        h.complete(11, 60, &ClientEvent::ReadDone { value: 5, ts: ts1, via_union: false });
        let inv = h.new_old_inversions();
        assert_eq!(inv.len(), 1, "{inv:?}");
        // Regularity itself is NOT violated (w2 is forever concurrent).
        assert!(h.check(&s).is_ok());
    }

    #[test]
    fn inversion_detector_accepts_monotone_reads() {
        let s = sys();
        let mut h = HistoryRecorder::<B>::new();
        let g = s.genesis();
        h.begin_with_intent(10, OpKind::Write, 0, Some(5));
        let (ev1, ts1) = write_done(&s, 5, &g);
        h.complete(10, 10, &ev1);
        h.begin_with_intent(10, OpKind::Write, 20, Some(6));
        let (ev2, ts2) = write_done(&s, 6, &ts1);
        h.complete(10, 30, &ev2);
        h.begin(11, OpKind::Read, 40);
        h.complete(11, 45, &ClientEvent::ReadDone { value: 6, ts: ts2.clone(), via_union: false });
        h.begin(11, OpKind::Read, 50);
        h.complete(11, 55, &ClientEvent::ReadDone { value: 6, ts: ts2, via_union: false });
        assert!(h.new_old_inversions().is_empty());
    }

    #[test]
    fn genesis_regression_counts_as_inversion() {
        let s = sys();
        let mut h = HistoryRecorder::<B>::new();
        let g = s.genesis();
        // An incomplete write of 5 (concurrent forever), r1 returns it,
        // r2 later returns genesis 0: inversion.
        h.begin_with_intent(10, OpKind::Write, 0, Some(5));
        let ts1 = s.next_for(1, std::slice::from_ref(&g));
        h.begin(11, OpKind::Read, 10);
        h.complete(11, 20, &ClientEvent::ReadDone { value: 5, ts: ts1, via_union: false });
        h.begin(11, OpKind::Read, 30);
        h.complete(11, 40, &ClientEvent::ReadDone { value: 0, ts: g, via_union: false });
        assert_eq!(h.new_old_inversions().len(), 1);
    }

    #[test]
    fn pending_intent_makes_read_valid() {
        let s = sys();
        let mut h = HistoryRecorder::<B>::new();
        let g = s.genesis();
        // A crashed write of 9; a read returning 9 is valid (concurrent).
        h.begin_with_intent(10, OpKind::Write, 0, Some(9));
        h.begin(11, OpKind::Read, 10);
        let ts = s.next_for(1, std::slice::from_ref(&g));
        h.complete(11, 20, &ClientEvent::ReadDone { value: 9, ts, via_union: false });
        assert!(h.check(&s).is_ok());
    }

    #[test]
    fn failed_write_stays_incomplete_and_its_value_stays_legal() {
        let s = sys();
        let mut h = HistoryRecorder::<B>::new();
        let g = s.genesis();
        // A write of 9 exhausts its retries... but the value may still land.
        h.begin_with_intent(10, OpKind::Write, 0, Some(9));
        h.complete(10, 50, &ClientEvent::WriteFailed { value: 9, timed_out: true, attempts: 3 });
        assert_eq!(h.completed_writes(), 0);
        // A much later read returning 9 is valid: the failed write is
        // forever concurrent, never a stale source.
        h.begin(11, OpKind::Read, 1000);
        let ts = s.next_for(1, std::slice::from_ref(&g));
        h.complete(11, 1010, &ClientEvent::ReadDone { value: 9, ts, via_union: false });
        assert!(h.check(&s).is_ok());
    }

    #[test]
    fn failed_read_is_not_a_violation() {
        let s = sys();
        let mut h = HistoryRecorder::<B>::new();
        h.begin(11, OpKind::Read, 0);
        h.complete(11, 80, &ClientEvent::ReadFailed { timed_out: false, attempts: 4 });
        assert!(h.check(&s).is_ok());
    }

    #[test]
    fn window_check_exempts_ops_straddling_the_edges() {
        let s = sys();
        let mut h = HistoryRecorder::<B>::new();
        // Garbage read [5,15] straddles into the window [10,100]; a clean
        // genesis read [20,30] sits fully inside.
        h.begin(11, OpKind::Read, 5);
        h.complete(
            11,
            15,
            &ClientEvent::ReadDone { value: 999, ts: s.genesis(), via_union: false },
        );
        h.begin(11, OpKind::Read, 20);
        h.complete(11, 30, &ClientEvent::ReadDone { value: 0, ts: s.genesis(), via_union: false });
        assert!(h.check(&s).is_err(), "full check still sees the garbage");
        assert!(h.check_window(&s, 10, 100).is_ok(), "window check exempts the straddler");
        // A read that *returns* after the window closes is likewise exempt.
        h.begin(11, OpKind::Read, 90);
        h.complete(
            11,
            150,
            &ClientEvent::ReadDone { value: 998, ts: s.genesis(), via_union: false },
        );
        assert!(h.check_window(&s, 10, 100).is_ok());
        assert!(h.check_window(&s, 10, 200).is_err());
    }

    #[test]
    fn window_check_exempts_writes_straddling_the_leading_edge() {
        let s = sys();
        let mut h = HistoryRecorder::<B>::new();
        let g = s.genesis();
        let ts1 = s.next_for(1, std::slice::from_ref(&g));
        let ts2 = s.next_for(2, std::slice::from_ref(&ts1));
        // w(ts2) straddles the edge at t=15: invoked 10, returned 20.
        // w(ts1) runs entirely inside: [30, 40]. Their timestamp order is
        // inverted relative to real time — but the straddler overlaps the
        // disturbance, so the window starting at 15 must exempt the pair.
        h.begin(10, OpKind::Write, 10);
        h.complete(10, 20, &ClientEvent::WriteDone { value: 1, ts: ts2 });
        h.begin(10, OpKind::Write, 30);
        h.complete(10, 40, &ClientEvent::WriteDone { value: 2, ts: ts1 });
        assert!(h.check(&s).is_err(), "full check still sees the inversion");
        assert!(
            h.check_from(&s, 15).is_ok(),
            "a write invoked before the window start is exempt even though it returned inside"
        );
    }

    #[test]
    fn straddling_write_still_breaks_consecutiveness() {
        let s = sys();
        let mut h = HistoryRecorder::<B>::new();
        let g = s.genesis();
        let ts1 = s.next_for(1, std::slice::from_ref(&g));
        let ts2 = s.next_for(2, std::slice::from_ref(&ts1));
        // In-window pair w(ts2) [20,30] ≺ w(ts1) [60,70] is ts-inverted,
        // but a third write [5,45] straddles the window start and overlaps
        // the first endpoint — the pair is not consecutive, so Lemma 8
        // does not apply and no flag may be raised.
        h.begin(12, OpKind::Write, 5);
        let ts3 = s.next_for(3, std::slice::from_ref(&ts2));
        h.complete(12, 45, &ClientEvent::WriteDone { value: 3, ts: ts3 });
        h.begin(10, OpKind::Write, 20);
        h.complete(10, 30, &ClientEvent::WriteDone { value: 1, ts: ts2 });
        h.begin(10, OpKind::Write, 60);
        h.complete(10, 70, &ClientEvent::WriteDone { value: 2, ts: ts1 });
        assert!(
            h.check_from(&s, 10).is_ok(),
            "an exempt straddler must still break consecutiveness for in-window pairs"
        );
    }

    #[test]
    fn incomplete_ops_ignored() {
        let s = sys();
        let mut h = HistoryRecorder::<B>::new();
        h.begin(10, OpKind::Write, 0); // never completes (client crash)
        h.begin(11, OpKind::Read, 10);
        assert!(h.check(&s).is_ok());
        assert_eq!(h.completed_writes(), 0);
    }

    #[test]
    fn window_tracker_opens_on_all_clear_write_and_closes_on_disturbance() {
        let mut t = WindowTracker::new();
        t.write_completed(10, true);
        assert!(t.is_open());
        t.disturbance(50);
        assert!(!t.is_open());
        // A write under disturbance does not reopen.
        t.write_completed(60, false);
        assert!(!t.is_open());
        t.write_completed(80, true);
        assert_eq!(t.finish(100), vec![(10, 50), (80, 100)]);
    }

    #[test]
    fn window_tracker_cure_closes_window_until_converging_write() {
        let mut t = WindowTracker::new();
        t.write_completed(10, true);
        // Seat moves off server 3 at t=40: nemesis is all-clear again
        // immediately (movement is instantaneous), but the cured server
        // is unconverged — the window must close anyway.
        t.cured(3, 40);
        assert!(!t.is_open());
        assert!(t.unconverged().contains(&3));
        // The next completed all-clear write converges it and reopens.
        t.write_completed(70, true);
        assert!(t.is_open());
        assert!(t.unconverged().is_empty());
        assert_eq!(t.finish(90), vec![(10, 40), (70, 90)]);
    }

    #[test]
    fn window_tracker_drops_empty_windows() {
        let mut t = WindowTracker::new();
        t.write_completed(10, true);
        t.disturbance(10); // zero-length: not recorded
        t.write_completed(20, true);
        assert_eq!(t.finish(30), vec![(20, 30)]);
    }

    #[test]
    fn group_verdicts_fold_per_register_results() {
        let bad = vec![RegularityError::UnknownValue { read: 0, value: 9 }];
        let groups = group_verdicts([
            (0, Ok(())),
            (0, Ok(())),
            (1, Err(bad.clone())),
            (1, Ok(())),
            (1, Err(bad)),
        ]);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[&0], GroupVerdict { registers: 2, violations: 0 });
        assert!(groups[&0].is_regular());
        assert_eq!(groups[&1], GroupVerdict { registers: 3, violations: 2 });
        assert!(!groups[&1].is_regular());
    }
}
