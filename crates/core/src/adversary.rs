//! Byzantine server strategies.
//!
//! A Byzantine server is just another [`Automaton`] speaking the same wire
//! protocol — the simulator does not privilege it in any way, matching the
//! model where Byzantine processes "deviate arbitrarily from the protocol".
//! The strategies provided here cover the behaviours the proofs reason
//! about (silence, NACK-flooding, stale replay, value equivocation, label
//! poisoning, uniform garbage) plus a fully *scripted* server used to
//! replay the Theorem 1 lower-bound execution verbatim.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::Rng;
use sbft_labels::{LabelingSystem, ReadLabel};
use sbft_net::{Automaton, Ctx, ProcessId, ENV};

use crate::config::ClusterConfig;
use crate::messages::{ClientEvent, History, Msg, ValTs, Value};
use crate::{Sys, Ts};

/// Catalogue of built-in Byzantine behaviours.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ByzStrategy {
    /// Crash-like: never answers anything (termination stress, Lemma 1/6).
    Silent,
    /// Answers every request but always NACKs writes and reports the
    /// genesis timestamp (write-liveness stress).
    NackFlood,
    /// Replays one fixed stale `(value, ts)` pair forever (the "second
    /// ts2" server of the Theorem 1 execution generalized).
    StaleReplay,
    /// Maintains correct state like an honest server but lies about the
    /// *value* on read replies (WTsG value-hijack stress).
    Equivocate,
    /// Reports adversarially large / garbage labels in `TS_REPLY` to
    /// poison the writer's `next()` computation (E6: fatal for unbounded
    /// timestamps, absorbed by the bounded scheme).
    PoisonLabels,
    /// Uniformly random well-typed garbage in every reply.
    RandomGarbage,
    /// Adaptive plausible-lie adversary: maintains honest shadow state but
    /// always testifies *one write behind* (returns the previous pair to
    /// reads, the oldest known label to `GET_TS`, NACKs every write). The
    /// strongest strategy that stays within well-formed protocol shapes —
    /// it maximizes quorum splits without ever being identifiable as
    /// malformed.
    Adaptive,
}

impl ByzStrategy {
    /// All built-in strategies (used by sweep experiments).
    pub fn all() -> [ByzStrategy; 7] {
        [
            ByzStrategy::Silent,
            ByzStrategy::NackFlood,
            ByzStrategy::StaleReplay,
            ByzStrategy::Equivocate,
            ByzStrategy::PoisonLabels,
            ByzStrategy::RandomGarbage,
            ByzStrategy::Adaptive,
        ]
    }
}

/// A Byzantine server executing one of the [`ByzStrategy`] behaviours.
pub struct ByzServer<B: LabelingSystem> {
    sys: Sys<B>,
    cfg: ClusterConfig,
    strategy: ByzStrategy,
    /// Honest-looking shadow state (used by `Equivocate`).
    value: Value,
    ts: Ts<B>,
    old_vals: Vec<ValTs<Ts<B>>>,
    /// Fixed stale pair for `StaleReplay`.
    stale: ValTs<Ts<B>>,
}

impl<B: LabelingSystem> ByzServer<B> {
    /// Create a Byzantine server.
    pub fn new(sys: Sys<B>, cfg: ClusterConfig, strategy: ByzStrategy) -> Self {
        let genesis = sys.genesis();
        // A plausible-but-stale pair: genesis value under a self-crafted ts.
        let stale_ts = sys.next_for(u32::MAX, std::slice::from_ref(&genesis));
        Self {
            sys,
            cfg,
            strategy,
            value: 0,
            ts: genesis,
            old_vals: Vec::new(),
            stale: (u64::MAX, stale_ts),
        }
    }

    /// Replace the stale pair replayed by [`ByzStrategy::StaleReplay`].
    pub fn set_stale(&mut self, value: Value, ts: Ts<B>) {
        self.stale = (value, ts);
    }

    fn shadow_apply(&mut self, value: Value, ts: Ts<B>) {
        self.old_vals.insert(0, (self.value, self.ts.clone()));
        self.old_vals.truncate(self.cfg.history_depth);
        self.value = value;
        self.ts = ts;
    }
}

impl<B: LabelingSystem> Automaton<Msg<Ts<B>>, ClientEvent<Ts<B>>> for ByzServer<B> {
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Msg<Ts<B>>,
        ctx: &mut Ctx<'_, Msg<Ts<B>>, ClientEvent<Ts<B>>>,
    ) {
        if from == ENV {
            return;
        }
        match self.strategy {
            ByzStrategy::Silent => {}
            ByzStrategy::NackFlood => match msg {
                Msg::GetTs => ctx.send(from, Msg::TsReply { ts: self.sys.genesis() }),
                Msg::Write { ts, .. } => ctx.send(from, Msg::WriteAck { ts, ack: false }),
                Msg::Read { label } => ctx.send(
                    from,
                    Msg::Reply { value: 0, ts: self.sys.genesis(), old: [].into(), label },
                ),
                Msg::Flush { label } => ctx.send(from, Msg::FlushAck { label }),
                _ => {}
            },
            ByzStrategy::StaleReplay => match msg {
                Msg::GetTs => ctx.send(from, Msg::TsReply { ts: self.stale.1.clone() }),
                Msg::Write { ts, .. } => ctx.send(from, Msg::WriteAck { ts, ack: true }),
                Msg::Read { label } => ctx.send(
                    from,
                    Msg::Reply {
                        value: self.stale.0,
                        ts: self.stale.1.clone(),
                        old: [self.stale.clone()].into(),
                        label,
                    },
                ),
                Msg::Flush { label } => ctx.send(from, Msg::FlushAck { label }),
                _ => {}
            },
            ByzStrategy::Equivocate => match msg {
                Msg::GetTs => ctx.send(from, Msg::TsReply { ts: self.ts.clone() }),
                Msg::Write { value, ts } => {
                    let ts = self.sys.sanitize(ts);
                    let ack = self.sys.precedes(&self.ts, &ts);
                    self.shadow_apply(value, ts.clone());
                    ctx.send(from, Msg::WriteAck { ts, ack });
                }
                Msg::Read { label } => {
                    // Honest timestamp, forged value: the hijack the WTsG
                    // (ts, value)-keying defeats.
                    ctx.send(
                        from,
                        Msg::Reply {
                            value: self.value ^ u64::MAX,
                            ts: self.ts.clone(),
                            old: self
                                .old_vals
                                .iter()
                                .map(|(v, t)| (v ^ u64::MAX, t.clone()))
                                .collect(),
                            label,
                        },
                    );
                }
                Msg::Flush { label } => ctx.send(from, Msg::FlushAck { label }),
                _ => {}
            },
            ByzStrategy::PoisonLabels => match msg {
                Msg::GetTs => {
                    let poison = self.sys.arbitrary(ctx.rng());
                    ctx.send(from, Msg::TsReply { ts: poison });
                }
                Msg::Write { ts, .. } => ctx.send(from, Msg::WriteAck { ts, ack: true }),
                Msg::Read { label } => {
                    let poison = self.sys.arbitrary(ctx.rng());
                    ctx.send(
                        from,
                        Msg::Reply { value: u64::MAX, ts: poison, old: [].into(), label },
                    );
                }
                Msg::Flush { label } => ctx.send(from, Msg::FlushAck { label }),
                _ => {}
            },
            ByzStrategy::RandomGarbage => {
                let reply = random_message(&self.sys, &self.cfg, ctx.rng());
                ctx.send(from, reply);
            }
            ByzStrategy::Adaptive => match msg {
                Msg::GetTs => {
                    // Oldest label it ever saw: degrades the writer's
                    // next() inputs as much as a well-formed reply can.
                    let oldest = self
                        .old_vals
                        .last()
                        .map(|(_, t)| t.clone())
                        .unwrap_or_else(|| self.ts.clone());
                    ctx.send(from, Msg::TsReply { ts: oldest });
                }
                Msg::Write { value, ts } => {
                    let ts = self.sys.sanitize(ts);
                    self.shadow_apply(value, ts.clone());
                    ctx.send(from, Msg::WriteAck { ts, ack: false });
                }
                Msg::Read { label } => {
                    // Testify one write behind: the previous pair, with
                    // a history that also lags, maximizing split quorums.
                    let (value, ts) =
                        self.old_vals.first().cloned().unwrap_or((self.value, self.ts.clone()));
                    let old: History<Ts<B>> = self.old_vals.iter().skip(1).cloned().collect();
                    ctx.send(from, Msg::Reply { value, ts, old, label });
                }
                Msg::Flush { label } => ctx.send(from, Msg::FlushAck { label }),
                _ => {}
            },
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// A fully scripted Byzantine server: replies to reads and `GET_TS` with
/// pairs from a queue the test driver controls (via `as_any_mut`), ACKs all
/// writes, and reflects flushes. This is the `s5` of the Theorem 1 proof,
/// which must answer `ts2` to one specific read and `ts1` to another.
pub struct ScriptedServer<B: LabelingSystem> {
    sys: Sys<B>,
    /// Pair returned to `READ`s until changed by the driver.
    pub read_reply: Option<ValTs<Ts<B>>>,
    /// Timestamp returned to `GET_TS` until changed by the driver.
    pub ts_reply: Option<Ts<B>>,
    /// If true, ignore `READ`/`GET_TS` (simulate slowness) instead.
    pub mute: bool,
    /// Per-reader reply override, consumed once per read.
    pub one_shot: BTreeMap<ProcessId, ValTs<Ts<B>>>,
}

impl<B: LabelingSystem> ScriptedServer<B> {
    /// New scripted server with nothing scripted (silent until told).
    pub fn new(sys: Sys<B>) -> Self {
        Self { sys, read_reply: None, ts_reply: None, mute: false, one_shot: BTreeMap::new() }
    }
}

impl<B: LabelingSystem> Automaton<Msg<Ts<B>>, ClientEvent<Ts<B>>> for ScriptedServer<B> {
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Msg<Ts<B>>,
        ctx: &mut Ctx<'_, Msg<Ts<B>>, ClientEvent<Ts<B>>>,
    ) {
        if from == ENV || self.mute {
            return;
        }
        match msg {
            Msg::GetTs => {
                if let Some(ts) = &self.ts_reply {
                    ctx.send(from, Msg::TsReply { ts: ts.clone() });
                }
            }
            Msg::Write { ts, .. } => {
                ctx.send(from, Msg::WriteAck { ts: self.sys.sanitize(ts), ack: true });
            }
            Msg::Read { label } => {
                let pair = self.one_shot.remove(&from).or_else(|| self.read_reply.clone());
                if let Some((value, ts)) = pair {
                    ctx.send(from, Msg::Reply { value, ts, old: [].into(), label });
                }
            }
            Msg::Flush { label } => ctx.send(from, Msg::FlushAck { label }),
            _ => {}
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    fn state_digest(&self) -> Option<u64> {
        // Fully deterministic script, no RNG: the reply script and the
        // consumable one-shot table are the whole behavioral state.
        let state = format!("{:?}", (&self.read_reply, &self.ts_reply, self.mute, &self.one_shot));
        let mut h = sbft_storage::Fnv64::new();
        h.bytes(state.as_bytes());
        Some(h.finish())
    }
}

/// A random, well-typed protocol message with arbitrary (unsanitized)
/// labels — the unit of channel garbage for transient-fault injection.
pub fn random_message<B: LabelingSystem>(
    sys: &Sys<B>,
    cfg: &ClusterConfig,
    rng: &mut StdRng,
) -> Msg<Ts<B>> {
    match rng.gen_range(0..9u8) {
        0 => Msg::GetTs,
        1 => Msg::TsReply { ts: sys.arbitrary(rng) },
        2 => Msg::Write { value: rng.gen(), ts: sys.arbitrary(rng) },
        3 => Msg::WriteAck { ts: sys.arbitrary(rng), ack: rng.gen() },
        4 => Msg::Read { label: rng.gen_range(0..cfg.read_labels as ReadLabel * 2) },
        5 => {
            let old_len = rng.gen_range(0..=cfg.history_depth.min(3));
            Msg::Reply {
                value: rng.gen(),
                ts: sys.arbitrary(rng),
                old: (0..old_len).map(|_| (rng.gen(), sys.arbitrary(rng))).collect(),
                label: rng.gen_range(0..cfg.read_labels as ReadLabel * 2),
            }
        }
        6 => Msg::CompleteRead { label: rng.gen_range(0..cfg.read_labels as ReadLabel * 2) },
        7 => Msg::Flush { label: rng.gen_range(0..cfg.read_labels as ReadLabel * 2) },
        _ => Msg::FlushAck { label: rng.gen_range(0..cfg.read_labels as ReadLabel * 2) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sbft_labels::{BoundedLabeling, MwmrLabeling};

    type B = BoundedLabeling;
    type M = Msg<Ts<B>>;

    fn setup() -> (Sys<B>, ClusterConfig) {
        let cfg = ClusterConfig::stabilizing(1);
        (MwmrLabeling::new(BoundedLabeling::new(cfg.label_k())), cfg)
    }

    fn deliver<A: Automaton<M, ClientEvent<Ts<B>>>>(
        a: &mut A,
        from: ProcessId,
        msg: M,
    ) -> Vec<(ProcessId, M)> {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ctx = Ctx::detached(5, 0, &mut rng);
        a.on_message(from, msg, &mut ctx);
        ctx.drain().0
    }

    #[test]
    fn silent_never_replies() {
        let (sys, cfg) = setup();
        let mut s = ByzServer::new(sys, cfg, ByzStrategy::Silent);
        assert!(deliver(&mut s, 9, Msg::GetTs).is_empty());
        assert!(deliver(&mut s, 9, Msg::Flush { label: 0 }).is_empty());
    }

    #[test]
    fn nack_flood_nacks_every_write() {
        let (sys, cfg) = setup();
        let ts = sys.genesis();
        let mut s = ByzServer::new(sys, cfg, ByzStrategy::NackFlood);
        let out = deliver(&mut s, 9, Msg::Write { value: 4, ts });
        match &out[0].1 {
            Msg::WriteAck { ack, .. } => assert!(!ack),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stale_replay_echoes_fixed_pair() {
        let (sys, cfg) = setup();
        let pin = sys.next_for(3, &[sys.genesis()]);
        let mut s = ByzServer::new(sys, cfg, ByzStrategy::StaleReplay);
        s.set_stale(77, pin.clone());
        let out = deliver(&mut s, 9, Msg::Read { label: 1 });
        match &out[0].1 {
            Msg::Reply { value, ts, .. } => {
                assert_eq!(*value, 77);
                assert_eq!(ts, &pin);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn equivocator_lies_about_value_not_ts() {
        let (sys, cfg) = setup();
        let ts = sys.next_for(1, &[sys.genesis()]);
        let mut s = ByzServer::new(sys, cfg, ByzStrategy::Equivocate);
        deliver(&mut s, 9, Msg::Write { value: 10, ts: ts.clone() });
        let out = deliver(&mut s, 9, Msg::Read { label: 0 });
        match &out[0].1 {
            Msg::Reply { value, ts: rts, .. } => {
                assert_ne!(*value, 10, "value must be forged");
                assert_eq!(rts, &ts, "timestamp must be honest");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scripted_server_obeys_driver() {
        let (sys, _cfg) = setup();
        let ts = sys.next_for(4, &[sys.genesis()]);
        let mut s = ScriptedServer::new(sys);
        assert!(deliver(&mut s, 9, Msg::Read { label: 0 }).is_empty(), "unscripted = silent");
        s.read_reply = Some((5, ts.clone()));
        let out = deliver(&mut s, 9, Msg::Read { label: 0 });
        assert!(matches!(&out[0].1, Msg::Reply { value: 5, .. }));
        // One-shot override takes priority and is consumed.
        s.one_shot.insert(9, (6, ts));
        let out = deliver(&mut s, 9, Msg::Read { label: 0 });
        assert!(matches!(&out[0].1, Msg::Reply { value: 6, .. }));
        let out = deliver(&mut s, 9, Msg::Read { label: 0 });
        assert!(matches!(&out[0].1, Msg::Reply { value: 5, .. }));
    }

    #[test]
    fn random_message_generator_is_total() {
        let (sys, cfg) = setup();
        let mut rng = StdRng::seed_from_u64(0);
        // Must produce every variant family without panicking.
        for _ in 0..200 {
            let _ = random_message(&sys, &cfg, &mut rng);
        }
    }
}
