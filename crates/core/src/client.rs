//! The client automaton: operation dispatch over the writer and reader
//! state machines, plus the persistent per-client bookkeeping (`last` read
//! label, the `recent_labels` matrix, `recent_vals`).
//!
//! One client runs at most one operation at a time (operations of the same
//! client are sequential by definition of the register interface); an
//! `Invoke*` command arriving mid-operation is dropped with a diagnostic
//! event. Clients of *different* processes run concurrently, which is where
//! regularity earns its keep.
//!
//! Transient faults (the `corrupt` hook) scramble everything the paper
//! lists as client state: the read-label matrix, the cached recent values
//! (with ill-formed labels), and the last-used labels — but leave the
//! automaton in `Idle` (a client hit mid-operation is equivalent to one
//! whose operation was dropped; the driver times it out).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::Rng;
use sbft_labels::{LabelingSystem, ReadLabel, ReadLabelPool, WriterId};
use sbft_net::{Automaton, Ctx, ProcessId, ENV};

use crate::config::ClusterConfig;
use crate::messages::{ClientEvent, Msg, ValTs, Value};
use crate::reader::{ReadDecision, ReadPhase, ReaderOptions};
use crate::retry::RetryPolicy;
use crate::writer::WritePhase;
use crate::{Sys, Ts};

/// Timer-id encoding: `(epoch << 1) | kind`. The epoch ties a timer to one
/// specific attempt, so timers armed by finished attempts are ignored when
/// they eventually fire.
const TIMER_KIND_DEADLINE: u64 = 0;
const TIMER_KIND_BACKOFF: u64 = 1;

fn timer_id(kind: u64, epoch: u64) -> u64 {
    (epoch << 1) | kind
}

/// The operation a backoff will re-enter.
#[derive(Clone, Copy, Debug)]
enum RetryOp {
    Write(Value),
    Read,
}

/// What the client is currently doing.
#[derive(Debug)]
enum Phase<B: LabelingSystem> {
    Idle,
    Writing(WritePhase<B>),
    Reading(ReadPhase<B>),
    /// Atomic extension: propagating a decided read value before
    /// returning it (see [`ReaderOptions::write_back`]).
    WritingBack {
        value: Value,
        ts: Ts<B>,
        via_union: bool,
        answered: std::collections::BTreeSet<ProcessId>,
    },
    /// Waiting out a retry backoff before re-entering the operation.
    BackingOff(RetryOp),
}

/// A register client (reader and writer).
pub struct Client<B: LabelingSystem> {
    sys: Sys<B>,
    cfg: ClusterConfig,
    opts: ReaderOptions,
    /// This client's writer identity (stamped into write timestamps).
    pub writer_id: WriterId,
    /// Bounded read-label pool + `recent_labels` matrix.
    pub pool: ReadLabelPool,
    /// `recent_vals` — per server, recently seen `(value, ts)` pairs.
    pub recent_vals: BTreeMap<ProcessId, Vec<ValTs<Ts<B>>>>,
    phase: Phase<B>,
    /// Completed-operation counters (diagnostics).
    pub writes_done: u64,
    /// Write phase-1 restarts forced by in-flight transient garbage.
    pub writes_retried: u64,
    /// Completed reads.
    pub reads_done: u64,
    /// Aborted reads.
    pub reads_aborted: u64,
    /// Policy-driven retries (abort re-entries and deadline re-entries).
    pub policy_retries: u64,
    policy: RetryPolicy,
    /// Attempt number of the in-flight operation (1-based; 0 when idle).
    attempt: u32,
    /// Attempt epoch for timer-id validation; bumped whenever the current
    /// attempt ends (success, failure, retry, or corruption).
    epoch: u64,
}

impl<B: LabelingSystem> Client<B> {
    /// A clean client with the given writer identity.
    pub fn new(sys: Sys<B>, cfg: ClusterConfig, writer_id: WriterId, opts: ReaderOptions) -> Self {
        Self::with_retry(sys, cfg, writer_id, opts, RetryPolicy::none())
    }

    /// A clean client with an explicit retry/timeout/backoff policy.
    pub fn with_retry(
        sys: Sys<B>,
        cfg: ClusterConfig,
        writer_id: WriterId,
        opts: ReaderOptions,
        policy: RetryPolicy,
    ) -> Self {
        let pool = ReadLabelPool::new(cfg.n, cfg.read_labels);
        Self {
            sys,
            cfg,
            opts,
            writer_id,
            pool,
            recent_vals: BTreeMap::new(),
            phase: Phase::Idle,
            writes_done: 0,
            writes_retried: 0,
            reads_done: 0,
            reads_aborted: 0,
            policy_retries: 0,
            policy,
            attempt: 0,
            epoch: 0,
        }
    }

    /// Whether an operation is in flight.
    pub fn is_busy(&self) -> bool {
        !matches!(self.phase, Phase::Idle)
    }

    /// Begin (or re-begin) an operation attempt: bump the epoch, arm the
    /// deadline timer if the policy has one, and enter the protocol.
    fn begin_attempt(&mut self, op: RetryOp, ctx: &mut Ctx<'_, Msg<Ts<B>>, ClientEvent<Ts<B>>>) {
        self.epoch += 1;
        if self.policy.deadline > 0 {
            ctx.set_timer(self.policy.deadline, timer_id(TIMER_KIND_DEADLINE, self.epoch));
        }
        match op {
            RetryOp::Write(value) => self.start_write(value, ctx),
            RetryOp::Read => self.start_read(ctx),
        }
    }

    /// End the in-flight operation successfully: invalidate its timers and
    /// reset the attempt counter.
    fn op_done(&mut self) {
        self.epoch += 1;
        self.attempt = 0;
        self.phase = Phase::Idle;
    }

    /// The current attempt failed (`timed_out` says how). Either schedule a
    /// backed-off retry or surface the typed failure event.
    fn fail_or_retry(
        &mut self,
        op: RetryOp,
        timed_out: bool,
        ctx: &mut Ctx<'_, Msg<Ts<B>>, ClientEvent<Ts<B>>>,
    ) {
        self.epoch += 1; // the failed attempt's timers are now stale
        if self.attempt < self.policy.max_attempts {
            self.attempt += 1;
            self.policy_retries += 1;
            self.phase = Phase::BackingOff(op);
            let delay = self.policy.backoff(self.attempt, ctx.rng());
            ctx.set_timer(delay, timer_id(TIMER_KIND_BACKOFF, self.epoch));
            return;
        }
        let attempts = self.attempt;
        self.attempt = 0;
        self.phase = Phase::Idle;
        match op {
            RetryOp::Write(value) => {
                ctx.output(ClientEvent::WriteFailed { value, timed_out, attempts });
            }
            RetryOp::Read => ctx.output(ClientEvent::ReadFailed { timed_out, attempts }),
        }
    }

    /// The deadline timer of the current attempt fired: abandon whatever
    /// phase the attempt is in and fail or retry.
    fn deadline_expired(&mut self, ctx: &mut Ctx<'_, Msg<Ts<B>>, ClientEvent<Ts<B>>>) {
        let op = match &self.phase {
            Phase::Idle | Phase::BackingOff(_) => return, // nothing in flight
            Phase::Writing(w) => RetryOp::Write(w.value),
            Phase::Reading(r) => {
                // Release the servers forwarding to this read's label.
                let label = r.label;
                ctx.broadcast(self.cfg.server_ids(), Msg::CompleteRead { label });
                RetryOp::Read
            }
            Phase::WritingBack { .. } => RetryOp::Read,
        };
        self.fail_or_retry(op, true, ctx);
    }

    fn start_write(&mut self, value: Value, ctx: &mut Ctx<'_, Msg<Ts<B>>, ClientEvent<Ts<B>>>) {
        self.phase = Phase::Writing(WritePhase::new(value));
        ctx.broadcast(self.cfg.server_ids(), Msg::GetTs);
    }

    fn start_read(&mut self, ctx: &mut Ctx<'_, Msg<Ts<B>>, ClientEvent<Ts<B>>>) {
        // find_read_label, step 1: candidate ≠ last (Figure 3a line 01).
        let label = self.pool.candidate();
        self.pool.adopt(label);
        let mut phase = ReadPhase::new(label);
        if self.opts.skip_flush {
            // Ablation: no FLUSH certification — every server is assumed
            // safe and read immediately (loses Lemma 5).
            for s in self.cfg.server_ids() {
                phase.safe.insert(s);
            }
            self.phase = Phase::Reading(phase);
            for s in self.cfg.server_ids() {
                ctx.send(s, Msg::Read { label });
                self.pool.mark_pending(s, label);
            }
            return;
        }
        self.phase = Phase::Reading(phase);
        // Step 2: FLUSH to every server (Figure 3a line 04).
        ctx.broadcast(self.cfg.server_ids(), Msg::Flush { label });
    }

    /// Store a historical pair for `server`, newest first, bounded by the
    /// cluster's history depth.
    fn remember(&mut self, server: ProcessId, pair: ValTs<Ts<B>>) {
        let slot = self.recent_vals.entry(server).or_default();
        slot.insert(0, pair);
        slot.truncate(self.cfg.history_depth);
    }

    fn finish_read(
        &mut self,
        decision: ReadDecision<B>,
        safe: Vec<ProcessId>,
        label: ReadLabel,
        ctx: &mut Ctx<'_, Msg<Ts<B>>, ClientEvent<Ts<B>>>,
    ) {
        // COMPLETE_READ to the safe set (Figure 2a lines 12/20).
        for s in safe {
            ctx.send(s, Msg::CompleteRead { label });
        }
        match decision {
            ReadDecision::Return { value, ts, via_union } => {
                if self.opts.write_back {
                    // Atomic extension: propagate the decided pair before
                    // returning (kills new/old inversions, E12).
                    self.phase = Phase::WritingBack {
                        value,
                        ts: ts.clone(),
                        via_union,
                        answered: Default::default(),
                    };
                    ctx.broadcast(self.cfg.server_ids(), Msg::Write { value, ts });
                    return;
                }
                self.reads_done += 1;
                self.op_done();
                ctx.output(ClientEvent::ReadDone { value, ts, via_union });
            }
            ReadDecision::Abort => {
                self.reads_aborted += 1;
                if self.policy.max_attempts > 1 {
                    // Transitory phase: retry silently instead of surfacing
                    // the abort; the stabilization argument guarantees a
                    // later attempt decides once a write completes.
                    self.fail_or_retry(RetryOp::Read, false, ctx);
                    return;
                }
                self.op_done();
                ctx.output(ClientEvent::ReadAborted);
            }
        }
    }
}

impl<B: LabelingSystem> Automaton<Msg<Ts<B>>, ClientEvent<Ts<B>>> for Client<B> {
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Msg<Ts<B>>,
        ctx: &mut Ctx<'_, Msg<Ts<B>>, ClientEvent<Ts<B>>>,
    ) {
        match msg {
            // ---- environment commands ----
            Msg::InvokeWrite { value } if from == ENV => {
                if self.is_busy() {
                    return; // one op at a time per client
                }
                self.attempt = 1;
                self.begin_attempt(RetryOp::Write(value), ctx);
            }
            Msg::InvokeRead if from == ENV => {
                if self.is_busy() {
                    return;
                }
                self.attempt = 1;
                self.begin_attempt(RetryOp::Read, ctx);
            }

            // ---- write protocol replies ----
            Msg::TsReply { ts } => {
                if let Phase::Writing(w) = &mut self.phase {
                    if let Some(new_ts) =
                        w.on_ts_reply(&self.sys, &self.cfg, self.writer_id, from, ts)
                    {
                        let value = w.value;
                        ctx.broadcast(self.cfg.server_ids(), Msg::Write { value, ts: new_ts });
                    }
                }
            }
            Msg::WriteAck { ts, ack } => {
                if let Phase::WritingBack { value, ts: wts, via_union, answered } = &mut self.phase
                {
                    // Write-back completion: n − f answers on the exact
                    // pair (ACK or NACK — servers adopt either way).
                    let _ = ack;
                    if self.cfg.is_server(from) && &ts == wts {
                        answered.insert(from);
                        if answered.len() >= self.cfg.quorum() {
                            let ev = ClientEvent::ReadDone {
                                value: *value,
                                ts: wts.clone(),
                                via_union: *via_union,
                            };
                            self.reads_done += 1;
                            self.op_done();
                            ctx.output(ev);
                        }
                    }
                    return;
                }
                if let Phase::Writing(w) = &mut self.phase {
                    match w.on_write_ack(&self.cfg, from, &ts, ack) {
                        crate::writer::WriteProgress::Done => {
                            let value = w.value;
                            self.writes_done += 1;
                            self.op_done();
                            ctx.output(ClientEvent::WriteDone { value, ts });
                        }
                        crate::writer::WriteProgress::Retry => {
                            self.writes_retried += 1;
                            ctx.broadcast(self.cfg.server_ids(), Msg::GetTs);
                        }
                        crate::writer::WriteProgress::Pending => {}
                    }
                }
            }

            // ---- read protocol replies ----
            Msg::FlushAck { label } => {
                let label = self.pool.sanitize(label);
                // Figure 3a line 12: clear the matrix entry in any case.
                self.pool.clear_pending(from, label);
                if let Phase::Reading(r) = &mut self.phase {
                    if r.on_flush_ack(&self.cfg, from, label) {
                        // Figure 3a lines 14–15: the server is safe; send it
                        // the read request and re-mark the label pending.
                        ctx.send(from, Msg::Read { label });
                        self.pool.mark_pending(from, label);
                    }
                }
            }
            Msg::Reply { value, ts, old, label } => {
                let label = self.pool.sanitize(label);
                // Figure 2a line 27: the matrix entry clears in any case.
                self.pool.clear_pending(from, label);
                let mut decided: Option<(ReadDecision<B>, Vec<ProcessId>, ReadLabel)> = None;
                let mut superseded_pair: Option<ValTs<Ts<B>>> = None;
                if let Phase::Reading(r) = &mut self.phase {
                    let (accepted, superseded) =
                        r.on_reply(&self.sys, &self.cfg, from, value, ts, label);
                    if accepted {
                        // Figure 2a line 25: adopt the server's history.
                        let hist: Vec<ValTs<Ts<B>>> = old
                            .iter()
                            .take(self.cfg.history_depth)
                            .map(|(v, t)| (*v, self.sys.sanitize(t.clone())))
                            .collect();
                        self.recent_vals.insert(from, hist);
                        superseded_pair = superseded;
                    }
                }
                if let Some(prev) = superseded_pair {
                    self.remember(from, prev);
                }
                if let Phase::Reading(r) = &mut self.phase {
                    if r.quorum_reached(&self.cfg) {
                        let d = r.decide(&self.sys, &self.cfg, &self.opts, &self.recent_vals);
                        let safe: Vec<ProcessId> = r.safe.iter().copied().collect();
                        decided = Some((d, safe, r.label));
                    }
                }
                if let Some((d, safe, label)) = decided {
                    self.finish_read(d, safe, label, ctx);
                }
            }

            // Anything else (server-bound traffic echoed back by garbage,
            // stale requests) is ignored.
            _ => {}
        }
    }

    fn on_timer(&mut self, id: u64, ctx: &mut Ctx<'_, Msg<Ts<B>>, ClientEvent<Ts<B>>>) {
        let (kind, epoch) = (id & 1, id >> 1);
        if epoch != self.epoch {
            return; // armed by a finished attempt
        }
        if kind == TIMER_KIND_DEADLINE {
            self.deadline_expired(ctx);
        } else if let Phase::BackingOff(op) = self.phase {
            self.begin_attempt(op, ctx);
        }
    }

    fn corrupt(&mut self, rng: &mut StdRng) {
        // Scramble the recent_labels matrix with arbitrary bits.
        let bits: Vec<bool> =
            (0..self.cfg.n * self.cfg.read_labels).map(|_| rng.gen::<bool>()).collect();
        self.pool.corrupt_with(bits.into_iter());
        // Poison cached recent values with garbage pairs.
        self.recent_vals.clear();
        for s in 0..self.cfg.n {
            if rng.gen::<bool>() {
                let junk: Vec<ValTs<Ts<B>>> = (0..rng.gen_range(0..=self.cfg.history_depth))
                    .map(|_| (rng.gen::<Value>(), self.sys.arbitrary(rng)))
                    .collect();
                self.recent_vals.insert(s, junk);
            }
        }
        self.phase = Phase::Idle;
        self.epoch += 1; // any armed timer belongs to the pre-fault attempt
        self.attempt = 0;
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    fn state_digest(&self) -> Option<u64> {
        // Randomized retry backoff draws from the substrate RNG, whose
        // cursor this automaton cannot fingerprint — refuse rather than
        // conflate states with diverging RNG positions.
        if self.policy.max_attempts > 1 {
            return None;
        }
        // `Debug` formatting is the fingerprint: every behavior-relevant
        // volatile field is included (sys/cfg/opts/policy are per-run
        // constants). The diagnostics counters are included too — cheap,
        // and equal in genuinely equivalent states.
        let state = format!(
            "{:?}",
            (
                self.writer_id,
                &self.pool,
                &self.recent_vals,
                &self.phase,
                self.attempt,
                self.epoch,
                (
                    self.writes_done,
                    self.writes_retried,
                    self.reads_done,
                    self.reads_aborted,
                    self.policy_retries,
                ),
            )
        );
        let mut h = sbft_storage::Fnv64::new();
        h.bytes(state.as_bytes());
        Some(h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sbft_labels::{BoundedLabeling, MwmrLabeling};

    type B = BoundedLabeling;
    type M = Msg<Ts<B>>;
    type E = ClientEvent<Ts<B>>;

    fn client() -> Client<B> {
        let cfg = ClusterConfig::stabilizing(1);
        Client::new(
            MwmrLabeling::new(BoundedLabeling::new(cfg.label_k())),
            cfg,
            7,
            ReaderOptions::default(),
        )
    }

    fn deliver(c: &mut Client<B>, from: ProcessId, msg: M) -> (Vec<(ProcessId, M)>, Vec<E>) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = Ctx::detached(6, 0, &mut rng);
        c.on_message(from, msg, &mut ctx);
        let (sends, outs, _) = ctx.drain();
        (sends, outs)
    }

    #[test]
    fn invoke_write_broadcasts_get_ts() {
        let mut c = client();
        let (sends, _) = deliver(&mut c, ENV, Msg::InvokeWrite { value: 5 });
        assert_eq!(sends.len(), 6);
        assert!(sends.iter().all(|(_, m)| matches!(m, Msg::GetTs)));
        assert!(c.is_busy());
    }

    #[test]
    fn write_completes_through_both_phases() {
        let mut c = client();
        deliver(&mut c, ENV, Msg::InvokeWrite { value: 5 });
        let g = c.sys.genesis();
        let mut write_msg = None;
        for s in 0..5 {
            let (sends, _) = deliver(&mut c, s, Msg::TsReply { ts: g.clone() });
            if !sends.is_empty() {
                assert_eq!(sends.len(), 6);
                write_msg = Some(sends[0].1.clone());
            }
        }
        let Some(Msg::Write { ts, .. }) = write_msg else {
            panic!("expected WRITE broadcast after quorum")
        };
        let mut done = Vec::new();
        for s in 0..5 {
            let (_, outs) = deliver(&mut c, s, Msg::WriteAck { ts: ts.clone(), ack: true });
            done.extend(outs);
        }
        assert_eq!(done.len(), 1);
        assert!(matches!(done[0], ClientEvent::WriteDone { value: 5, .. }));
        assert!(!c.is_busy());
        assert_eq!(c.writes_done, 1);
    }

    #[test]
    fn invoke_while_busy_is_dropped() {
        let mut c = client();
        deliver(&mut c, ENV, Msg::InvokeWrite { value: 5 });
        let (sends, outs) = deliver(&mut c, ENV, Msg::InvokeWrite { value: 6 });
        assert!(sends.is_empty());
        assert!(outs.is_empty());
    }

    #[test]
    fn read_flush_then_reads_then_decision() {
        let mut c = client();
        let (sends, _) = deliver(&mut c, ENV, Msg::InvokeRead);
        assert_eq!(sends.len(), 6);
        let Msg::Flush { label } = sends[0].1 else { panic!("expected FLUSH") };
        // Each FLUSH_ACK triggers a READ to that server.
        let g = c.sys.genesis();
        let t = c.sys.next_for(7, std::slice::from_ref(&g));
        let mut events = Vec::new();
        for s in 0..5 {
            let (sends, _) = deliver(&mut c, s, Msg::FlushAck { label });
            assert!(matches!(sends[0].1, Msg::Read { .. }));
            let (sends, outs) =
                deliver(&mut c, s, Msg::Reply { value: 9, ts: t.clone(), old: [].into(), label });
            events.extend(outs);
            if s == 4 {
                // Decision sends COMPLETE_READ to the safe set.
                assert!(sends.iter().all(|(_, m)| matches!(m, Msg::CompleteRead { .. })));
                assert_eq!(sends.len(), 5);
            }
        }
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], ClientEvent::ReadDone { value: 9, via_union: false, .. }));
        assert_eq!(c.reads_done, 1);
    }

    #[test]
    fn replies_before_flush_ack_are_not_counted() {
        let mut c = client();
        let (sends, _) = deliver(&mut c, ENV, Msg::InvokeRead);
        let Msg::Flush { label } = sends[0].1 else { panic!() };
        let g = c.sys.genesis();
        // Five replies from servers that never flush-acked: no decision.
        let mut events = Vec::new();
        for s in 0..5 {
            let (_, outs) =
                deliver(&mut c, s, Msg::Reply { value: 9, ts: g.clone(), old: [].into(), label });
            events.extend(outs);
        }
        assert!(events.is_empty());
        assert!(c.is_busy());
    }

    #[test]
    fn successive_reads_use_different_labels() {
        let mut c = client();
        let (sends, _) = deliver(&mut c, ENV, Msg::InvokeRead);
        let Msg::Flush { label: l1 } = sends[0].1 else { panic!() };
        // Finish the read quickly.
        let g = c.sys.genesis();
        for s in 0..5 {
            deliver(&mut c, s, Msg::FlushAck { label: l1 });
            deliver(&mut c, s, Msg::Reply { value: 0, ts: g.clone(), old: [].into(), label: l1 });
        }
        assert!(!c.is_busy());
        let (sends, _) = deliver(&mut c, ENV, Msg::InvokeRead);
        let Msg::Flush { label: l2 } = sends[0].1 else { panic!() };
        assert_ne!(l1, l2, "Figure 3a line 01: new label differs from last");
    }

    #[test]
    fn corrupt_resets_phase_and_scrambles_pool() {
        let mut c = client();
        deliver(&mut c, ENV, Msg::InvokeWrite { value: 1 });
        assert!(c.is_busy());
        let mut rng = StdRng::seed_from_u64(9);
        c.corrupt(&mut rng);
        assert!(!c.is_busy());
    }

    #[test]
    fn stale_labels_from_network_are_sanitized() {
        let mut c = client();
        deliver(&mut c, ENV, Msg::InvokeRead);
        // A garbage FLUSH_ACK with an out-of-pool label must not panic and
        // must not join the safe set under the wrong label.
        let (_sends, outs) = deliver(&mut c, 0, Msg::FlushAck { label: 999_999 });
        assert!(outs.is_empty());
    }
}
