//! Client-side graceful degradation: retry, timeout, backoff.
//!
//! The paper's operations always terminate *in fault-free suffixes*; while
//! a nemesis is disturbing the cluster an individual attempt can stall
//! forever (a crashed quorum member, a cut link) or abort (the transitory
//! phase of the stabilization argument). A [`RetryPolicy`] bounds each
//! attempt with a deadline timer and re-enters the operation — writes
//! restart from phase 1, reads pick a fresh label — after an exponential
//! backoff with deterministic jitter drawn from the substrate RNG, so the
//! whole retry behaviour replays exactly under a fixed simulator seed.
//!
//! [`RetryPolicy::none`] (the default) reproduces the historical behaviour
//! bit for bit: one attempt, no timers armed, aborts surfaced directly.

use rand::rngs::StdRng;
use rand::Rng;

/// Retry/timeout/backoff parameters of one client.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts allowed per operation (≥ 1). With 1, aborts and
    /// stalls surface immediately — the historical behaviour.
    pub max_attempts: u32,
    /// Per-attempt deadline in substrate time units; 0 disables the
    /// deadline timer entirely (an attempt may then stall forever, and
    /// only read aborts trigger retries).
    pub deadline: u64,
    /// Base backoff before the second attempt; doubles per attempt.
    pub backoff_base: u64,
    /// Backoff growth cap.
    pub backoff_max: u64,
}

impl RetryPolicy {
    /// One attempt, no deadline, no timers: the historical behaviour.
    pub fn none() -> Self {
        Self { max_attempts: 1, deadline: 0, backoff_base: 0, backoff_max: 0 }
    }

    /// The chaos-soak preset: enough attempts and budget to ride out one
    /// nemesis disturbance window plus its recovery.
    pub fn chaos() -> Self {
        Self { max_attempts: 8, deadline: 900, backoff_base: 40, backoff_max: 400 }
    }

    /// Whether any retry machinery is active.
    pub fn retries_enabled(&self) -> bool {
        self.max_attempts > 1 || self.deadline > 0
    }

    /// Backoff before attempt number `attempt` (2-based: the first retry
    /// passes 2): exponential in the attempt index, capped, plus up to 25%
    /// deterministic jitter from `rng` so colliding clients decorrelate
    /// identically under one seed. Always ≥ 1 so the timer is legal.
    pub fn backoff(&self, attempt: u32, rng: &mut StdRng) -> u64 {
        let exp = attempt.saturating_sub(2).min(16);
        let base =
            self.backoff_base.max(1).saturating_mul(1u64 << exp).min(self.backoff_max.max(1));
        let jitter = if base >= 4 { rng.gen_range(0..=base / 4) } else { 0 };
        (base + jitter).max(1)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn default_disables_everything() {
        let p = RetryPolicy::default();
        assert_eq!(p, RetryPolicy::none());
        assert!(!p.retries_enabled());
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy { max_attempts: 10, deadline: 100, backoff_base: 8, backoff_max: 64 };
        let mut rng = StdRng::seed_from_u64(1);
        let b2 = p.backoff(2, &mut rng);
        assert!((8..=10).contains(&b2), "{b2}");
        let b5 = p.backoff(5, &mut rng);
        assert!(b5 >= 64, "{b5}"); // 8 << 3 = 64 hits the cap
        assert!(b5 <= 64 + 16, "{b5}"); // cap + 25% jitter
        let b9 = p.backoff(9, &mut rng);
        assert!(b9 <= 64 + 16, "exponent must cap: {b9}");
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let p = RetryPolicy::chaos();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for attempt in 2..10 {
            assert_eq!(p.backoff(attempt, &mut a), p.backoff(attempt, &mut b));
        }
    }

    #[test]
    fn backoff_never_zero() {
        let p = RetryPolicy { max_attempts: 3, deadline: 1, backoff_base: 0, backoff_max: 0 };
        let mut rng = StdRng::seed_from_u64(0);
        assert!(p.backoff(2, &mut rng) >= 1);
    }
}
