//! Cluster sizing and quorum arithmetic.
//!
//! The paper's bounds, all expressed in terms of the Byzantine budget `f`:
//!
//! | quantity | value | role |
//! |---|---|---|
//! | resilience | `n ≥ 5f + 1` | Theorem 1 tight bound for stabilizing BFT regular registers |
//! | quorum | `n − f` | replies a client waits for (termination despite `f` silent servers) |
//! | witnesses | `2f + 1` | WTsG node weight needed to return a value (pins `f+1` correct servers) |
//! | acks | `2f + 1` | ACKs a writer needs among its `n − f` phase-2 replies |
//! | propagation | `3f + 1` | correct servers guaranteed to store a completed write (Lemma 2) |
//!
//! Configurations with `n ≤ 5f` are deliberately constructible — experiment
//! E1 replays the Theorem 1 counterexample on one — but flagged by
//! [`ClusterConfig::is_stabilizing_safe`].

use sbft_net::ProcessId;
use serde::{Deserialize, Serialize};

/// Static parameters of a register cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of servers.
    pub n: usize,
    /// Upper bound on Byzantine servers.
    pub f: usize,
    /// Length of each server's `old_vals` sliding history. The paper uses
    /// `n`; experiments E8/ablate_history sweep it.
    pub history_depth: usize,
    /// Size of each client's bounded read-label pool (`k` in Figure 3).
    pub read_labels: usize,
}

impl ClusterConfig {
    /// The paper's tight configuration: `n = 5f + 1` servers.
    pub fn stabilizing(f: usize) -> Self {
        Self::with_n(5 * f + 1, f)
    }

    /// A configuration with explicit `n` (possibly below the stabilizing
    /// bound, for lower-bound experiments).
    pub fn with_n(n: usize, f: usize) -> Self {
        assert!(n >= 1, "need at least one server");
        assert!(n > 3 * f, "even non-stabilizing BFT registers need n > 3f");
        Self { n, f, history_depth: n, read_labels: 4 }
    }

    /// Override the server history depth.
    pub fn history(mut self, depth: usize) -> Self {
        assert!(depth >= 1);
        self.history_depth = depth;
        self
    }

    /// Override the read-label pool size (must be ≥ 2).
    pub fn labels(mut self, k: usize) -> Self {
        assert!(k >= 2);
        self.read_labels = k;
        self
    }

    /// Whether `n ≥ 5f + 1` — the Theorem 1 requirement for
    /// pseudo-stabilizing BFT regularity.
    pub fn is_stabilizing_safe(&self) -> bool {
        self.n > 5 * self.f
    }

    /// `n − f`: the reply quorum every operation waits for.
    pub fn quorum(&self) -> usize {
        self.n - self.f
    }

    /// `2f + 1`: WTsG witness threshold and writer ACK threshold.
    pub fn witness_threshold(&self) -> usize {
        2 * self.f + 1
    }

    /// `3f + 1`: correct servers guaranteed to hold a completed write
    /// (Lemma 2), checked by experiment E3.
    pub fn propagation_bound(&self) -> usize {
        3 * self.f + 1
    }

    /// `k` for the bounded labeling system: the writer computes `next()`
    /// over up to `n − f` received labels, so any `k ≥ n` is safe; we use
    /// `n + 1` to also absorb the writer's own cached label.
    pub fn label_k(&self) -> usize {
        (self.n + 1).max(2)
    }

    /// Process ids `0..n` are servers.
    pub fn server_ids(&self) -> impl Iterator<Item = ProcessId> + Clone {
        0..self.n
    }

    /// Process id of the `i`-th client (clients live above the servers).
    pub fn client_pid(&self, i: usize) -> ProcessId {
        self.n + i
    }

    /// Whether `pid` designates a server.
    pub fn is_server(&self, pid: ProcessId) -> bool {
        pid < self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stabilizing_sizes() {
        let c = ClusterConfig::stabilizing(1);
        assert_eq!(c.n, 6);
        assert_eq!(c.quorum(), 5);
        assert_eq!(c.witness_threshold(), 3);
        assert_eq!(c.propagation_bound(), 4);
        assert!(c.is_stabilizing_safe());
    }

    #[test]
    fn f2_sizes() {
        let c = ClusterConfig::stabilizing(2);
        assert_eq!(c.n, 11);
        assert_eq!(c.quorum(), 9);
        assert_eq!(c.witness_threshold(), 5);
        assert_eq!(c.propagation_bound(), 7);
    }

    #[test]
    fn theorem1_configuration_is_flagged() {
        // 5 servers, 1 Byzantine: n = 5f — constructible but unsafe.
        let c = ClusterConfig::with_n(5, 1);
        assert!(!c.is_stabilizing_safe());
        assert_eq!(c.quorum(), 4);
    }

    #[test]
    #[should_panic]
    fn below_3f_rejected() {
        ClusterConfig::with_n(3, 1);
    }

    #[test]
    fn client_pids_follow_servers() {
        let c = ClusterConfig::stabilizing(1);
        assert_eq!(c.client_pid(0), 6);
        assert_eq!(c.client_pid(2), 8);
        assert!(c.is_server(5));
        assert!(!c.is_server(6));
    }

    #[test]
    fn label_k_covers_quorum() {
        for f in 1..5 {
            let c = ClusterConfig::stabilizing(f);
            assert!(c.label_k() >= c.quorum());
        }
    }

    #[test]
    fn builders_chain() {
        let c = ClusterConfig::stabilizing(1).history(3).labels(8);
        assert_eq!(c.history_depth, 3);
        assert_eq!(c.read_labels, 8);
    }
}
