//! The server automaton (server sides of Figures 1, 2b and 3b).
//!
//! A server keeps the register copy `(value, ts)`, the `old_vals` sliding
//! history of recently applied writes, and the `running_read` table of
//! readers with an open labelled read. Its reactions are one-shot and
//! stateless across messages, which is what makes the protocol's server
//! side wait-free:
//!
//! * `GET_TS` → `TS_REPLY(ts)`;
//! * `WRITE(v, ts)` → `ACK` iff `local_ts ≺ ts`, else `NACK`; **in either
//!   case** adopt `(v, ts)`, shift the old pair into `old_vals`, and
//!   forward the new pair to every running reader (so a reader blocked on
//!   a concurrent write still converges);
//! * `READ(ℓ)` → register the reader in `running_read`, `REPLY` with the
//!   current pair and history;
//! * `COMPLETE_READ(ℓ)` → deregister;
//! * `FLUSH(ℓ)` → reflect `FLUSH_ACK(ℓ)` (the FIFO-order certificate used
//!   by `find_read_label`).
//!
//! Transient faults (the [`Automaton::corrupt`] hook) scramble **all** of
//! this state: value, timestamp, history (with ill-formed labels), and the
//! `running_read` table — the arbitrary initial configuration of the model.

use std::collections::{BTreeMap, VecDeque};

use rand::rngs::StdRng;
use rand::Rng;
use sbft_labels::{LabelingSystem, ReadLabel};
use sbft_net::{Automaton, Ctx, ProcessId, ENV};
use sbft_storage::{ByteReader, Codec, DiskHandle, Fnv64};

use crate::config::ClusterConfig;
use crate::messages::{ClientEvent, History, Msg, ValTs, Value};
use crate::{Sys, Ts};

/// A correct register server.
pub struct Server<B: LabelingSystem> {
    sys: Sys<B>,
    cfg: ClusterConfig,
    /// `v_i` — current register value.
    pub value: Value,
    /// `ts_i` — current timestamp.
    pub ts: Ts<B>,
    /// `old_vals_i` — most-recent-first sliding window of applied writes.
    pub old_vals: VecDeque<ValTs<Ts<B>>>,
    /// `running_read_i` — reader pid → label of its open read.
    pub running_read: BTreeMap<ProcessId, ReadLabel>,
    /// Count of writes applied (diagnostics only).
    pub writes_applied: u64,
    /// Optional stable storage; when present, applied writes persist
    /// through it and [`Server::recover`] can rebuild state after a crash.
    disk: Option<DiskHandle>,
}

/// Every `SYNC_EVERY`-th applied write syncs the record log — between
/// syncs there is an unflushed tail for `DiskFault::LostSuffix` to eat.
pub const SYNC_EVERY: u64 = 4;
/// Every `SNAPSHOT_EVERY`-th applied write rewrites the snapshot and
/// compacts the log (keeping recovery replay short and giving
/// `DiskFault::StaleSnapshot` a previous generation to roll back to).
pub const SNAPSHOT_EVERY: u64 = 16;

impl<B: LabelingSystem> Server<B> {
    /// A server booted in the canonical clean state.
    pub fn new(sys: Sys<B>, cfg: ClusterConfig) -> Self {
        let genesis = sys.genesis();
        Self {
            sys,
            cfg,
            value: 0,
            ts: genesis,
            old_vals: VecDeque::new(),
            running_read: BTreeMap::new(),
            writes_applied: 0,
            disk: None,
        }
    }

    /// Attach stable storage: every subsequently applied write is
    /// persisted (record append + periodic sync/snapshot).
    pub fn with_disk(mut self, disk: DiskHandle) -> Self {
        self.disk = Some(disk);
        self
    }

    /// Encode the durable state — `(value, ts, old_vals, writes_applied)`
    /// — as a snapshot payload. `running_read` is deliberately volatile:
    /// a rebooted server has no open read sessions.
    pub fn state_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.value.encode(&mut out);
        self.ts.encode(&mut out);
        let hist: Vec<ValTs<Ts<B>>> = self.old_vals.iter().cloned().collect();
        hist.encode(&mut out);
        self.writes_applied.encode(&mut out);
        out
    }

    /// Rebuild a server from a snapshot payload. Returns `None` only on
    /// *structurally* unreadable bytes; ill-formed labels inside are kept
    /// as-is (legal arbitrary state, sanitized on use). The decoded
    /// history is truncated to `cfg.history_depth` even if the persisted
    /// one was longer.
    pub fn from_state_bytes(sys: Sys<B>, cfg: ClusterConfig, bytes: &[u8]) -> Option<Self> {
        let mut r = ByteReader::new(bytes);
        let value = Value::decode(&mut r)?;
        let ts = Ts::<B>::decode(&mut r)?;
        let hist = Vec::<ValTs<Ts<B>>>::decode(&mut r)?;
        let writes_applied = u64::decode(&mut r)?;
        if !r.is_empty() {
            return None;
        }
        let mut old_vals: VecDeque<ValTs<Ts<B>>> = hist.into();
        old_vals.truncate(cfg.history_depth);
        Some(Self {
            sys,
            cfg,
            value,
            ts,
            old_vals,
            running_read: BTreeMap::new(),
            writes_applied,
            disk: None,
        })
    }

    /// Apply one persisted write record (as produced by the durability
    /// path of `apply_write`). Returns `false` on undecodable bytes.
    pub fn replay_record(&mut self, bytes: &[u8]) -> bool {
        match <(Value, Ts<B>)>::from_bytes(bytes) {
            Some((value, ts)) => {
                self.apply_write(value, ts);
                true
            }
            None => false,
        }
    }

    /// Reboot a server from its (possibly crash-damaged) disk.
    ///
    /// Never fails: an unreadable snapshot falls back to the clean boot
    /// state, undecodable records are skipped, and whatever intact prefix
    /// survives is replayed. The result may be *stale* or carry ill-formed
    /// labels — both are inside the arbitrary-state fault class the
    /// protocol stabilizes from, so recovery is treated by the spec like a
    /// cure: the rejoiner counts as unconverged until the next all-clear
    /// write. The disk stays attached, so the recovered server resumes
    /// persisting.
    pub fn recover(sys: Sys<B>, cfg: ClusterConfig, disk: DiskHandle) -> Self {
        let salvaged = disk.load();
        let mut s = salvaged
            .snapshot
            .as_deref()
            .and_then(|b| Self::from_state_bytes(sys.clone(), cfg, b))
            .unwrap_or_else(|| Self::new(sys, cfg));
        for rec in &salvaged.records {
            s.replay_record(rec);
        }
        s.old_vals.truncate(cfg.history_depth);
        s.disk = Some(disk);
        s
    }

    /// Shared snapshot of the history window, most recent first. Built
    /// once per message; cloning the returned `Arc` is a reference bump,
    /// so fanning one snapshot out to many readers deep-copies nothing.
    fn history(&self) -> History<Ts<B>> {
        self.old_vals.iter().cloned().collect()
    }

    fn apply_write(&mut self, value: Value, ts: Ts<B>) {
        let prev = (self.value, self.ts.clone());
        self.old_vals.push_front(prev);
        self.old_vals.truncate(self.cfg.history_depth);
        self.value = value;
        self.ts = ts;
        self.writes_applied += 1;
        if let Some(disk) = &self.disk {
            if self.writes_applied.is_multiple_of(SNAPSHOT_EVERY) {
                disk.put_snapshot(&self.state_bytes());
            } else {
                let mut rec = Vec::new();
                (self.value, self.ts.clone()).encode(&mut rec);
                disk.append(&rec);
                if self.writes_applied.is_multiple_of(SYNC_EVERY) {
                    disk.sync();
                }
            }
        }
    }
}

impl<B: LabelingSystem> Automaton<Msg<Ts<B>>, ClientEvent<Ts<B>>> for Server<B> {
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Msg<Ts<B>>,
        ctx: &mut Ctx<'_, Msg<Ts<B>>, ClientEvent<Ts<B>>>,
    ) {
        if from == ENV {
            return; // servers take no environment commands
        }
        match msg {
            Msg::GetTs => {
                ctx.send(from, Msg::TsReply { ts: self.ts.clone() });
            }
            Msg::Write { value, ts } => {
                // Sanitize before any algebraic use: the writer (or the
                // channel) may have been corrupted.
                let ts = self.sys.sanitize(ts);
                let ack = self.sys.precedes(&self.ts, &ts);
                // Adopt unconditionally (Figure 1 server side: "in any
                // case, the server updates its local copy").
                self.apply_write(value, ts.clone());
                ctx.send(from, Msg::WriteAck { ts, ack });
                // Forward the fresh pair to all running readers.
                let old = self.history();
                for (&reader, &label) in &self.running_read {
                    ctx.send(
                        reader,
                        Msg::Reply {
                            value: self.value,
                            ts: self.ts.clone(),
                            old: old.clone(),
                            label,
                        },
                    );
                }
            }
            Msg::Read { label } => {
                self.running_read.insert(from, label);
                let old = self.history();
                ctx.send(from, Msg::Reply { value: self.value, ts: self.ts.clone(), old, label });
            }
            Msg::CompleteRead { label } => {
                if self.running_read.get(&from) == Some(&label) {
                    self.running_read.remove(&from);
                }
            }
            Msg::Flush { label } => {
                ctx.send(from, Msg::FlushAck { label });
            }
            // Messages a correct server never consumes (stale client-bound
            // traffic, channel garbage) are dropped silently.
            Msg::TsReply { .. }
            | Msg::WriteAck { .. }
            | Msg::Reply { .. }
            | Msg::FlushAck { .. }
            | Msg::InvokeWrite { .. }
            | Msg::InvokeRead => {}
        }
    }

    fn corrupt(&mut self, rng: &mut StdRng) {
        self.value = rng.gen();
        self.ts = self.sys.arbitrary(rng);
        // Up to twice the configured depth: persisted state can legally be
        // longer than the current config (e.g. the depth was lowered
        // between boots), so arbitrary state must cover over-length
        // histories too — recovery and the next applied write re-bound it.
        let hist_len = rng.gen_range(0..=2 * self.cfg.history_depth);
        self.old_vals =
            (0..hist_len).map(|_| (rng.gen::<Value>(), self.sys.arbitrary(rng))).collect();
        // Phantom running reads pointing at arbitrary clients/labels.
        self.running_read.clear();
        for _ in 0..rng.gen_range(0..4usize) {
            let reader = self.cfg.n + rng.gen_range(0..4usize);
            self.running_read.insert(reader, rng.gen_range(0..self.cfg.read_labels as u32));
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    fn state_digest(&self) -> Option<u64> {
        // The durable codec bytes cover (value, ts, old_vals,
        // writes_applied); running_read is the only volatile field that
        // influences behavior (write forwarding + reply deregistration).
        // The attached disk is excluded: its content only matters through
        // `recover`, which no explorable event can trigger.
        let mut h = Fnv64::new();
        h.bytes(&self.state_bytes()).sep();
        for (&reader, &label) in &self.running_read {
            h.usize(reader).u64(u64::from(label));
        }
        Some(h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sbft_labels::{BoundedLabeling, MwmrLabeling};

    type B = BoundedLabeling;

    fn server() -> Server<B> {
        let cfg = ClusterConfig::stabilizing(1);
        Server::new(MwmrLabeling::new(BoundedLabeling::new(cfg.label_k())), cfg)
    }

    fn ctx_run(
        s: &mut Server<B>,
        from: ProcessId,
        msg: Msg<Ts<B>>,
    ) -> Vec<(ProcessId, Msg<Ts<B>>)> {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = Ctx::detached(0, 0, &mut rng);
        s.on_message(from, msg, &mut ctx);
        ctx.drain().0
    }

    fn fresh_ts(s: &Server<B>) -> Ts<B> {
        s.sys.next_for(9, std::slice::from_ref(&s.ts))
    }

    #[test]
    fn get_ts_replies_current() {
        let mut s = server();
        let out = ctx_run(&mut s, 7, Msg::GetTs);
        assert_eq!(out, vec![(7, Msg::TsReply { ts: s.ts.clone() })]);
    }

    #[test]
    fn dominating_write_acks_and_adopts() {
        let mut s = server();
        let ts = fresh_ts(&s);
        let out = ctx_run(&mut s, 7, Msg::Write { value: 42, ts: ts.clone() });
        assert_eq!(out, vec![(7, Msg::WriteAck { ts: ts.clone(), ack: true })]);
        assert_eq!(s.value, 42);
        assert_eq!(s.ts, ts);
        assert_eq!(s.old_vals.len(), 1);
        assert_eq!(s.old_vals[0].0, 0); // genesis pair shifted into history
    }

    #[test]
    fn stale_write_nacks_but_still_adopts() {
        let mut s = server();
        let newer = fresh_ts(&s);
        ctx_run(&mut s, 7, Msg::Write { value: 1, ts: newer.clone() });
        // Re-deliver a write whose ts does NOT dominate the current one.
        let stale = s.sys.genesis();
        let out = ctx_run(&mut s, 7, Msg::Write { value: 2, ts: stale.clone() });
        match &out[0].1 {
            Msg::WriteAck { ack, .. } => assert!(!ack, "stale write must NACK"),
            other => panic!("unexpected {other:?}"),
        }
        // Paper: the server adopts in any case.
        assert_eq!(s.value, 2);
    }

    #[test]
    fn read_registers_and_replies_with_history() {
        let mut s = server();
        let ts = fresh_ts(&s);
        ctx_run(&mut s, 9, Msg::Write { value: 5, ts });
        let out = ctx_run(&mut s, 8, Msg::Read { label: 2 });
        assert_eq!(s.running_read.get(&8), Some(&2));
        match &out[0].1 {
            Msg::Reply { value, old, label, .. } => {
                assert_eq!(*value, 5);
                assert_eq!(*label, 2);
                assert_eq!(old.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn writes_forward_to_running_readers() {
        let mut s = server();
        ctx_run(&mut s, 8, Msg::Read { label: 1 });
        let ts = fresh_ts(&s);
        let out = ctx_run(&mut s, 9, Msg::Write { value: 77, ts });
        // One WriteAck to the writer + one forwarded Reply to reader 8.
        assert_eq!(out.len(), 2);
        let fwd = out.iter().find(|(to, _)| *to == 8).expect("forwarded reply");
        match &fwd.1 {
            Msg::Reply { value, label, .. } => {
                assert_eq!(*value, 77);
                assert_eq!(*label, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn complete_read_deregisters_matching_label_only() {
        let mut s = server();
        ctx_run(&mut s, 8, Msg::Read { label: 1 });
        ctx_run(&mut s, 8, Msg::CompleteRead { label: 0 });
        assert!(s.running_read.contains_key(&8), "wrong label must not deregister");
        ctx_run(&mut s, 8, Msg::CompleteRead { label: 1 });
        assert!(!s.running_read.contains_key(&8));
    }

    #[test]
    fn flush_reflects() {
        let mut s = server();
        let out = ctx_run(&mut s, 8, Msg::Flush { label: 3 });
        assert_eq!(out, vec![(8, Msg::FlushAck { label: 3 })]);
    }

    #[test]
    fn history_is_bounded() {
        let mut s = server();
        for i in 0..50 {
            let ts = fresh_ts(&s);
            ctx_run(&mut s, 9, Msg::Write { value: i, ts });
        }
        assert!(s.old_vals.len() <= s.cfg.history_depth);
        assert_eq!(s.writes_applied, 50);
    }

    #[test]
    fn corrupt_scrambles_then_write_recovers() {
        let mut s = server();
        let mut rng = StdRng::seed_from_u64(5);
        s.corrupt(&mut rng);
        // A write with a sanitized dominating ts is adopted and acked or
        // nacked — but adopted either way, cleaning the state.
        let clean = s.sys.next_for(1, &[s.sys.sanitize(s.ts.clone())]);
        ctx_run(&mut s, 9, Msg::Write { value: 11, ts: clean.clone() });
        assert_eq!(s.value, 11);
        assert_eq!(s.ts, clean);
    }

    #[test]
    fn garbage_messages_ignored() {
        let mut s = server();
        let before_val = s.value;
        let genesis = s.sys.genesis();
        let out = ctx_run(&mut s, 8, Msg::TsReply { ts: genesis });
        assert!(out.is_empty());
        let out = ctx_run(&mut s, 8, Msg::InvokeWrite { value: 9 });
        assert!(out.is_empty());
        assert_eq!(s.value, before_val);
    }

    #[test]
    fn env_messages_ignored() {
        let mut s = server();
        let out = ctx_run(&mut s, ENV, Msg::GetTs);
        assert!(out.is_empty());
    }

    use sbft_storage::{DiskFault, DiskHandle};

    fn durable_server(disk: &DiskHandle) -> Server<B> {
        server().with_disk(disk.clone())
    }

    fn write_n(s: &mut Server<B>, n: u64) {
        for i in 0..n {
            let ts = fresh_ts(s);
            ctx_run(s, 9, Msg::Write { value: 100 + i, ts });
        }
    }

    #[test]
    fn recover_restores_state_after_clean_crash() {
        let disk = DiskHandle::sim(3);
        let mut s = durable_server(&disk);
        write_n(&mut s, 7);
        let r = Server::<B>::recover(s.sys.clone(), s.cfg, disk);
        assert_eq!(r.value, s.value);
        assert_eq!(r.ts, s.ts);
        assert_eq!(r.old_vals, s.old_vals);
        assert_eq!(r.writes_applied, s.writes_applied);
        assert!(r.running_read.is_empty());
    }

    #[test]
    fn recover_spans_snapshot_boundary() {
        let disk = DiskHandle::sim(3);
        let mut s = durable_server(&disk);
        write_n(&mut s, 40); // crosses SNAPSHOT_EVERY twice
        assert!(disk.stats().snapshots >= 2);
        let r = Server::<B>::recover(s.sys.clone(), s.cfg, disk);
        assert_eq!((r.value, r.ts.clone()), (s.value, s.ts.clone()));
    }

    #[test]
    fn lost_suffix_recovers_stale_but_well_formed_state() {
        let disk = DiskHandle::sim(3);
        let mut s = durable_server(&disk);
        write_n(&mut s, 6); // 4 synced + 2 unflushed records
        disk.crash(DiskFault::LostSuffix);
        let r = Server::<B>::recover(s.sys.clone(), s.cfg, disk);
        assert_eq!(r.value, 103, "last synced write (4th) survives");
        assert!(r.writes_applied < s.writes_applied);
    }

    #[test]
    fn recover_from_empty_or_damaged_disk_boots_clean() {
        let empty = DiskHandle::sim(3);
        let fresh = server();
        let r = Server::<B>::recover(fresh.sys.clone(), fresh.cfg, empty);
        assert_eq!((r.value, r.ts.clone()), (fresh.value, fresh.ts.clone()));

        // A snapshot reduced to garbage bytes falls back the same way.
        let garbage = DiskHandle::sim(3);
        garbage.put_snapshot(b"not a server state");
        let r = Server::<B>::recover(fresh.sys.clone(), fresh.cfg, garbage);
        assert_eq!(r.value, fresh.value);
    }

    #[test]
    fn recover_truncates_over_length_persisted_history() {
        // Persist a server with an over-length history (as `corrupt` can
        // now produce), then prove recovery re-bounds it.
        let mut s = server();
        let mut rng = StdRng::seed_from_u64(0);
        let depth = s.cfg.history_depth;
        s.old_vals = (0..2 * depth).map(|i| (i as Value, s.sys.arbitrary(&mut rng))).collect();
        assert!(s.old_vals.len() > depth);
        let disk = DiskHandle::sim(3);
        disk.put_snapshot(&s.state_bytes());
        let r = Server::<B>::recover(s.sys.clone(), s.cfg, disk);
        assert_eq!(r.old_vals.len(), depth);
        // The most recent entries are the ones kept.
        assert_eq!(r.old_vals[0].0, s.old_vals[0].0);
    }

    #[test]
    fn corrupt_can_produce_over_length_histories() {
        let mut s = server();
        let depth = s.cfg.history_depth;
        let mut seen_over = false;
        for seed in 0..200 {
            let mut rng = StdRng::seed_from_u64(seed);
            s.corrupt(&mut rng);
            if s.old_vals.len() > depth {
                seen_over = true;
                break;
            }
        }
        assert!(seen_over, "corrupt never exceeded history_depth in 200 seeds");
    }

    #[test]
    fn recovered_server_resumes_persisting() {
        let disk = DiskHandle::sim(3);
        let mut s = durable_server(&disk);
        write_n(&mut s, 3);
        let mut r = Server::<B>::recover(s.sys.clone(), s.cfg, disk.clone());
        let appends_before = disk.stats().appends;
        write_n(&mut r, 2);
        assert!(disk.stats().appends > appends_before);
    }
}
