//! Automaton fuzzing: arbitrary well-typed message sequences — from
//! arbitrary senders, interleaved with transient corruption — must never
//! panic a protocol automaton or break its structural invariants. This is
//! the self-stabilization contract at the single-process level: *any*
//! local state reached by *any* input sequence is one the automaton keeps
//! operating from.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sbft_core::adversary::random_message;
use sbft_core::client::Client;
use sbft_core::config::ClusterConfig;
use sbft_core::messages::{ClientEvent, Msg};
use sbft_core::reader::ReaderOptions;
use sbft_core::server::Server;
use sbft_core::{Sys, Ts};
use sbft_labels::{BoundedLabeling, MwmrLabeling};
use sbft_net::{Automaton, Ctx, ENV};

type B = BoundedLabeling;

fn sys_cfg() -> (Sys<B>, ClusterConfig) {
    let cfg = ClusterConfig::stabilizing(1);
    (MwmrLabeling::new(BoundedLabeling::new(cfg.label_k())), cfg)
}

/// One fuzz step: (sender selector, message seed, corrupt?).
fn steps() -> impl Strategy<Value = Vec<(u8, u64, bool)>> {
    proptest::collection::vec((any::<u8>(), any::<u64>(), proptest::bool::weighted(0.05)), 1..80)
}

fn pick_msg(sys: &Sys<B>, cfg: &ClusterConfig, seed: u64) -> Msg<Ts<B>> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Mix protocol messages with environment commands.
    match seed % 5 {
        0 => Msg::InvokeWrite { value: seed },
        1 => Msg::InvokeRead,
        _ => random_message::<B>(sys, cfg, &mut rng),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    /// Servers: any input sequence keeps the history bounded and the
    /// stored timestamp well-formed (sanitize-idempotent) after writes.
    #[test]
    fn server_survives_arbitrary_input(script in steps()) {
        let (sys, cfg) = sys_cfg();
        let mut server = Server::<B>::new(sys.clone(), cfg);
        let mut rng = StdRng::seed_from_u64(0);
        for (sender, seed, corrupt) in script {
            if corrupt {
                server.corrupt(&mut rng);
            }
            let from = if sender == 255 { ENV } else { sender as usize % (cfg.n + 4) };
            let msg = pick_msg(&sys, &cfg, seed);
            let was_write = matches!(msg, Msg::Write { .. }) && from != ENV;
            let mut ctx: Ctx<'_, Msg<Ts<B>>, ClientEvent<Ts<B>>> =
                Ctx::detached(0, 0, &mut rng);
            server.on_message(from, msg, &mut ctx);
            let (sends, outs, timers) = ctx.drain();
            prop_assert!(outs.is_empty(), "servers emit no client events");
            prop_assert!(timers.is_empty(), "the protocol is timer-free");
            // A server answers its interlocutor directly; the only other
            // traffic it originates is write-forwarding to running readers
            // (which corruption may have pointed anywhere).
            let addressed_ok = sends
                .iter()
                .all(|(to, m)| *to == from || matches!(m, Msg::Reply { .. }));
            prop_assert!(addressed_ok, "unexpected send targets");
            prop_assert!(server.old_vals.len() <= cfg.history_depth
                || !was_write, "history must stay bounded after writes");
            if was_write {
                // A write's adopted ts was sanitized on receipt.
                let clean = {
                    use sbft_labels::LabelingSystem;
                    sys.sanitize(server.ts.clone())
                };
                prop_assert_eq!(&clean, &server.ts);
            }
        }
    }

    /// Clients: any input sequence keeps the label pool in-domain, never
    /// emits more than one terminal event per invocation, and never
    /// panics — even when corruption lands mid-operation.
    #[test]
    fn client_survives_arbitrary_input(script in steps()) {
        let (sys, cfg) = sys_cfg();
        let mut client = Client::<B>::new(sys.clone(), cfg, 42, ReaderOptions::default());
        let mut rng = StdRng::seed_from_u64(1);
        let mut invocations = 0u64;
        let mut terminals = 0u64;
        for (sender, seed, corrupt) in script {
            if corrupt {
                client.corrupt(&mut rng);
            }
            let from = if sender % 7 == 0 { ENV } else { sender as usize % (cfg.n + 2) };
            let msg = pick_msg(&sys, &cfg, seed);
            if from == ENV
                && matches!(msg, Msg::InvokeWrite { .. } | Msg::InvokeRead)
                && !client.is_busy()
            {
                invocations += 1;
            }
            let mut ctx: Ctx<'_, Msg<Ts<B>>, ClientEvent<Ts<B>>> =
                Ctx::detached(cfg.client_pid(0), 0, &mut rng);
            client.on_message(from, msg, &mut ctx);
            let (sends, outs, _) = ctx.drain();
            terminals += outs.len() as u64;
            prop_assert!(sends.iter().all(|(to, _)| cfg.is_server(*to)),
                "clients only talk to servers");
            for l in 0..cfg.read_labels as u32 {
                prop_assert!(client.pool.pending_count(l) <= cfg.n);
            }
        }
        prop_assert!(terminals <= invocations,
            "at most one terminal event per accepted invocation");
    }

    /// The write-back (atomic) client variant under the same fuzz.
    #[test]
    fn atomic_client_survives_arbitrary_input(script in steps()) {
        let (sys, cfg) = sys_cfg();
        let mut client = Client::<B>::new(sys.clone(), cfg, 42, ReaderOptions::atomic());
        let mut rng = StdRng::seed_from_u64(2);
        for (sender, seed, corrupt) in script {
            if corrupt {
                client.corrupt(&mut rng);
            }
            let from = if sender % 7 == 0 { ENV } else { sender as usize % (cfg.n + 2) };
            let msg = pick_msg(&sys, &cfg, seed);
            let mut ctx: Ctx<'_, Msg<Ts<B>>, ClientEvent<Ts<B>>> =
                Ctx::detached(cfg.client_pid(0), 0, &mut rng);
            client.on_message(from, msg, &mut ctx);
        }
    }
}
