//! Property tests for the `check_window` boundary semantics: splitting an
//! execution into adjacent windows `[0, b]` and `[b+1, MAX]` must scrutinize
//! every operation at most once, and the only ops neither window checks are
//! the true straddlers of the shared boundary.

use proptest::prelude::*;
use sbft_core::messages::ClientEvent;
use sbft_core::spec::{HistoryRecorder, OpKind, RegularityError};
use sbft_core::{Sys, Ts};
use sbft_labels::{BoundedLabeling, LabelingSystem, MwmrLabeling};

type B = BoundedLabeling;

fn sys() -> Sys<B> {
    MwmrLabeling::new(BoundedLabeling::new(7))
}

/// Record one garbage read per `(invoked, len)` span, each on its own
/// client and returning its own unique unknown value, so every span yields
/// exactly one attributable `UnknownValue` violation under the full check.
fn garbage_history(s: &Sys<B>, spans: &[(u64, u64)]) -> HistoryRecorder<B> {
    let mut h = HistoryRecorder::<B>::new();
    for (i, &(invoked, len)) in spans.iter().enumerate() {
        let client = 100 + i;
        h.begin(client, OpKind::Read, invoked);
        let ev =
            ClientEvent::ReadDone { value: 10_000 + i as u64, ts: s.genesis(), via_union: false };
        h.complete(client, invoked + len, &ev);
    }
    h
}

/// The unknown values flagged by a windowed check.
fn flagged(res: Result<(), Vec<RegularityError>>) -> Vec<u64> {
    match res {
        Ok(()) => Vec::new(),
        Err(errs) => errs
            .into_iter()
            .filter_map(|e| match e {
                RegularityError::UnknownValue { value, .. } => Some(value),
                _ => None,
            })
            .collect(),
    }
}

proptest! {
    #[test]
    fn adjacent_windows_never_double_flag_and_skip_only_boundary_straddlers(
        spans in proptest::collection::vec((0u64..200, 0u64..60), 1..12),
        boundary in 1u64..260,
    ) {
        let s = sys();
        let h = garbage_history(&s, &spans);
        let first = flagged(h.check_window(&s, 0, boundary));
        let second = flagged(h.check_window(&s, boundary + 1, u64::MAX));
        for (i, &(invoked, len)) in spans.iter().enumerate() {
            let value = 10_000 + i as u64;
            let returned = invoked + len;
            let in_first = returned <= boundary;
            let in_second = invoked > boundary;
            prop_assert!(!(in_first && in_second), "an op cannot lie in both windows");
            prop_assert_eq!(
                first.contains(&value),
                in_first,
                "window [0, {}] vs op [{}, {}]", boundary, invoked, returned
            );
            prop_assert_eq!(
                second.contains(&value),
                in_second,
                "window [{}, MAX] vs op [{}, {}]", boundary + 1, invoked, returned
            );
            // Exactly the boundary straddlers escape both windows.
            let skipped = !first.contains(&value) && !second.contains(&value);
            prop_assert_eq!(skipped, invoked <= boundary && returned > boundary);
        }
    }
}

/// A `Ts<B>` helper for the write-order half of the rule.
fn next(s: &Sys<B>, writer: u32, prev: &Ts<B>) -> Ts<B> {
    s.next_for(writer, std::slice::from_ref(prev))
}

proptest! {
    /// A timestamp-inverted consecutive write pair is flagged by a window
    /// iff *both* writes run entirely inside it — shifting the window start
    /// past the first write's invocation always exempts the pair.
    #[test]
    fn write_pair_flagged_iff_both_writes_fully_inside(
        start in 0u64..50,
        gap in 1u64..30,
        from_time in 0u64..120,
    ) {
        let s = sys();
        let ts1 = next(&s, 1, &s.genesis());
        let ts2 = next(&s, 2, &ts1);
        let mut h = HistoryRecorder::<B>::new();
        // Real time w(ts2) ≺ w(ts1), timestamps inverted.
        let (a0, a1) = (start, start + gap);
        let (b0, b1) = (a1 + gap, a1 + 2 * gap);
        h.begin(10, OpKind::Write, a0);
        h.complete(10, a1, &ClientEvent::WriteDone { value: 1, ts: ts2 });
        h.begin(10, OpKind::Write, b0);
        h.complete(10, b1, &ClientEvent::WriteDone { value: 2, ts: ts1 });
        let res = h.check_from(&s, from_time);
        let both_inside = a0 >= from_time; // b0 > a0, so only `a` can straddle
        prop_assert_eq!(res.is_err(), both_inside,
            "window [{}, MAX] vs writes [{}, {}] and [{}, {}]", from_time, a0, a1, b0, b1);
    }
}
