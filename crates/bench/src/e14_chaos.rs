//! **E14 — chaos soak under the nemesis**: long seeded fault schedules
//! (crash+restart, partition, flaky links, transient corruption, mobile
//! Byzantine relocation) against a live read/write workload with the
//! client retry policy engaged, on both substrate backends.
//!
//! The claim under test is the composition of the paper's guarantees with
//! crash-recovery and link faults: **regularity holds in every stable
//! window** — every interval that starts at the first completed write
//! after all disturbances healed and ends when the next disturbance
//! fires. Operations overlapping a disturbance may abort, time out, or
//! exhaust their retries (tallied, not failed), but once the *last* fault
//! heals, a write and a read must complete and the recorded history
//! restricted to the stable windows must show zero violations.
//!
//! Disturbance windows are serialized by the schedule generator (at most
//! one honest server is disturbed at any time), so the `f = 1` resilience
//! bound stays respected throughout: one Byzantine seat plus at most one
//! crashed/partitioned/corrupted honest server still leaves every
//! completed write on `≥ 3f + 1` honest servers of which at least
//! `2f + 1` answer any read quorum.

use sbft_core::adversary::{random_message, ByzServer, ByzStrategy};
use sbft_core::cluster::{AnyRegisterSubstrate, OpOutcome, RegisterCluster};
use sbft_core::messages::{ClientEvent, Msg};
use sbft_core::server::Server;
use sbft_core::{RetryPolicy, Ts};
use sbft_labels::BoundedLabeling;
use sbft_net::nemesis::{AutomatonFactory, NemesisOpts, NemesisRunner, NemesisSchedule};
use sbft_net::{Automaton, Backend};

use crate::table::Table;

type B = BoundedLabeling;
type M = Msg<Ts<B>>;
type O = ClientEvent<Ts<B>>;

/// Safety cap on workload rounds per seed.
const MAX_ROUNDS: u64 = 4_000;

/// Nemesis event kinds that open a disturbance window.
const DISTURBANCE_KINDS: [&str; 5] =
    ["crash", "partition", "link-fault", "corrupt", "relocate-byz"];

/// Aggregated chaos-soak measurements for one backend.
#[derive(Clone, Debug)]
pub struct E14Cell {
    /// Backend the soak ran on.
    pub backend: Backend,
    /// Seeds run.
    pub seeds: usize,
    /// Nemesis events fired in total.
    pub events_fired: u64,
    /// Minimum distinct disturbance kinds fired by any one schedule.
    pub min_distinct_kinds: usize,
    /// Completed writes / reads.
    pub writes_ok: u64,
    /// Completed reads.
    pub reads_ok: u64,
    /// Read aborts surfaced (single-attempt policies only; 0 here).
    pub aborted: u64,
    /// Operations that died on a lone deadline (or a stuck driver).
    pub timed_out: u64,
    /// Operations that burned through every retry.
    pub exhausted: u64,
    /// Heals observed (disturbance windows closed).
    pub heals: u64,
    /// Summed time from each heal to the next fully-successful round.
    pub reconverge_ticks: u64,
    /// Operations that failed *after* the last fault healed (must be 0).
    pub post_heal_failures: u64,
    /// Regularity violations inside stable windows (must be 0).
    pub violations: usize,
}

impl E14Cell {
    fn tally<T>(&mut self, out: &OpOutcome<T>, is_write: bool) {
        match out {
            OpOutcome::Ok(_) if is_write => self.writes_ok += 1,
            OpOutcome::Ok(_) => self.reads_ok += 1,
            OpOutcome::Aborted => self.aborted += 1,
            OpOutcome::TimedOut { .. } => self.timed_out += 1,
            OpOutcome::Exhausted { .. } => self.exhausted += 1,
        }
    }

    /// Mean heal-to-reconvergence time in substrate ticks.
    pub fn mean_reconverge(&self) -> u64 {
        self.reconverge_ticks.checked_div(self.heals).unwrap_or(0)
    }
}

/// Run the chaos soak on one backend across `seeds` seeds.
pub fn run_backend(backend: Backend, seeds: u64) -> E14Cell {
    let mut cell = E14Cell {
        backend,
        seeds: seeds as usize,
        events_fired: 0,
        min_distinct_kinds: usize::MAX,
        writes_ok: 0,
        reads_ok: 0,
        aborted: 0,
        timed_out: 0,
        exhausted: 0,
        heals: 0,
        reconverge_ticks: 0,
        post_heal_failures: 0,
        violations: 0,
    };
    let strategies = ByzStrategy::all();
    for seed in 0..seeds {
        let strat = strategies[seed as usize % strategies.len()];
        run_seed(&mut cell, backend, seed, strat);
    }
    if cell.min_distinct_kinds == usize::MAX {
        cell.min_distinct_kinds = 0;
    }
    cell
}

fn run_seed(cell: &mut E14Cell, backend: Backend, seed: u64, strat: ByzStrategy) {
    let byz_seat = 5usize; // last server of the n = 6, f = 1 cluster
    let mut c = RegisterCluster::bounded(1)
        .clients(2)
        .byzantine(byz_seat, strat)
        .seed(seed)
        .backend(backend)
        .retry(RetryPolicy::chaos())
        .build_any();
    let opts = NemesisOpts {
        servers: c.cfg.n,
        total_procs: c.cfg.n + 2,
        byz_seat: Some(byz_seat),
        ..NemesisOpts::default()
    };
    let schedule = NemesisSchedule::random(seed, &opts);
    let mut runner = make_runner(&c, schedule, byz_seat, strat);

    let (w, r) = (c.client(0), c.client(1));
    let mut value = 1u64;
    // Stable-window bookkeeping: a window opens at the first completed
    // write with no disturbance active, and closes the moment the next
    // disturbance fires.
    let mut stable_open: Option<u64> = None;
    let mut windows: Vec<(u64, u64)> = Vec::new();
    let mut clears_consumed = 0usize;

    // Seed the register (and the first stable window) before the chaos.
    let first = c.write_outcome(w, value);
    cell.tally(&first, true);
    if first.is_ok() {
        stable_open = Some(c.now());
    }

    let mut rounds = 0u64;
    while !runner.done() && rounds < MAX_ROUNDS {
        rounds += 1;
        let before = c.now();
        let fired_from = runner.log.len();
        runner.fire_due(&mut c.sim);
        if runner.log[fired_from..].iter().any(|(_, k)| DISTURBANCE_KINDS.contains(k)) {
            if let Some(start) = stable_open.take() {
                let end = c.now();
                if end > start {
                    windows.push((start, end));
                }
            }
        }

        value += 1;
        let wout = c.write_outcome(w, value);
        cell.tally(&wout, true);
        let rout = c.read_outcome(r);
        cell.tally(&rout, false);

        if wout.is_ok() && runner.all_clear() && stable_open.is_none() {
            stable_open = Some(c.now());
        }
        if wout.is_ok() && rout.is_ok() && runner.all_clear() {
            while clears_consumed < runner.clear_times.len() {
                let healed_at = runner.clear_times[clears_consumed];
                cell.reconverge_ticks += c.now().saturating_sub(healed_at);
                cell.heals += 1;
                clears_consumed += 1;
            }
        }

        // Safety valve: if the substrate clock stalled (possible only in
        // pathological schedules), fast-forward the next nemesis event so
        // the soak always terminates.
        if c.now() == before && !runner.done() {
            runner.fire_next(&mut c.sim);
        }
    }

    // The schedule is exhausted and every window healed: liveness must be
    // back. One write + one read, both required to complete.
    value += 1;
    let wout = c.write_outcome(w, value);
    cell.tally(&wout, true);
    let rout = c.read_outcome(r);
    cell.tally(&rout, false);
    if !wout.is_ok() || !rout.is_ok() {
        cell.post_heal_failures += 1;
    }
    if wout.is_ok() && stable_open.is_none() {
        stable_open = Some(c.now());
    }
    c.settle(200_000);
    if let Some(start) = stable_open.take() {
        windows.push((start, u64::MAX));
    }
    for (start, end) in windows {
        if let Err(errs) = c.recorder.check_window(&c.sys, start, end) {
            cell.violations += errs.len();
        }
    }
    cell.events_fired += runner.events_fired();
    cell.min_distinct_kinds = cell.min_distinct_kinds.min(runner.distinct_disturbances_fired());
    c.stop();
}

fn make_runner(
    c: &RegisterCluster<B, AnyRegisterSubstrate<B>>,
    schedule: NemesisSchedule,
    byz_seat: usize,
    strat: ByzStrategy,
) -> NemesisRunner<M, O> {
    let cfg = c.cfg;
    let sys_h = c.sys.clone();
    let make_honest: AutomatonFactory<M, O> =
        Box::new(move |_pid| Box::new(Server::new(sys_h.clone(), cfg)) as Box<dyn Automaton<M, O>>);
    let sys_b = c.sys.clone();
    let make_byz: AutomatonFactory<M, O> = Box::new(move |_pid| {
        Box::new(ByzServer::new(sys_b.clone(), cfg, strat)) as Box<dyn Automaton<M, O>>
    });
    let sys_g = c.sys.clone();
    let garbage =
        Box::new(move |rng: &mut rand::rngs::StdRng| random_message::<B>(&sys_g, &cfg, rng));
    NemesisRunner::new(schedule, make_honest, Some(make_byz), Some(byz_seat), garbage)
}

/// The E14 table: one row per backend.
pub fn run(sim_seeds: u64, threaded_seeds: u64) -> Table {
    let mut t = Table::new(
        "E14: chaos soak — seeded nemesis schedules vs. retrying clients (f = 1, byz seat mobile)",
        &[
            "backend",
            "seeds",
            "nemesis events",
            "distinct kinds (min)",
            "writes ok",
            "reads ok",
            "timed out",
            "exhausted",
            "heals",
            "mean reconverge",
            "post-heal failures",
            "stable-window violations",
        ],
    );
    for (backend, seeds) in [(Backend::Sim, sim_seeds), (Backend::Threaded, threaded_seeds)] {
        let c = run_backend(backend, seeds);
        t.row(vec![
            format!("{backend:?}"),
            c.seeds.to_string(),
            c.events_fired.to_string(),
            c.min_distinct_kinds.to_string(),
            c.writes_ok.to_string(),
            c.reads_ok.to_string(),
            c.timed_out.to_string(),
            c.exhausted.to_string(),
            c.heals.to_string(),
            c.mean_reconverge().to_string(),
            c.post_heal_failures.to_string(),
            c.violations.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_soak_has_zero_stable_window_violations() {
        let cell = run_backend(Backend::Sim, 3);
        assert_eq!(cell.violations, 0, "{cell:?}");
        assert_eq!(cell.post_heal_failures, 0, "{cell:?}");
        assert!(cell.min_distinct_kinds >= 5, "{cell:?}");
        assert!(cell.writes_ok > 0 && cell.reads_ok > 0, "{cell:?}");
        assert!(cell.heals > 0, "{cell:?}");
    }

    #[test]
    fn threaded_soak_survives_the_schedule() {
        let cell = run_backend(Backend::Threaded, 1);
        assert_eq!(cell.violations, 0, "{cell:?}");
        assert_eq!(cell.post_heal_failures, 0, "{cell:?}");
        assert!(cell.events_fired > 0, "{cell:?}");
    }
}
