//! **E14 — chaos soak under the nemesis**: long seeded fault schedules
//! (crash+damaged-disk recovery, partition, flaky links, transient
//! corruption, mobile Byzantine seat movement) against a live read/write
//! workload with the client retry policy engaged, on both substrate
//! backends. Clusters are **durable**: every crash window reboots its
//! server from the server's own stable disk with a rotating
//! [`sbft_storage::DiskFault`] applied at crash time, so the soak mixes
//! real damaged-disk recovery ([`sbft_net::nemesis::NemesisEvent::CrashRecover`]) into the
//! chaos pool — a rebooted server counts as a cure (it may carry stale
//! state) until the next all-clear write converges it.
//!
//! The claim under test is the composition of the paper's guarantees with
//! crash-recovery and link faults: **regularity holds in every stable
//! window** — every interval that starts at the first completed write
//! after all disturbances healed and ends when the next disturbance
//! fires. Operations overlapping a disturbance may abort, time out, or
//! exhaust their retries (tallied distinctly, not failed), but once the
//! *last* fault heals, a write and a read must complete and the recorded
//! history restricted to the stable windows must show zero violations.
//!
//! Seat movement is the mobile-Byzantine regime: the `move-byz` windows
//! relocate the adversary to an honest server and the vacated seat
//! rejoins **cured-but-amnesiac** ([`CureMode::Amnesiac`]) — state
//! re-corrupted to an arbitrary configuration, so it must re-run
//! stabilization. The [`WindowTracker`] therefore treats every cure as
//! window-closing until the next completed all-clear write converges the
//! rejoiner (Assumption A1), even though the movement itself recovers
//! instantly.
//!
//! Disturbance windows are serialized by the schedule generator (at most
//! one honest server is disturbed at any time), so the `f = 1` resilience
//! bound stays respected throughout: one Byzantine seat plus at most one
//! crashed/partitioned/corrupted honest server still leaves every
//! completed write on `≥ 3f + 1` honest servers of which at least
//! `2f + 1` answer any read quorum.

use sbft_core::adversary::ByzStrategy;
use sbft_core::cluster::{OpOutcome, RegisterCluster};
use sbft_core::{RetryPolicy, WindowTracker};
use sbft_net::nemesis::{CureMode, NemesisOpts, NemesisSchedule};
use sbft_net::{Backend, CorruptionSeverity};

use crate::table::Table;

/// Safety cap on workload rounds per seed.
const MAX_ROUNDS: u64 = 4_000;

/// Nemesis event kinds that open a disturbance window.
const DISTURBANCE_KINDS: [&str; 6] =
    ["crash", "partition", "link-fault", "corrupt", "relocate-byz", "move-byz"];

/// Aggregated chaos-soak measurements for one backend.
#[derive(Clone, Debug)]
pub struct E14Cell {
    /// Backend the soak ran on.
    pub backend: Backend,
    /// Seeds run.
    pub seeds: usize,
    /// Nemesis events fired in total.
    pub events_fired: u64,
    /// Minimum distinct disturbance kinds fired by any one schedule.
    pub min_distinct_kinds: usize,
    /// Completed writes.
    pub writes_ok: u64,
    /// Completed reads.
    pub reads_ok: u64,
    /// Reads that aborted (split replies, no `2f+1` witness, union off).
    pub aborted: u64,
    /// Operations that died on a lone deadline (or a stuck driver).
    pub timed_out: u64,
    /// Operations that burned through every retry.
    pub exhausted: u64,
    /// Amnesiac cures observed (servers vacated by the roaming seat).
    pub cures: u64,
    /// Heals observed (disturbance windows closed).
    pub heals: u64,
    /// Summed time from each heal to the next fully-successful round.
    pub reconverge_ticks: u64,
    /// Operations that failed *after* the last fault healed (must be 0).
    pub post_heal_failures: u64,
    /// Regularity violations inside stable windows (must be 0).
    pub violations: usize,
}

impl E14Cell {
    fn tally<T>(&mut self, out: &OpOutcome<T>, is_write: bool) {
        match out {
            OpOutcome::Ok(_) if is_write => self.writes_ok += 1,
            OpOutcome::Ok(_) => self.reads_ok += 1,
            OpOutcome::Aborted => self.aborted += 1,
            OpOutcome::TimedOut { .. } => self.timed_out += 1,
            OpOutcome::Exhausted { .. } => self.exhausted += 1,
        }
    }

    /// Mean heal-to-reconvergence time in substrate ticks.
    pub fn mean_reconverge(&self) -> u64 {
        self.reconverge_ticks.checked_div(self.heals).unwrap_or(0)
    }
}

/// Run the chaos soak on one backend across `seeds` seeds.
pub fn run_backend(backend: Backend, seeds: u64) -> E14Cell {
    let mut cell = E14Cell {
        backend,
        seeds: seeds as usize,
        events_fired: 0,
        min_distinct_kinds: usize::MAX,
        writes_ok: 0,
        reads_ok: 0,
        aborted: 0,
        timed_out: 0,
        exhausted: 0,
        cures: 0,
        heals: 0,
        reconverge_ticks: 0,
        post_heal_failures: 0,
        violations: 0,
    };
    let strategies = ByzStrategy::all();
    for seed in 0..seeds {
        let strat = strategies[seed as usize % strategies.len()];
        run_seed(&mut cell, backend, seed, strat);
    }
    if cell.min_distinct_kinds == usize::MAX {
        cell.min_distinct_kinds = 0;
    }
    cell
}

fn run_seed(cell: &mut E14Cell, backend: Backend, seed: u64, strat: ByzStrategy) {
    let byz_seat = 5usize; // last server of the n = 6, f = 1 cluster
    let mut c = RegisterCluster::bounded(1)
        .clients(2)
        .byzantine(byz_seat, strat)
        .durable()
        .seed(seed)
        .backend(backend)
        .retry(RetryPolicy::chaos())
        .build_any();
    let total_procs = c.cfg.n + 2;
    let opts = NemesisOpts {
        servers: c.cfg.n,
        total_procs,
        byz_seats: vec![byz_seat],
        ..NemesisOpts::default()
    };
    let schedule = NemesisSchedule::random(seed, &opts);
    let mut runner = c
        .nemesis_runner(schedule, vec![byz_seat], strat)
        .cure_mode(CureMode::Amnesiac { total_procs, severity: CorruptionSeverity::Light });

    let (w, r) = (c.client(0), c.client(1));
    let mut value = 1u64;
    // Cure-aware stable-window bookkeeping: a window opens at a completed
    // all-clear write, closes at the next disturbance *or* amnesiac cure.
    let mut tracker = WindowTracker::new();
    let mut clears_consumed = 0usize;
    let mut cures_consumed = 0usize;

    // Seed the register (and the first stable window) before the chaos.
    let first = c.write_outcome(w, value);
    cell.tally(&first, true);
    if first.is_ok() {
        tracker.write_completed(c.now(), true);
    }

    let mut rounds = 0u64;
    while !runner.done() && rounds < MAX_ROUNDS {
        rounds += 1;
        let before = c.now();
        let fired_from = runner.log.len();
        runner.fire_due(&mut c.sim);
        if runner.log[fired_from..].iter().any(|(_, k)| DISTURBANCE_KINDS.contains(k)) {
            tracker.disturbance(c.now());
        }
        while cures_consumed < runner.cures.len() {
            let (at, pid) = runner.cures[cures_consumed];
            tracker.cured(pid, at.max(c.now()));
            cures_consumed += 1;
            cell.cures += 1;
        }

        value += 1;
        let wout = c.write_outcome(w, value);
        cell.tally(&wout, true);
        let rout = c.read_outcome(r);
        cell.tally(&rout, false);

        if wout.is_ok() {
            tracker.write_completed(c.now(), runner.all_clear());
        }
        if wout.is_ok() && rout.is_ok() && runner.all_clear() {
            while clears_consumed < runner.clear_times.len() {
                let healed_at = runner.clear_times[clears_consumed];
                cell.reconverge_ticks += c.now().saturating_sub(healed_at);
                cell.heals += 1;
                clears_consumed += 1;
            }
        }

        // Safety valve: if the substrate clock stalled (possible only in
        // pathological schedules), fast-forward the next nemesis event so
        // the soak always terminates.
        if c.now() == before && !runner.done() {
            runner.fire_next(&mut c.sim);
        }
    }

    // The schedule is exhausted and every window healed: liveness must be
    // back. One write + one read, both required to complete.
    value += 1;
    let wout = c.write_outcome(w, value);
    cell.tally(&wout, true);
    let rout = c.read_outcome(r);
    cell.tally(&rout, false);
    if !wout.is_ok() || !rout.is_ok() {
        cell.post_heal_failures += 1;
    }
    if wout.is_ok() {
        tracker.write_completed(c.now(), runner.all_clear());
    }
    c.settle(200_000);
    for (start, end) in tracker.finish(u64::MAX) {
        if let Err(errs) = c.recorder.check_window(&c.sys, start, end) {
            cell.violations += errs.len();
        }
    }
    cell.events_fired += runner.events_fired();
    cell.min_distinct_kinds = cell.min_distinct_kinds.min(runner.distinct_disturbances_fired());
    c.stop();
}

/// The E14 table: one row per backend.
pub fn run(sim_seeds: u64, threaded_seeds: u64) -> Table {
    let mut t = Table::new(
        "E14: chaos soak — seeded nemesis schedules vs. retrying clients (f = 1, amnesiac mobile byz seat)",
        &[
            "backend",
            "seeds",
            "nemesis events",
            "distinct kinds (min)",
            "writes ok",
            "reads ok",
            "aborted",
            "timed out",
            "exhausted",
            "cures",
            "heals",
            "mean reconverge",
            "post-heal failures",
            "stable-window violations",
        ],
    );
    for (backend, seeds) in [(Backend::Sim, sim_seeds), (Backend::Threaded, threaded_seeds)] {
        let c = run_backend(backend, seeds);
        t.row(vec![
            format!("{backend:?}"),
            c.seeds.to_string(),
            c.events_fired.to_string(),
            c.min_distinct_kinds.to_string(),
            c.writes_ok.to_string(),
            c.reads_ok.to_string(),
            c.aborted.to_string(),
            c.timed_out.to_string(),
            c.exhausted.to_string(),
            c.cures.to_string(),
            c.heals.to_string(),
            c.mean_reconverge().to_string(),
            c.post_heal_failures.to_string(),
            c.violations.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_core::reader::ReaderOptions;

    #[test]
    fn sim_soak_has_zero_stable_window_violations() {
        let cell = run_backend(Backend::Sim, 3);
        assert_eq!(cell.violations, 0, "{cell:?}");
        assert_eq!(cell.post_heal_failures, 0, "{cell:?}");
        assert!(cell.min_distinct_kinds >= 5, "{cell:?}");
        assert!(cell.writes_ok > 0 && cell.reads_ok > 0, "{cell:?}");
        assert!(cell.heals > 0, "{cell:?}");
        assert!(cell.cures > 0, "amnesiac seat movement never fired: {cell:?}");
    }

    #[test]
    fn threaded_soak_survives_the_schedule() {
        let cell = run_backend(Backend::Threaded, 1);
        assert_eq!(cell.violations, 0, "{cell:?}");
        assert_eq!(cell.post_heal_failures, 0, "{cell:?}");
        assert!(cell.events_fired > 0, "{cell:?}");
    }

    // --- OpOutcome accounting regressions -------------------------------
    //
    // Each test manufactures exactly one failure mode and pins the tally
    // column it lands in, so the soak summary can never silently fold one
    // outcome into another again.

    fn fresh_cell() -> E14Cell {
        E14Cell {
            backend: Backend::Sim,
            seeds: 1,
            events_fired: 0,
            min_distinct_kinds: 0,
            writes_ok: 0,
            reads_ok: 0,
            aborted: 0,
            timed_out: 0,
            exhausted: 0,
            cures: 0,
            heals: 0,
            reconverge_ticks: 0,
            post_heal_failures: 0,
            violations: 0,
        }
    }

    #[test]
    fn timed_out_is_tallied_distinctly() {
        // Single attempt + deadline, quorum broken by two crashed servers:
        // the lone attempt dies on its deadline -> TimedOut, not Exhausted.
        let mut c = RegisterCluster::bounded(1)
            .seed(7)
            .retry(RetryPolicy { max_attempts: 1, deadline: 300, backoff_base: 0, backoff_max: 0 })
            .build();
        let w = c.client(0);
        c.sim.crash(0);
        c.sim.crash(1);
        let out = c.write_outcome(w, 1);
        assert!(matches!(out, OpOutcome::TimedOut { .. }), "{out:?}");
        let mut cell = fresh_cell();
        cell.tally(&out, true);
        assert_eq!(
            (cell.timed_out, cell.exhausted, cell.aborted, cell.writes_ok),
            (1, 0, 0, 0),
            "{cell:?}"
        );
    }

    #[test]
    fn exhausted_is_tallied_distinctly() {
        // Two attempts, quorum still broken: both die on deadlines and the
        // retry budget burns out -> Exhausted, not TimedOut.
        let mut c = RegisterCluster::bounded(1)
            .seed(7)
            .retry(RetryPolicy {
                max_attempts: 2,
                deadline: 300,
                backoff_base: 10,
                backoff_max: 20,
            })
            .build();
        let w = c.client(0);
        c.sim.crash(0);
        c.sim.crash(1);
        let out = c.write_outcome(w, 1);
        assert!(matches!(out, OpOutcome::Exhausted { .. }), "{out:?}");
        let mut cell = fresh_cell();
        cell.tally(&out, true);
        assert_eq!(
            (cell.timed_out, cell.exhausted, cell.aborted, cell.writes_ok),
            (0, 1, 0, 0),
            "{cell:?}"
        );
    }

    #[test]
    fn aborted_is_tallied_distinctly() {
        // Union fallback disabled + heavy state corruption: replies split
        // below the 2f+1 witness threshold and the single-attempt read
        // aborts -> Aborted, not a timeout.
        let mut c = RegisterCluster::bounded(1)
            .seed(11)
            .reader_options(ReaderOptions { use_union: false, ..ReaderOptions::default() })
            .retry(RetryPolicy::none())
            .build();
        let (w, r) = (c.client(0), c.client(1));
        assert!(c.write_outcome(w, 1).is_ok());
        let mut aborted = None;
        for round in 0..40 {
            c.corrupt_servers(&[0, 1, 2], sbft_net::CorruptionSeverity::Adversarial);
            let out = c.read_outcome(r);
            if matches!(out, OpOutcome::Aborted) {
                aborted = Some(out);
                break;
            }
            // Re-seed a coherent value before the next corruption round.
            let _ = c.write_outcome(w, 2 + round);
        }
        let out = aborted.expect("no corrupted read aborted in 40 rounds");
        let mut cell = fresh_cell();
        cell.tally(&out, false);
        assert_eq!(
            (cell.timed_out, cell.exhausted, cell.aborted, cell.reads_ok),
            (0, 0, 1, 0),
            "{cell:?}"
        );
    }
}
