//! E20 — parallel work-stealing exploration: worker count × state-hash
//! dedup × scenario.
//!
//! Sweeps [`sbft_explorer::explore_parallel`] over the register scenarios
//! with `jobs ∈ {1, 2, 4}` workers and dedup off/on, reporting
//! schedules/sec, the dedup hit rate, and the speedup over the 1-worker
//! run of the same configuration. Two cell families:
//!
//! * **Sweep cells** — clean scenarios (`concurrent-wr-n6`, `mwmr2-n6`,
//!   `crash-recover-n6`) explored to a fixed fork depth; every cell must
//!   report zero violations, and with dedup off every cell of a scenario
//!   must report *identical* schedule/transition counts regardless of
//!   worker count (the determinism guarantee — checked here, not just in
//!   unit tests).
//! * **Rediscovery cells** — `theorem1-n5` with stop-on-violation: every
//!   jobs × dedup configuration must rediscover the Theorem 1
//!   counterexample, shrink it in parallel, and replay-verify the shrunk
//!   schedule.
//!
//! Wall-clock speedups are hardware-dependent: on a single-core runner
//! the workers time-slice one CPU and speedup ≈ 1.0 is expected (the
//! `cores` field in `BENCH_e20.json` records what the sweep ran on; see
//! EXPERIMENTS.md for the discussion, which follows the E9 threaded-
//! substrate precedent).

use sbft_explorer::scenario::RegisterScenario;
use sbft_explorer::{
    explore_parallel, replay, shrink_parallel, ExplorerConfig, ParallelConfig, ReplayOutcome,
    Scenario,
};

use crate::Table;

/// One explored configuration of the E20 sweep.
pub struct ParallelCell {
    /// Scenario name.
    pub scenario: String,
    /// Worker threads.
    pub jobs: usize,
    /// Whether state-hash dedup was on.
    pub dedup: bool,
    /// Schedules executed.
    pub schedules: u64,
    /// Total transitions (including prefix replays).
    pub transitions: u64,
    /// Subtrees skipped by dedup subsumption.
    pub deduped: u64,
    /// Dedup seen-set lookups (hit rate = deduped / dedup_checks).
    pub dedup_checks: u64,
    /// Violations found.
    pub violations: usize,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Schedules per wall-clock second.
    pub schedules_per_sec: f64,
    /// Wall-clock speedup vs the jobs=1 cell of the same scenario × dedup
    /// configuration (1.0 for the jobs=1 cell itself).
    pub speedup: f64,
    /// Human verdict for the table.
    pub verdict: String,
}

/// Worker counts swept (`--quick` drops the 4-worker column).
fn jobs_swept(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 2]
    } else {
        vec![1, 2, 4]
    }
}

/// Fork depth for the clean-scenario sweep cells.
fn sweep_depth(quick: bool) -> usize {
    if quick {
        4
    } else {
        6
    }
}

fn run_one(
    scenario: &RegisterScenario,
    config: &ExplorerConfig,
    jobs: usize,
    dedup: bool,
) -> (ParallelCell, sbft_explorer::ExploreReport) {
    let par = ParallelConfig { jobs, split_depth: 3, dedup };
    let t0 = std::time::Instant::now();
    let report = explore_parallel(scenario, config, &par);
    let dt = t0.elapsed().as_secs_f64();
    let wall_ms = dt * 1e3;
    let cell = ParallelCell {
        scenario: scenario.name().to_string(),
        jobs,
        dedup,
        schedules: report.stats.schedules,
        transitions: report.stats.transitions,
        deduped: report.stats.deduped,
        dedup_checks: report.stats.dedup_checks,
        violations: report.violations.len(),
        wall_ms,
        schedules_per_sec: if dt > 0.0 { report.stats.schedules as f64 / dt } else { 0.0 },
        speedup: 1.0,
        verdict: String::new(),
    };
    (cell, report)
}

/// Run the E20 sweep.
pub fn run_cells(quick: bool) -> Vec<ParallelCell> {
    let mut cells: Vec<ParallelCell> = Vec::new();
    let depth = sweep_depth(quick);

    // Clean-scenario sweep: schedules/sec and dedup hit rate per worker
    // count, plus the cross-worker determinism check (dedup off only —
    // with dedup on, which equal-state node wins is timing-dependent and
    // only the violation-description set is guaranteed stable).
    let sweep = [
        RegisterScenario::concurrent_write_read(),
        RegisterScenario::mwmr_two_writers(),
        RegisterScenario::crash_recover(),
    ];
    for scenario in &sweep {
        let config =
            ExplorerConfig { branch_depth: depth, max_schedules: 200_000, ..Default::default() };
        for dedup in [false, true] {
            let mut base: Option<(f64, u64, u64)> = None; // (wall, schedules, transitions)
            for &jobs in &jobs_swept(quick) {
                let (mut c, _) = run_one(scenario, &config, jobs, dedup);
                match base {
                    None => base = Some((c.wall_ms, c.schedules, c.transitions)),
                    Some((wall1, sched1, trans1)) => {
                        c.speedup = if c.wall_ms > 0.0 { wall1 / c.wall_ms } else { 1.0 };
                        if !dedup && (c.schedules != sched1 || c.transitions != trans1) {
                            c.verdict = format!(
                                "NONDETERMINISTIC: {}/{} vs {}/{} at 1 worker",
                                c.schedules, c.transitions, sched1, trans1
                            );
                        }
                    }
                }
                if c.verdict.is_empty() {
                    c.verdict = if c.violations != 0 {
                        "VIOLATIONS".into()
                    } else if dedup && c.dedup_checks > 0 {
                        format!(
                            "clean, dedup hit rate {:.1}%",
                            100.0 * c.deduped as f64 / c.dedup_checks as f64
                        )
                    } else {
                        "clean".into()
                    };
                }
                cells.push(c);
            }
        }
    }

    // Rediscovery cells: the Theorem 1 counterexample must be found,
    // shrunk (in parallel), and replay-verified under every jobs × dedup
    // configuration.
    let dirty = RegisterScenario::theorem1(5);
    let config = ExplorerConfig {
        branch_depth: 12,
        stop_on_violation: true,
        max_schedules: 200_000,
        ..Default::default()
    };
    for dedup in [false, true] {
        let mut base_wall: Option<f64> = None;
        for &jobs in &jobs_swept(quick) {
            let (mut c, report) = run_one(&dirty, &config, jobs, dedup);
            match base_wall {
                None => base_wall = Some(c.wall_ms),
                Some(wall1) => c.speedup = if c.wall_ms > 0.0 { wall1 / c.wall_ms } else { 1.0 },
            }
            c.verdict = match report.violations.first() {
                Some(v) => {
                    let min = shrink_parallel(&dirty, v, jobs);
                    match replay(&dirty, &min.schedule) {
                        ReplayOutcome::Violation { .. } => format!(
                            "counterexample found (depth {}), shrunk to {} events, replay verified",
                            v.schedule.len(),
                            min.schedule.len()
                        ),
                        other => format!("SHRUNK TRACE DID NOT REPLAY: {other:?}"),
                    }
                }
                None => "MISSED Theorem 1 counterexample".into(),
            };
            cells.push(c);
        }
    }
    cells
}

/// `harness explore --scenario <name> --jobs N [--dedup]`: explore one
/// named scenario (or, with `None`, every registered scenario) with the
/// given worker count and render an E20-style table. Violating scenarios
/// get the full found → parallel-shrink → replay-verify treatment.
/// Unknown names report the valid list.
pub fn explore_cli(
    scenario: Option<&str>,
    quick: bool,
    jobs: usize,
    dedup: bool,
) -> Result<Table, String> {
    let scenarios: Vec<RegisterScenario> = match scenario {
        Some(name) => match RegisterScenario::by_name(name) {
            Some(s) => vec![s],
            None => {
                let valid: Vec<String> =
                    RegisterScenario::all().iter().map(|s| s.name().to_string()).collect();
                return Err(format!(
                    "unknown scenario {name:?}; valid scenarios: {}",
                    valid.join(", ")
                ));
            }
        },
        None => RegisterScenario::all(),
    };
    let mut cells = Vec::new();
    for s in &scenarios {
        // theorem1-n5 needs the deeper fork bound to reach its
        // counterexample, and first-violation mode like E16.
        let violating = s.name() == "theorem1-n5";
        let config = ExplorerConfig {
            branch_depth: if violating { 12 } else { sweep_depth(quick) },
            stop_on_violation: violating,
            max_schedules: 200_000,
            ..Default::default()
        };
        let (mut c, report) = run_one(s, &config, jobs, dedup);
        c.verdict = match report.violations.first() {
            Some(v) => {
                let min = shrink_parallel(s, v, jobs);
                match replay(s, &min.schedule) {
                    ReplayOutcome::Violation { .. } => format!(
                        "counterexample found (depth {}), shrunk to {} events, replay verified",
                        v.schedule.len(),
                        min.schedule.len()
                    ),
                    other => format!("SHRUNK TRACE DID NOT REPLAY: {other:?}"),
                }
            }
            None if c.dedup_checks > 0 => format!(
                "clean, dedup hit rate {:.1}%",
                100.0 * c.deduped as f64 / c.dedup_checks as f64
            ),
            None => "clean".into(),
        };
        cells.push(c);
    }
    Ok(table(&cells))
}

/// Render the EXPERIMENTS.md table.
pub fn table(cells: &[ParallelCell]) -> Table {
    let mut t = Table::new(
        "E20: parallel work-stealing exploration (jobs × dedup × scenario)",
        &[
            "scenario",
            "jobs",
            "dedup",
            "schedules",
            "transitions",
            "sched_per_sec",
            "dedup_hits",
            "speedup",
            "verdict",
        ],
    );
    for c in cells {
        t.row(vec![
            c.scenario.clone(),
            c.jobs.to_string(),
            if c.dedup { "on" } else { "off" }.into(),
            c.schedules.to_string(),
            c.transitions.to_string(),
            format!("{:.0}", c.schedules_per_sec),
            if c.dedup_checks > 0 {
                format!("{}/{}", c.deduped, c.dedup_checks)
            } else {
                "-".into()
            },
            format!("{:.2}x", c.speedup),
            c.verdict.clone(),
        ]);
    }
    t
}

/// Serialize the sweep (plus the core count it ran on) as BENCH_e20.json.
pub fn to_json(cells: &[ParallelCell]) -> String {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut out = format!(
        "{{\n  \"experiment\": \"e20\",\n  \"schema\": 1,\n  \"cores\": {cores},\n  \"unit\": {{\"sched_per_sec\": \"complete schedules per wall-clock second\", \"speedup\": \"wall-clock vs jobs=1 of the same scenario and dedup setting\"}},\n  \"cells\": [\n"
    );
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"jobs\": {}, \"dedup\": {}, \"schedules\": {}, \"transitions\": {}, \"deduped\": {}, \"dedup_checks\": {}, \"violations\": {}, \"wall_ms\": {:.2}, \"sched_per_sec\": {:.1}, \"speedup\": {:.3}, \"verdict\": \"{}\"}}{}\n",
            c.scenario,
            c.jobs,
            c.dedup,
            c.schedules,
            c.transitions,
            c.deduped,
            c.dedup_checks,
            c.violations,
            c.wall_ms,
            c.schedules_per_sec,
            c.speedup,
            c.verdict.replace('"', "'"),
            sep,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_clean_deterministic_and_rediscovers_theorem1() {
        let cells = run_cells(true);
        // 3 sweep scenarios × 2 dedup × 2 jobs + 2 dedup × 2 jobs rediscovery.
        assert_eq!(cells.len(), 16);
        for c in &cells {
            assert!(
                !c.verdict.contains("NONDETERMINISTIC") && !c.verdict.contains("VIOLATIONS"),
                "{}: {}",
                c.scenario,
                c.verdict
            );
            if c.scenario == "theorem1-n5" {
                assert!(c.verdict.contains("replay verified"), "{}", c.verdict);
            }
        }
        // Quick-depth trees are too shallow for equal-state convergence
        // inside the fork region, so dedup hits are only guaranteed at
        // the full sweep depth — check one full-depth cell directly.
        assert!(cells.iter().any(|c| c.dedup && c.dedup_checks > 0), "digests never computed");
        let s = RegisterScenario::concurrent_write_read();
        let config =
            ExplorerConfig { branch_depth: 6, max_schedules: 200_000, ..Default::default() };
        let (c, _) = run_one(&s, &config, 2, true);
        assert!(c.deduped > 0, "dedup must engage at full depth: {}/{}", c.deduped, c.dedup_checks);
        let json = to_json(&cells);
        assert!(json.contains("\"experiment\": \"e20\""));
        assert!(json.contains("\"cores\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
