//! **E5 — Definition 2 / Section IV-A (bounded labels)**: the protocol's
//! entire timestamp traffic lives in a *finite* label space, and labels
//! are recycled safely.
//!
//! For each `f` the experiment runs a long operation stream and reports:
//! the label parameter `k`, the value-domain size `K = k² + k + 1`, the
//! bits per label, the number of *distinct* write timestamps observed vs
//! writes performed (wrap-around means distinct < writes), and the
//! read-label pool reuse counts from the client bookkeeping.

use std::collections::BTreeSet;

use sbft_core::cluster::RegisterCluster;
use sbft_core::spec::OpOutcome;
use sbft_labels::BoundedLabeling;

use crate::table::Table;

/// Measurements for one `f`.
#[derive(Clone, Debug)]
pub struct E5Cell {
    /// Byzantine budget.
    pub f: usize,
    /// Label parameter `k` used by the cluster.
    pub k: usize,
    /// Sting/antisting value domain `K`.
    pub domain: u32,
    /// Bits per label on the wire.
    pub label_bits: usize,
    /// Writes performed.
    pub writes: usize,
    /// Distinct write timestamps observed.
    pub distinct_ts: usize,
    /// Reads performed.
    pub reads: usize,
    /// Read-label pool size (`k_r`).
    pub pool_size: usize,
    /// Read-label reuses (reads beyond the first per label).
    pub label_reuses: u64,
}

/// Run the label-economy measurement.
pub fn run_cell(f: usize, ops: u64, seed: u64) -> E5Cell {
    let mut c = RegisterCluster::bounded(f).clients(2).seed(seed).build();
    let (w, r) = (c.client(0), c.client(1));
    let mut reads = 0usize;
    for i in 0..ops {
        c.write(w, i + 1).expect("write");
        if c.read(r).is_ok() {
            reads += 1;
        }
    }
    let mut distinct: BTreeSet<String> = BTreeSet::new();
    let mut writes = 0usize;
    for op in c.recorder.ops() {
        if let Some(OpOutcome::Wrote { ts, .. }) = &op.outcome {
            distinct.insert(format!("{ts:?}"));
            writes += 1;
        }
    }
    let (pool_size, label_reuses) = {
        let cl = c.client_state(1).expect("client");
        (cl.pool.pool_size(), cl.pool.reuse_count())
    };
    let labeling = BoundedLabeling::new(c.cfg.label_k());
    E5Cell {
        f,
        k: c.cfg.label_k(),
        domain: labeling.domain(),
        label_bits: labeling.label_bits(),
        writes,
        distinct_ts: distinct.len(),
        reads,
        pool_size,
        label_reuses,
    }
}

/// The E5 table.
pub fn run(ops: u64) -> Table {
    let mut t = Table::new(
        "E5 (Definition 2): bounded label economy over long runs",
        &[
            "f",
            "k",
            "domain K",
            "bits/label",
            "writes",
            "distinct ts",
            "wrapped",
            "reads",
            "read pool",
            "pool reuses",
        ],
    );
    for f in [1usize, 2] {
        let c = run_cell(f, ops, 42);
        t.row(vec![
            c.f.to_string(),
            c.k.to_string(),
            c.domain.to_string(),
            c.label_bits.to_string(),
            c.writes.to_string(),
            c.distinct_ts.to_string(),
            if c.distinct_ts < c.writes { "yes" } else { "no" }.to_string(),
            c.reads.to_string(),
            c.pool_size.to_string(),
            c.label_reuses.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_wrap_on_long_runs() {
        let c = run_cell(1, 60, 1);
        assert_eq!(c.writes, 60);
        assert!(c.distinct_ts < c.writes, "a bounded label space must recycle timestamps: {c:?}");
    }

    #[test]
    fn read_labels_are_recycled() {
        let c = run_cell(1, 20, 2);
        assert!(c.label_reuses > 0, "{c:?}");
        assert_eq!(c.reads, 20);
    }

    #[test]
    fn domain_matches_formula() {
        let c = run_cell(1, 5, 3);
        let k = c.k as u32;
        assert_eq!(c.domain, k * k + k + 1);
    }
}
