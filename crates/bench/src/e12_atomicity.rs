//! **E12 — regular vs atomic (extension beyond the paper)**: the paper
//! deliberately targets *regular* semantics; regular registers permit the
//! classic **new/old inversion** — two sequential reads, both concurrent
//! with one write, returning first the new then the old value. This
//! experiment (a) constructs the inversion mechanically on the paper's
//! protocol, (b) shows the write-back read extension
//! ([`ReaderOptions::write_back`]) eliminates it, and (c) prices the
//! upgrade in messages per read.
//!
//! ## The scripted inversion
//!
//! A writer *crashes* mid-write after its `WRITE(v2, ts2)` reached only
//! 3 of 6 servers (modelled by applying the pair to 3 server states after
//! crashing the writer — writer crashes are free in the model). Reader
//! `r1`'s quorum is steered (one slow *old* server) to contain all 3 new
//! adopters: `v2` has `2f + 1` witnesses, `r1` returns **new**. Reader
//! `r2`'s quorum is steered (one slow *new* adopter) to contain only 2:
//! only `v1` reaches the bar, `r2` returns **old** — inversion. Regular
//! semantics allow it (the write is still "concurrent": it never
//! completed); atomic semantics forbid it. With write-back, `r1` itself
//! propagates `(v2, ts2)` to `n − f` servers before returning, so `r2`
//! finds `v2` at quorum strength everywhere.

use sbft_core::cluster::RegisterCluster;
use sbft_core::reader::ReaderOptions;

use crate::table::{f1, Table};

/// Outcome of one scripted inversion run.
#[derive(Clone, Debug)]
pub struct E12Run {
    /// What r1 returned.
    pub r1: u64,
    /// What r2 returned.
    pub r2: u64,
    /// New/old inversions detected in the history.
    pub inversions: usize,
    /// Whether the (regular!) history still satisfies regularity.
    pub regular_ok: bool,
}

/// Replay the scripted inversion schedule with or without write-back.
pub fn scripted_run(write_back: bool, seed: u64) -> E12Run {
    let opts = if write_back { ReaderOptions::atomic() } else { ReaderOptions::default() };
    let mut c = RegisterCluster::bounded(1)
        .clients(4) // writer + crashed writer + r1 + r2
        .seed(seed)
        .reader_options(opts)
        .build();
    let w = c.client(0);
    let w2 = c.client(1);
    let r1 = c.client(2);
    let r2 = c.client(3);

    // v1 installed everywhere.
    c.write(w, 1).expect("seed write");
    let ts1 = c.write(w, 1).expect("re-install for a stable ts");

    // w2 begins writing v2 = 2 and crashes immediately; its WRITE reached
    // servers 0,1,2 only (applied manually — the crash model).
    c.invoke_write(w2, 2);
    c.sim.crash(w2);
    c.settle(50_000); // drain whatever the crashed client had sent
    let ts2 = c.sys.next_for(w2 as u32, std::slice::from_ref(&ts1));
    for s in 0..3 {
        if let Some(srv) = c.server_state(s) {
            let prev = (srv.value, srv.ts.clone());
            srv.old_vals.push_front(prev);
            srv.value = 2;
            srv.ts = ts2.clone();
        }
    }

    // r1: steer its quorum to include all three new adopters (one *old*
    // server slow).
    c.sim.pause_process_channels(3);
    let got1 = c.read(r1).expect("r1 returns");
    c.sim.resume_process_channels(3);
    c.settle(50_000);

    // r2: steer its quorum to exclude one *new* adopter.
    c.sim.pause_process_channels(0);
    let got2 = c.read(r2).expect("r2 returns");
    c.sim.resume_process_channels(0);
    c.settle(50_000);

    E12Run {
        r1: got1.value,
        r2: got2.value,
        inversions: c.recorder.new_old_inversions().len(),
        regular_ok: c.check_history().is_ok(),
    }
}

/// Message overhead of write-back reads (fault-free stream).
pub fn read_cost(write_back: bool, ops: u64, seed: u64) -> f64 {
    let opts = if write_back { ReaderOptions::atomic() } else { ReaderOptions::default() };
    let mut c = RegisterCluster::bounded(1).clients(2).seed(seed).reader_options(opts).build();
    let (w, r) = (c.client(0), c.client(1));
    c.write(w, 1).expect("seed");
    let before = c.metrics().messages_sent;
    for _ in 0..ops {
        c.read(r).expect("read");
    }
    (c.metrics().messages_sent - before) as f64 / ops as f64
}

/// The E12 table.
pub fn run(seed: u64) -> Table {
    let mut t = Table::new(
        "E12 (extension): new/old inversion — regular vs write-back reads (f = 1)",
        &["reads", "r1", "r2", "inversions", "regular spec", "msgs/read"],
    );
    for (name, wb) in [("regular (paper)", false), ("write-back (atomic ext.)", true)] {
        let run = scripted_run(wb, seed);
        let cost = read_cost(wb, 10, seed);
        t.row(vec![
            name.into(),
            run.r1.to_string(),
            run.r2.to_string(),
            run.inversions.to_string(),
            if run.regular_ok { "holds" } else { "VIOLATED" }.to_string(),
            f1(cost),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_reads_invert_on_the_scripted_schedule() {
        let run = scripted_run(false, 7);
        assert_eq!(run.r1, 2, "r1 must see the new value: {run:?}");
        assert_eq!(run.r2, 1, "r2 must regress to the old value: {run:?}");
        assert!(run.inversions > 0, "{run:?}");
        // ...and yet the *regular* spec is satisfied: the write never
        // completed, so both values are legal returns.
        assert!(run.regular_ok, "{run:?}");
    }

    #[test]
    fn write_back_prevents_the_inversion() {
        let run = scripted_run(true, 7);
        assert_eq!(run.r1, 2, "{run:?}");
        assert_eq!(run.r2, 2, "write-back must have propagated v2: {run:?}");
        assert_eq!(run.inversions, 0, "{run:?}");
    }

    #[test]
    fn write_back_costs_one_extra_round() {
        let regular = read_cost(false, 10, 1);
        let atomic = read_cost(true, 10, 1);
        assert!(atomic > regular, "write-back must cost messages: {regular} vs {atomic}");
        // One extra n-broadcast + n acks on top of FLUSH + READ rounds.
        assert!(atomic < regular * 2.0, "but bounded: {regular} vs {atomic}");
    }
}
