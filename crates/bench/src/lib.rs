//! # sbft-bench — the experiment suite
//!
//! The paper is purely theoretical: it has no measurement tables or data
//! figures. Deliverable (d) of this reproduction therefore turns **every
//! numbered claim** — Theorem 1, Lemmas 1–8, Definition 2, the failure
//! modes motivating the work, and the assumptions — into a regenerable
//! experiment. Each `eN_*` module computes one table; the `harness` binary
//! prints them (`harness all`, `harness e1`, …); the Criterion benches
//! under `benches/` measure the wall-clock cost of the same code paths.
//!
//! See `DESIGN.md` §5 for the experiment ↔ paper-artifact index and
//! `EXPERIMENTS.md` for recorded outputs and their interpretation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod e10_datalink;
pub mod e11_byzantine_readers;
pub mod e12_atomicity;
pub mod e13_kv_store;
pub mod e14_chaos;
pub mod e15_load;
pub mod e16_explore;
pub mod e17_mobile;
pub mod e18_recover;
pub mod e19_scale;
pub mod e1_lower_bound;
pub mod e20_parallel;
pub mod e2_termination;
pub mod e3_propagation;
pub mod e4_stabilization;
pub mod e5_labels;
pub mod e6_vs_baseline;
pub mod e7_quorum_cost;
pub mod e8_concurrency;
pub mod e9_threaded;
pub mod table;

pub use table::Table;
