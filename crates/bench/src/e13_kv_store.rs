//! **E13 — application layer (extension)**: the key–value store
//! multiplexes independent registers over one `5f + 1` server pool. The
//! experiment verifies the multiplexing is free of cross-key interference:
//! per-operation message cost is flat in the number of live keys, every
//! key's history is independently regular, and a total transient fault is
//! healed per key by that key's first post-fault write.

use sbft_kv::KvCluster;
use sbft_net::CorruptionSeverity;

use crate::table::{f1, Table};

/// One key-count measurement.
#[derive(Clone, Debug)]
pub struct E13Cell {
    /// Live keys.
    pub keys: u64,
    /// Operations executed (puts + gets).
    pub ops: u64,
    /// Messages per operation.
    pub msgs_per_op: f64,
    /// Keys whose history checked regular.
    pub regular_keys: u64,
    /// Keys recovered after total corruption.
    pub recovered_keys: u64,
}

/// Run the store across `keys` keys.
pub fn run_cell(keys: u64, seed: u64) -> E13Cell {
    let mut store = KvCluster::bounded(1).clients(2).seed(seed).build();
    let (a, b) = (store.client(0), store.client(1));
    let mut ops = 0u64;
    for key in 0..keys {
        store.put(a, key, 100 + key).expect("put");
        assert_eq!(store.get(b, key).expect("get"), 100 + key);
        ops += 2;
    }
    let msgs_clean = store.sim.metrics().messages_sent;

    // Total transient fault, then heal every key.
    store.corrupt_everything(CorruptionSeverity::Heavy);
    let mut recovered = 0u64;
    for key in 0..keys {
        if store.put(a, key, 200 + key).is_ok() {
            ops += 1;
        }
    }
    let stable = store.now();
    for key in 0..keys {
        if store.get(b, key) == Ok(200 + key) {
            recovered += 1;
            ops += 1;
        }
    }
    let regular_keys = (0..keys)
        .filter(|&k| {
            store
                .recorders
                .get(&k)
                .map(|r| r.check_from(&store.sys, stable).is_ok())
                .unwrap_or(false)
        })
        .count() as u64;

    E13Cell {
        keys,
        ops,
        msgs_per_op: msgs_clean as f64 / (2.0 * keys as f64),
        regular_keys,
        recovered_keys: recovered,
    }
}

/// The E13 table.
pub fn run(seed: u64) -> Table {
    let mut t = Table::new(
        "E13 (extension): KV store — per-key isolation over one server pool (f = 1)",
        &["keys", "ops", "msgs/op (clean)", "regular keys", "recovered keys"],
    );
    for keys in [1u64, 4, 16] {
        let c = run_cell(keys, seed);
        t.row(vec![
            c.keys.to_string(),
            c.ops.to_string(),
            f1(c.msgs_per_op),
            format!("{}/{}", c.regular_keys, c.keys),
            format!("{}/{}", c.recovered_keys, c.keys),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_key_recovers_and_stays_regular() {
        let c = run_cell(4, 3);
        assert_eq!(c.recovered_keys, 4, "{c:?}");
        assert_eq!(c.regular_keys, 4, "{c:?}");
    }

    #[test]
    fn per_op_cost_is_flat_in_key_count() {
        let one = run_cell(1, 5);
        let many = run_cell(8, 5);
        // Multiplexing adds no per-key message overhead.
        assert!(
            (one.msgs_per_op - many.msgs_per_op).abs() / one.msgs_per_op < 0.1,
            "{one:?} vs {many:?}"
        );
    }
}
