//! The experiment harness: regenerates every table of EXPERIMENTS.md.
//!
//! ```text
//! harness all            # every experiment (default scale)
//! harness e1 … e18       # one experiment
//! harness ablations      # the ablation tables
//! harness quick          # all experiments at reduced scale (CI-sized)
//! harness load           # E15 sustained-load run; writes BENCH_e15.json
//! harness explore        # E16 exhaustive schedule exploration
//! harness mobile         # E17 mobile-Byzantine frontier; writes BENCH_e17.json
//! harness recover        # E18 damaged-disk crash recovery; writes BENCH_e18.json
//! harness scale          # E19 shard × batching scale sweep; writes BENCH_e19.json
//! harness e20            # E20 parallel exploration sweep; writes BENCH_e20.json
//! ```
//!
//! `load` accepts `--clients N` (default 4), `--ops N` (default 400) and
//! `--quick` (smaller op counts); it always writes `BENCH_e15.json` to the
//! current directory.
//!
//! `mobile` (alias `e17`) sweeps n/f/movement-rate/movement-mode on both
//! substrates and writes the frontier to `BENCH_e17.json`; `--quick`
//! runs the 3-cell CI smoke instead of the full grid.
//!
//! `recover` (alias `e18`) sweeps disk-fault kind × crash rate ×
//! `n ∈ {5f, 5f+1}` with every crashed server rebooted from its own
//! damaged disk, and writes the sweep to `BENCH_e18.json`; `--quick`
//! runs the 4-cell CI smoke instead of the full grid.
//!
//! `scale` (alias `e19`) sweeps shard count × link-batch policy with
//! pipelined clients over a large keyspace on both substrates and writes
//! the grid to `BENCH_e19.json`; it accepts `--clients N` (default 192)
//! and `--ops N` (default 20000 — several times the total in-flight slot
//! count, so cells measure steady state rather than one burst), and
//! `--quick` runs the 4-cell sim-only CI smoke instead.
//!
//! `explore` (alias `e16`) accepts `--quick` (smaller fork depth) and
//! writes the found-and-shrunk Theorem 1 counterexample to
//! `E16_counterexample.trace`; `explore --replay <file>` re-executes a
//! trace file verbatim and exits non-zero unless the recorded violation
//! reproduces. With `--jobs N`, `--scenario <name>`, or `--dedup` the
//! exploration runs on the E20 work-stealing engine instead: `--jobs N`
//! worker threads, optional state-hash dedup, and `--scenario` narrowing
//! the sweep to one named scenario (unknown names list the valid ones).
//!
//! `e20` runs the full parallel-exploration sweep (jobs × dedup ×
//! scenario, with the Theorem 1 rediscovery cells) and writes
//! `BENCH_e20.json`.

use sbft_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let arg =
        args.iter().find(|a| !a.starts_with("--")).cloned().unwrap_or_else(|| "all".to_string());
    // `quick` scales experiments down; only the bare word selects them all.
    let quick = arg == "quick" || args.iter().any(|a| a == "--quick");
    let want = |name: &str| arg == "all" || arg == "quick" || arg == name;

    let mut printed = false;
    let mut emit = |t: Table| {
        if csv {
            println!("# {}", t.title);
            println!("{}", t.to_csv());
        } else {
            println!("{}", t.render());
        }
        printed = true;
    };

    // Scales: (seeds, ops) tuned so `all` finishes in a couple of minutes.
    let (seeds, ops) = if quick { (3, 5) } else { (10, 10) };

    if want("e1") {
        emit(e1_lower_bound::run(seeds));
    }
    if want("e2") {
        emit(e2_termination::run(seeds.min(5), ops));
    }
    if want("e3") {
        emit(e3_propagation::run(seeds.min(5), ops));
    }
    if want("e4") {
        emit(e4_stabilization::run(seeds));
    }
    if want("e5") {
        emit(e5_labels::run(if quick { 40 } else { 120 }));
    }
    if want("e6") {
        emit(e6_vs_baseline::run(seeds, 3));
    }
    if want("e7") {
        emit(e7_quorum_cost::run(ops));
    }
    if want("e8") {
        emit(e8_concurrency::run(seeds.min(5)));
    }
    if want("e9") {
        emit(e9_threaded::run(if quick { 20 } else { 100 }));
    }
    if want("e10") {
        emit(e10_datalink::run(seeds, if quick { 20 } else { 50 }));
        emit(e10_datalink::run_substrate(seeds.min(3), if quick { 8 } else { 16 }));
    }
    if want("e11") {
        emit(e11_byzantine_readers::run(seeds.min(5), ops.min(6)));
    }
    if want("e12") {
        emit(e12_atomicity::run(7));
    }
    if want("e13") {
        emit(e13_kv_store::run(7));
    }
    if want("e14") {
        emit(e14_chaos::run(if quick { 3 } else { 10 }, if quick { 1 } else { 2 }));
    }
    if want("e15") || arg == "load" {
        let flag = |name: &str| {
            args.iter()
                .position(|a| a == name)
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse::<u64>().ok())
        };
        let clients = flag("--clients").unwrap_or(4) as usize;
        let ops = flag("--ops").unwrap_or(if quick { 60 } else { 400 });
        let cells = e15_load::run_cells(clients, ops, 42);
        emit(e15_load::table(&cells));
        let json = e15_load::to_json(&cells);
        match std::fs::write("BENCH_e15.json", &json) {
            Ok(()) => eprintln!("wrote BENCH_e15.json ({} cells)", cells.len()),
            Err(e) => eprintln!("could not write BENCH_e15.json: {e}"),
        }
    }
    if want("e16") || arg == "explore" {
        let replay_file =
            args.iter().position(|a| a == "--replay").and_then(|i| args.get(i + 1)).cloned();
        if let Some(path) = replay_file {
            // Replay mode: re-execute a counterexample trace verbatim.
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("could not read {path}: {e}");
                    std::process::exit(2);
                }
            };
            match e16_explore::replay_trace(&text) {
                Ok(msg) => {
                    println!("{path}: {msg}");
                    std::process::exit(0);
                }
                Err(msg) => {
                    eprintln!("{path}: replay FAILED: {msg}");
                    std::process::exit(1);
                }
            }
        } else {
            let jobs = args
                .iter()
                .position(|a| a == "--jobs")
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse::<usize>().ok());
            let scenario =
                args.iter().position(|a| a == "--scenario").and_then(|i| args.get(i + 1)).cloned();
            let dedup = args.iter().any(|a| a == "--dedup");
            if jobs.is_some() || scenario.is_some() || dedup {
                // Parallel / single-scenario exploration (E20 engine).
                match e20_parallel::explore_cli(
                    scenario.as_deref(),
                    quick,
                    jobs.unwrap_or(1),
                    dedup,
                ) {
                    Ok(t) => emit(t),
                    Err(msg) => {
                        eprintln!("{msg}");
                        std::process::exit(2);
                    }
                }
            } else {
                let out = e16_explore::run(quick);
                emit(out.table);
                if let Some(trace) = out.counterexample {
                    match std::fs::write("E16_counterexample.trace", &trace) {
                        Ok(()) => eprintln!("wrote E16_counterexample.trace"),
                        Err(e) => eprintln!("could not write E16_counterexample.trace: {e}"),
                    }
                }
            }
        }
    }
    if want("e20") {
        let cells = e20_parallel::run_cells(quick);
        emit(e20_parallel::table(&cells));
        let json = e20_parallel::to_json(&cells);
        match std::fs::write("BENCH_e20.json", &json) {
            Ok(()) => eprintln!("wrote BENCH_e20.json ({} cells)", cells.len()),
            Err(e) => eprintln!("could not write BENCH_e20.json: {e}"),
        }
    }
    if want("e17") || arg == "mobile" {
        let cells = e17_mobile::run_cells(quick);
        emit(e17_mobile::table(&cells));
        let json = e17_mobile::to_json(&cells);
        match std::fs::write("BENCH_e17.json", &json) {
            Ok(()) => eprintln!("wrote BENCH_e17.json ({} cells)", cells.len()),
            Err(e) => eprintln!("could not write BENCH_e17.json: {e}"),
        }
    }
    if want("e18") || arg == "recover" {
        let cells = e18_recover::run_cells(quick);
        emit(e18_recover::table(&cells));
        let json = e18_recover::to_json(&cells);
        match std::fs::write("BENCH_e18.json", &json) {
            Ok(()) => eprintln!("wrote BENCH_e18.json ({} cells)", cells.len()),
            Err(e) => eprintln!("could not write BENCH_e18.json: {e}"),
        }
    }
    if want("e19") || arg == "scale" {
        let flag = |name: &str| {
            args.iter()
                .position(|a| a == name)
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse::<u64>().ok())
        };
        let cells = if quick {
            e19_scale::run_quick(42)
        } else {
            let clients = flag("--clients").unwrap_or(192) as usize;
            let ops = flag("--ops").unwrap_or(20_000);
            e19_scale::run_cells(clients, ops, 42)
        };
        emit(e19_scale::table(&cells));
        let json = e19_scale::to_json(&cells);
        match std::fs::write("BENCH_e19.json", &json) {
            Ok(()) => eprintln!("wrote BENCH_e19.json ({} cells)", cells.len()),
            Err(e) => eprintln!("could not write BENCH_e19.json: {e}"),
        }
    }
    if want("ablations") {
        emit(ablations::ablate_selection(seeds.min(5)));
        emit(ablations::ablate_union(seeds.min(5)));
        emit(ablations::ablate_flush(seeds.min(5)));
    }

    if !printed {
        eprintln!(
            "unknown experiment {arg:?}; use all | quick | e1..e20 | load | explore | mobile | recover | scale | ablations [--csv|--quick|--clients N|--replay FILE|--jobs N|--scenario NAME|--dedup]"
        );
        std::process::exit(2);
    }
}
