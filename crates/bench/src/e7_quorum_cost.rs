//! **E7 — Section VI (the price of stabilization)**: the paper's protocol
//! needs `5f + 1` servers where classical BFT registers need `3f + 1` and
//! crash-only registers `2f + 1`. This experiment quantifies the price in
//! fault-free runs: messages per operation and mean latency across the
//! three systems as `f` grows.
//!
//! Expected shape: message cost scales with the server count, i.e. ours
//! costs roughly `(5f+1)/(3f+1)` × KLMW and `(5f+1)/(2f+1)` × ABD, plus
//! the FLUSH round on reads.

use sbft_baseline::abd::AbdCluster;
use sbft_baseline::klmw::KlmwCluster;
use sbft_baseline::mr_safe::MrCluster;
use sbft_core::cluster::RegisterCluster;
use sbft_core::spec::OpKind;

use crate::table::{f1, Table};

/// One protocol × f measurement.
#[derive(Clone, Debug)]
pub struct E7Cell {
    /// Protocol label.
    pub protocol: String,
    /// Byzantine (or crash) budget.
    pub f: usize,
    /// Server count.
    pub n: usize,
    /// Messages per operation.
    pub msgs_per_op: f64,
    /// Mean write latency (virtual ticks).
    pub write_latency: f64,
    /// Mean read latency (virtual ticks).
    pub read_latency: f64,
}

fn latencies<B: sbft_labels::LabelingSystem>(
    rec: &sbft_core::spec::HistoryRecorder<B>,
) -> (f64, f64) {
    let mut w = (0u64, 0u64);
    let mut r = (0u64, 0u64);
    for op in rec.ops() {
        if let Some(end) = op.returned_at {
            let lat = end - op.invoked_at;
            match op.kind {
                OpKind::Write => w = (w.0 + lat, w.1 + 1),
                OpKind::Read => r = (r.0 + lat, r.1 + 1),
            }
        }
    }
    (
        if w.1 == 0 { 0.0 } else { w.0 as f64 / w.1 as f64 },
        if r.1 == 0 { 0.0 } else { r.0 as f64 / r.1 as f64 },
    )
}

/// Ours, fault-free, `ops` write+read pairs.
pub fn run_ours(f: usize, ops: u64, seed: u64) -> E7Cell {
    let mut c = RegisterCluster::bounded(f).clients(2).seed(seed).build();
    let (w, r) = (c.client(0), c.client(1));
    for i in 0..ops {
        c.write(w, i + 1).expect("write");
        c.read(r).expect("read");
    }
    let (wl, rl) = latencies(&c.recorder);
    E7Cell {
        protocol: "bounded 5f+1 (this paper)".into(),
        f,
        n: c.cfg.n,
        msgs_per_op: c.metrics().messages_sent as f64 / (2.0 * ops as f64),
        write_latency: wl,
        read_latency: rl,
    }
}

/// KLMW, fault-free.
pub fn run_klmw(f: usize, ops: u64, seed: u64) -> E7Cell {
    let mut c = KlmwCluster::new(f, 2, 0, seed);
    let (w, r) = (c.client(0), c.client(1));
    for i in 0..ops {
        c.write(w, i + 1).expect("write");
        c.read(r).expect("read");
    }
    let (wl, rl) = latencies(&c.recorder);
    E7Cell {
        protocol: "KLMW 3f+1".into(),
        f,
        n: c.n,
        msgs_per_op: c.messages_sent() as f64 / (2.0 * ops as f64),
        write_latency: wl,
        read_latency: rl,
    }
}

/// Malkhi–Reiter safe register, fault-free (single-phase each way).
pub fn run_mr(f: usize, ops: u64, seed: u64) -> E7Cell {
    let mut c = MrCluster::new(f, 2, seed);
    let (w, r) = (c.client(0), c.client(1));
    for i in 0..ops {
        c.write(w, i + 1).expect("write");
        c.read(r).expect("read");
    }
    let (wl, rl) = latencies(&c.recorder);
    E7Cell {
        protocol: "Malkhi-Reiter safe 5f".into(),
        f,
        n: c.n,
        msgs_per_op: c.messages_sent() as f64 / (2.0 * ops as f64),
        write_latency: wl,
        read_latency: rl,
    }
}

/// ABD, fault-free (crash budget `f`).
pub fn run_abd(f: usize, ops: u64, seed: u64) -> E7Cell {
    let mut c = AbdCluster::new(f, 2, seed);
    let (w, r) = (c.client(0), c.client(1));
    for i in 0..ops {
        c.write(w, i + 1).expect("write");
        c.read(r).expect("read");
    }
    let (wl, rl) = latencies(&c.recorder);
    E7Cell {
        protocol: "ABD 2f+1 (crash-only)".into(),
        f,
        n: c.n,
        msgs_per_op: c.messages_sent() as f64 / (2.0 * ops as f64),
        write_latency: wl,
        read_latency: rl,
    }
}

/// The E7 table.
pub fn run(ops: u64) -> Table {
    let mut t = Table::new(
        "E7 (Section VI): fault-free cost across resilience classes",
        &["protocol", "f", "n", "msgs/op", "write lat", "read lat"],
    );
    for f in [1usize, 2, 3] {
        for cell in
            [run_ours(f, ops, 7), run_klmw(f, ops, 7), run_mr(f, ops, 7), run_abd(f, ops, 7)]
        {
            t.row(vec![
                cell.protocol.clone(),
                cell.f.to_string(),
                cell.n.to_string(),
                f1(cell.msgs_per_op),
                f1(cell.write_latency),
                f1(cell.read_latency),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ours_costs_more_than_klmw_costs_more_than_abd() {
        let ours = run_ours(1, 5, 1);
        let klmw = run_klmw(1, 5, 1);
        let abd = run_abd(1, 5, 1);
        assert!(ours.msgs_per_op > klmw.msgs_per_op, "{ours:?} vs {klmw:?}");
        assert!(klmw.msgs_per_op > abd.msgs_per_op, "{klmw:?} vs {abd:?}");
    }

    #[test]
    fn cost_ratio_tracks_server_ratio() {
        let ours = run_ours(2, 5, 2);
        let klmw = run_klmw(2, 5, 2);
        let ratio = ours.msgs_per_op / klmw.msgs_per_op;
        let server_ratio = ours.n as f64 / klmw.n as f64;
        // Ours adds the FLUSH round on reads, so the ratio exceeds the
        // plain server ratio but stays within a small constant of it.
        assert!(ratio > server_ratio * 0.8, "ratio {ratio}, servers {server_ratio}");
        assert!(ratio < server_ratio * 3.0, "ratio {ratio}, servers {server_ratio}");
    }

    #[test]
    fn latencies_positive() {
        let c = run_ours(1, 3, 3);
        assert!(c.write_latency > 0.0 && c.read_latency > 0.0);
    }

    #[test]
    fn safe_register_single_phase_writes_are_cheapest_byzantine() {
        // MR writes skip the GET_TS phase, so its write latency is below
        // the two-phase protocols'.
        let mr = run_mr(1, 5, 4);
        let klmw = run_klmw(1, 5, 4);
        assert!(mr.write_latency < klmw.write_latency, "{mr:?} vs {klmw:?}");
    }
}
