//! **E1 — Theorem 1**: no stabilizing protocol of class TM_1R (one-phase
//! reads, majority decisions, timestamps) implements a BFT regular
//! register with `n ≤ 5f`.
//!
//! Two parts:
//!
//! 1. **Scripted replay** of the proof's adversarial execution for
//!    `f = 1`: one Byzantine server (`s5`, fully scripted), one correct
//!    server transiently corrupted to hold a timestamp dominating the
//!    writes (the adversary "chooses the initial configuration", which a
//!    lower-bound adversary may do with full foresight of the
//!    deterministic execution), and one slow correct server during the
//!    read. With `n = 5f` the TM_1R reader is forced into its
//!    majority-of-correct fallback and returns the corrupted value — a
//!    regularity violation. With `n = 5f + 1` the *same* adversary is
//!    harmless: the extra server keeps a `2f + 1` witness set in every
//!    read quorum.
//! 2. **Randomized sweep**: the same corruption pattern with the slow
//!    server chosen per seed — violation frequency at `n = 5f` vs zero at
//!    `n = 5f + 1`.

use sbft_core::cluster::RegisterCluster;
use sbft_core::reader::ReaderOptions;
use sbft_labels::LabelingSystem;

use crate::table::{pct, Table};

/// Outcome of one adversarial run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct E1Run {
    /// Servers in the run.
    pub n: usize,
    /// Whether the history violated MWMR regularity.
    pub violated: bool,
    /// The value the victim read returned.
    pub read_value: Option<u64>,
}

/// Replay the Theorem 1 execution at `n` servers, `f = 1`, pausing
/// `slow_idx` during the victim read. `slow_idx` must be a correct,
/// uncorrupted server (index `< n - 2`).
pub fn scripted_run(n: usize, slow_idx: usize, seed: u64) -> E1Run {
    let f = 1;
    let byz_idx = n - 1; // the scripted Byzantine s5
    let corrupt_idx = n - 2; // the transiently corrupted correct server s4
    assert!(slow_idx < corrupt_idx);

    let mut c = RegisterCluster::bounded_with_n(n, f)
        .scripted(byz_idx)
        .clients(2)
        .reader_options(ReaderOptions { forced_return: true, ..Default::default() })
        .seed(seed)
        .build();
    let genesis = c.sys.genesis();
    c.scripted_server(byz_idx).expect("scripted").ts_reply = Some(genesis.clone());

    let w = c.client(0);
    let r = c.client(1);

    // The corrupted server is slow through both writes (it keeps its
    // pre-write timestamp, like s4 in the proof).
    c.sim.pause_process_channels(corrupt_idx);
    c.write(w, 1).expect("w0 terminates: quorum without the slow server");
    let ts1 = c.write(w, 2).expect("w1 terminates");

    // Release the held traffic and let it drain *before* planting the
    // corruption (the adversary corrupts the server at this point of the
    // execution, after whatever it happened to receive).
    c.sim.resume_process_channels(corrupt_idx);
    c.settle(100_000);

    // Adversarial foresight: the transient corruption plants a timestamp
    // dominating ts1 (the proof's `ts2 > ts1`), with a garbage value.
    let ts2 = c.sys.next_for(u32::MAX, std::slice::from_ref(&ts1));
    {
        let srv = c.server_state(corrupt_idx).expect("honest server");
        srv.value = 999;
        srv.ts = ts2.clone();
        srv.old_vals.clear();
    }
    c.scripted_server(byz_idx).expect("scripted").read_reply = Some((999, ts2));

    // The victim read: the corrupted server answers again, a correct
    // up-to-date server is slow instead.
    c.sim.pause_process_channels(slow_idx);
    let read_value = c.read(r).ok().map(|ok| ok.value);
    c.sim.resume_process_channels(slow_idx);
    c.settle(100_000);

    E1Run { n, violated: c.check_history().is_err(), read_value }
}

/// The E1 table: scripted replay + randomized sweep at both cluster sizes.
pub fn run(seeds: u64) -> Table {
    let mut t = Table::new(
        "E1 (Theorem 1): TM_1R readers at n = 5f vs n = 5f+1 (f = 1)",
        &["n", "mode", "runs", "violations", "rate", "example read"],
    );
    for n in [5usize, 6] {
        let scripted = scripted_run(n, 0, 7);
        t.row(vec![
            n.to_string(),
            "scripted proof schedule".into(),
            "1".into(),
            usize::from(scripted.violated).to_string(),
            pct(usize::from(scripted.violated), 1),
            format!("{:?}", scripted.read_value),
        ]);
        let mut violations = 0;
        let mut runs = 0;
        let mut example = None;
        for seed in 0..seeds {
            // Randomize which correct server is slow during the read.
            let slow = (seed as usize) % (n - 2);
            let out = scripted_run(n, slow, seed);
            runs += 1;
            if out.violated {
                violations += 1;
                example.get_or_insert(out.read_value);
            }
        }
        t.row(vec![
            n.to_string(),
            "randomized slow-server sweep".into(),
            runs.to_string(),
            violations.to_string(),
            pct(violations, runs),
            format!("{:?}", example.flatten()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_servers_violate_regularity() {
        let out = scripted_run(5, 0, 7);
        assert!(out.violated, "Theorem 1 execution must violate at n = 5f");
        assert_eq!(out.read_value, Some(999), "the corrupted value is returned");
    }

    #[test]
    fn six_servers_survive_the_same_adversary() {
        let out = scripted_run(6, 0, 7);
        assert!(!out.violated, "n = 5f+1 must absorb the Theorem 1 adversary");
        assert_eq!(out.read_value, Some(2), "the last written value is returned");
    }

    #[test]
    fn sweep_shape() {
        let t = run(6);
        assert_eq!(t.len(), 4);
        // n=5 randomized row must show violations; n=6 rows must show none.
        let viol = t.col("violations");
        assert_ne!(t.cell(1, viol), "0", "expected violations at n = 5f");
        assert_eq!(t.cell(2, viol), "0", "scripted n = 6 must be clean");
        assert_eq!(t.cell(3, viol), "0", "sweep at n = 6 must be clean");
    }
}
