//! **E2 — Lemma 1 + Lemma 6 (termination)**: every `write()` and `read()`
//! terminates for `n ≥ 5f + 1`, whatever the `f` Byzantine servers do.
//!
//! Sweeps the cluster size and the Byzantine strategy, measuring the
//! completion rate (must be 100%), mean operation latency in virtual time,
//! and message complexity per operation.

use sbft_core::adversary::ByzStrategy;
use sbft_core::cluster::RegisterCluster;
use sbft_core::spec::{OpKind, OpRecord};
use sbft_labels::BoundedLabeling;
use sbft_net::Backend;

use crate::table::{f1, pct, Table};

/// Aggregated measurements for one (f, strategy) cell.
#[derive(Clone, Debug)]
pub struct E2Cell {
    /// Byzantine budget.
    pub f: usize,
    /// Cluster size `5f + 1`.
    pub n: usize,
    /// Strategy label.
    pub strategy: String,
    /// Operations attempted.
    pub attempted: usize,
    /// Operations completed.
    pub completed: usize,
    /// Mean write latency (virtual ticks).
    pub write_latency: f64,
    /// Mean read latency (virtual ticks).
    pub read_latency: f64,
    /// Messages per operation.
    pub msgs_per_op: f64,
}

fn mean_latency(ops: &[OpRecord<BoundedLabeling>], kind: OpKind) -> f64 {
    let lat: Vec<u64> = ops
        .iter()
        .filter(|o| o.kind == kind && o.is_complete())
        .map(|o| o.returned_at.unwrap() - o.invoked_at)
        .collect();
    if lat.is_empty() {
        0.0
    } else {
        lat.iter().sum::<u64>() as f64 / lat.len() as f64
    }
}

/// Run one cell: `ops_per_seed` write+read pairs across `seeds` seeds,
/// on the simulator.
pub fn run_cell(f: usize, strategy: Option<ByzStrategy>, seeds: u64, ops_per_seed: u64) -> E2Cell {
    run_cell_on(Backend::Sim, f, strategy, seeds, ops_per_seed)
}

/// Run one cell on the chosen substrate backend. On [`Backend::Threaded`]
/// latencies are in timer ticks rather than virtual time, but the
/// termination property under test is identical.
pub fn run_cell_on(
    backend: Backend,
    f: usize,
    strategy: Option<ByzStrategy>,
    seeds: u64,
    ops_per_seed: u64,
) -> E2Cell {
    let mut attempted = 0;
    let mut completed = 0;
    let mut wlat = 0.0;
    let mut rlat = 0.0;
    let mut msgs = 0.0;
    let mut cells = 0.0;
    for seed in 0..seeds {
        let mut b = RegisterCluster::bounded(f).clients(2).seed(seed).backend(backend);
        if let Some(s) = strategy {
            b = b.byzantine_tail(s);
        }
        let mut c = b.build_any();
        let (w, r) = (c.client(0), c.client(1));
        for i in 0..ops_per_seed {
            attempted += 2;
            if c.write(w, 100 + i).is_ok() {
                completed += 1;
            }
            if c.read(r).is_ok() {
                completed += 1;
            }
        }
        c.settle(100_000);
        wlat += mean_latency(c.recorder.ops(), OpKind::Write);
        rlat += mean_latency(c.recorder.ops(), OpKind::Read);
        msgs += c.metrics().messages_sent as f64 / (2.0 * ops_per_seed as f64);
        cells += 1.0;
    }
    E2Cell {
        f,
        n: 5 * f + 1,
        strategy: strategy.map(|s| format!("{s:?}")).unwrap_or_else(|| "none".into()),
        attempted,
        completed,
        write_latency: wlat / cells,
        read_latency: rlat / cells,
        msgs_per_op: msgs / cells,
    }
}

/// The E2 table.
pub fn run(seeds: u64, ops_per_seed: u64) -> Table {
    let mut t = Table::new(
        "E2 (Lemmas 1 & 6): operation termination under Byzantine strategies",
        &["f", "n", "strategy", "completion", "write lat", "read lat", "msgs/op"],
    );
    for f in [1usize, 2, 3] {
        let strategies: Vec<Option<ByzStrategy>> = if f == 1 {
            std::iter::once(None).chain(ByzStrategy::all().into_iter().map(Some)).collect()
        } else {
            vec![None, Some(ByzStrategy::Silent), Some(ByzStrategy::NackFlood)]
        };
        for s in strategies {
            let cell = run_cell(f, s, seeds, ops_per_seed);
            t.row(vec![
                cell.f.to_string(),
                cell.n.to_string(),
                cell.strategy.clone(),
                pct(cell.completed, cell.attempted),
                f1(cell.write_latency),
                f1(cell.read_latency),
                f1(cell.msgs_per_op),
            ]);
        }
    }
    // Substrate cross-check: the same scenario on real threads (latencies
    // are timer ticks there, so only completion/msgs compare directly).
    let cell = run_cell_on(Backend::Threaded, 1, None, seeds.min(3), ops_per_seed.min(10));
    t.row(vec![
        cell.f.to_string(),
        cell.n.to_string(),
        "none [threads]".into(),
        pct(cell.completed, cell.attempted),
        f1(cell.write_latency),
        f1(cell.read_latency),
        f1(cell.msgs_per_op),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ops_terminate_under_every_strategy() {
        for s in ByzStrategy::all() {
            let cell = run_cell(1, Some(s), 2, 3);
            assert_eq!(cell.completed, cell.attempted, "strategy {s:?} blocked ops");
        }
    }

    #[test]
    fn latency_and_messages_positive() {
        let cell = run_cell(1, None, 2, 3);
        assert!(cell.write_latency > 0.0);
        assert!(cell.read_latency > 0.0);
        assert!(cell.msgs_per_op > 0.0);
    }

    #[test]
    fn f2_terminates() {
        let cell = run_cell(2, Some(ByzStrategy::Silent), 1, 2);
        assert_eq!(cell.completed, cell.attempted);
        assert_eq!(cell.n, 11);
    }

    #[test]
    fn threaded_backend_terminates_with_metrics() {
        let cell = run_cell_on(Backend::Threaded, 1, Some(ByzStrategy::Silent), 1, 3);
        assert_eq!(cell.completed, cell.attempted, "{cell:?}");
        assert!(cell.msgs_per_op > 0.0, "threaded NetMetrics must report traffic");
    }
}
