//! **E17 — mobile-Byzantine frontier**: the paper's `n ≥ 5f+1`
//! stabilizing register against the full mobile-Byzantine adversary —
//! `f` seats roaming between servers at round boundaries
//! ([`sbft_net::mobile`]), every vacated server rejoining
//! cured-but-amnesiac ([`CureMode::Amnesiac`]) — swept over
//! n/f/movement-rate/movement-mode on both substrates.
//!
//! Each cell is scored three ways:
//!
//! * **full-history regularity** — every completed op scrutinized, no
//!   exemptions. Expected to *fail* once movement outpaces convergence:
//!   a read overlapping a cure may legitimately see pre-cure garbage.
//! * **cure-aware stable-window regularity** — [`WindowTracker`]
//!   windows: open at a completed all-clear write, closed by any cure
//!   until the next converging write (Assumption A1). The paper's
//!   actual claim under this adversary.
//! * **new/old inversions** — the E12 atomicity score inside the run.
//!
//! The interesting output is the *frontier*: at slow movement every
//! verdict is `regular`; as rounds shrink the full history breaks while
//! stable windows stay clean (`stable-window-only` — exactly the gap
//! the self-stabilization claim predicts); when movement outpaces
//! stabilization entirely, windows never form (`collapsed`) or even the
//! windows break (`violated`). A below-bound `n = 5f` column is
//! included as a control.

use sbft_core::adversary::ByzStrategy;
use sbft_core::cluster::{OpOutcome, RegisterCluster};
use sbft_core::{RetryPolicy, WindowTracker};
use sbft_net::mobile::{mobile_schedule, MobileOpts, MovementMode};
use sbft_net::nemesis::CureMode;
use sbft_net::{Backend, CorruptionSeverity};

use crate::table::Table;

/// Safety cap on workload rounds per seed.
const MAX_ROUNDS: u64 = 4_000;

/// One cell of the mobility frontier.
#[derive(Clone, Debug)]
pub struct E17Cell {
    /// Backend the cell ran on.
    pub backend: Backend,
    /// Cluster size.
    pub n: usize,
    /// Roaming Byzantine seats.
    pub f: usize,
    /// Movement discipline.
    pub mode: MovementMode,
    /// Movement round length (smaller = faster adversary).
    pub round_len: u64,
    /// Per-round movement probability.
    pub move_prob: f64,
    /// Seeds aggregated into this cell.
    pub seeds: usize,
    /// Seat movements fired.
    pub moves: u64,
    /// Amnesiac cures (= movements that vacated a server).
    pub cures: u64,
    /// Completed writes / reads.
    pub writes_ok: u64,
    /// Completed reads.
    pub reads_ok: u64,
    /// Aborted ops.
    pub aborted: u64,
    /// Lone-deadline deaths.
    pub timed_out: u64,
    /// Retry-budget exhaustions.
    pub exhausted: u64,
    /// Stable windows that formed across all seeds.
    pub windows: u64,
    /// Regularity violations over the *full* history (no windowing).
    pub full_violations: usize,
    /// Regularity violations *inside* cure-aware stable windows.
    pub window_violations: usize,
    /// New/old inversions (atomicity score) over the full history.
    pub inversions: usize,
}

impl E17Cell {
    /// Frontier verdict for the cell.
    pub fn verdict(&self) -> &'static str {
        if self.window_violations > 0 {
            "violated"
        } else if self.windows == 0 {
            "collapsed"
        } else if self.full_violations > 0 {
            "stable-window-only"
        } else {
            "regular"
        }
    }
}

/// Parameters of one sweep point.
#[derive(Clone, Copy, Debug)]
pub struct E17Spec {
    /// Backend.
    pub backend: Backend,
    /// Cluster size (`5f+1` on-bound, `5f` for the control row).
    pub n: usize,
    /// Roaming seats.
    pub f: usize,
    /// Movement discipline.
    pub mode: MovementMode,
    /// Movement round length.
    pub round_len: u64,
    /// Per-round movement probability.
    pub move_prob: f64,
    /// Seeds to aggregate.
    pub seeds: u64,
}

/// Run one frontier cell.
pub fn run_cell(spec: &E17Spec) -> E17Cell {
    let mut cell = E17Cell {
        backend: spec.backend,
        n: spec.n,
        f: spec.f,
        mode: spec.mode,
        round_len: spec.round_len,
        move_prob: spec.move_prob,
        seeds: spec.seeds as usize,
        moves: 0,
        cures: 0,
        writes_ok: 0,
        reads_ok: 0,
        aborted: 0,
        timed_out: 0,
        exhausted: 0,
        windows: 0,
        full_violations: 0,
        window_violations: 0,
        inversions: 0,
    };
    let strategies = ByzStrategy::all();
    for seed in 0..spec.seeds {
        let strat = strategies[seed as usize % strategies.len()];
        run_seed(&mut cell, spec, seed, strat);
    }
    cell
}

fn tally<T>(cell: &mut E17Cell, out: &OpOutcome<T>, is_write: bool) {
    match out {
        OpOutcome::Ok(_) if is_write => cell.writes_ok += 1,
        OpOutcome::Ok(_) => cell.reads_ok += 1,
        OpOutcome::Aborted => cell.aborted += 1,
        OpOutcome::TimedOut { .. } => cell.timed_out += 1,
        OpOutcome::Exhausted { .. } => cell.exhausted += 1,
    }
}

fn run_seed(cell: &mut E17Cell, spec: &E17Spec, seed: u64, strat: ByzStrategy) {
    let mut c = RegisterCluster::bounded_with_n(spec.n, spec.f)
        .clients(2)
        .byzantine_tail(strat)
        .seed(seed)
        .backend(spec.backend)
        .retry(RetryPolicy::chaos())
        .build_any();
    let total_procs = spec.n + 2;
    let mopts = MobileOpts::new(spec.n, spec.f)
        .round_len(spec.round_len)
        .move_prob(spec.move_prob)
        .mode(spec.mode);
    let seats = mopts.seats.clone();
    let schedule = mobile_schedule(seed, &mopts);
    let mut runner = c
        .nemesis_runner(schedule, seats, strat)
        .cure_mode(CureMode::Amnesiac { total_procs, severity: CorruptionSeverity::Heavy });

    let (w, r) = (c.client(0), c.client(1));
    let mut value = 1u64;
    let mut tracker = WindowTracker::new();
    let mut cures_consumed = 0usize;

    let first = c.write_outcome(w, value);
    tally(cell, &first, true);
    if first.is_ok() {
        tracker.write_completed(c.now(), true);
    }

    let mut rounds = 0u64;
    while !runner.done() && rounds < MAX_ROUNDS {
        rounds += 1;
        let before = c.now();
        runner.fire_due(&mut c.sim);
        // Every movement vacates a seat, so consuming `cures` both counts
        // the moves and closes any open window (`cured` is a disturbance)
        // — including moves fired through the fast-forward valve below.
        while cures_consumed < runner.cures.len() {
            let (at, pid) = runner.cures[cures_consumed];
            tracker.cured(pid, at.max(c.now()));
            cures_consumed += 1;
            cell.cures += 1;
        }

        value += 1;
        let wout = c.write_outcome(w, value);
        tally(cell, &wout, true);
        let rout = c.read_outcome(r);
        tally(cell, &rout, false);

        if wout.is_ok() {
            tracker.write_completed(c.now(), runner.all_clear());
        }
        if c.now() == before && !runner.done() {
            runner.fire_next(&mut c.sim);
        }
    }

    // A move fired by the end-of-iteration fast-forward exits the loop
    // with its cure unconsumed — drain those before scoring, or the
    // final window would wrongly span the cure.
    while cures_consumed < runner.cures.len() {
        let (at, pid) = runner.cures[cures_consumed];
        tracker.cured(pid, at.max(c.now()));
        cures_consumed += 1;
        cell.cures += 1;
    }

    // Post-mobility epilogue: one more converging write + read, then let
    // the traffic drain before scoring.
    value += 1;
    let wout = c.write_outcome(w, value);
    tally(cell, &wout, true);
    let rout = c.read_outcome(r);
    tally(cell, &rout, false);
    if wout.is_ok() {
        tracker.write_completed(c.now(), runner.all_clear());
    }
    c.settle(200_000);

    cell.moves += runner.log.iter().filter(|(_, k)| *k == "move-byz").count() as u64;
    if let Err(errs) = c.check_history() {
        cell.full_violations += errs.len();
    }
    for (start, end) in tracker.finish(u64::MAX) {
        cell.windows += 1;
        if let Err(errs) = c.recorder.check_window(&c.sys, start, end) {
            cell.window_violations += errs.len();
        }
    }
    cell.inversions += c.recorder.new_old_inversions().len();
    c.stop();
}

/// The sweep grid. `quick` is the CI smoke (3 cells, 1 seed each); the
/// full grid is the nightly frontier.
pub fn specs(quick: bool) -> Vec<E17Spec> {
    use Backend::{Sim, Threaded};
    use MovementMode::{Coordinated, Uncoordinated};
    let mut specs = Vec::new();
    if quick {
        for (backend, round_len) in [(Sim, 5_000), (Sim, 400), (Threaded, 1_500)] {
            specs.push(E17Spec {
                backend,
                n: 6,
                f: 1,
                mode: Coordinated,
                round_len,
                move_prob: 1.0,
                seeds: 1,
            });
        }
        return specs;
    }
    // On-bound n = 5f+1, both modes, three movement rates, f ∈ {1, 2}.
    for (n, f) in [(6, 1), (11, 2)] {
        for mode in [Coordinated, Uncoordinated] {
            for round_len in [5_000, 1_500, 400] {
                specs.push(E17Spec {
                    backend: Sim,
                    n,
                    f,
                    mode,
                    round_len,
                    move_prob: 1.0,
                    seeds: 3,
                });
            }
        }
    }
    // Below-bound control: n = 5f loses the spare server the proof needs.
    for round_len in [5_000, 1_500, 400] {
        specs.push(E17Spec {
            backend: Sim,
            n: 5,
            f: 1,
            mode: Coordinated,
            round_len,
            move_prob: 1.0,
            seeds: 3,
        });
    }
    // Threaded spot-checks at the two rate extremes.
    for round_len in [5_000, 400] {
        specs.push(E17Spec {
            backend: Threaded,
            n: 6,
            f: 1,
            mode: Coordinated,
            round_len,
            move_prob: 1.0,
            seeds: 1,
        });
    }
    specs
}

/// Run the whole grid.
pub fn run_cells(quick: bool) -> Vec<E17Cell> {
    specs(quick).iter().map(run_cell).collect()
}

/// Render the frontier table.
pub fn table(cells: &[E17Cell]) -> Table {
    let mut t = Table::new(
        "E17: mobile-Byzantine frontier — f roaming amnesiac seats vs. n ≥ 5f+1 stabilization",
        &[
            "backend",
            "n",
            "f",
            "mode",
            "round len",
            "moves",
            "cures",
            "writes ok",
            "reads ok",
            "aborted",
            "timed out",
            "exhausted",
            "windows",
            "full viol",
            "window viol",
            "inversions",
            "verdict",
        ],
    );
    for c in cells {
        t.row(vec![
            format!("{:?}", c.backend),
            c.n.to_string(),
            c.f.to_string(),
            c.mode.label().to_string(),
            c.round_len.to_string(),
            c.moves.to_string(),
            c.cures.to_string(),
            c.writes_ok.to_string(),
            c.reads_ok.to_string(),
            c.aborted.to_string(),
            c.timed_out.to_string(),
            c.exhausted.to_string(),
            c.windows.to_string(),
            c.full_violations.to_string(),
            c.window_violations.to_string(),
            c.inversions.to_string(),
            c.verdict().to_string(),
        ]);
    }
    t
}

/// Serialize the frontier as BENCH_e17.json.
pub fn to_json(cells: &[E17Cell]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"e17\",\n  \"schema\": 1,\n  \"unit\": {\"round_len\": \"substrate ticks between movement rounds\"},\n  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"n\": {}, \"f\": {}, \"mode\": \"{}\", \"round_len\": {}, \"move_prob\": {}, \"seeds\": {}, \"moves\": {}, \"cures\": {}, \"writes_ok\": {}, \"reads_ok\": {}, \"aborted\": {}, \"timed_out\": {}, \"exhausted\": {}, \"windows\": {}, \"full_violations\": {}, \"window_violations\": {}, \"new_old_inversions\": {}, \"verdict\": \"{}\"}}{}\n",
            format!("{:?}", c.backend).to_lowercase(),
            c.n,
            c.f,
            c.mode.label(),
            c.round_len,
            c.move_prob,
            c.seeds,
            c.moves,
            c.cures,
            c.writes_ok,
            c.reads_ok,
            c.aborted,
            c.timed_out,
            c.exhausted,
            c.windows,
            c.full_violations,
            c.window_violations,
            c.inversions,
            c.verdict(),
            sep,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_coordinated_movement_keeps_stable_windows_regular() {
        let spec = E17Spec {
            backend: Backend::Sim,
            n: 6,
            f: 1,
            mode: MovementMode::Coordinated,
            round_len: 5_000,
            move_prob: 1.0,
            seeds: 2,
        };
        let cell = run_cell(&spec);
        assert!(cell.moves > 0, "{cell:?}");
        assert!(cell.cures > 0, "{cell:?}");
        assert!(cell.windows > 0, "{cell:?}");
        assert_eq!(cell.window_violations, 0, "{cell:?}");
        assert!(cell.writes_ok > 0 && cell.reads_ok > 0, "{cell:?}");
    }

    /// Serialization shape only — the grid itself runs via the harness
    /// (`harness mobile --quick` in CI), not in tier-1 tests.
    #[test]
    fn json_has_one_line_per_cell_and_a_verdict() {
        let mut a = E17Cell {
            backend: Backend::Sim,
            n: 6,
            f: 1,
            mode: MovementMode::Coordinated,
            round_len: 5_000,
            move_prob: 1.0,
            seeds: 1,
            moves: 3,
            cures: 3,
            writes_ok: 40,
            reads_ok: 40,
            aborted: 0,
            timed_out: 0,
            exhausted: 1,
            windows: 4,
            full_violations: 0,
            window_violations: 0,
            inversions: 0,
        };
        let mut b = a.clone();
        b.backend = Backend::Threaded;
        b.mode = MovementMode::Uncoordinated;
        b.round_len = 400;
        b.full_violations = 2;
        let cells = vec![a.clone(), b.clone()];
        let json = to_json(&cells);
        assert_eq!(json.matches("\"verdict\"").count(), cells.len());
        assert!(json.contains("\"experiment\": \"e17\""));
        assert!(json.contains("\"backend\": \"sim\""));
        assert!(json.contains("\"backend\": \"threaded\""));
        assert!(json.contains("\"new_old_inversions\""));
        // Verdict ladder: window violations dominate, then collapse, then
        // the full-history/stable-window gap, then regular.
        assert_eq!(a.verdict(), "regular");
        assert_eq!(b.verdict(), "stable-window-only");
        b.windows = 0;
        assert_eq!(b.verdict(), "collapsed");
        b.window_violations = 1;
        assert_eq!(b.verdict(), "violated");
        a.windows = 0;
        assert_eq!(a.verdict(), "collapsed");
    }
}
