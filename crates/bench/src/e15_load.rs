//! **E15 — sustained-load throughput and latency**: a multi-client
//! open/closed-loop load generator over the shared scenario drivers, on
//! both substrate backends, for both the single register and the keyed
//! store.
//!
//! Cachin–Dobre–Vukolić ("Asynchronous BFT Storage with 2t+1 Data
//! Replicas") and Dobre et al. ("PoWerStore / Proofs of Writing") treat
//! per-operation cost and steady-state throughput as the headline metrics
//! for BFT storage; E15 gives this repo the same measurement surface and
//! seeds the perf trajectory (`BENCH_e15.json`):
//!
//! * **closed loop** — `clients` concurrent clients, each re-issuing the
//!   next operation the moment its previous one terminates, until
//!   `total_ops` complete. Throughput is wall-clock ops/s; per-operation
//!   latency (invocation → terminal event, in substrate ticks) feeds a
//!   [`LatencyHistogram`] reported as p50/p95/p99.
//! * **open loop** — arrivals at a fixed tick interval round-robin over
//!   the clients, regardless of completions. An arrival hitting a busy
//!   client is *rejected* (the register interface is one op per client),
//!   so the rejected count exposes saturation. On the simulator, a
//!   drained event queue fast-forwards virtual time to the next arrival.
//!
//! The workload mixes writes and reads (`write_ratio` percent writes) with
//! per-client-unique values, exactly the traffic the regularity checker
//! elsewhere verifies; E15 trades checking for volume (no recorder on the
//! hot path) — correctness under this workload is E8/E12/E14's job.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::time::Instant;

use sbft_core::cluster::RegisterCluster;
use sbft_core::messages::{ClientEvent, Msg};
use sbft_core::Ts;
use sbft_kv::messages::KvMsg;
use sbft_kv::KvCluster;
use sbft_labels::BoundedLabeling;
use sbft_net::{Backend, LatencyHistogram, ProcessId, Substrate};

use crate::table::{f1, Table};

type B = BoundedLabeling;

/// Keys the kv workload spreads over (small enough that keys collide
/// across clients, so the per-key register sees real MWMR contention).
const KV_KEYSPACE: u64 = 8;

/// Event budget per completion wait; generous (an op is a few hundred
/// events) so only a genuinely wedged cluster trips it.
const PUMP_BUDGET: u64 = 2_000_000;

/// Consecutive idle pumps (threaded backend) before giving up on an op.
const MAX_IDLE_PUMPS: u32 = 50;

/// Arrival pacing of the load generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadMode {
    /// Each client re-issues immediately on completion.
    Closed,
    /// One arrival every `interval` substrate ticks, round-robin over
    /// clients; arrivals to busy clients are rejected and counted.
    Open {
        /// Ticks between arrivals.
        interval: u64,
    },
}

impl LoadMode {
    fn label(&self) -> &'static str {
        match self {
            LoadMode::Closed => "closed",
            LoadMode::Open { .. } => "open",
        }
    }
}

/// Parameters of one load run.
#[derive(Clone, Copy, Debug)]
pub struct LoadSpec {
    /// Concurrent clients.
    pub clients: usize,
    /// Operations to complete (closed) or arrivals to generate (open).
    pub total_ops: u64,
    /// Percentage of operations that are writes (0..=100).
    pub write_ratio: u32,
    /// Arrival pacing.
    pub mode: LoadMode,
    /// Substrate seed.
    pub seed: u64,
}

impl LoadSpec {
    /// Closed-loop spec with the default 50/50 read-write mix.
    pub fn closed(clients: usize, total_ops: u64, seed: u64) -> Self {
        Self { clients, total_ops, write_ratio: 50, mode: LoadMode::Closed, seed }
    }

    /// Open-loop spec with the default mix.
    pub fn open(clients: usize, total_ops: u64, interval: u64, seed: u64) -> Self {
        Self { clients, total_ops, write_ratio: 50, mode: LoadMode::Open { interval }, seed }
    }

    /// Whether arrival `seq` is a write (deterministic hash of the
    /// sequence number, so runs replay identically).
    fn is_write(&self, seq: u64) -> bool {
        (seq.wrapping_mul(2_654_435_761) >> 16) % 100 < self.write_ratio as u64
    }
}

/// Measured results of one (workload, backend, mode) cell.
#[derive(Clone, Debug)]
pub struct LoadCell {
    /// `"register"` or `"kv"`.
    pub workload: &'static str,
    /// Backend the cell ran on.
    pub backend: Backend,
    /// `"closed"` or `"open"`.
    pub mode: &'static str,
    /// Concurrent clients.
    pub clients: usize,
    /// Operations that terminated successfully.
    pub ops_ok: u64,
    /// Operations that terminated unsuccessfully (abort/timeout).
    pub ops_failed: u64,
    /// Open-loop arrivals dropped because the client was busy. Reported
    /// separately (a rejection is load shed at the door, not an operation
    /// the system performed) and **never** part of [`LoadCell::ops_per_sec`]
    /// or the latency histogram.
    pub rejected: u64,
    /// Wall-clock milliseconds for the whole run.
    pub wall_ms: f64,
    /// Completed operations (`ops_ok + ops_failed`, excluding `rejected`)
    /// per wall-clock second.
    pub ops_per_sec: f64,
    /// Substrate ticks elapsed (virtual time on sim, ticks on threads).
    pub ticks: u64,
    /// Per-operation latency in substrate ticks.
    pub latency: LatencyHistogram,
    /// Messages sent per completed operation.
    pub msgs_per_op: f64,
}

/// How one operation ended, as classified from the client event stream.
enum OpEnd {
    Ok,
    Failed,
}

fn classify<T>(ev: &ClientEvent<T>) -> Option<OpEnd> {
    match ev {
        ClientEvent::WriteDone { .. } | ClientEvent::ReadDone { .. } => Some(OpEnd::Ok),
        ClientEvent::ReadAborted
        | ClientEvent::ReadFailed { .. }
        | ClientEvent::WriteFailed { .. } => Some(OpEnd::Failed),
    }
}

/// Drive `sub` under `spec`, issuing operations built by `mk_op` and
/// classifying terminal events with `terminal`. Generic over the message
/// and output types so the register and kv workloads share the loop.
fn drive<M, O, S>(
    sub: &mut S,
    clients: &[ProcessId],
    spec: &LoadSpec,
    mk_op: &mut dyn FnMut(usize, u64) -> M,
    terminal: &dyn Fn(&O) -> Option<OpEnd>,
) -> (u64, u64, u64, LatencyHistogram, u64)
where
    S: Substrate<M, O>,
{
    let idx_of: BTreeMap<ProcessId, usize> =
        clients.iter().enumerate().map(|(i, &p)| (p, i)).collect();
    let mut busy_since: BTreeMap<ProcessId, u64> = BTreeMap::new();
    let mut latency = LatencyHistogram::new();
    let (mut issued, mut ops_ok, mut ops_failed, mut rejected) = (0u64, 0u64, 0u64, 0u64);
    let start_ticks = sub.now();

    match spec.mode {
        LoadMode::Closed => {
            // Prime one operation per client, then re-issue on completion.
            for (i, &pid) in clients.iter().enumerate() {
                if issued < spec.total_ops {
                    sub.inject(pid, mk_op(i, issued));
                    busy_since.insert(pid, sub.now());
                    issued += 1;
                }
            }
            while ops_ok + ops_failed < issued || issued < spec.total_ops {
                let hit = sub.pump_until(PUMP_BUDGET, MAX_IDLE_PUMPS, &mut |time, pid, out| {
                    terminal(&out).map(|end| (time, pid, end))
                });
                let Some((time, pid, end)) = hit else {
                    break; // wedged or quiescent: report what completed
                };
                if let Some(since) = busy_since.remove(&pid) {
                    latency.record(time.saturating_sub(since));
                }
                match end {
                    OpEnd::Ok => ops_ok += 1,
                    OpEnd::Failed => ops_failed += 1,
                }
                if issued < spec.total_ops {
                    let i = idx_of[&pid];
                    sub.inject(pid, mk_op(i, issued));
                    busy_since.insert(pid, sub.now());
                    issued += 1;
                }
            }
        }
        LoadMode::Open { interval } => {
            let mut next_arrival = sub.now() + interval;
            let mut idle = 0u32;
            // First arrival immediately.
            let pid = clients[0];
            sub.inject(pid, mk_op(0, 0));
            busy_since.insert(pid, sub.now());
            issued = 1;
            loop {
                while issued < spec.total_ops && sub.now() >= next_arrival {
                    let i = (issued as usize) % clients.len();
                    let pid = clients[i];
                    match busy_since.entry(pid) {
                        Entry::Occupied(_) => rejected += 1, // saturated: one op per client
                        Entry::Vacant(slot) => {
                            sub.inject(pid, mk_op(i, issued));
                            slot.insert(sub.now());
                        }
                    }
                    issued += 1;
                    next_arrival += interval;
                }
                if issued >= spec.total_ops && busy_since.is_empty() {
                    break;
                }
                match sub.pump() {
                    sbft_net::Pumped::Event { time, pid, outputs } => {
                        idle = 0;
                        for out in outputs {
                            if let Some(end) = terminal(&out) {
                                if let Some(since) = busy_since.remove(&pid) {
                                    latency.record(time.saturating_sub(since));
                                }
                                match end {
                                    OpEnd::Ok => ops_ok += 1,
                                    OpEnd::Failed => ops_failed += 1,
                                }
                            }
                        }
                    }
                    sbft_net::Pumped::Idle => {
                        // While arrivals remain, an idle window is normal
                        // pacing (threads waiting for the next arrival),
                        // not a wedge — only give up once the last arrival
                        // is in and nothing completes.
                        if issued >= spec.total_ops {
                            idle += 1;
                            if idle >= MAX_IDLE_PUMPS {
                                break;
                            }
                        }
                    }
                    sbft_net::Pumped::Quiescent => {
                        if issued < spec.total_ops {
                            // Simulator queue drained before virtual time
                            // reached the next arrival: fast-forward by
                            // injecting it now.
                            next_arrival = sub.now();
                        } else {
                            break;
                        }
                    }
                }
            }
        }
    }
    (ops_ok, ops_failed, rejected, latency, sub.now().saturating_sub(start_ticks))
}

/// Arrival-paced pump window for threaded open-loop cells: one pump may
/// block at most about one arrival interval (the default 100 µs tick times
/// `interval` ticks), so arrivals are injected on schedule instead of
/// stalling behind the default 100 ms pump timeout.
fn open_loop_pump_timeout(interval: u64) -> std::time::Duration {
    std::time::Duration::from_micros(100).saturating_mul(interval.clamp(1, 10_000) as u32)
}

/// Run the register workload on `backend` under `spec`.
pub fn run_register_cell(backend: Backend, spec: &LoadSpec) -> LoadCell {
    let mut builder =
        RegisterCluster::bounded(1).clients(spec.clients).seed(spec.seed).backend(backend);
    if let (Backend::Threaded, LoadMode::Open { interval }) = (backend, spec.mode) {
        builder = builder.pump_timeout(open_loop_pump_timeout(interval));
    }
    let mut c = builder.build_any();
    let clients: Vec<ProcessId> = (0..spec.clients).map(|i| c.client(i)).collect();
    let spec_c = *spec;
    let mut mk = move |i: usize, seq: u64| -> Msg<Ts<B>> {
        if spec_c.is_write(seq) {
            Msg::InvokeWrite { value: ((i as u64) << 32) | seq }
        } else {
            Msg::InvokeRead
        }
    };
    let before = c.metrics();
    let start = Instant::now();
    let (ops_ok, ops_failed, rejected, latency, ticks) =
        drive(&mut c.sim, &clients, spec, &mut mk, &classify);
    let wall = start.elapsed();
    let msgs = c.metrics().delta_since(&before).messages_sent;
    c.stop();
    finish_cell("register", backend, spec, ops_ok, ops_failed, rejected, latency, ticks, wall, msgs)
}

/// Run the keyed-store workload on `backend` under `spec`.
pub fn run_kv_cell(backend: Backend, spec: &LoadSpec) -> LoadCell {
    let mut builder = KvCluster::bounded(1).clients(spec.clients).seed(spec.seed).backend(backend);
    if let (Backend::Threaded, LoadMode::Open { interval }) = (backend, spec.mode) {
        builder = builder.pump_timeout(open_loop_pump_timeout(interval));
    }
    let mut c = builder.build_any();
    let clients: Vec<ProcessId> = (0..spec.clients).map(|i| c.client(i)).collect();
    let spec_c = *spec;
    let mut mk = move |i: usize, seq: u64| -> KvMsg<Ts<B>> {
        let key = (seq + i as u64) % KV_KEYSPACE;
        let inner = if spec_c.is_write(seq) {
            Msg::InvokeWrite { value: ((i as u64) << 32) | seq }
        } else {
            Msg::InvokeRead
        };
        KvMsg::new(key, inner)
    };
    let before = c.metrics();
    let start = Instant::now();
    let (ops_ok, ops_failed, rejected, latency, ticks) =
        drive(&mut c.sim, &clients, spec, &mut mk, &|out: &sbft_kv::messages::KvEvent<Ts<B>>| {
            classify(&out.inner)
        });
    let wall = start.elapsed();
    let msgs = c.metrics().delta_since(&before).messages_sent;
    c.stop();
    finish_cell("kv", backend, spec, ops_ok, ops_failed, rejected, latency, ticks, wall, msgs)
}

#[allow(clippy::too_many_arguments)]
fn finish_cell(
    workload: &'static str,
    backend: Backend,
    spec: &LoadSpec,
    ops_ok: u64,
    ops_failed: u64,
    rejected: u64,
    latency: LatencyHistogram,
    ticks: u64,
    wall: std::time::Duration,
    msgs: u64,
) -> LoadCell {
    let wall_ms = wall.as_secs_f64() * 1e3;
    // Throughput counts operations the system actually executed; busy-client
    // rejections are excluded here and surfaced via the `rejected` column.
    let completed = ops_ok + ops_failed;
    LoadCell {
        workload,
        backend,
        mode: spec.mode.label(),
        clients: spec.clients,
        ops_ok,
        ops_failed,
        rejected,
        wall_ms,
        ops_per_sec: if wall_ms > 0.0 { completed as f64 / (wall_ms / 1e3) } else { 0.0 },
        ticks,
        msgs_per_op: if completed > 0 { msgs as f64 / completed as f64 } else { 0.0 },
        latency,
    }
}

/// Run the full E15 grid: {register, kv} × {sim, threaded} × {closed,
/// open} at `clients` concurrency. Every cell runs the *same* `ops` count
/// on both backends, so the sim-vs-threaded columns are apples-to-apples.
pub fn run_cells(clients: usize, ops: u64, seed: u64) -> Vec<LoadCell> {
    let n = ops.max(20);
    let mut cells = Vec::new();
    for backend in [Backend::Sim, Backend::Threaded] {
        let spec = LoadSpec::closed(clients, n, seed);
        cells.push(run_register_cell(backend, &spec));
        cells.push(run_kv_cell(backend, &spec));
    }
    for backend in [Backend::Sim, Backend::Threaded] {
        let open = LoadSpec::open(clients, n, 30, seed);
        cells.push(run_register_cell(backend, &open));
        cells.push(run_kv_cell(backend, &open));
    }
    cells
}

/// Render the cells as the harness table.
pub fn table(cells: &[LoadCell]) -> Table {
    let mut t = Table::new(
        "E15 — sustained-load throughput & latency (f=1, n=6)",
        &[
            "workload", "backend", "mode", "clients", "ops_ok", "failed", "rejected", "wall_ms",
            "ops/s", "p50", "p95", "p99", "msgs/op",
        ],
    );
    for c in cells {
        t.row(vec![
            c.workload.to_string(),
            format!("{:?}", c.backend).to_lowercase(),
            c.mode.to_string(),
            c.clients.to_string(),
            c.ops_ok.to_string(),
            c.ops_failed.to_string(),
            c.rejected.to_string(),
            f1(c.wall_ms),
            f1(c.ops_per_sec),
            c.latency.percentile(50.0).to_string(),
            c.latency.percentile(95.0).to_string(),
            c.latency.percentile(99.0).to_string(),
            f1(c.msgs_per_op),
        ]);
    }
    t
}

/// Serialize the cells as the machine-readable `BENCH_e15.json` document.
pub fn to_json(cells: &[LoadCell]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"e15\",\n  \"schema\": 1,\n  \"unit\": {\"latency\": \"substrate ticks\", \"throughput\": \"ops per wall-clock second\"},\n  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"backend\": \"{}\", \"mode\": \"{}\", \"clients\": {}, \"ops_ok\": {}, \"ops_failed\": {}, \"rejected\": {}, \"wall_ms\": {:.2}, \"ops_per_sec\": {:.1}, \"ticks\": {}, \"lat_p50\": {}, \"lat_p95\": {}, \"lat_p99\": {}, \"lat_mean\": {:.1}, \"lat_max\": {}, \"msgs_per_op\": {:.1}}}{}\n",
            c.workload,
            format!("{:?}", c.backend).to_lowercase(),
            c.mode,
            c.clients,
            c.ops_ok,
            c.ops_failed,
            c.rejected,
            c.wall_ms,
            c.ops_per_sec,
            c.ticks,
            c.latency.percentile(50.0),
            c.latency.percentile(95.0),
            c.latency.percentile(99.0),
            c.latency.mean(),
            c.latency.max(),
            c.msgs_per_op,
            sep,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_completes_all_ops_on_sim() {
        let spec = LoadSpec::closed(2, 30, 7);
        let cell = run_register_cell(Backend::Sim, &spec);
        assert_eq!(cell.ops_ok + cell.ops_failed, 30, "{cell:?}");
        assert_eq!(cell.rejected, 0);
        assert_eq!(cell.latency.count(), 30);
        assert!(cell.latency.percentile(50.0) > 0, "sim latencies are in ticks");
        assert!(cell.msgs_per_op > 10.0, "a quorum protocol sends many messages per op");
    }

    #[test]
    fn open_loop_rejects_when_saturated() {
        // Interval 1 tick with 1 client: arrivals far outpace completion,
        // so most arrivals must be rejected.
        let spec = LoadSpec { write_ratio: 50, ..LoadSpec::open(1, 60, 1, 3) };
        let cell = run_register_cell(Backend::Sim, &spec);
        assert!(cell.rejected > 0, "{cell:?}");
        assert!(cell.ops_ok > 0);
    }

    #[test]
    fn open_loop_rejections_are_excluded_from_throughput() {
        // Interval 1 tick with 1 client forces heavy saturation: most
        // arrivals find the client busy and must be rejected.
        let spec = LoadSpec { write_ratio: 50, ..LoadSpec::open(1, 80, 1, 9) };
        let cell = run_register_cell(Backend::Sim, &spec);
        assert!(cell.rejected > 0, "{cell:?}");
        // Conservation: every arrival either completed or was rejected.
        assert_eq!(cell.ops_ok + cell.ops_failed + cell.rejected, 80, "{cell:?}");
        // ops/sec is computed from completions only — recompute it.
        let completed = cell.ops_ok + cell.ops_failed;
        let expected = completed as f64 / (cell.wall_ms / 1e3);
        assert!(
            (cell.ops_per_sec - expected).abs() <= expected * 1e-9,
            "ops_per_sec {} must equal completed/wall {}",
            cell.ops_per_sec,
            expected
        );
        // Rejections never enter the latency histogram either.
        assert_eq!(cell.latency.count(), completed);
        // And the JSON report carries the rejections as their own field.
        let json = to_json(std::slice::from_ref(&cell));
        assert!(json.contains(&format!("\"rejected\": {}", cell.rejected)), "{json}");
    }

    #[test]
    fn kv_workload_runs_on_sim() {
        let spec = LoadSpec::closed(2, 20, 11);
        let cell = run_kv_cell(Backend::Sim, &spec);
        assert_eq!(cell.ops_ok + cell.ops_failed, 20, "{cell:?}");
        assert_eq!(cell.workload, "kv");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let spec = LoadSpec::closed(2, 20, 5);
        let cells = vec![run_register_cell(Backend::Sim, &spec)];
        let json = to_json(&cells);
        assert!(json.contains("\"experiment\": \"e15\""));
        assert!(json.contains("\"ops_per_sec\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
