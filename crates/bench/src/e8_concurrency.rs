//! **E8 — Assumption 2 / Lemma 7 scenario 2 (reads under write bursts)**:
//! a read concurrent with interleaved writes may find no single value at
//! quorum strength in its *local* graph and must fall back to the *union*
//! graph over server histories. With a single sequential writer the
//! phase-2 quorum keeps at least `n − 2f` servers within one version, so
//! the local graph almost always decides; the union path is exercised by
//! **concurrent writers** (the MW in MWMR), whose interleaved adoptions
//! genuinely split the server population.
//!
//! The experiment sweeps the number of concurrent writers and the server
//! history depth (`old_vals` length) and reports the union-fallback rate,
//! abort rate, and regularity violations. With the paper's settings
//! (history ≥ churn, union on) violations must be zero.

use sbft_core::cluster::{ClusterBuilder, RegisterCluster};
use sbft_core::config::ClusterConfig;
use sbft_core::messages::ClientEvent;
use sbft_core::reader::ReaderOptions;
use sbft_labels::BoundedLabeling;
use sbft_net::DelayModel;

use crate::table::{pct, Table};

/// One writers × depth measurement.
#[derive(Clone, Debug)]
pub struct E8Cell {
    /// Concurrent writers.
    pub writers: usize,
    /// Writes per writer.
    pub burst: usize,
    /// Server history depth (`old_vals` length).
    pub history_depth: usize,
    /// Reads completed with a value.
    pub reads: usize,
    /// Reads decided by the union graph.
    pub via_union: usize,
    /// Reads aborted.
    pub aborts: usize,
    /// Regularity violations across the run.
    pub violations: usize,
}

/// Run `writers` closed-loop writers (each issuing `burst` writes) against
/// one closed-loop reader, under wide delay variance so adoptions split.
pub fn run_cell(
    writers: usize,
    burst: usize,
    history_depth: usize,
    seeds: u64,
    opts: ReaderOptions,
) -> E8Cell {
    let mut cell =
        E8Cell { writers, burst, history_depth, reads: 0, via_union: 0, aborts: 0, violations: 0 };
    for seed in 0..seeds {
        let cfg = ClusterConfig::stabilizing(1).history(history_depth);
        let mut c: RegisterCluster<BoundedLabeling> =
            ClusterBuilder::new(cfg, BoundedLabeling::new(cfg.label_k()))
                .clients(writers + 1)
                .seed(seed)
                .delay(DelayModel::uniform(1, 40))
                .reader_options(opts)
                .build();
        let reader = c.client(writers);

        // Seed value, then all writers burst concurrently.
        c.write(c.client(0), 1).expect("seed write");
        let mut left = vec![burst; writers];
        let mut next_val = 100u64;
        for (wi, slot) in left.iter_mut().enumerate() {
            if *slot > 0 {
                next_val += 1;
                c.invoke_write(c.client(wi), next_val);
                *slot -= 1;
            }
        }
        let mut reader_done = false;
        c.invoke_read(reader);

        let mut budget = 5_000_000u64;
        while (left.iter().any(|&l| l > 0) || !reader_done) && budget > 0 {
            let Some(ev) = c.sim.step() else { break };
            budget -= 1;
            let (time, pid) = (ev.time, ev.pid);
            for out in ev.outputs {
                c.recorder.complete(pid, time, &out);
                #[allow(clippy::needless_range_loop)]
                // wi is matched against pid, not just an index
                for wi in 0..writers {
                    if pid == c.client(wi) && out.is_write_end() && left[wi] > 0 {
                        next_val += 1;
                        c.invoke_write(c.client(wi), next_val);
                        left[wi] -= 1;
                        break;
                    }
                }
                if pid == reader {
                    match out {
                        ClientEvent::ReadDone { via_union, .. } => {
                            cell.reads += 1;
                            if via_union {
                                cell.via_union += 1;
                            }
                        }
                        ClientEvent::ReadAborted => cell.aborts += 1,
                        _ => {}
                    }
                    if left.iter().all(|&l| l == 0) {
                        reader_done = true;
                    } else {
                        c.invoke_read(reader);
                    }
                }
            }
        }
        c.settle(300_000);
        if let Err(errs) = c.check_history() {
            cell.violations += errs.len();
        }
    }
    cell
}

/// The E8 table: writer sweep at the paper's depth, plus the ablated depth.
pub fn run(seeds: u64) -> Table {
    let mut t = Table::new(
        "E8 (Assumption 2): reads under concurrent write bursts (f = 1, n = 6)",
        &["writers", "burst", "history", "reads", "union rate", "aborts", "violations"],
    );
    let opts = ReaderOptions::default();
    for writers in [1usize, 2, 3] {
        for depth in [6usize, 2] {
            let c = run_cell(writers, 10, depth, seeds, opts);
            t.row(vec![
                c.writers.to_string(),
                c.burst.to_string(),
                c.history_depth.to_string(),
                c.reads.to_string(),
                pct(c.via_union, c.reads.max(1)),
                c.aborts.to_string(),
                c.violations.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_writer_never_needs_union() {
        let c = run_cell(1, 10, 6, 3, ReaderOptions::default());
        assert_eq!(c.violations, 0, "{c:?}");
        assert_eq!(c.aborts, 0, "{c:?}");
        assert!(c.reads > 0);
    }

    #[test]
    fn concurrent_writers_exercise_union_without_violations() {
        let c = run_cell(2, 10, 6, 5, ReaderOptions::default());
        assert_eq!(c.violations, 0, "{c:?}");
        assert_eq!(c.aborts, 0, "{c:?}");
        assert!(c.via_union > 0, "union fallback should fire: {c:?}");
    }

    #[test]
    fn union_disabled_is_strictly_weaker() {
        let with = run_cell(3, 10, 6, 4, ReaderOptions::default());
        let without =
            run_cell(3, 10, 6, 4, ReaderOptions { use_union: false, ..Default::default() });
        assert!(
            without.aborts > with.aborts,
            "union off must abort where union decided: {with:?} vs {without:?}"
        );
    }
}
