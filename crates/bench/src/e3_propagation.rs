//! **E3 — Lemma 2 (write propagation)**: when a `write(v)` completes, at
//! least `3f + 1` servers store `⟨v, ts_v⟩`.
//!
//! The measurement sweeps the Byzantine phase-participation scenarios the
//! proof enumerates (reply in both phases / phase 1 only / phase 2 only /
//! neither — approximated by the strategy catalogue) and reports the
//! *minimum* number of servers storing the pair immediately after each
//! write's completion. Note Byzantine servers may coincidentally store the
//! pair too; we count only honest servers, so `≥ 3f + 1` is exactly the
//! lemma's bound.

use sbft_core::adversary::ByzStrategy;
use sbft_core::cluster::RegisterCluster;

use crate::table::Table;

/// One (strategy, f) measurement.
#[derive(Clone, Debug)]
pub struct E3Cell {
    /// Byzantine budget.
    pub f: usize,
    /// Strategy label.
    pub strategy: String,
    /// Writes performed.
    pub writes: usize,
    /// Minimum honest servers storing a completed write's pair.
    pub min_storing: usize,
    /// Mean honest servers storing the pair.
    pub mean_storing: f64,
    /// The lemma's bound `3f + 1`.
    pub bound: usize,
}

/// Measure one cell.
pub fn run_cell(f: usize, strategy: Option<ByzStrategy>, seeds: u64, writes: u64) -> E3Cell {
    let mut min_storing = usize::MAX;
    let mut total = 0usize;
    let mut count = 0usize;
    for seed in 0..seeds {
        let mut b = RegisterCluster::bounded(f).clients(1).seed(seed);
        if let Some(s) = strategy {
            b = b.byzantine_tail(s);
        }
        let mut c = b.build();
        let w = c.client(0);
        for i in 0..writes {
            let value = 1000 * (seed + 1) + i;
            let ts = c.write(w, value).expect("write terminates");
            let storing = c.servers_storing(value, &ts);
            min_storing = min_storing.min(storing);
            total += storing;
            count += 1;
        }
    }
    E3Cell {
        f,
        strategy: strategy.map(|s| format!("{s:?}")).unwrap_or_else(|| "none".into()),
        writes: count,
        min_storing,
        mean_storing: total as f64 / count as f64,
        bound: 3 * f + 1,
    }
}

/// The E3 table.
pub fn run(seeds: u64, writes: u64) -> Table {
    let mut t = Table::new(
        "E3 (Lemma 2): servers storing a completed write's (value, ts)",
        &["f", "strategy", "writes", "min storing", "mean storing", "bound 3f+1", "holds"],
    );
    for f in [1usize, 2] {
        for s in std::iter::once(None).chain(ByzStrategy::all().into_iter().map(Some)) {
            let cell = run_cell(f, s, seeds, writes);
            t.row(vec![
                cell.f.to_string(),
                cell.strategy.clone(),
                cell.writes.to_string(),
                cell.min_storing.to_string(),
                format!("{:.1}", cell.mean_storing),
                cell.bound.to_string(),
                if cell.min_storing >= cell.bound { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_holds_fault_free() {
        let cell = run_cell(1, None, 2, 5);
        assert!(cell.min_storing >= cell.bound, "{cell:?}");
    }

    #[test]
    fn bound_holds_under_each_strategy() {
        for s in ByzStrategy::all() {
            let cell = run_cell(1, Some(s), 2, 4);
            assert!(cell.min_storing >= cell.bound, "strategy {s:?}: {cell:?}");
        }
    }

    #[test]
    fn bound_holds_at_f2() {
        let cell = run_cell(2, Some(ByzStrategy::Silent), 1, 3);
        assert!(cell.min_storing >= 7, "{cell:?}");
    }
}
