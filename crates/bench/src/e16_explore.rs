//! E16 — bounded-exhaustive schedule exploration (Theorem 1, Lemma 5).
//!
//! Runs the [`sbft_explorer`] engine over the register scenarios:
//!
//! * `concurrent-wr-n6`, **prune off** — the raw schedule tree of one
//!   write ∥ one read on an honest n=6/f=1 cluster. Every interleaving
//!   must satisfy regularity and terminate (Lemma 5 / Theorem 2 territory,
//!   checked exhaustively rather than sampled).
//! * `concurrent-wr-n6`, **prune on** — the same tree under sleep-set
//!   pruning; the schedule ratio is the prune ratio reported in
//!   EXPERIMENTS.md.
//! * `theorem1-n6`, prune on — the Theorem 1 adversary one server above
//!   the impossibility bound: still zero violations.
//! * `theorem1-n5`, prune on, stop-on-violation — the explorer must
//!   *rediscover* the paper's Theorem 1 counterexample as a found,
//!   shrunk, replay-verified trace (written to `E16_counterexample.trace`
//!   by `harness explore`).

use sbft_explorer::scenario::RegisterScenario;
use sbft_explorer::{
    explore, format_trace, parse_trace, replay, shrink, ExplorerConfig, ReplayOutcome, Scenario,
    Violation,
};

use crate::table::pct;
use crate::Table;

/// One explored configuration, plus its verdict.
pub struct ExploreCell {
    /// Scenario name.
    pub scenario: String,
    /// Whether sleep-set pruning was on.
    pub prune: bool,
    /// Fork depth.
    pub branch_depth: usize,
    /// Schedules executed.
    pub schedules: u64,
    /// Subtrees pruned as sleep-equivalent.
    pub pruned: u64,
    /// Total transitions (including prefix replays).
    pub transitions: u64,
    /// Longest schedule.
    pub max_depth: usize,
    /// Violations found.
    pub violations: usize,
    /// Human verdict for the table.
    pub verdict: String,
}

/// The result of the E16 sweep: the table plus, when the n=5 run
/// rediscovered the Theorem 1 counterexample, its replayable trace.
pub struct E16Outcome {
    /// The EXPERIMENTS.md table.
    pub table: Table,
    /// Shrunk counterexample trace (format of [`sbft_explorer::format_trace`]).
    pub counterexample: Option<String>,
}

/// Fork depth for the exhaustive cells. Depth 4 at quick scale keeps the
/// sweep under CI budgets; depth 6 at full scale pushes the unpruned
/// `concurrent-wr-n6` tree past 10,000 schedules.
pub fn sweep_depth(quick: bool) -> usize {
    if quick {
        4
    } else {
        6
    }
}

fn cell(scenario: &RegisterScenario, config: &ExplorerConfig) -> (ExploreCell, Vec<Violation>) {
    let report = explore(scenario, config);
    let c = ExploreCell {
        scenario: scenario.name().to_string(),
        prune: config.prune,
        branch_depth: config.branch_depth,
        schedules: report.stats.schedules,
        pruned: report.stats.pruned,
        transitions: report.stats.transitions,
        max_depth: report.stats.max_depth,
        violations: report.violations.len(),
        verdict: String::new(),
    };
    (c, report.violations)
}

/// Run the E16 sweep. `quick` shrinks the fork depth for CI.
pub fn run(quick: bool) -> E16Outcome {
    let depth = sweep_depth(quick);
    let mut cells: Vec<ExploreCell> = Vec::new();
    let mut counterexample = None;

    // Exhaustive honest-cluster sweep, raw tree then pruned tree.
    let clean = RegisterScenario::concurrent_write_read();
    let mut raw_schedules = 0;
    for prune in [false, true] {
        let config = ExplorerConfig {
            branch_depth: depth,
            prune,
            max_schedules: 200_000,
            ..Default::default()
        };
        let (mut c, _) = cell(&clean, &config);
        c.verdict = if c.violations == 0 { "clean".into() } else { "VIOLATIONS".into() };
        if !prune {
            raw_schedules = c.schedules;
        } else if raw_schedules > 0 {
            c.verdict = format!(
                "clean, pruned to {} of raw tree",
                pct(c.schedules as usize, raw_schedules as usize)
            );
        }
        cells.push(c);
    }

    // Theorem 1 adversary above the bound: must stay clean.
    let config =
        ExplorerConfig { branch_depth: depth, max_schedules: 200_000, ..Default::default() };
    let (mut c, _) = cell(&RegisterScenario::theorem1(6), &config);
    c.verdict = if c.violations == 0 { "clean (n > 5f)".into() } else { "VIOLATIONS".into() };
    cells.push(c);

    // Theorem 1 at the bound: must rediscover the counterexample, then
    // shrink it and verify the shrunk schedule replays to the same verdict.
    let dirty = RegisterScenario::theorem1(5);
    let config = ExplorerConfig {
        branch_depth: 12,
        stop_on_violation: true,
        max_schedules: 200_000,
        ..Default::default()
    };
    let (mut c, violations) = cell(&dirty, &config);
    c.verdict = match violations.first() {
        Some(v) => {
            let min = shrink(&dirty, v);
            match replay(&dirty, &min.schedule) {
                ReplayOutcome::Violation { .. } => {
                    counterexample = Some(format_trace(dirty.name(), &min));
                    format!(
                        "counterexample found (depth {}), shrunk to {} events, replay verified",
                        v.schedule.len(),
                        min.schedule.len()
                    )
                }
                other => format!("SHRUNK TRACE DID NOT REPLAY: {other:?}"),
            }
        }
        None => "MISSED Theorem 1 counterexample".into(),
    };
    cells.push(c);

    let mut table = Table::new(
        "E16: bounded-exhaustive schedule exploration (Theorem 1 / Lemma 5)",
        &[
            "scenario",
            "prune",
            "fork_depth",
            "schedules",
            "pruned_subtrees",
            "transitions",
            "max_depth",
            "violations",
            "verdict",
        ],
    );
    for c in &cells {
        table.row(vec![
            c.scenario.clone(),
            if c.prune { "on" } else { "off" }.into(),
            c.branch_depth.to_string(),
            c.schedules.to_string(),
            c.pruned.to_string(),
            c.transitions.to_string(),
            c.max_depth.to_string(),
            c.violations.to_string(),
            c.verdict.clone(),
        ]);
    }
    E16Outcome { table, counterexample }
}

/// Replay a trace file (as written by `harness explore`) verbatim and
/// describe the outcome. `Ok` means the trace reproduced its recorded
/// violation; `Err` reports any divergence.
pub fn replay_trace(text: &str) -> Result<String, String> {
    let trace = parse_trace(text)?;
    let scenario = RegisterScenario::by_name(&trace.scenario)
        .ok_or_else(|| format!("unknown scenario {:?}", trace.scenario))?;
    match replay(&scenario, &trace.schedule) {
        ReplayOutcome::Violation { at, description } => {
            Ok(format!("reproduced at event {}/{}: {description}", at + 1, trace.schedule.len()))
        }
        ReplayOutcome::Clean { steps } => {
            Err(format!("trace ran clean for {steps} events — violation did not reproduce"))
        }
        ReplayOutcome::Infeasible { at, key } => {
            Err(format!("event {} ({key:?}) was not enabled — trace does not fit scenario", at + 1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_clean_where_required_and_finds_theorem1() {
        let out = run(true);
        let t = &out.table;
        assert_eq!(t.len(), 4);
        let verdict = t.col("verdict");
        assert!(t.cell(0, verdict).starts_with("clean"), "{}", t.cell(0, verdict));
        assert!(t.cell(1, verdict).starts_with("clean"), "{}", t.cell(1, verdict));
        assert!(t.cell(2, verdict).starts_with("clean"), "{}", t.cell(2, verdict));
        assert!(
            t.cell(3, verdict).contains("replay verified"),
            "n=5 must rediscover Theorem 1: {}",
            t.cell(3, verdict)
        );
        // Pruning must cut the raw tree.
        let schedules = t.col("schedules");
        let raw: u64 = t.cell(0, schedules).parse().unwrap();
        let pruned: u64 = t.cell(1, schedules).parse().unwrap();
        assert!(pruned < raw, "sleep sets must prune ({pruned} vs {raw})");
        // And the counterexample trace round-trips through the replayer.
        let trace = out.counterexample.expect("trace emitted");
        let msg = replay_trace(&trace).expect("trace must reproduce");
        assert!(msg.contains("reproduced"), "{msg}");
    }

    #[test]
    fn replay_trace_rejects_garbage() {
        assert!(replay_trace("scenario nope\n").is_err());
        assert!(replay_trace("event channel 0 1\n").is_err(), "missing scenario line");
        // A clean schedule of a real scenario is a replay *failure* — the
        // trace claims a violation that does not reproduce.
        let err = replay_trace("scenario concurrent-wr-n6\n").unwrap_err();
        assert!(err.contains("clean"), "{err}");
    }
}
