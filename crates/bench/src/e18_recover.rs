//! **E18 — crash-recovery with faulty disks**: servers persist their
//! register state to simulated stable storage ([`sbft_storage`]) and the
//! nemesis reboots them from their own **crash-damaged** disks
//! ([`NemesisEvent::CrashRecover`]), swept over disk-fault kind × crash
//! rate × `n ∈ {5f, 5f+1}` on both substrate backends.
//!
//! Each cell is scored three ways:
//!
//! * **stable-window regularity** — [`WindowTracker`] windows, with every
//!   recovery treated like a cure (the rejoiner may have rebooted into
//!   stale or ill-formed state, so it counts as unconverged until the
//!   next completed all-clear write — Assumption A1). At `n = 5f+1` this
//!   must be violation-free for *every* disk-fault kind.
//! * **recovery-to-convergence latency** — from each damaged-disk reboot
//!   to the all-clear write that re-converges it, in substrate ticks and
//!   in client operations.
//! * **client-visible data loss** — completed reads returning a value
//!   older than the last *acknowledged* write. Durable recovery at
//!   `n = 5f+1` must never surface one: the crashed server's disk may
//!   lose its unflushed tail, but every acknowledged write lives on
//!   `≥ 3f+1` other servers.
//!
//! The `n = 5f` column is the below-bound control; the `pristine` fault
//! row is the best-case control (recovery without damage).

use sbft_core::adversary::ByzStrategy;
use sbft_core::cluster::{OpOutcome, RegisterCluster};
use sbft_core::{RetryPolicy, WindowTracker};
use sbft_net::nemesis::{NemesisEvent, NemesisSchedule};
use sbft_net::Backend;
use sbft_storage::DiskFault;

use crate::table::Table;

/// Safety cap on workload rounds per seed.
const MAX_ROUNDS: u64 = 4_000;

/// First crash fires after this much quiet time.
const START_AFTER: u64 = 500;

/// How long each crash window lasts before the damaged-disk reboot.
const FAULT_LEN: u64 = 1_200;

/// No crash opens after `HORIZON - FAULT_LEN`.
const HORIZON: u64 = 18_000;

/// One cell of the recovery sweep.
#[derive(Clone, Debug)]
pub struct E18Cell {
    /// Backend the cell ran on.
    pub backend: Backend,
    /// Cluster size.
    pub n: usize,
    /// Byzantine servers.
    pub f: usize,
    /// Disk damage applied at every crash in this cell.
    pub fault: DiskFault,
    /// Quiet gap between a recovery and the next crash (smaller = faster
    /// crash rate).
    pub gap: u64,
    /// Seeds aggregated into this cell.
    pub seeds: usize,
    /// Crashes fired.
    pub crashes: u64,
    /// Damaged-disk reboots fired (one per crash).
    pub recoveries: u64,
    /// Recoveries that re-converged (reached an all-clear write).
    pub converged: u64,
    /// Summed reboot-to-convergence time in substrate ticks.
    pub reconverge_ticks: u64,
    /// Summed reboot-to-convergence client operations.
    pub reconverge_ops: u64,
    /// Worst single reboot-to-convergence time in ticks.
    pub max_reconverge_ticks: u64,
    /// Completed writes.
    pub writes_ok: u64,
    /// Completed reads.
    pub reads_ok: u64,
    /// Aborted ops.
    pub aborted: u64,
    /// Lone-deadline deaths.
    pub timed_out: u64,
    /// Retry-budget exhaustions.
    pub exhausted: u64,
    /// Completed reads older than the last acknowledged write.
    pub lost_reads: u64,
    /// Stable windows that formed across all seeds.
    pub windows: u64,
    /// Regularity violations inside recovery-aware stable windows.
    pub window_violations: usize,
    /// Regularity violations over the full history (no windowing).
    pub full_violations: usize,
}

impl E18Cell {
    /// Verdict ladder: window violations dominate, then a recovery that
    /// never re-converged, then acknowledged data loss, then durable.
    pub fn verdict(&self) -> &'static str {
        if self.window_violations > 0 {
            "violated"
        } else if self.converged < self.recoveries {
            "unconverged"
        } else if self.lost_reads > 0 {
            "lossy"
        } else {
            "durable"
        }
    }

    /// Mean reboot-to-convergence time in substrate ticks.
    pub fn mean_reconverge_ticks(&self) -> u64 {
        self.reconverge_ticks.checked_div(self.converged).unwrap_or(0)
    }

    /// Mean reboot-to-convergence cost in client operations.
    pub fn mean_reconverge_ops(&self) -> u64 {
        self.reconverge_ops.checked_div(self.converged).unwrap_or(0)
    }

    fn tally<T>(&mut self, out: &OpOutcome<T>, is_write: bool) {
        match out {
            OpOutcome::Ok(_) if is_write => self.writes_ok += 1,
            OpOutcome::Ok(_) => self.reads_ok += 1,
            OpOutcome::Aborted => self.aborted += 1,
            OpOutcome::TimedOut { .. } => self.timed_out += 1,
            OpOutcome::Exhausted { .. } => self.exhausted += 1,
        }
    }
}

/// Parameters of one sweep point.
#[derive(Clone, Copy, Debug)]
pub struct E18Spec {
    /// Backend.
    pub backend: Backend,
    /// Cluster size (`5f+1` on-bound, `5f` for the control row).
    pub n: usize,
    /// Byzantine servers (seated at the tail).
    pub f: usize,
    /// Disk damage applied at every crash.
    pub fault: DiskFault,
    /// Quiet gap between recovery and the next crash.
    pub gap: u64,
    /// Seeds to aggregate.
    pub seeds: u64,
}

/// Crash-only schedule: serialized `Crash` → `CrashRecover` windows of
/// [`FAULT_LEN`], separated by `spec.gap`, every crash damaging the disk
/// with `spec.fault`. Targets rotate over the honest servers (the
/// Byzantine tail seats are never crashed, keeping the disturbed-honest
/// count at one).
fn crash_schedule(spec: &E18Spec, seed: u64) -> NemesisSchedule {
    let honest = spec.n - spec.f;
    let mut events = Vec::new();
    let mut t = START_AFTER;
    let mut window = 0usize;
    while t + FAULT_LEN <= HORIZON {
        let target = (window + seed as usize) % honest;
        events.push((t, NemesisEvent::Crash(target)));
        events.push((t + FAULT_LEN, NemesisEvent::CrashRecover { pid: target, fault: spec.fault }));
        window += 1;
        t += FAULT_LEN + spec.gap;
    }
    NemesisSchedule::scripted(events)
}

/// Run one sweep cell.
pub fn run_cell(spec: &E18Spec) -> E18Cell {
    let mut cell = E18Cell {
        backend: spec.backend,
        n: spec.n,
        f: spec.f,
        fault: spec.fault,
        gap: spec.gap,
        seeds: spec.seeds as usize,
        crashes: 0,
        recoveries: 0,
        converged: 0,
        reconverge_ticks: 0,
        reconverge_ops: 0,
        max_reconverge_ticks: 0,
        writes_ok: 0,
        reads_ok: 0,
        aborted: 0,
        timed_out: 0,
        exhausted: 0,
        lost_reads: 0,
        windows: 0,
        window_violations: 0,
        full_violations: 0,
    };
    let strategies = ByzStrategy::all();
    for seed in 0..spec.seeds {
        let strat = strategies[seed as usize % strategies.len()];
        run_seed(&mut cell, spec, seed, strat);
    }
    cell
}

fn run_seed(cell: &mut E18Cell, spec: &E18Spec, seed: u64, strat: ByzStrategy) {
    let mut c = RegisterCluster::bounded_with_n(spec.n, spec.f)
        .clients(2)
        .byzantine_tail(strat)
        .durable()
        .seed(seed)
        .backend(spec.backend)
        .retry(RetryPolicy::chaos())
        .build_any();
    let byz_seats: Vec<usize> = (spec.n - spec.f..spec.n).collect();
    let schedule = crash_schedule(spec, seed);
    let mut runner = c.nemesis_runner(schedule, byz_seats, strat);

    let (w, r) = (c.client(0), c.client(1));
    let mut value = 1u64;
    let mut last_acked = 0u64;
    let mut tracker = WindowTracker::new();
    let mut cures_consumed = 0usize;
    // Reboots awaiting their convergence write: (reboot time, ops so far).
    let mut pending: Vec<(u64, u64)> = Vec::new();
    let mut ops = 0u64;

    let first = c.write_outcome(w, value);
    cell.tally(&first, true);
    ops += 1;
    if first.is_ok() {
        last_acked = value;
        tracker.write_completed(c.now(), true);
    }

    let mut rounds = 0u64;
    let mut scanned = 0usize;
    while !runner.done() && rounds < MAX_ROUNDS {
        rounds += 1;
        let before = c.now();
        runner.fire_due(&mut c.sim);
        // Scan everything fired since the last round — including events
        // the end-of-round fast-forward valve fired — so every crash
        // closes the window it interrupts.
        while scanned < runner.log.len() {
            let (at, kind) = runner.log[scanned];
            if kind == "crash" {
                tracker.disturbance(at);
                cell.crashes += 1;
            }
            scanned += 1;
        }
        // Every damaged-disk reboot lands in `cures`: the rejoiner counts
        // as unconverged until the next completed all-clear write.
        while cures_consumed < runner.cures.len() {
            let (at, pid) = runner.cures[cures_consumed];
            let at = at.max(c.now());
            tracker.cured(pid, at);
            pending.push((at, ops));
            cures_consumed += 1;
            cell.recoveries += 1;
        }

        value += 1;
        let wout = c.write_outcome(w, value);
        cell.tally(&wout, true);
        ops += 1;
        if wout.is_ok() {
            last_acked = value;
            tracker.write_completed(c.now(), runner.all_clear());
            if runner.all_clear() {
                for (at, ops_at) in pending.drain(..) {
                    let ticks = c.now().saturating_sub(at);
                    cell.converged += 1;
                    cell.reconverge_ticks += ticks;
                    cell.reconverge_ops += ops - ops_at;
                    cell.max_reconverge_ticks = cell.max_reconverge_ticks.max(ticks);
                }
            }
        }
        let rout = c.read_outcome(r);
        ops += 1;
        if let OpOutcome::Ok(ok) = &rout {
            // The read begins after the last acknowledged write finished,
            // so regularity forbids anything older than it.
            if ok.value < last_acked {
                cell.lost_reads += 1;
            }
        }
        cell.tally(&rout, false);

        // Safety valve: if the substrate clock stalled, fast-forward the
        // next nemesis event so the sweep always terminates.
        if c.now() == before && !runner.done() {
            runner.fire_next(&mut c.sim);
        }
    }

    // Drain crashes and reboots fired by the final fast-forward before
    // scoring.
    while scanned < runner.log.len() {
        let (at, kind) = runner.log[scanned];
        if kind == "crash" {
            tracker.disturbance(at);
            cell.crashes += 1;
        }
        scanned += 1;
    }
    while cures_consumed < runner.cures.len() {
        let (at, pid) = runner.cures[cures_consumed];
        let at = at.max(c.now());
        tracker.cured(pid, at);
        pending.push((at, ops));
        cures_consumed += 1;
        cell.recoveries += 1;
    }

    // Epilogue: one more converging write + read, then drain the traffic.
    value += 1;
    let wout = c.write_outcome(w, value);
    cell.tally(&wout, true);
    ops += 1;
    if wout.is_ok() {
        last_acked = value;
        tracker.write_completed(c.now(), runner.all_clear());
        if runner.all_clear() {
            for (at, ops_at) in pending.drain(..) {
                let ticks = c.now().saturating_sub(at);
                cell.converged += 1;
                cell.reconverge_ticks += ticks;
                cell.reconverge_ops += ops - ops_at;
                cell.max_reconverge_ticks = cell.max_reconverge_ticks.max(ticks);
            }
        }
    }
    let rout = c.read_outcome(r);
    if let OpOutcome::Ok(ok) = &rout {
        if ok.value < last_acked {
            cell.lost_reads += 1;
        }
    }
    cell.tally(&rout, false);
    c.settle(200_000);

    if let Err(errs) = c.check_history() {
        cell.full_violations += errs.len();
    }
    for (start, end) in tracker.finish(u64::MAX) {
        cell.windows += 1;
        if let Err(errs) = c.recorder.check_window(&c.sys, start, end) {
            cell.window_violations += errs.len();
        }
    }
    c.stop();
}

/// The sweep grid. `quick` is the CI smoke (one fault per class, 1 seed);
/// the full grid crosses every fault kind with two crash rates, the
/// `n = 5f` control, and threaded spot-checks.
pub fn specs(quick: bool) -> Vec<E18Spec> {
    use Backend::{Sim, Threaded};
    let mut specs = Vec::new();
    if quick {
        for fault in [DiskFault::Pristine, DiskFault::LostSuffix, DiskFault::StaleSnapshot] {
            specs.push(E18Spec { backend: Sim, n: 6, f: 1, fault, gap: 2_200, seeds: 1 });
        }
        specs.push(E18Spec {
            backend: Threaded,
            n: 6,
            f: 1,
            fault: DiskFault::TornFrame,
            gap: 2_200,
            seeds: 1,
        });
        return specs;
    }
    // On-bound n = 5f+1: every disk-fault kind at two crash rates.
    for fault in DiskFault::ALL {
        for gap in [2_200, 800] {
            specs.push(E18Spec { backend: Sim, n: 6, f: 1, fault, gap, seeds: 3 });
        }
    }
    // Below-bound control: n = 5f loses the spare the proof needs.
    for fault in [DiskFault::Pristine, DiskFault::LostSuffix, DiskFault::StaleSnapshot] {
        specs.push(E18Spec { backend: Sim, n: 5, f: 1, fault, gap: 2_200, seeds: 3 });
    }
    // Threaded spot-checks at the damage extremes.
    for fault in [DiskFault::Pristine, DiskFault::StaleSnapshot] {
        specs.push(E18Spec { backend: Threaded, n: 6, f: 1, fault, gap: 2_200, seeds: 1 });
    }
    specs
}

/// Run the whole grid.
pub fn run_cells(quick: bool) -> Vec<E18Cell> {
    specs(quick).iter().map(run_cell).collect()
}

/// Render the recovery table.
pub fn table(cells: &[E18Cell]) -> Table {
    let mut t = Table::new(
        "E18: damaged-disk crash recovery — servers reboot from faulty stable storage",
        &[
            "backend",
            "n",
            "f",
            "disk fault",
            "gap",
            "crashes",
            "recoveries",
            "converged",
            "mean ticks",
            "mean ops",
            "max ticks",
            "writes ok",
            "reads ok",
            "aborted",
            "timed out",
            "exhausted",
            "lost reads",
            "windows",
            "window viol",
            "full viol",
            "verdict",
        ],
    );
    for c in cells {
        t.row(vec![
            format!("{:?}", c.backend),
            c.n.to_string(),
            c.f.to_string(),
            c.fault.name().to_string(),
            c.gap.to_string(),
            c.crashes.to_string(),
            c.recoveries.to_string(),
            c.converged.to_string(),
            c.mean_reconverge_ticks().to_string(),
            c.mean_reconverge_ops().to_string(),
            c.max_reconverge_ticks.to_string(),
            c.writes_ok.to_string(),
            c.reads_ok.to_string(),
            c.aborted.to_string(),
            c.timed_out.to_string(),
            c.exhausted.to_string(),
            c.lost_reads.to_string(),
            c.windows.to_string(),
            c.window_violations.to_string(),
            c.full_violations.to_string(),
            c.verdict().to_string(),
        ]);
    }
    t
}

/// Serialize the sweep as BENCH_e18.json.
pub fn to_json(cells: &[E18Cell]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"e18\",\n  \"schema\": 1,\n  \"unit\": {\"gap\": \"quiet ticks between a recovery and the next crash\", \"reconverge\": \"damaged-disk reboot to the next all-clear completed write\"},\n  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"n\": {}, \"f\": {}, \"disk_fault\": \"{}\", \"gap\": {}, \"seeds\": {}, \"crashes\": {}, \"recoveries\": {}, \"converged\": {}, \"mean_reconverge_ticks\": {}, \"mean_reconverge_ops\": {}, \"max_reconverge_ticks\": {}, \"writes_ok\": {}, \"reads_ok\": {}, \"aborted\": {}, \"timed_out\": {}, \"exhausted\": {}, \"lost_reads\": {}, \"windows\": {}, \"window_violations\": {}, \"full_violations\": {}, \"verdict\": \"{}\"}}{}\n",
            format!("{:?}", c.backend).to_lowercase(),
            c.n,
            c.f,
            c.fault.name(),
            c.gap,
            c.seeds,
            c.crashes,
            c.recoveries,
            c.converged,
            c.mean_reconverge_ticks(),
            c.mean_reconverge_ops(),
            c.max_reconverge_ticks,
            c.writes_ok,
            c.reads_ok,
            c.aborted,
            c.timed_out,
            c.exhausted,
            c.lost_reads,
            c.windows,
            c.window_violations,
            c.full_violations,
            c.verdict(),
            sep,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lost_suffix_recovery_stays_durable_at_the_bound() {
        let spec = E18Spec {
            backend: Backend::Sim,
            n: 6,
            f: 1,
            fault: DiskFault::LostSuffix,
            gap: 2_200,
            seeds: 1,
        };
        let cell = run_cell(&spec);
        assert!(cell.crashes > 0, "{cell:?}");
        assert_eq!(cell.recoveries, cell.crashes, "{cell:?}");
        assert_eq!(cell.converged, cell.recoveries, "a reboot never converged: {cell:?}");
        assert_eq!(cell.window_violations, 0, "{cell:?}");
        assert_eq!(cell.lost_reads, 0, "{cell:?}");
        assert!(cell.windows > 0, "{cell:?}");
        assert_eq!(cell.verdict(), "durable", "{cell:?}");
    }

    /// Serialization shape only — the grid runs via `harness recover`.
    #[test]
    fn json_has_one_line_per_cell_and_a_verdict() {
        let mut a = E18Cell {
            backend: Backend::Sim,
            n: 6,
            f: 1,
            fault: DiskFault::BitRot,
            gap: 2_200,
            seeds: 1,
            crashes: 5,
            recoveries: 5,
            converged: 5,
            reconverge_ticks: 5_000,
            reconverge_ops: 50,
            max_reconverge_ticks: 2_000,
            writes_ok: 40,
            reads_ok: 40,
            aborted: 0,
            timed_out: 1,
            exhausted: 1,
            lost_reads: 0,
            windows: 6,
            window_violations: 0,
            full_violations: 0,
        };
        let mut b = a.clone();
        b.backend = Backend::Threaded;
        b.fault = DiskFault::StaleSnapshot;
        let cells = vec![a.clone(), b];
        let json = to_json(&cells);
        assert_eq!(json.matches("\"verdict\"").count(), cells.len());
        assert!(json.contains("\"experiment\": \"e18\""));
        assert!(json.contains("\"disk_fault\": \"bit-rot\""));
        assert!(json.contains("\"disk_fault\": \"stale-snapshot\""));
        assert!(json.contains("\"mean_reconverge_ticks\": 1000"));
        assert!(json.contains("\"mean_reconverge_ops\": 10"));
        // Verdict ladder: violations dominate, then convergence, then
        // acknowledged loss, then durable.
        assert_eq!(a.verdict(), "durable");
        a.lost_reads = 1;
        assert_eq!(a.verdict(), "lossy");
        a.converged = 4;
        assert_eq!(a.verdict(), "unconverged");
        a.window_violations = 1;
        assert_eq!(a.verdict(), "violated");
    }

    #[test]
    fn crash_schedules_pair_every_crash_and_respect_the_byz_tail() {
        let spec = E18Spec {
            backend: Backend::Sim,
            n: 6,
            f: 1,
            fault: DiskFault::TornFrame,
            gap: 800,
            seeds: 1,
        };
        for seed in 0..5 {
            let sched = crash_schedule(&spec, seed);
            let mut down: Option<usize> = None;
            for (t, ev) in sched.events() {
                match ev {
                    NemesisEvent::Crash(p) => {
                        assert!(*p < spec.n - spec.f, "crashed the byz seat");
                        assert!(down.is_none());
                        down = Some(*p);
                    }
                    NemesisEvent::CrashRecover { pid, fault } => {
                        assert_eq!(down.take(), Some(*pid));
                        assert_eq!(*fault, spec.fault);
                        assert!(*t <= HORIZON);
                    }
                    other => panic!("unexpected event {other:?}"),
                }
            }
            assert!(down.is_none(), "a crash was never recovered");
        }
    }
}
