//! **E9 — wall-clock throughput on real threads**: the sans-IO automata
//! run unchanged on the crossbeam-channel runtime (one OS thread per
//! server and per client). This experiment measures end-to-end operations
//! per second as the number of concurrent clients grows — the
//! "tokio-channels-fit" angle of the reproduction brief, realized with
//! crossbeam (the approved offline crate).

use std::time::{Duration, Instant};

use sbft_core::client::Client;
use sbft_core::config::ClusterConfig;
use sbft_core::messages::{ClientEvent, Msg};
use sbft_core::reader::ReaderOptions;
use sbft_core::server::Server;
use sbft_core::Ts;
use sbft_labels::{BoundedLabeling, MwmrLabeling};
use sbft_net::{Automaton, ThreadedCluster};

use crate::table::{f1, Table};

type B = BoundedLabeling;
type M = Msg<Ts<B>>;
type E = ClientEvent<Ts<B>>;

/// One clients-count measurement.
#[derive(Clone, Debug)]
pub struct E9Cell {
    /// Concurrent clients.
    pub clients: usize,
    /// Total operations completed.
    pub ops: usize,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Throughput.
    pub ops_per_sec: f64,
}

/// Spawn a threaded cluster and drive `ops_per_client` alternating
/// write/read operations from each client concurrently.
pub fn run_cell(f: usize, clients: usize, ops_per_client: u64, seed: u64) -> E9Cell {
    let cfg = ClusterConfig::stabilizing(f);
    let sys = MwmrLabeling::new(BoundedLabeling::new(cfg.label_k()));
    let mut procs: Vec<Box<dyn Automaton<M, E>>> = Vec::new();
    for _ in 0..cfg.n {
        procs.push(Box::new(Server::<B>::new(sys.clone(), cfg)));
    }
    for i in 0..clients {
        let pid = cfg.client_pid(i);
        procs.push(Box::new(Client::<B>::new(
            sys.clone(),
            cfg,
            pid as u32,
            ReaderOptions::default(),
        )));
    }
    let cluster: ThreadedCluster<M, E> = ThreadedCluster::spawn(procs, seed);

    let start = Instant::now();
    let completed: usize = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                let cluster = &cluster;
                let pid = cfg.client_pid(i);
                s.spawn(move || {
                    let mut done = 0usize;
                    for op in 0..ops_per_client {
                        let msg = if op % 2 == 0 {
                            Msg::InvokeWrite { value: (i as u64) << 32 | op }
                        } else {
                            Msg::InvokeRead
                        };
                        if cluster.invoke_and_wait(pid, msg, Duration::from_secs(30)).is_some() {
                            done += 1;
                        }
                    }
                    done
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let elapsed = start.elapsed();
    cluster.shutdown();
    E9Cell {
        clients,
        ops: completed,
        elapsed,
        ops_per_sec: completed as f64 / elapsed.as_secs_f64().max(1e-9),
    }
}

/// The E9 table.
pub fn run(ops_per_client: u64) -> Table {
    let mut t = Table::new(
        "E9: wall-clock throughput on the threaded runtime (f = 1, n = 6)",
        &["clients", "ops", "elapsed ms", "ops/sec"],
    );
    for clients in [1usize, 2, 4, 8] {
        let c = run_cell(1, clients, ops_per_client, 1);
        t.row(vec![
            c.clients.to_string(),
            c.ops.to_string(),
            format!("{}", c.elapsed.as_millis()),
            f1(c.ops_per_sec),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threaded_cluster_completes_all_ops() {
        let c = run_cell(1, 2, 10, 3);
        assert_eq!(c.ops, 20, "{c:?}");
        assert!(c.ops_per_sec > 0.0);
    }

    #[test]
    fn parallel_clients_scale_without_loss() {
        let c = run_cell(1, 4, 6, 4);
        assert_eq!(c.ops, 24, "{c:?}");
    }
}
