//! **E9 — wall-clock throughput on real threads**: the sans-IO automata
//! run unchanged on the threaded runtime (one OS thread per server and
//! per client). This experiment measures end-to-end operations per second
//! as the number of concurrent clients grows.
//!
//! E9 now rides the *shared* scenario driver: the same
//! [`RegisterCluster`] used by every simulator experiment, assembled with
//! [`build_threaded`](sbft_core::cluster::ClusterBuilder::build_threaded).
//! Each round launches one operation per client concurrently
//! ([`RegisterCluster::run_concurrent`]); the servers process them on
//! their own OS threads, and the recorded history is checked for MWMR
//! regularity exactly as in the simulator experiments.

use std::time::{Duration, Instant};

use sbft_core::cluster::{Op, RegisterCluster};
use sbft_net::NetMetrics;

use crate::table::{f1, Table};

/// One clients-count measurement.
#[derive(Clone, Debug)]
pub struct E9Cell {
    /// Concurrent clients.
    pub clients: usize,
    /// Total operations completed.
    pub ops: usize,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Throughput.
    pub ops_per_sec: f64,
    /// Network metrics of the run (threaded substrate).
    pub metrics: NetMetrics,
}

/// Spawn a threaded cluster via the shared driver and run
/// `ops_per_client` rounds of one concurrent operation per client
/// (alternating write/read per client).
pub fn run_cell(f: usize, clients: usize, ops_per_client: u64, seed: u64) -> E9Cell {
    let mut c = RegisterCluster::bounded(f).clients(clients).seed(seed).build_threaded();
    let start = Instant::now();
    let mut completed = 0usize;
    for round in 0..ops_per_client {
        let ops: Vec<(usize, Op)> = (0..clients)
            .map(|i| {
                let op = if (round + i as u64).is_multiple_of(2) {
                    Op::Write((i as u64) << 32 | round)
                } else {
                    Op::Read
                };
                (i, op)
            })
            .collect();
        completed += c.run_concurrent(&ops).iter().flatten().count();
    }
    let elapsed = start.elapsed();
    let metrics = c.metrics();
    c.stop();
    E9Cell {
        clients,
        ops: completed,
        elapsed,
        ops_per_sec: completed as f64 / elapsed.as_secs_f64().max(1e-9),
        metrics,
    }
}

/// The E9 table.
pub fn run(ops_per_client: u64) -> Table {
    let mut t = Table::new(
        "E9: wall-clock throughput on the threaded runtime (f = 1, n = 6)",
        &["clients", "ops", "elapsed ms", "ops/sec", "msgs sent"],
    );
    for clients in [1usize, 2, 4, 8] {
        let c = run_cell(1, clients, ops_per_client, 1);
        t.row(vec![
            c.clients.to_string(),
            c.ops.to_string(),
            format!("{}", c.elapsed.as_millis()),
            f1(c.ops_per_sec),
            c.metrics.messages_sent.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threaded_cluster_completes_all_ops() {
        let c = run_cell(1, 2, 10, 3);
        assert_eq!(c.ops, 20, "{c:?}");
        assert!(c.ops_per_sec > 0.0);
        assert!(c.metrics.messages_sent > 0);
    }

    #[test]
    fn parallel_clients_scale_without_loss() {
        let c = run_cell(1, 4, 6, 4);
        assert_eq!(c.ops, 24, "{c:?}");
    }
}
