//! **E10 — Section II footnote (FIFO channels from lossy non-FIFO ones)**:
//! the stabilizing data-link substrate converges from arbitrary channel
//! content to exact FIFO delivery, with a dirty prefix bounded by the
//! channel capacity. Sweeps the capacity bound `c`.

use sbft_datalink::automata::run_on_substrate;
use sbft_datalink::DatalinkSim;
use sbft_net::Backend;

use crate::table::{f1, pct, Table};

/// Aggregate over seeds for one capacity.
#[derive(Clone, Debug)]
pub struct E10Cell {
    /// Channel capacity bound.
    pub capacity: usize,
    /// Seeds run.
    pub seeds: usize,
    /// Runs achieving a clean FIFO suffix.
    pub converged: usize,
    /// Mean spurious deliveries (dirty prefix).
    pub mean_spurious: f64,
    /// Mean lost payloads (dirty prefix).
    pub mean_lost: f64,
    /// Mean scheduler steps to drain the stream.
    pub mean_steps: f64,
}

/// Run the capacity sweep cell.
pub fn run_cell(capacity: usize, seeds: u64, payloads: usize) -> E10Cell {
    let stream: Vec<u64> = (1..=payloads as u64).map(|i| 10_000 + i).collect();
    let mut converged = 0;
    let mut spurious = 0usize;
    let mut lost = 0usize;
    let mut steps = 0u64;
    for seed in 0..seeds {
        let rep = DatalinkSim::converge_report(capacity, seed, &stream, 50_000_000);
        if rep.fifo_suffix_ok {
            converged += 1;
        }
        spurious += rep.spurious;
        lost += rep.lost;
        steps += rep.steps;
    }
    E10Cell {
        capacity,
        seeds: seeds as usize,
        converged,
        mean_spurious: spurious as f64 / seeds as f64,
        mean_lost: lost as f64 / seeds as f64,
        mean_steps: steps as f64 / seeds as f64,
    }
}

/// One substrate-hosted measurement: the data-link endpoints as timer
/// driven automata behind a lossy relay, on the chosen backend.
#[derive(Clone, Debug)]
pub struct E10SubstrateCell {
    /// Backend the automata ran on.
    pub backend: Backend,
    /// Channel capacity bound.
    pub capacity: usize,
    /// Per-message drop probability at the relay.
    pub loss: f64,
    /// Runs delivering the exact stream FIFO.
    pub exact: usize,
    /// Seeds run.
    pub seeds: usize,
    /// Mean messages sent per payload delivered (retransmission cost).
    pub msgs_per_payload: f64,
}

/// Run the substrate-hosted data-link cell (timer-driven retransmission
/// over a lossy relay) for `seeds` seeds.
pub fn run_substrate_cell(
    backend: Backend,
    capacity: usize,
    loss: f64,
    seeds: u64,
    payloads: usize,
) -> E10SubstrateCell {
    let stream: Vec<u64> = (1..=payloads as u64).map(|i| 20_000 + i).collect();
    let mut exact = 0;
    let mut msgs = 0.0;
    for seed in 0..seeds {
        let rep = run_on_substrate(backend, capacity, loss, seed, &stream, false, 1_000_000);
        if rep.matches(&stream) {
            exact += 1;
        }
        msgs += rep.metrics.messages_sent as f64 / payloads as f64;
    }
    E10SubstrateCell {
        backend,
        capacity,
        loss,
        exact,
        seeds: seeds as usize,
        msgs_per_payload: msgs / seeds as f64,
    }
}

/// The substrate comparison table: same protocol, both runtimes.
pub fn run_substrate(seeds: u64, payloads: usize) -> Table {
    let mut t = Table::new(
        "E10b: data-link on the Substrate runtimes (lossy relay, timer retransmission)",
        &["backend", "capacity", "loss", "exact FIFO", "msgs/payload"],
    );
    for backend in [Backend::Sim, Backend::Threaded] {
        for (c, loss) in [(1usize, 0.0), (2, 0.2), (4, 0.4)] {
            let cell = run_substrate_cell(backend, c, loss, seeds, payloads);
            t.row(vec![
                format!("{backend:?}"),
                cell.capacity.to_string(),
                format!("{loss:.1}"),
                pct(cell.exact, cell.seeds),
                f1(cell.msgs_per_payload),
            ]);
        }
    }
    t
}

/// The E10 table.
pub fn run(seeds: u64, payloads: usize) -> Table {
    let mut t = Table::new(
        "E10 (ref [8]): stabilizing data-link convergence vs channel capacity",
        &["capacity", "seeds", "converged", "mean spurious", "mean lost", "mean steps"],
    );
    for c in [1usize, 2, 4, 8] {
        let cell = run_cell(c, seeds, payloads);
        t.row(vec![
            cell.capacity.to_string(),
            cell.seeds.to_string(),
            pct(cell.converged, cell.seeds),
            f1(cell.mean_spurious),
            f1(cell.mean_lost),
            f1(cell.mean_steps),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_capacities_converge() {
        for c in [1usize, 2, 4] {
            let cell = run_cell(c, 4, 30);
            assert_eq!(cell.converged, cell.seeds, "capacity {c}: {cell:?}");
        }
    }

    #[test]
    fn dirty_prefix_bounded_by_capacity_cycle() {
        let cell = run_cell(3, 5, 40);
        assert!(cell.mean_spurious <= (2 * 3 + 2) as f64, "{cell:?}");
        assert!(cell.mean_lost <= (2 * 3 + 2) as f64, "{cell:?}");
    }

    #[test]
    fn substrate_cell_exact_on_both_backends() {
        for backend in [Backend::Sim, Backend::Threaded] {
            let cell = run_substrate_cell(backend, 2, 0.2, 2, 8);
            assert_eq!(cell.exact, cell.seeds, "{cell:?}");
            assert!(cell.msgs_per_payload > 0.0, "{cell:?}");
        }
    }
}
