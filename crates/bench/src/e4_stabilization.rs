//! **E4 — pseudo-stabilization (Definition 1, Theorem 2)**: from an
//! arbitrary configuration — every server *and* client corrupted, every
//! channel loaded with garbage — the execution has a suffix satisfying
//! the MWMR regular register specification, beginning no later than the
//! completion of the first post-fault write (Assumption 1).
//!
//! Per corruption severity the experiment reports: read outcomes during
//! the transitory phase (aborts are *expected* there — they are the
//! protocol saying "still corrupted"), whether the first write completed,
//! and the number of regularity violations in the suffix (must be 0).

use sbft_core::cluster::{OpError, RegisterCluster};
use sbft_net::{Backend, CorruptionSeverity};

use crate::table::{pct, Table};

/// One severity × seed measurement.
#[derive(Clone, Debug)]
pub struct E4Cell {
    /// Corruption severity applied.
    pub severity: CorruptionSeverity,
    /// Seeds run.
    pub seeds: usize,
    /// Transitory-phase reads that aborted.
    pub pre_aborts: usize,
    /// Transitory-phase reads that returned a (possibly garbage) value.
    pub pre_returns: usize,
    /// Runs whose first post-fault write completed.
    pub first_write_ok: usize,
    /// Post-suffix reads checked.
    pub post_reads: usize,
    /// Regularity violations in the suffix (must be 0).
    pub suffix_violations: usize,
}

/// Run the stabilization scenario for one severity, on the simulator.
pub fn run_severity(
    severity: CorruptionSeverity,
    seeds: u64,
    pre_reads: u64,
    post_reads: u64,
) -> E4Cell {
    run_severity_on(Backend::Sim, severity, seeds, pre_reads, post_reads)
}

/// Run the stabilization scenario on the chosen substrate backend — the
/// threaded runtime injects the same [`sbft_net::corruption::FaultPlan`]
/// through control messages to the worker threads.
pub fn run_severity_on(
    backend: Backend,
    severity: CorruptionSeverity,
    seeds: u64,
    pre_reads: u64,
    post_reads: u64,
) -> E4Cell {
    let mut cell = E4Cell {
        severity,
        seeds: seeds as usize,
        pre_aborts: 0,
        pre_returns: 0,
        first_write_ok: 0,
        post_reads: 0,
        suffix_violations: 0,
    };
    for seed in 0..seeds {
        let mut c = RegisterCluster::bounded(1).clients(2).seed(seed).backend(backend).build_any();
        let (w, r) = (c.client(0), c.client(1));
        // A little pre-fault history, then the transient fault.
        c.write(w, 1).expect("pre-fault write");
        c.corrupt_everything(severity);

        // Transitory phase: reads may abort or return garbage — both are
        // permitted before the first complete write.
        for _ in 0..pre_reads {
            match c.read(r) {
                Ok(_) => cell.pre_returns += 1,
                Err(OpError::Aborted) => cell.pre_aborts += 1,
                Err(OpError::Stuck) => {}
            }
        }

        // Assumption 1: the first post-fault write runs to completion.
        if c.write(w, 2).is_ok() {
            cell.first_write_ok += 1;
        } else {
            continue;
        }
        let t_stable = c.now();

        for i in 0..post_reads {
            if i % 3 == 2 {
                // Interleave fresh writes to exercise the suffix fully.
                c.write(w, 10 + i).expect("suffix write");
            }
            match c.read(r) {
                Ok(_) => cell.post_reads += 1,
                Err(OpError::Aborted) => {
                    // A suffix abort is a liveness defect we surface as a
                    // violation (Lemma 7: suffix reads do not abort).
                    cell.suffix_violations += 1;
                }
                Err(OpError::Stuck) => cell.suffix_violations += 1,
            }
        }
        c.settle(200_000);
        if let Err(errs) = c.check_history_from(t_stable) {
            cell.suffix_violations += errs.len();
        }
    }
    cell
}

/// The E4 table.
pub fn run(seeds: u64) -> Table {
    let mut t = Table::new(
        "E4 (Theorem 2): pseudo-stabilization after total transient corruption (f = 1)",
        &[
            "severity",
            "seeds",
            "pre-write aborts",
            "pre-write returns",
            "first write ok",
            "suffix reads",
            "suffix violations",
        ],
    );
    for sev in
        [CorruptionSeverity::Light, CorruptionSeverity::Heavy, CorruptionSeverity::Adversarial]
    {
        let c = run_severity(sev, seeds, 3, 6);
        t.row(vec![
            format!("{sev:?}"),
            c.seeds.to_string(),
            c.pre_aborts.to_string(),
            c.pre_returns.to_string(),
            pct(c.first_write_ok, c.seeds),
            c.post_reads.to_string(),
            c.suffix_violations.to_string(),
        ]);
    }
    // Substrate cross-check: the same transient fault on real threads.
    let c = run_severity_on(Backend::Threaded, CorruptionSeverity::Heavy, seeds.min(2), 1, 3);
    t.row(vec![
        "Heavy [threads]".into(),
        c.seeds.to_string(),
        c.pre_aborts.to_string(),
        c.pre_returns.to_string(),
        pct(c.first_write_ok, c.seeds),
        c.post_reads.to_string(),
        c.suffix_violations.to_string(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffix_is_clean_after_heavy_corruption() {
        let cell = run_severity(CorruptionSeverity::Heavy, 3, 2, 4);
        assert_eq!(cell.first_write_ok, 3, "Assumption 1 must be realizable");
        assert_eq!(cell.suffix_violations, 0, "{cell:?}");
        assert!(cell.post_reads > 0);
    }

    #[test]
    fn suffix_is_clean_after_adversarial_corruption() {
        let cell = run_severity(CorruptionSeverity::Adversarial, 3, 2, 4);
        assert_eq!(cell.suffix_violations, 0, "{cell:?}");
    }

    #[test]
    fn transitory_phase_is_observable() {
        // Across enough seeds, heavy corruption produces at least some
        // transitory read activity (abort or garbage return).
        let cell = run_severity(CorruptionSeverity::Heavy, 5, 3, 2);
        assert!(cell.pre_aborts + cell.pre_returns > 0);
    }

    #[test]
    fn threaded_backend_stabilizes_after_corruption() {
        let cell = run_severity_on(Backend::Threaded, CorruptionSeverity::Heavy, 1, 1, 3);
        assert_eq!(cell.first_write_ok, 1, "{cell:?}");
        assert_eq!(cell.suffix_violations, 0, "{cell:?}");
    }
}
