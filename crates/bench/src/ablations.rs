//! Ablation experiments for the design choices DESIGN.md §7 calls out.
//!
//! * `ablate_selection` — dominant-sink vs max-weight WTsG node selection
//!   under write bursts: max-weight prefers the heavier (often *older*)
//!   value, so sequential reads regress more often.
//! * `ablate_union` — union-graph fallback on/off: without it, reads
//!   concurrent with bursts abort instead of returning.
//! * `ablate_flush` — FLUSH-based label recycling on/off under label-pool
//!   pressure. Finding: at laptop scales the per-channel FIFO order plus
//!   the `2f + 1` witness threshold *mask* the stale replies the FLUSH
//!   certificate exists to exclude — randomized schedules produced no
//!   violations without it — so the table reports the measurable quantity
//!   instead: the message cost of the certificate (one extra round per
//!   read). Lemma 5's role is worst-case soundness, not average-case
//!   behaviour.
//! * `ablate_history` — covered inside E8 (depth sweep); referenced here
//!   for the experiment index.

use sbft_core::cluster::{OpError, RegisterCluster};
use sbft_core::reader::ReaderOptions;
use sbft_wtsg::SelectionPolicy;

use crate::e8_concurrency;
use crate::table::{pct, Table};

/// Selection-policy ablation: burst workload, count regularity violations.
pub fn ablate_selection(seeds: u64) -> Table {
    let mut t = Table::new(
        "ablate_selection: WTsG return-value rule under write bursts",
        &["policy", "reads", "union rate", "aborts", "violations"],
    );
    for (name, policy) in [
        ("dominant-sink (paper)", SelectionPolicy::DominantSink),
        ("max-weight (ablation)", SelectionPolicy::MaxWeight),
    ] {
        let opts = ReaderOptions { policy, ..Default::default() };
        let c = e8_concurrency::run_cell(3, 10, 6, seeds, opts);
        t.row(vec![
            name.into(),
            c.reads.to_string(),
            pct(c.via_union, c.reads.max(1)),
            c.aborts.to_string(),
            c.violations.to_string(),
        ]);
    }
    t
}

/// Union-fallback ablation: burst workload, union off moves reads to abort.
pub fn ablate_union(seeds: u64) -> Table {
    let mut t = Table::new(
        "ablate_union: union-graph fallback on/off under write bursts",
        &["union", "reads", "union rate", "aborts", "violations"],
    );
    for (name, use_union) in [("on (paper)", true), ("off (ablation)", false)] {
        let opts = ReaderOptions { use_union, ..Default::default() };
        let c = e8_concurrency::run_cell(3, 10, 6, seeds, opts);
        t.row(vec![
            name.into(),
            c.reads.to_string(),
            pct(c.via_union, c.reads.max(1)),
            c.aborts.to_string(),
            c.violations.to_string(),
        ]);
    }
    t
}

/// FLUSH ablation: Lemma 5's guarantee is that a recycled read label can
/// never match a stale `REPLY` still in flight from an earlier read. To
/// pressure it, the pool is shrunk to its minimum (2 labels, so every
/// second read reuses a label) and delays are wide, while writers churn
/// the register — a stale reply then carries an *outdated* value into the
/// current read's quorum whenever the certificate is skipped.
pub fn ablate_flush(seeds: u64) -> Table {
    let mut t = Table::new(
        "ablate_flush: find_read_label FLUSH on/off (2-label pool, wide delays)",
        &["flush", "reads", "stale-read violations", "aborts", "msgs/read"],
    );
    for (name, skip_flush) in [("on (paper)", false), ("off (ablation)", true)] {
        let opts = ReaderOptions { skip_flush, ..Default::default() };
        let mut reads = 0usize;
        let mut aborts = 0usize;
        let mut violations = 0usize;
        let mut read_msgs = 0u64;
        for seed in 0..seeds {
            let cfg = sbft_core::config::ClusterConfig::stabilizing(1).labels(2);
            let mut c: RegisterCluster<sbft_labels::BoundedLabeling> =
                sbft_core::cluster::ClusterBuilder::new(
                    cfg,
                    sbft_labels::BoundedLabeling::new(cfg.label_k()),
                )
                .clients(3)
                .seed(seed)
                .delay(sbft_net::DelayModel::uniform(1, 60))
                .reader_options(opts)
                .build();
            let (w1, w2, r) = (c.client(0), c.client(1), c.client(2));
            c.write(w1, 1).expect("seed write");
            // Interleave: writer churn + reader back-to-back reads. The
            // wide delay spread leaves late replies in flight across read
            // boundaries.
            for i in 0..10u64 {
                let writer = if i % 2 == 0 { w1 } else { w2 };
                c.invoke_write(writer, 10 + i);
                let before = c.metrics().messages_sent;
                match c.read(r) {
                    Ok(_) => reads += 1,
                    Err(OpError::Aborted) => aborts += 1,
                    Err(OpError::Stuck) => {}
                }
                read_msgs += c.metrics().messages_sent - before;
                let _ = c.await_client(writer);
            }
            c.settle(300_000);
            if let Err(errs) = c.check_history() {
                violations += errs.len();
            }
        }
        t.row(vec![
            name.into(),
            reads.to_string(),
            violations.to_string(),
            aborts.to_string(),
            format!("{:.1}", read_msgs as f64 / (reads + aborts).max(1) as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_tables_render() {
        let t = ablate_selection(2);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn union_off_aborts_at_least_as_much() {
        let t = ablate_union(3);
        let aborts_on: usize = t.cell(0, t.col("aborts")).parse().unwrap();
        let aborts_off: usize = t.cell(1, t.col("aborts")).parse().unwrap();
        assert!(aborts_off >= aborts_on, "{}", t.render());
    }

    #[test]
    fn flush_keeps_history_clean() {
        let t = ablate_flush(3);
        // The paper-faithful configuration must keep a clean history even
        // with a minimal label pool and wide delays.
        assert_eq!(t.cell(0, t.col("stale-read violations")), "0", "{}", t.render());
    }
}
