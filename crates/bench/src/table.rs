//! Minimal aligned-column table rendering for the harness output.

use std::fmt::Write as _;

/// A titled table of string cells.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title (experiment id + claim).
    pub title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor (row, column) for assertions in tests.
    pub fn cell(&self, r: usize, c: usize) -> &str {
        &self.rows[r][c]
    }

    /// Find the column index of a header.
    pub fn col(&self, header: &str) -> usize {
        self.headers
            .iter()
            .position(|h| h == header)
            .unwrap_or_else(|| panic!("no column {header:?}"))
    }

    /// Render as CSV (machine-readable; `harness --csv <exp>`).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ =
            writeln!(out, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(s, "| {:<w$} ", cell, w = widths[i]);
            }
            s.push('|');
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let mut sep = String::new();
        for w in &widths {
            let _ = write!(sep, "|{}", "-".repeat(w + 2));
        }
        sep.push('|');
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a rate as a percentage.
pub fn pct(num: usize, den: usize) -> String {
    if den == 0 {
        "n/a".into()
    } else {
        format!("{:.0}%", 100.0 * num as f64 / den as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["wide_cell".into(), "3".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("| wide_cell | 3"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(0, t.col("long_header")), "2");
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["x,y".into(), "he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn helpers() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.256), "1.26");
        assert_eq!(pct(1, 4), "25%");
        assert_eq!(pct(0, 0), "n/a");
    }
}
