//! **E11 — §VI concluding remark (Byzantine readers are harmless)**:
//!
//! > "when reader clients are Byzantine our protocol still verifies the
//! > MWMR regular register specification […] the read protocol is
//! > performed in one phase so Byzantine readers cannot modify the value
//! > and the timestamp maintained by the correct servers."
//!
//! A hostile client floods the cluster while correct clients operate.
//! The table reports the correct clients' completion rate, read validity,
//! and the traffic amplification the attack produced. Within the claim's
//! boundary (reader-interface messages only: `READ`, `FLUSH`,
//! `COMPLETE_READ`) no violation must occur. The `GarbageSpray` strategy
//! deliberately crosses the boundary by forging `WRITE`s — and the model
//! has **no writer authentication**, so a forged write is simply *a
//! write*: honest servers adopt it and honest readers may legitimately
//! return its value. The checker, which only knows about recorded
//! operations, then reports an unknown-value read; the table surfaces
//! this as the boundary of the claim (readers are harmless, *writers* are
//! trusted by definition of the MWMR model).

use sbft_core::byzclient::ByzReaderStrategy;
use sbft_core::cluster::RegisterCluster;

use crate::table::{pct, Table};

/// One strategy measurement.
#[derive(Clone, Debug)]
pub struct E11Cell {
    /// The hostile strategy.
    pub strategy: String,
    /// Correct-client ops attempted.
    pub attempted: usize,
    /// Correct-client ops completed.
    pub completed: usize,
    /// Correct reads returning the expected (latest) value.
    pub correct_reads: usize,
    /// Total reads by correct clients.
    pub reads: usize,
    /// Regularity violations.
    pub violations: usize,
    /// Total messages (amplification indicator).
    pub messages: u64,
}

/// Run one hostile-client strategy against correct traffic.
pub fn run_cell(strategy: ByzReaderStrategy, seeds: u64, ops: u64) -> E11Cell {
    let mut cell = E11Cell {
        strategy: format!("{strategy:?}"),
        attempted: 0,
        completed: 0,
        correct_reads: 0,
        reads: 0,
        violations: 0,
        messages: 0,
    };
    for seed in 0..seeds {
        let mut c =
            RegisterCluster::bounded(1).clients(2).hostile_client(strategy).seed(seed).build();
        let (w, r) = (c.client(0), c.client(1));
        for i in 0..ops {
            // Fresh hostile volley interleaved with every correct op.
            c.kick_hostile();
            cell.attempted += 2;
            let value = 1000 * (seed + 1) + i;
            if c.write(w, value).is_ok() {
                cell.completed += 1;
            }
            if let Ok(ok) = c.read(r) {
                cell.completed += 1;
                cell.reads += 1;
                if ok.value == value {
                    cell.correct_reads += 1;
                }
            }
        }
        c.settle(200_000);
        if let Err(errs) = c.check_history() {
            cell.violations += errs.len();
        }
        cell.messages += c.metrics().messages_sent;
    }
    cell
}

/// The E11 table.
pub fn run(seeds: u64, ops: u64) -> Table {
    let mut t = Table::new(
        "E11 (§VI): Byzantine reader clients cannot harm the register (f = 1)",
        &["strategy", "completion", "reads correct", "violations", "messages"],
    );
    // A hostile-free control row for the amplification comparison.
    let control = run_cell_control(seeds, ops);
    t.row(vec![
        "(no hostile client)".into(),
        pct(control.completed, control.attempted),
        pct(control.correct_reads, control.reads.max(1)),
        control.violations.to_string(),
        control.messages.to_string(),
    ]);
    for strategy in ByzReaderStrategy::all() {
        let cell = run_cell(strategy, seeds, ops);
        t.row(vec![
            cell.strategy.clone(),
            pct(cell.completed, cell.attempted),
            pct(cell.correct_reads, cell.reads.max(1)),
            cell.violations.to_string(),
            cell.messages.to_string(),
        ]);
    }
    t
}

fn run_cell_control(seeds: u64, ops: u64) -> E11Cell {
    let mut cell = E11Cell {
        strategy: "control".into(),
        attempted: 0,
        completed: 0,
        correct_reads: 0,
        reads: 0,
        violations: 0,
        messages: 0,
    };
    for seed in 0..seeds {
        let mut c = RegisterCluster::bounded(1).clients(2).seed(seed).build();
        let (w, r) = (c.client(0), c.client(1));
        for i in 0..ops {
            cell.attempted += 2;
            let value = 1000 * (seed + 1) + i;
            if c.write(w, value).is_ok() {
                cell.completed += 1;
            }
            if let Ok(ok) = c.read(r) {
                cell.completed += 1;
                cell.reads += 1;
                if ok.value == value {
                    cell.correct_reads += 1;
                }
            }
        }
        c.settle(200_000);
        if let Err(errs) = c.check_history() {
            cell.violations += errs.len();
        }
        cell.messages += c.metrics().messages_sent;
    }
    cell
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_interface_attacks_are_harmless() {
        for strategy in ByzReaderStrategy::reader_only() {
            let cell = run_cell(strategy, 3, 4);
            assert_eq!(cell.completed, cell.attempted, "{strategy:?}: {cell:?}");
            assert_eq!(cell.correct_reads, cell.reads, "{strategy:?}: {cell:?}");
            assert_eq!(cell.violations, 0, "{strategy:?}: {cell:?}");
        }
    }

    #[test]
    fn garbage_spray_cannot_block_operations() {
        // Forged writes may inject values (see module docs) but can never
        // block correct clients' operations.
        let cell = run_cell(ByzReaderStrategy::GarbageSpray, 3, 4);
        assert_eq!(cell.completed, cell.attempted, "{cell:?}");
    }

    #[test]
    fn attacks_amplify_traffic_but_not_behaviour() {
        let control = run_cell_control(2, 4);
        let attacked = run_cell(ByzReaderStrategy::ReadFlood, 2, 4);
        assert!(attacked.messages > control.messages, "flood must show in traffic");
        assert_eq!(attacked.violations, control.violations);
    }
}
