//! **E19 — scale benchmark: shards × batching over a large keyspace.**
//!
//! The paper's protocol spends ~28–33 logical messages per operation — the
//! structural bill of quorum broadcast at `n = 5f + 1`. E19 measures the
//! two mechanisms this repo adds to attack that bill *without touching the
//! protocol*:
//!
//! * **Sharding** ([`sbft_kv::shard`]) — hash-partitioning the keyspace
//!   over `S` independent `5f + 1` groups. Per-link FIFO is the simulator's
//!   serialization bottleneck, so spreading keys over `S` disjoint link
//!   sets should scale virtual-time throughput (ops per kilotick) with the
//!   shard count.
//! * **Batching** ([`sbft_net::batch`]) — per-link frame coalescing.
//!   Pipelined clients put several same-phase messages on the same directed
//!   link inside one flush window; one wire frame then carries all of them.
//!   The headline metric `msgs_per_op` counts **wire frames** per completed
//!   operation (the amortized transfer bill an operator pays), while
//!   `logical_msgs_per_op` keeps the protocol-level count for comparison —
//!   batching moves the former, never the latter.
//!
//! The grid sweeps shard count × batch policy over hundreds of clients and
//! a large keyspace (collisions are rare, so pipelining stays effective) on
//! both substrates, reporting throughput, latency percentiles, and both
//! message accountings. `harness scale` prints the table and writes
//! `BENCH_e19.json`; `harness scale --quick` runs a scaled-down smoke grid
//! for CI.

use std::collections::BTreeMap;
use std::time::Instant;

use sbft_core::messages::Msg;
use sbft_core::Ts;
use sbft_kv::messages::{KvEvent, KvMsg};
use sbft_kv::{Key, KvCluster};
use sbft_labels::BoundedLabeling;
use sbft_net::{Backend, BatchPolicy, LatencyHistogram, ProcessId, Substrate};

use crate::table::{f1, Table};

type B = BoundedLabeling;

/// Event budget for one whole cell (not per op — the driver pumps freely).
const PUMP_BUDGET_PER_OP: u64 = 200_000;

/// Consecutive idle pumps (threaded backend) before declaring the run done.
const MAX_IDLE_PUMPS: u32 = 50;

/// Parameters of one scale cell.
#[derive(Clone, Copy, Debug)]
pub struct ScaleSpec {
    /// Concurrent clients.
    pub clients: usize,
    /// Operations to complete across all clients.
    pub total_ops: u64,
    /// Keys the workload spreads over.
    pub keyspace: u64,
    /// Independent `5f + 1` server groups.
    pub shards: usize,
    /// Per-client pipeline depth (concurrent ops on distinct keys).
    pub pipeline: usize,
    /// Link batching policy.
    pub batch: BatchPolicy,
    /// Percentage of operations that are writes (0..=100).
    pub write_ratio: u32,
    /// Substrate seed.
    pub seed: u64,
}

impl ScaleSpec {
    /// A cell with the default 50/50 mix and pipeline depth 16 (deep
    /// enough that same-phase messages stack on each directed link, which
    /// is what batching amortizes).
    pub fn new(clients: usize, total_ops: u64, keyspace: u64, shards: usize, seed: u64) -> Self {
        Self {
            clients,
            total_ops,
            keyspace,
            shards,
            pipeline: 16,
            batch: BatchPolicy::disabled(),
            write_ratio: 50,
            seed,
        }
    }

    /// Same cell with link batching under `policy`.
    pub fn batched(mut self, policy: BatchPolicy) -> Self {
        self.batch = policy;
        self
    }

    /// Whether arrival `seq` is a write (deterministic, replayable).
    fn is_write(&self, seq: u64) -> bool {
        (seq.wrapping_mul(2_654_435_761) >> 16) % 100 < self.write_ratio as u64
    }

    /// Key for arrival `seq`: multiplicative spread over the keyspace.
    fn key_of(&self, seq: u64) -> Key {
        seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.keyspace
    }
}

/// Measured results of one (spec, backend) cell.
#[derive(Clone, Debug)]
pub struct ScaleCell {
    /// Backend the cell ran on.
    pub backend: Backend,
    /// Shards.
    pub shards: usize,
    /// Size watermark of the batch policy (1 = batching off).
    pub max_batch: usize,
    /// Pipeline depth.
    pub pipeline: usize,
    /// Concurrent clients.
    pub clients: usize,
    /// Keyspace size.
    pub keyspace: u64,
    /// Operations that terminated successfully.
    pub ops_ok: u64,
    /// Operations that terminated unsuccessfully (abort/timeout).
    pub ops_failed: u64,
    /// Wall-clock milliseconds for the whole run.
    pub wall_ms: f64,
    /// Completed operations per wall-clock second.
    pub ops_per_sec: f64,
    /// Substrate ticks elapsed (virtual time on sim).
    pub ticks: u64,
    /// Completed operations per 1000 substrate ticks — the deterministic
    /// throughput metric (virtual time, so sim cells compare exactly).
    pub ops_per_ktick: f64,
    /// Per-operation latency in substrate ticks.
    pub latency: LatencyHistogram,
    /// Protocol-level messages per completed operation.
    pub logical_msgs_per_op: f64,
    /// **Wire frames** per completed operation — the amortized transfer
    /// bill. Equals `logical_msgs_per_op` with batching off.
    pub msgs_per_op: f64,
}

/// Drive one cell: a closed loop where every client keeps `pipeline` ops
/// in flight on distinct keys. The driver tracks each client's in-flight
/// key set and linear-probes past collisions, because [`sbft_kv`]'s client
/// silently drops a command for a key that is already busy.
pub fn run_cell(backend: Backend, spec: &ScaleSpec) -> ScaleCell {
    let mut builder = KvCluster::bounded(1)
        .clients(spec.clients)
        .seed(spec.seed)
        .shards(spec.shards)
        .pipeline(spec.pipeline)
        .batch(spec.batch)
        .backend(backend);
    if backend == Backend::Threaded {
        // Completions stream in continuously under pipelining; a short pump
        // window keeps the driver responsive without busy-waiting.
        builder = builder.pump_timeout(std::time::Duration::from_millis(5));
    }
    let mut c = builder.build_any();
    let clients: Vec<ProcessId> = (0..spec.clients).map(|i| c.client(i)).collect();

    // client pid -> key -> issue tick, for latency and collision probing.
    let mut inflight: BTreeMap<ProcessId, BTreeMap<Key, u64>> = BTreeMap::new();
    let mut latency = LatencyHistogram::new();
    let (mut issued, mut ops_ok, mut ops_failed) = (0u64, 0u64, 0u64);
    let before = c.metrics();
    let start = Instant::now();
    let start_ticks = c.sim.now();

    let issue = |sub: &mut dyn FnMut(ProcessId, KvMsg<Ts<B>>),
                 now: u64,
                 inflight: &mut BTreeMap<ProcessId, BTreeMap<Key, u64>>,
                 pid: ProcessId,
                 seq: u64| {
        let busy = inflight.entry(pid).or_default();
        // Linear-probe past keys this client already has in flight (the
        // automaton would silently drop the duplicate).
        let mut key = spec.key_of(seq);
        while busy.contains_key(&key) {
            key = (key + 1) % spec.keyspace;
        }
        let inner = if spec.is_write(seq) {
            Msg::InvokeWrite { value: (seq << 8) | (pid as u64 & 0xFF) }
        } else {
            Msg::InvokeRead
        };
        busy.insert(key, now);
        sub(pid, KvMsg::new(key, inner));
    };

    // Prime: fill every client's pipeline.
    'prime: for _depth in 0..spec.pipeline {
        for &pid in &clients {
            if issued >= spec.total_ops {
                break 'prime;
            }
            let now = c.sim.now();
            issue(&mut |p, m| c.sim.inject(p, m), now, &mut inflight, pid, issued);
            issued += 1;
        }
    }

    // Pump to completion, reissuing into each freed slot.
    let budget = spec.total_ops.saturating_mul(PUMP_BUDGET_PER_OP);
    let (mut events, mut idle) = (0u64, 0u32);
    while ops_ok + ops_failed < issued && events < budget {
        match c.sim.pump() {
            sbft_net::Pumped::Quiescent => break,
            sbft_net::Pumped::Idle => {
                idle += 1;
                if idle >= MAX_IDLE_PUMPS {
                    break;
                }
            }
            sbft_net::Pumped::Event { time, pid, outputs } => {
                idle = 0;
                events += 1;
                for out in outputs {
                    let KvEvent { key, inner } = &out;
                    let ok = match inner {
                        sbft_core::messages::ClientEvent::WriteDone { .. }
                        | sbft_core::messages::ClientEvent::ReadDone { .. } => true,
                        sbft_core::messages::ClientEvent::ReadAborted
                        | sbft_core::messages::ClientEvent::ReadFailed { .. }
                        | sbft_core::messages::ClientEvent::WriteFailed { .. } => false,
                    };
                    if let Some(since) = inflight.get_mut(&pid).and_then(|busy| busy.remove(key)) {
                        latency.record(time.saturating_sub(since));
                        if ok {
                            ops_ok += 1;
                        } else {
                            ops_failed += 1;
                        }
                        if issued < spec.total_ops {
                            let now = c.sim.now();
                            issue(&mut |p, m| c.sim.inject(p, m), now, &mut inflight, pid, issued);
                            issued += 1;
                        }
                    }
                }
            }
        }
    }

    let wall = start.elapsed();
    let ticks = c.sim.now().saturating_sub(start_ticks);
    let m = c.metrics().delta_since(&before);
    c.stop();

    let completed = ops_ok + ops_failed;
    let wall_ms = wall.as_secs_f64() * 1e3;
    let per_op = |x: u64| if completed > 0 { x as f64 / completed as f64 } else { 0.0 };
    ScaleCell {
        backend,
        shards: spec.shards,
        max_batch: spec.batch.max_batch,
        pipeline: spec.pipeline,
        clients: spec.clients,
        keyspace: spec.keyspace,
        ops_ok,
        ops_failed,
        wall_ms,
        ops_per_sec: if wall_ms > 0.0 { completed as f64 / (wall_ms / 1e3) } else { 0.0 },
        ticks,
        ops_per_ktick: if ticks > 0 { completed as f64 * 1e3 / ticks as f64 } else { 0.0 },
        latency,
        logical_msgs_per_op: per_op(m.messages_sent),
        msgs_per_op: per_op(m.frames_sent),
    }
}

/// The full E19 grid.
///
/// Simulator: `clients` clients over a 100k keyspace, shards ∈ {1, 2, 4, 8}
/// × batching {off, 32/8}, plus one 1M-key cell at the largest scale.
/// Threaded: a smaller grid (shards ∈ {1, 4} × batching {off, 32/8}) since
/// wall-clock cells cost real time.
pub fn run_cells(clients: usize, ops: u64, seed: u64) -> Vec<ScaleCell> {
    let ops = ops.max(100);
    let policy = BatchPolicy::new(32, 8);
    let mut cells = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let spec = ScaleSpec::new(clients, ops, 100_000, shards, seed);
        cells.push(run_cell(Backend::Sim, &spec));
        cells.push(run_cell(Backend::Sim, &spec.batched(policy)));
    }
    // One big-keyspace cell: placement and batching must not degrade when
    // the key universe dwarfs the in-flight set.
    let big = ScaleSpec::new(clients, ops, 1_000_000, 8, seed).batched(policy);
    cells.push(run_cell(Backend::Sim, &big));
    for shards in [1usize, 4] {
        let spec = ScaleSpec::new(clients / 4, ops / 4, 100_000, shards, seed)
            .batched(BatchPolicy::disabled());
        let spec = ScaleSpec { clients: spec.clients.max(8), ..spec };
        cells.push(run_cell(Backend::Threaded, &spec));
        cells.push(run_cell(Backend::Threaded, &spec.batched(policy)));
    }
    cells
}

/// The CI smoke grid: simulator only, small counts, still exercising a
/// multi-shard batched cell.
pub fn run_quick(seed: u64) -> Vec<ScaleCell> {
    let policy = BatchPolicy::new(32, 8);
    let mut cells = Vec::new();
    for shards in [1usize, 2] {
        let spec = ScaleSpec::new(16, 200, 10_000, shards, seed);
        cells.push(run_cell(Backend::Sim, &spec));
        cells.push(run_cell(Backend::Sim, &spec.batched(policy)));
    }
    cells
}

/// Render the cells as the harness table.
pub fn table(cells: &[ScaleCell]) -> Table {
    let mut t = Table::new(
        "E19 — scale: shards × link batching (f=1, n=6 per shard)",
        &[
            "backend",
            "shards",
            "batch",
            "pipe",
            "clients",
            "keys",
            "ops_ok",
            "failed",
            "ops/ktick",
            "ops/s",
            "p50",
            "p95",
            "p99",
            "logical/op",
            "frames/op",
        ],
    );
    for c in cells {
        t.row(vec![
            format!("{:?}", c.backend).to_lowercase(),
            c.shards.to_string(),
            if c.max_batch > 1 { c.max_batch.to_string() } else { "off".into() },
            c.pipeline.to_string(),
            c.clients.to_string(),
            c.keyspace.to_string(),
            c.ops_ok.to_string(),
            c.ops_failed.to_string(),
            f1(c.ops_per_ktick),
            f1(c.ops_per_sec),
            c.latency.percentile(50.0).to_string(),
            c.latency.percentile(95.0).to_string(),
            c.latency.percentile(99.0).to_string(),
            f1(c.logical_msgs_per_op),
            f1(c.msgs_per_op),
        ]);
    }
    t
}

/// Serialize the cells as the machine-readable `BENCH_e19.json` document.
/// `msgs_per_op` counts wire frames (amortized transfers per operation);
/// `logical_msgs_per_op` is the protocol-level count.
pub fn to_json(cells: &[ScaleCell]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"e19\",\n  \"schema\": 1,\n  \"unit\": {\"latency\": \"substrate ticks\", \"throughput\": \"ops per kilotick (sim-deterministic) and ops per wall-clock second\", \"msgs_per_op\": \"wire frames per completed op\"},\n  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"shards\": {}, \"max_batch\": {}, \"pipeline\": {}, \"clients\": {}, \"keyspace\": {}, \"ops_ok\": {}, \"ops_failed\": {}, \"wall_ms\": {:.2}, \"ops_per_sec\": {:.1}, \"ticks\": {}, \"ops_per_ktick\": {:.2}, \"lat_p50\": {}, \"lat_p95\": {}, \"lat_p99\": {}, \"logical_msgs_per_op\": {:.1}, \"msgs_per_op\": {:.2}}}{}\n",
            format!("{:?}", c.backend).to_lowercase(),
            c.shards,
            c.max_batch,
            c.pipeline,
            c.clients,
            c.keyspace,
            c.ops_ok,
            c.ops_failed,
            c.wall_ms,
            c.ops_per_sec,
            c.ticks,
            c.ops_per_ktick,
            c.latency.percentile(50.0),
            c.latency.percentile(95.0),
            c.latency.percentile(99.0),
            c.logical_msgs_per_op,
            c.msgs_per_op,
            sep,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_cell_completes_all_ops() {
        let spec = ScaleSpec::new(4, 60, 1_000, 2, 7);
        let cell = run_cell(Backend::Sim, &spec);
        assert_eq!(cell.ops_ok + cell.ops_failed, 60, "{cell:?}");
        assert_eq!(cell.latency.count(), 60);
        assert!(cell.logical_msgs_per_op > 10.0, "quorum broadcast is expensive");
        // Batching off: wire == logical.
        assert!((cell.msgs_per_op - cell.logical_msgs_per_op).abs() < 1e-9, "{cell:?}");
    }

    #[test]
    fn batching_cuts_wire_frames_not_logical_messages() {
        let spec = ScaleSpec::new(8, 120, 1_000, 1, 9);
        let plain = run_cell(Backend::Sim, &spec);
        let batched = run_cell(Backend::Sim, &spec.batched(BatchPolicy::new(32, 8)));
        assert_eq!(batched.ops_ok + batched.ops_failed, 120, "{batched:?}");
        assert!(
            batched.msgs_per_op < plain.msgs_per_op,
            "batched {} vs plain {}",
            batched.msgs_per_op,
            plain.msgs_per_op
        );
        // The protocol bill itself is untouched (same order of magnitude;
        // retries may wobble the exact count between configurations).
        assert!(batched.logical_msgs_per_op > 10.0, "{batched:?}");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let cells = run_quick(5);
        let json = to_json(&cells);
        assert!(json.contains("\"experiment\": \"e19\""));
        assert!(json.contains("\"msgs_per_op\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
