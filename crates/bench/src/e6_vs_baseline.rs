//! **E6 — the paper's motivating claim (Section I)**: classical BFT
//! registers with unbounded timestamps are *not* stabilizing — a single
//! transiently corrupted (near-)maximal timestamp breaks them forever —
//! while the bounded-label protocol recovers by the first complete write.
//!
//! Three systems face the same worst-case transient fault (one correct
//! server's timestamp poisoned to the top of its domain):
//!
//! * **bounded (this paper)** — `n = 5f+1`, k-SBLS labels: `next()`
//!   dominates *any* label, so the poison is absorbed; recovered.
//! * **unbounded (ablation)** — the *same* protocol over `u64` labels:
//!   `max + 1` saturates at `u64::MAX`; once the saturated timestamp is
//!   everywhere, no later write can dominate it — write liveness is lost.
//! * **KLMW (classical 3f+1)** — writes keep "completing" (servers ACK
//!   unconditionally) but are adopted nowhere; reads return a frozen
//!   stale value forever.
//!
//! "Recovered" = all post-fault writes complete **and** the final read
//! returns the last written value.

use sbft_baseline::klmw::KlmwCluster;
use sbft_core::cluster::RegisterCluster;
use sbft_core::server::Server;
use sbft_labels::{MwmrTimestamp, UnboundedLabeling};
use sbft_net::CorruptionSeverity;

use crate::table::{pct, Table};

/// Per-protocol aggregate.
#[derive(Clone, Debug)]
pub struct E6Cell {
    /// Protocol label.
    pub protocol: String,
    /// Seeds run.
    pub seeds: usize,
    /// Post-fault writes attempted.
    pub writes_attempted: usize,
    /// Post-fault writes completed.
    pub writes_completed: usize,
    /// Runs that fully recovered.
    pub recovered: usize,
}

/// Bounded (the paper's protocol): adversarial corruption of one server.
pub fn run_bounded(seeds: u64, writes: u64) -> E6Cell {
    let mut cell = E6Cell {
        protocol: "bounded 5f+1 (this paper)".into(),
        seeds: seeds as usize,
        writes_attempted: 0,
        writes_completed: 0,
        recovered: 0,
    };
    for seed in 0..seeds {
        let mut c = RegisterCluster::bounded(1).clients(2).seed(seed).build();
        let (w, r) = (c.client(0), c.client(1));
        c.write(w, 1).expect("pre-fault write");
        c.corrupt_servers(&[0], CorruptionSeverity::Adversarial);
        let mut all_ok = true;
        let mut last = 1;
        for i in 0..writes {
            cell.writes_attempted += 1;
            if c.write(w, 2 + i).is_ok() {
                cell.writes_completed += 1;
                last = 2 + i;
            } else {
                all_ok = false;
            }
        }
        if all_ok {
            if let Ok(got) = c.read(r) {
                if got.value == last {
                    cell.recovered += 1;
                }
            }
        }
    }
    cell
}

/// The same protocol over unbounded `u64` labels, with the worst-case
/// poison (`u64::MAX`) planted on one correct server.
pub fn run_unbounded(seeds: u64, writes: u64) -> E6Cell {
    let mut cell = E6Cell {
        protocol: "unbounded labels (ablation)".into(),
        seeds: seeds as usize,
        writes_attempted: 0,
        writes_completed: 0,
        recovered: 0,
    };
    for seed in 0..seeds {
        let mut c = RegisterCluster::unbounded(1).clients(2).seed(seed).build();
        // Fail fast when the saturated timestamp wedges a write.
        c.op_budget = 50_000;
        let (w, r) = (c.client(0), c.client(1));
        c.write(w, 1).expect("pre-fault write");
        {
            let srv: &mut Server<UnboundedLabeling> = c.server_state(0).expect("honest server");
            srv.value = 999;
            srv.ts = MwmrTimestamp::new(u64::MAX, u32::MAX);
        }
        let mut all_ok = true;
        let mut last = 1;
        for i in 0..writes {
            cell.writes_attempted += 1;
            if c.write(w, 2 + i).is_ok() {
                cell.writes_completed += 1;
                last = 2 + i;
            } else {
                all_ok = false;
            }
        }
        if all_ok {
            if let Ok(got) = c.read(r) {
                if got.value == last {
                    cell.recovered += 1;
                }
            }
        }
    }
    cell
}

/// KLMW 3f+1 with the near-maximal poison and a colluding echo.
pub fn run_klmw(seeds: u64, writes: u64) -> E6Cell {
    let mut cell = E6Cell {
        protocol: "KLMW 3f+1 unbounded".into(),
        seeds: seeds as usize,
        writes_attempted: 0,
        writes_completed: 0,
        recovered: 0,
    };
    for seed in 0..seeds {
        let mut c = KlmwCluster::new(1, 2, 1, seed);
        c.op_budget = 50_000;
        let w = c.client(0);
        let r = c.client(1);
        c.write(w, 1).expect("pre-fault write");
        c.poison(0, 999, true);
        let mut all_ok = true;
        let mut last = 1;
        for i in 0..writes {
            cell.writes_attempted += 1;
            if c.write(w, 2 + i).is_ok() {
                cell.writes_completed += 1;
                last = 2 + i;
            } else {
                all_ok = false;
            }
        }
        if all_ok {
            if let Ok((v, _)) = c.read(r) {
                if v == last {
                    cell.recovered += 1;
                }
            }
        }
    }
    cell
}

/// The E6 table.
pub fn run(seeds: u64, writes: u64) -> Table {
    let mut t = Table::new(
        "E6 (Section I): recovery from a poisoned timestamp (f = 1)",
        &["protocol", "seeds", "writes done", "recovered runs", "recovery rate"],
    );
    for cell in [run_bounded(seeds, writes), run_unbounded(seeds, writes), run_klmw(seeds, writes)]
    {
        t.row(vec![
            cell.protocol.clone(),
            cell.seeds.to_string(),
            format!("{}/{}", cell.writes_completed, cell.writes_attempted),
            cell.recovered.to_string(),
            pct(cell.recovered, cell.seeds),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_always_recovers() {
        let c = run_bounded(4, 3);
        assert_eq!(c.recovered, 4, "{c:?}");
        assert_eq!(c.writes_completed, c.writes_attempted);
    }

    #[test]
    fn unbounded_gets_wedged() {
        let c = run_unbounded(4, 3);
        assert!(c.recovered < 4, "saturated timestamps must hurt: {c:?}");
    }

    #[test]
    fn klmw_never_recovers() {
        let c = run_klmw(4, 3);
        assert_eq!(c.recovered, 0, "{c:?}");
    }
}
