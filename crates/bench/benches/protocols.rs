//! End-to-end operation benchmarks across the three register protocols
//! (the wall-clock counterpart of experiments E2/E7): one write + one read
//! round on a freshly built simulated cluster.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbft_baseline::abd::AbdCluster;
use sbft_baseline::klmw::KlmwCluster;
use sbft_core::adversary::ByzStrategy;
use sbft_core::cluster::RegisterCluster;

fn ours(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("ours_roundtrip");
    group.sample_size(20);
    for f in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("fault_free", f), &f, |b, &f| {
            b.iter(|| {
                let mut c = RegisterCluster::bounded(f).seed(1).build();
                let w = c.client(0);
                c.write(w, 7).unwrap();
                c.read(c.client(1)).unwrap()
            })
        });
    }
    group.bench_function("byzantine_garbage_f1", |b| {
        b.iter(|| {
            let mut c = RegisterCluster::bounded(1)
                .byzantine_tail(ByzStrategy::RandomGarbage)
                .seed(1)
                .build();
            let w = c.client(0);
            c.write(w, 7).unwrap();
            c.read(c.client(1)).unwrap()
        })
    });
    group.finish();
}

fn baselines(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("baseline_roundtrip");
    group.sample_size(20);
    for f in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("klmw", f), &f, |b, &f| {
            b.iter(|| {
                let mut c = KlmwCluster::new(f, 2, 0, 1);
                let w = c.client(0);
                c.write(w, 7).unwrap();
                c.read(c.client(1)).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("abd", f), &f, |b, &f| {
            b.iter(|| {
                let mut c = AbdCluster::new(f, 2, 1);
                let w = c.client(0);
                c.write(w, 7).unwrap();
                c.read(c.client(1)).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ours, baselines);
criterion_main!(benches);
