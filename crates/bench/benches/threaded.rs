//! Threaded-runtime throughput benchmarks (experiment E9's Criterion
//! form): real OS threads, crossbeam channels, end-to-end operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sbft_bench::e9_threaded;

fn throughput(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("threaded_ops");
    group.sample_size(10);
    for clients in [1usize, 4] {
        let ops_per_client = 50u64;
        group.throughput(Throughput::Elements(clients as u64 * ops_per_client));
        group.bench_with_input(BenchmarkId::new("clients", clients), &clients, |b, &cl| {
            b.iter(|| e9_threaded::run_cell(1, cl, ops_per_client, 1))
        });
    }
    group.finish();
}

criterion_group!(benches, throughput);
criterion_main!(benches);
