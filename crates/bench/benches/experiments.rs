//! Benchmarks over whole experiment kernels — one per table of
//! EXPERIMENTS.md whose cost is simulation-bound: the Theorem 1 replay
//! (E1), stabilization after total corruption (E4), the label-economy run
//! (E5), poisoned-timestamp recovery (E6), and the concurrent-writer
//! workload (E8, incl. the ablation policies).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbft_bench::{e1_lower_bound, e4_stabilization, e5_labels, e6_vs_baseline, e8_concurrency};
use sbft_core::reader::ReaderOptions;
use sbft_net::CorruptionSeverity;
use sbft_wtsg::SelectionPolicy;

fn e1(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("e1_lower_bound");
    group.sample_size(20);
    for n in [5usize, 6] {
        group.bench_with_input(BenchmarkId::new("scripted", n), &n, |b, &n| {
            b.iter(|| e1_lower_bound::scripted_run(n, 0, 7))
        });
    }
    group.finish();
}

fn e4(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("e4_stabilization");
    group.sample_size(10);
    for sev in [CorruptionSeverity::Light, CorruptionSeverity::Adversarial] {
        group.bench_with_input(BenchmarkId::new("recover", format!("{sev:?}")), &sev, |b, &sev| {
            b.iter(|| e4_stabilization::run_severity(sev, 1, 2, 3))
        });
    }
    group.finish();
}

fn e5(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("e5_labels");
    group.sample_size(10);
    group.bench_function("ops_40_f1", |b| b.iter(|| e5_labels::run_cell(1, 40, 1)));
    group.finish();
}

fn e6(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("e6_vs_baseline");
    group.sample_size(10);
    group.bench_function("bounded", |b| b.iter(|| e6_vs_baseline::run_bounded(1, 3)));
    group.bench_function("klmw", |b| b.iter(|| e6_vs_baseline::run_klmw(1, 3)));
    group.finish();
}

fn e8(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("e8_concurrency");
    group.sample_size(10);
    for writers in [1usize, 3] {
        group.bench_with_input(BenchmarkId::new("writers", writers), &writers, |b, &w| {
            b.iter(|| e8_concurrency::run_cell(w, 6, 6, 1, ReaderOptions::default()))
        });
    }
    // Ablation kernels share the workload; bench the policy variants.
    group.bench_function("ablate_max_weight", |b| {
        b.iter(|| {
            e8_concurrency::run_cell(
                3,
                6,
                6,
                1,
                ReaderOptions { policy: SelectionPolicy::MaxWeight, ..Default::default() },
            )
        })
    });
    group.bench_function("ablate_union_off", |b| {
        b.iter(|| {
            e8_concurrency::run_cell(
                3,
                6,
                6,
                1,
                ReaderOptions { use_union: false, ..Default::default() },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, e1, e4, e5, e6, e8);
criterion_main!(benches);
