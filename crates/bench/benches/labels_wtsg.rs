//! Micro-benchmarks for the protocol's hot data structures: the bounded
//! labeling system (`next`, `precedes`, `sanitize`) and the weighted
//! timestamp graph (build + select). These are the per-message costs every
//! operation pays `O(n)` times, so their scaling in `k` (≈ cluster size)
//! is the protocol's computational footprint.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sbft_labels::{BoundedLabel, BoundedLabeling, LabelingSystem, UnboundedLabeling};
use sbft_wtsg::{select_return_value, Witness, WtsGraph};

fn labels(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("labels");
    for k in [7usize, 12, 22, 42] {
        let sys = BoundedLabeling::new(k);
        let mut rng = StdRng::seed_from_u64(1);
        let seen: Vec<BoundedLabel> =
            (0..k).map(|_| sys.sanitize(sys.arbitrary(&mut rng))).collect();
        group.bench_with_input(BenchmarkId::new("next", k), &k, |b, _| {
            b.iter(|| sys.next(black_box(&seen)))
        });
        let nl = sys.next(&seen);
        group.bench_with_input(BenchmarkId::new("precedes", k), &k, |b, _| {
            b.iter(|| sys.precedes(black_box(&seen[0]), black_box(&nl)))
        });
        let raw = sys.arbitrary(&mut rng);
        group.bench_with_input(BenchmarkId::new("sanitize", k), &k, |b, _| {
            b.iter(|| sys.sanitize(black_box(raw.clone())))
        });
    }
    // The unbounded comparator's next() for scale.
    let useen: Vec<u64> = (0..42).collect();
    group
        .bench_function("unbounded_next", |b| b.iter(|| UnboundedLabeling.next(black_box(&useen))));
    group.finish();
}

fn wtsg(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("wtsg");
    for n in [6usize, 11, 21] {
        let sys = BoundedLabeling::new(n + 1);
        let mut rng = StdRng::seed_from_u64(2);
        // A realistic read quorum: n witnesses over ~3 versions + garbage.
        let witnesses: Vec<Witness<u64, BoundedLabel>> = (0..n)
            .map(|s| Witness::new(s, (s % 3) as u64, sys.sanitize(sys.arbitrary(&mut rng))))
            .collect();
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| WtsGraph::build(&sys, black_box(witnesses.clone())))
        });
        let graph = WtsGraph::build(&sys, witnesses.clone());
        group.bench_with_input(BenchmarkId::new("select", n), &n, |b, _| {
            b.iter(|| select_return_value(&sys, black_box(&graph), 3))
        });
    }
    group.finish();
}

criterion_group!(benches, labels, wtsg);
criterion_main!(benches);
