//! Data-link substrate benchmarks (experiment E10's wall-clock view):
//! convergence from an arbitrary configuration as the channel capacity
//! grows, plus the clean-channel steady-state transfer rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbft_datalink::DatalinkSim;

fn convergence(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("datalink_converge");
    group.sample_size(20);
    let payloads: Vec<u64> = (0..30).collect();
    for c in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("capacity", c), &c, |b, &c| {
            b.iter(|| DatalinkSim::converge_report(c, 3, &payloads, 50_000_000))
        });
    }
    group.finish();
}

fn steady_state(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("datalink_clean");
    group.sample_size(20);
    let payloads: Vec<u64> = (0..100).collect();
    group.bench_function("transfer_100", |b| {
        b.iter(|| {
            let mut sim = DatalinkSim::new(3, 5);
            for &p in &payloads {
                sim.sender.push(p);
            }
            sim.run(50_000_000)
        })
    });
    group.finish();
}

criterion_group!(benches, convergence, steady_state);
criterion_main!(benches);
