//! A crash-only majority register in the style of Attiya–Bar-Noy–Dolev:
//! `n = 2f + 1` servers tolerate `f` *crash* faults, no Byzantine defence.
//!
//! The cheapest comparator in the quorum-cost experiment (E7): writes are
//! two phases against majorities, reads one phase returning the maximal
//! timestamp (trusting every reply — a single lying server breaks it,
//! which is the point of the comparison). Regular semantics (no write-back
//! phase).

use std::collections::BTreeMap;

use sbft_core::messages::{ClientEvent, Msg, ValTs, Value};
use sbft_core::spec::{HistoryRecorder, OpKind, RegularityError};
use sbft_labels::{LabelingSystem, MwmrLabeling, UnboundedLabeling, WriterId};
use sbft_net::{Automaton, Ctx, DelayModel, ProcessId, SimConfig, Simulation, ENV};

use crate::{USys, UTs};

type BMsg = Msg<UTs>;
type BEvent = ClientEvent<UTs>;

/// An ABD server: adopt-if-greater, reply to reads.
pub struct AbdServer {
    sys: USys,
    value: Value,
    ts: UTs,
}

impl AbdServer {
    /// Clean server.
    pub fn new() -> Self {
        let sys = MwmrLabeling::new(UnboundedLabeling);
        let ts = sys.genesis();
        Self { sys, value: 0, ts }
    }
}

impl Default for AbdServer {
    fn default() -> Self {
        Self::new()
    }
}

impl Automaton<BMsg, BEvent> for AbdServer {
    fn on_message(&mut self, from: ProcessId, msg: BMsg, ctx: &mut Ctx<'_, BMsg, BEvent>) {
        if from == ENV {
            return;
        }
        match msg {
            Msg::GetTs => ctx.send(from, Msg::TsReply { ts: self.ts.clone() }),
            Msg::Write { value, ts } => {
                if self.sys.precedes(&self.ts, &ts) {
                    self.value = value;
                    self.ts = ts.clone();
                }
                ctx.send(from, Msg::WriteAck { ts, ack: true });
            }
            Msg::Read { label } => ctx.send(
                from,
                Msg::Reply { value: self.value, ts: self.ts.clone(), old: [].into(), label },
            ),
            _ => {}
        }
    }
}

enum Phase {
    Idle,
    Collect { value: Value, got: BTreeMap<ProcessId, UTs> },
    WaitAcks { value: Value, ts: UTs, acked: BTreeMap<ProcessId, ()> },
    Reading { label: u32, replies: BTreeMap<ProcessId, ValTs<UTs>> },
}

/// An ABD client.
pub struct AbdClient {
    sys: USys,
    n: usize,
    majority: usize,
    writer_id: WriterId,
    seq: u32,
    phase: Phase,
}

impl AbdClient {
    /// Client for an `n`-server majority system.
    pub fn new(n: usize, writer_id: WriterId) -> Self {
        Self {
            sys: MwmrLabeling::new(UnboundedLabeling),
            n,
            majority: n / 2 + 1,
            writer_id,
            seq: 0,
            phase: Phase::Idle,
        }
    }
}

impl Automaton<BMsg, BEvent> for AbdClient {
    fn on_message(&mut self, from: ProcessId, msg: BMsg, ctx: &mut Ctx<'_, BMsg, BEvent>) {
        match msg {
            Msg::InvokeWrite { value } if from == ENV => {
                if matches!(self.phase, Phase::Idle) {
                    self.phase = Phase::Collect { value, got: BTreeMap::new() };
                    ctx.broadcast(0..self.n, Msg::GetTs);
                }
            }
            Msg::InvokeRead if from == ENV => {
                if matches!(self.phase, Phase::Idle) {
                    self.seq = self.seq.wrapping_add(1);
                    self.phase = Phase::Reading { label: self.seq, replies: BTreeMap::new() };
                    ctx.broadcast(0..self.n, Msg::Read { label: self.seq });
                }
            }
            Msg::TsReply { ts } => {
                if let Phase::Collect { value, got } = &mut self.phase {
                    if from < self.n {
                        got.insert(from, ts);
                        if got.len() >= self.majority {
                            let seen: Vec<UTs> = got.values().cloned().collect();
                            let new_ts = self.sys.next_for(self.writer_id, &seen);
                            let value = *value;
                            self.phase = Phase::WaitAcks {
                                value,
                                ts: new_ts.clone(),
                                acked: BTreeMap::new(),
                            };
                            ctx.broadcast(0..self.n, Msg::Write { value, ts: new_ts });
                        }
                    }
                }
            }
            Msg::WriteAck { ts, .. } => {
                if let Phase::WaitAcks { value, ts: cur, acked } = &mut self.phase {
                    if from < self.n && &ts == cur {
                        acked.insert(from, ());
                        if acked.len() >= self.majority {
                            let ev = ClientEvent::WriteDone { value: *value, ts: cur.clone() };
                            self.phase = Phase::Idle;
                            ctx.output(ev);
                        }
                    }
                }
            }
            Msg::Reply { value, ts, label, .. } => {
                let mut decided = None;
                if let Phase::Reading { label: cur, replies } = &mut self.phase {
                    if from < self.n && label == *cur {
                        replies.insert(from, (value, ts));
                        if replies.len() >= self.majority {
                            // Trust every reply: maximal timestamp wins.
                            let best = replies
                                .values()
                                .max_by(|a, b| a.1.cmp(&b.1))
                                .cloned()
                                .expect("majority is non-empty");
                            decided = Some(best);
                        }
                    }
                }
                if let Some((v, t)) = decided {
                    self.phase = Phase::Idle;
                    ctx.output(ClientEvent::ReadDone { value: v, ts: t, via_union: false });
                }
            }
            _ => {}
        }
    }
}

/// An assembled ABD cluster.
pub struct AbdCluster {
    /// Underlying simulation.
    pub sim: Simulation<BMsg, BEvent>,
    /// Server count (`2f + 1`).
    pub n: usize,
    n_clients: usize,
    /// History for the shared regularity checker.
    pub recorder: HistoryRecorder<UnboundedLabeling>,
    sys: USys,
    /// Max events per blocking op.
    pub op_budget: u64,
}

impl AbdCluster {
    /// `n = 2f + 1` servers, `clients` clients.
    pub fn new(f: usize, clients: usize, seed: u64) -> Self {
        let n = 2 * f + 1;
        let mut sim: Simulation<BMsg, BEvent> = Simulation::new(SimConfig {
            seed,
            delay: DelayModel::uniform(1, 10),
            trace_capacity: 0,
            ..SimConfig::default()
        });
        for _ in 0..n {
            sim.add_process(Box::new(AbdServer::new()));
        }
        for c in 0..clients {
            sim.add_process(Box::new(AbdClient::new(n, (n + c) as u32)));
        }
        Self {
            sim,
            n,
            n_clients: clients,
            recorder: HistoryRecorder::new(),
            sys: MwmrLabeling::new(UnboundedLabeling),
            op_budget: 200_000,
        }
    }

    /// Pid of client `i`.
    pub fn client(&self, i: usize) -> ProcessId {
        assert!(i < self.n_clients);
        self.n + i
    }

    fn await_client(&mut self, client: ProcessId) -> Option<BEvent> {
        let mut budget = self.op_budget;
        while budget > 0 {
            let ev = self.sim.step()?;
            budget -= 1;
            let (time, pid) = (ev.time, ev.pid);
            for out in ev.outputs {
                self.recorder.complete(pid, time, &out);
                if pid == client {
                    return Some(out);
                }
            }
        }
        None
    }

    /// Blocking write.
    pub fn write(&mut self, client: ProcessId, value: Value) -> Option<UTs> {
        self.recorder.begin(client, OpKind::Write, self.sim.now() + 1);
        self.sim.inject(client, Msg::InvokeWrite { value });
        match self.await_client(client)? {
            ClientEvent::WriteDone { ts, .. } => Some(ts),
            _ => None,
        }
    }

    /// Blocking read.
    pub fn read(&mut self, client: ProcessId) -> Option<(Value, UTs)> {
        self.recorder.begin(client, OpKind::Read, self.sim.now() + 1);
        self.sim.inject(client, Msg::InvokeRead);
        match self.await_client(client)? {
            ClientEvent::ReadDone { value, ts, .. } => Some((value, ts)),
            _ => None,
        }
    }

    /// Check the recorded history.
    pub fn check_history(&self) -> Result<(), Vec<RegularityError>> {
        self.recorder.check(&self.sys)
    }

    /// Messages sent so far (E7 cost accounting).
    pub fn messages_sent(&self) -> u64 {
        self.sim.metrics().messages_sent
    }

    /// Crash server `idx` (crash-fault tolerance demo).
    pub fn crash_server(&mut self, idx: usize) {
        assert!(idx < self.n);
        self.sim.crash(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_roundtrip() {
        let mut c = AbdCluster::new(1, 2, 1);
        let w = c.client(0);
        c.write(w, 9).unwrap();
        let (v, _) = c.read(c.client(1)).unwrap();
        assert_eq!(v, 9);
        assert!(c.check_history().is_ok());
    }

    #[test]
    fn survives_f_crashes() {
        let mut c = AbdCluster::new(1, 2, 2);
        let w = c.client(0);
        c.write(w, 1).unwrap();
        c.crash_server(0);
        c.write(w, 2).unwrap();
        let (v, _) = c.read(c.client(1)).unwrap();
        assert_eq!(v, 2);
        assert!(c.check_history().is_ok());
    }

    #[test]
    fn sequential_writes_read_latest() {
        let mut c = AbdCluster::new(2, 2, 3);
        let w = c.client(0);
        for v in 1..=6 {
            c.write(w, v).unwrap();
        }
        let (v, _) = c.read(c.client(1)).unwrap();
        assert_eq!(v, 6);
        assert!(c.check_history().is_ok());
    }

    #[test]
    fn no_byzantine_defence_by_design() {
        // Poison one server's state: ABD reads trust the max timestamp, so
        // a single bad server breaks the register — the contrast E7 draws.
        let mut c = AbdCluster::new(1, 2, 4);
        let w = c.client(0);
        c.write(w, 1).unwrap();
        if let Some(any) = c.sim.process_mut(0).as_any_mut() {
            let _ = any; // AbdServer does not expose as_any_mut: use crash instead
        }
        // (State poisoning is exercised through the KLMW baseline, which
        // exposes its server state; ABD only demonstrates crash handling.)
        let (v, _) = c.read(c.client(1)).unwrap();
        assert_eq!(v, 1);
    }
}
