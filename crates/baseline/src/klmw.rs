//! A classical BFT MWMR regular register: `n = 3f + 1` servers, unbounded
//! timestamps (after Kanjani, Lee, Maguffee, Welch 2010 — reference \[14\]
//! of the paper).
//!
//! Shape of the protocol:
//!
//! * **write(v)** — phase 1: collect current timestamps from `n − f`
//!   servers and take `max + 1` (stamped with the writer id); phase 2:
//!   send `WRITE(v, ts)` to all, wait for `n − f` ACKs. Servers adopt
//!   **only** a strictly greater timestamp (unlike the stabilizing
//!   protocol's unconditional adoption) and ACK unconditionally.
//! * **read()** — query all servers, accumulate replies, and return the
//!   pair with the highest timestamp among those vouched for by at least
//!   `f + 1` distinct servers (so at least one correct server). Servers
//!   forward fresh writes to registered readers, which gives liveness
//!   under write concurrency.
//!
//! With a clean initial state this register is correct and uses minimal
//! resilience (`3f + 1`). Its two failure modes under transient faults —
//! measured by experiment E6 — are:
//!
//! 1. **Write lock-out**: a corrupted correct server holding `u64::MAX`
//!    poisons phase 1 (`max + 1` saturates); no server ever adopts again,
//!    so no fresh write can gather witnesses.
//! 2. **Permanent garbage reads**: the poisoned pair plus one Byzantine
//!    echo reaches the `f + 1` witness bar with the *highest* timestamp,
//!    so every read prefers it — forever.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::Rng;
use sbft_core::messages::{ClientEvent, Msg, ValTs, Value};
use sbft_core::spec::{HistoryRecorder, OpKind, RegularityError};
use sbft_labels::{LabelingSystem, MwmrLabeling, UnboundedLabeling, WriterId};
use sbft_net::{Automaton, Ctx, DelayModel, ProcessId, SimConfig, Simulation, ENV};

use crate::{USys, UTs};

/// Message/event aliases for the baseline (shared with `sbft-core`).
pub type BMsg = Msg<UTs>;
/// Client events with unbounded timestamps.
pub type BEvent = ClientEvent<UTs>;

/// A KLMW server: adopt-if-greater, ACK always.
pub struct KlmwServer {
    sys: USys,
    /// Current value.
    pub value: Value,
    /// Current (unbounded) timestamp.
    pub ts: UTs,
    /// Readers with an open read (label echoes their request).
    pub running_read: BTreeMap<ProcessId, u32>,
}

impl KlmwServer {
    /// Clean server.
    pub fn new() -> Self {
        let sys = MwmrLabeling::new(UnboundedLabeling);
        let genesis = sys.genesis();
        Self { sys, value: 0, ts: genesis, running_read: BTreeMap::new() }
    }
}

impl Default for KlmwServer {
    fn default() -> Self {
        Self::new()
    }
}

impl Automaton<BMsg, BEvent> for KlmwServer {
    fn on_message(&mut self, from: ProcessId, msg: BMsg, ctx: &mut Ctx<'_, BMsg, BEvent>) {
        if from == ENV {
            return;
        }
        match msg {
            Msg::GetTs => ctx.send(from, Msg::TsReply { ts: self.ts.clone() }),
            Msg::Write { value, ts } => {
                if self.sys.precedes(&self.ts, &ts) {
                    self.value = value;
                    self.ts = ts.clone();
                    for (&reader, &label) in &self.running_read {
                        ctx.send(
                            reader,
                            Msg::Reply { value, ts: ts.clone(), old: [].into(), label },
                        );
                    }
                }
                ctx.send(from, Msg::WriteAck { ts, ack: true });
            }
            Msg::Read { label } => {
                self.running_read.insert(from, label);
                ctx.send(
                    from,
                    Msg::Reply { value: self.value, ts: self.ts.clone(), old: [].into(), label },
                );
            }
            Msg::CompleteRead { label } if self.running_read.get(&from) == Some(&label) => {
                self.running_read.remove(&from);
            }
            _ => {}
        }
    }

    fn corrupt(&mut self, rng: &mut StdRng) {
        // The transient fault of experiment E6: arbitrary value, arbitrary
        // unbounded timestamp — which is astronomically large w.h.p.
        self.value = rng.gen();
        self.ts = self.sys.arbitrary(rng);
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// A Byzantine KLMW server that echoes a scripted pair (colluding with
/// corrupted state to keep garbage alive — the E6 adversary).
pub struct KlmwEcho {
    /// The pair echoed to every read (settable via `as_any_mut`).
    pub pair: Option<ValTs<UTs>>,
}

impl Automaton<BMsg, BEvent> for KlmwEcho {
    fn on_message(&mut self, from: ProcessId, msg: BMsg, ctx: &mut Ctx<'_, BMsg, BEvent>) {
        if from == ENV {
            return;
        }
        match msg {
            Msg::GetTs => {
                if let Some((_, ts)) = &self.pair {
                    ctx.send(from, Msg::TsReply { ts: ts.clone() });
                }
            }
            Msg::Read { label } => {
                if let Some((v, ts)) = &self.pair {
                    ctx.send(from, Msg::Reply { value: *v, ts: ts.clone(), old: [].into(), label });
                }
            }
            Msg::Write { ts, .. } => ctx.send(from, Msg::WriteAck { ts, ack: true }),
            _ => {}
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

enum Phase {
    Idle,
    Collect { value: Value, wts: BTreeMap<ProcessId, UTs> },
    WaitAcks { value: Value, ts: UTs, acks: usize, acked: BTreeMap<ProcessId, ()> },
    Reading { label: u32, replies: BTreeMap<ProcessId, ValTs<UTs>> },
}

/// A KLMW client.
pub struct KlmwClient {
    sys: USys,
    n: usize,
    f: usize,
    writer_id: WriterId,
    read_seq: u32,
    phase: Phase,
}

impl KlmwClient {
    /// Client for an `n = 3f + 1` cluster.
    pub fn new(n: usize, f: usize, writer_id: WriterId) -> Self {
        Self {
            sys: MwmrLabeling::new(UnboundedLabeling),
            n,
            f,
            writer_id,
            read_seq: 0,
            phase: Phase::Idle,
        }
    }

    fn quorum(&self) -> usize {
        self.n - self.f
    }
}

/// Decision rule: highest-timestamp pair with ≥ `witness` distinct vouchers.
fn decide_klmw(replies: &BTreeMap<ProcessId, ValTs<UTs>>, witness: usize) -> Option<ValTs<UTs>> {
    let mut counts: BTreeMap<&ValTs<UTs>, usize> = BTreeMap::new();
    for pair in replies.values() {
        *counts.entry(pair).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .filter(|&(_, c)| c >= witness)
        .map(|(p, _)| p.clone())
        .max_by(|a, b| a.1.cmp(&b.1))
}

impl Automaton<BMsg, BEvent> for KlmwClient {
    fn on_message(&mut self, from: ProcessId, msg: BMsg, ctx: &mut Ctx<'_, BMsg, BEvent>) {
        match msg {
            Msg::InvokeWrite { value } if from == ENV => {
                if matches!(self.phase, Phase::Idle) {
                    self.phase = Phase::Collect { value, wts: BTreeMap::new() };
                    ctx.broadcast(0..self.n, Msg::GetTs);
                }
            }
            Msg::InvokeRead if from == ENV => {
                if matches!(self.phase, Phase::Idle) {
                    self.read_seq = self.read_seq.wrapping_add(1);
                    let label = self.read_seq;
                    self.phase = Phase::Reading { label, replies: BTreeMap::new() };
                    ctx.broadcast(0..self.n, Msg::Read { label });
                }
            }
            Msg::TsReply { ts } => {
                let quorum = self.quorum();
                if let Phase::Collect { value, wts } = &mut self.phase {
                    if from < self.n {
                        wts.insert(from, ts);
                        if wts.len() >= quorum {
                            let seen: Vec<UTs> = wts.values().cloned().collect();
                            let new_ts = self.sys.next_for(self.writer_id, &seen);
                            let value = *value;
                            self.phase = Phase::WaitAcks {
                                value,
                                ts: new_ts.clone(),
                                acks: 0,
                                acked: BTreeMap::new(),
                            };
                            ctx.broadcast(0..self.n, Msg::Write { value, ts: new_ts });
                        }
                    }
                }
            }
            Msg::WriteAck { ts, .. } => {
                if let Phase::WaitAcks { value, ts: cur, acks, acked } = &mut self.phase {
                    if from < self.n && &ts == cur && acked.insert(from, ()).is_none() {
                        *acks += 1;
                        if *acks >= self.n - self.f {
                            let ev = ClientEvent::WriteDone { value: *value, ts: cur.clone() };
                            self.phase = Phase::Idle;
                            ctx.output(ev);
                        }
                    }
                }
            }
            Msg::Reply { value, ts, label, .. } => {
                let quorum = self.quorum();
                let witness = self.f + 1;
                let mut done = None;
                if let Phase::Reading { label: cur, replies } = &mut self.phase {
                    if from < self.n && label == *cur {
                        replies.insert(from, (value, ts));
                        if replies.len() >= quorum {
                            if let Some((v, t)) = decide_klmw(replies, witness) {
                                done = Some((v, t, *cur));
                            }
                            // else: keep accumulating replies beyond the
                            // quorum until some pair reaches f + 1.
                        }
                    }
                }
                if let Some((v, t, label)) = done {
                    ctx.broadcast(0..self.n, Msg::CompleteRead { label });
                    ctx.output(ClientEvent::ReadDone { value: v, ts: t, via_union: false });
                    self.phase = Phase::Idle;
                }
            }
            _ => {}
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// Why a baseline blocking operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BaselineError {
    /// The simulation drained or the budget ran out with the op pending —
    /// for KLMW under timestamp poisoning, the expected terminal state.
    Stuck,
}

/// An assembled KLMW cluster on the simulator.
pub struct KlmwCluster {
    /// Underlying simulation.
    pub sim: Simulation<BMsg, BEvent>,
    /// Server count (`3f + 1`).
    pub n: usize,
    /// Byzantine budget.
    pub f: usize,
    n_clients: usize,
    /// History for the shared regularity checker.
    pub recorder: HistoryRecorder<UnboundedLabeling>,
    sys: USys,
    /// Max events per blocking op.
    pub op_budget: u64,
}

impl KlmwCluster {
    /// Build `n = 3f + 1` servers (last `byz` of them echo-Byzantine) and
    /// `clients` clients.
    pub fn new(f: usize, clients: usize, byz: usize, seed: u64) -> Self {
        let n = 3 * f + 1;
        assert!(byz <= f);
        let mut sim: Simulation<BMsg, BEvent> = Simulation::new(SimConfig {
            seed,
            delay: DelayModel::uniform(1, 10),
            trace_capacity: 0,
            ..SimConfig::default()
        });
        for s in 0..n {
            if s >= n - byz {
                sim.add_process(Box::new(KlmwEcho { pair: None }));
            } else {
                sim.add_process(Box::new(KlmwServer::new()));
            }
        }
        for c in 0..clients {
            sim.add_process(Box::new(KlmwClient::new(n, f, (n + c) as u32)));
        }
        Self {
            sim,
            n,
            f,
            n_clients: clients,
            recorder: HistoryRecorder::new(),
            sys: MwmrLabeling::new(UnboundedLabeling),
            op_budget: 200_000,
        }
    }

    /// Pid of client `i`.
    pub fn client(&self, i: usize) -> ProcessId {
        assert!(i < self.n_clients);
        self.n + i
    }

    fn await_client(&mut self, client: ProcessId) -> Result<BEvent, BaselineError> {
        let mut budget = self.op_budget;
        while budget > 0 {
            let Some(ev) = self.sim.step() else { return Err(BaselineError::Stuck) };
            budget -= 1;
            let (time, pid) = (ev.time, ev.pid);
            for out in ev.outputs {
                self.recorder.complete(pid, time, &out);
                if pid == client {
                    return Ok(out);
                }
            }
        }
        Err(BaselineError::Stuck)
    }

    /// Blocking write.
    pub fn write(&mut self, client: ProcessId, value: Value) -> Result<UTs, BaselineError> {
        self.recorder.begin(client, OpKind::Write, self.sim.now() + 1);
        self.sim.inject(client, Msg::InvokeWrite { value });
        match self.await_client(client)? {
            ClientEvent::WriteDone { ts, .. } => Ok(ts),
            _ => Err(BaselineError::Stuck),
        }
    }

    /// Blocking read.
    pub fn read(&mut self, client: ProcessId) -> Result<(Value, UTs), BaselineError> {
        self.recorder.begin(client, OpKind::Read, self.sim.now() + 1);
        self.sim.inject(client, Msg::InvokeRead);
        match self.await_client(client)? {
            ClientEvent::ReadDone { value, ts, .. } => Ok((value, ts)),
            _ => Err(BaselineError::Stuck),
        }
    }

    /// Poison server `idx`'s timestamp to the near-maximal pair `(value,
    /// u64::MAX − 1)` — the transient fault of E6 — and optionally make the
    /// Byzantine echo servers collude on the same pair.
    pub fn poison(&mut self, idx: usize, value: Value, collude: bool) {
        let pair = (value, UTs::new(u64::MAX - 1, u32::MAX));
        if let Some(any) = self.sim.process_mut(idx).as_any_mut() {
            if let Some(srv) = any.downcast_mut::<KlmwServer>() {
                srv.value = pair.0;
                srv.ts = pair.1.clone();
            }
        }
        if collude {
            for s in 0..self.n {
                if let Some(any) = self.sim.process_mut(s).as_any_mut() {
                    if let Some(echo) = any.downcast_mut::<KlmwEcho>() {
                        echo.pair = Some(pair.clone());
                    }
                }
            }
        }
    }

    /// Check the recorded history against MWMR regularity.
    pub fn check_history(&self) -> Result<(), Vec<RegularityError>> {
        self.recorder.check(&self.sys)
    }

    /// Messages sent so far (for E7 cost accounting).
    pub fn messages_sent(&self) -> u64 {
        self.sim.metrics().messages_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_roundtrip_works() {
        let mut c = KlmwCluster::new(1, 2, 0, 1);
        let w = c.client(0);
        c.write(w, 5).unwrap();
        let (v, _) = c.read(c.client(1)).unwrap();
        assert_eq!(v, 5);
        assert!(c.check_history().is_ok());
    }

    #[test]
    fn tolerates_silent_byzantine_fault_free_state() {
        // One echo server with no script = effectively silent Byzantine.
        let mut c = KlmwCluster::new(1, 2, 1, 2);
        let w = c.client(0);
        c.write(w, 5).unwrap();
        let (v, _) = c.read(c.client(1)).unwrap();
        assert_eq!(v, 5);
        assert!(c.check_history().is_ok());
    }

    #[test]
    fn sequential_writes_read_latest() {
        let mut c = KlmwCluster::new(1, 2, 0, 3);
        let w = c.client(0);
        for v in 1..=8 {
            c.write(w, v).unwrap();
        }
        let (v, _) = c.read(c.client(1)).unwrap();
        assert_eq!(v, 8);
        assert!(c.check_history().is_ok());
    }

    #[test]
    fn poisoned_timestamp_locks_out_writes() {
        let mut c = KlmwCluster::new(1, 2, 0, 4);
        let w = c.client(0);
        c.write(w, 1).unwrap();
        c.poison(0, 666, false);
        // Phase 1 may or may not include the poisoned server; with
        // saturating max+1 the write cannot be adopted by it, and when its
        // ts wins phase 1, no server adopts => some write eventually
        // sticks. Run several writes; at least liveness of reads must
        // degrade or the poisoned pair must persist on server 0.
        for v in 2..=4 {
            let _ = c.write(w, v); // may or may not complete
        }
        let any = c.sim.process_mut(0).as_any_mut().unwrap();
        let srv = any.downcast_mut::<KlmwServer>().unwrap();
        // Schedule-independent invariant: either the poisoned pair was never
        // in a phase-1 quorum and persists untouched, or one write saturated
        // to u64::MAX and the register is frozen there — the label never
        // returns to the healthy range either way.
        assert!(srv.ts.label >= u64::MAX - 1, "poison must lock the label near the top");
        if srv.ts.label == u64::MAX - 1 {
            assert_eq!(srv.value, 666, "undominated poison keeps its value");
        }
    }

    #[test]
    fn poison_saturates_timestamps_and_freezes_the_register() {
        let mut c = KlmwCluster::new(1, 2, 1, 5);
        let w = c.client(0);
        c.write(w, 1).unwrap();
        // Transient fault on one correct server + Byzantine collusion.
        c.poison(0, 666, true);
        // The next write's phase 1 sees the near-maximal timestamp and
        // saturates `max + 1`; the one after that computes the *same*
        // saturated timestamp, so no server adopts it — yet every server
        // still ACKs, so the write "completes" while storing nothing.
        c.write(w, 2).unwrap();
        c.write(w, 3).unwrap();
        // Reads return the frozen value 2 forever: value 3 is lost and
        // the history shows permanent stale-read violations.
        for _ in 0..5 {
            let (v, _) = c.read(c.client(1)).unwrap();
            assert_ne!(v, 3, "the post-saturation write must be lost");
        }
        assert!(c.check_history().is_err(), "history must show violations");
    }
}
