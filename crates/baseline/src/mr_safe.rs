//! A Malkhi–Reiter-style **safe** register over masking quorums — the
//! first related-work system of the paper's Section V: "a simple
//! wait-freedom implementation of a safe register using 5f servers".
//!
//! * `n = 5f` servers; quorums of `q = ⌈(n + 2f + 1) / 2⌉` — any two
//!   quorums intersect in ≥ `2f + 1` servers (a *masking* quorum system),
//!   and `q ≤ n − f` keeps quorums available despite `f` silent servers
//!   (wait-freedom).
//! * **write(v)**: single phase — send `WRITE(v, ts)` with the writer's
//!   monotone (unbounded) timestamp to all, wait for `q` ACKs.
//! * **read()**: query all, wait for `q` replies, return the
//!   highest-timestamp pair vouched for by ≥ `f + 1` servers; if no pair
//!   reaches that bar (only possible under concurrency or corruption) any
//!   return is allowed — *safe* semantics promise nothing to reads
//!   concurrent with writes — so the reader returns the highest-timestamp
//!   pair outright.
//!
//! SWMR only (one writer owns the timestamp counter), one phase each way:
//! the cheapest Byzantine-tolerant point in the E7 cost comparison, paying
//! for it with the weakest semantics ([`check_safety`] only constrains
//! reads that overlap no write).

use std::collections::BTreeMap;

use sbft_core::messages::{ClientEvent, Msg, ValTs, Value};
use sbft_core::spec::{HistoryRecorder, OpKind, OpOutcome};
use sbft_labels::{LabelingSystem, MwmrLabeling, UnboundedLabeling};
use sbft_net::{Automaton, Ctx, DelayModel, ProcessId, SimConfig, Simulation, ENV};

use crate::{USys, UTs};

type BMsg = Msg<UTs>;
type BEvent = ClientEvent<UTs>;

/// A safe-register server: adopt-if-greater, ACK always, reply to reads.
pub struct MrServer {
    sys: USys,
    value: Value,
    ts: UTs,
}

impl MrServer {
    /// Clean server.
    pub fn new() -> Self {
        let sys = MwmrLabeling::new(UnboundedLabeling);
        let ts = sys.genesis();
        Self { sys, value: 0, ts }
    }
}

impl Default for MrServer {
    fn default() -> Self {
        Self::new()
    }
}

impl Automaton<BMsg, BEvent> for MrServer {
    fn on_message(&mut self, from: ProcessId, msg: BMsg, ctx: &mut Ctx<'_, BMsg, BEvent>) {
        if from == ENV {
            return;
        }
        match msg {
            Msg::Write { value, ts } => {
                if self.sys.precedes(&self.ts, &ts) {
                    self.value = value;
                    self.ts = ts.clone();
                }
                ctx.send(from, Msg::WriteAck { ts, ack: true });
            }
            Msg::Read { label } => ctx.send(
                from,
                Msg::Reply { value: self.value, ts: self.ts.clone(), old: [].into(), label },
            ),
            _ => {}
        }
    }
}

enum Phase {
    Idle,
    Writing { value: Value, ts: UTs, acked: BTreeMap<ProcessId, ()> },
    Reading { label: u32, replies: BTreeMap<ProcessId, ValTs<UTs>> },
}

/// The single writer / any reader client.
pub struct MrClient {
    n: usize,
    f: usize,
    writer_id: u32,
    next_ts: u64,
    seq: u32,
    phase: Phase,
}

impl MrClient {
    /// Client for an `n = 5f` masking-quorum system.
    pub fn new(n: usize, f: usize, writer_id: u32) -> Self {
        Self { n, f, writer_id, next_ts: 1, seq: 0, phase: Phase::Idle }
    }

    /// Masking quorum size `⌈(n + 2f + 1) / 2⌉`.
    pub fn quorum(&self) -> usize {
        (self.n + 2 * self.f + 1).div_ceil(2)
    }
}

impl Automaton<BMsg, BEvent> for MrClient {
    fn on_message(&mut self, from: ProcessId, msg: BMsg, ctx: &mut Ctx<'_, BMsg, BEvent>) {
        match msg {
            Msg::InvokeWrite { value } if from == ENV => {
                if matches!(self.phase, Phase::Idle) {
                    let ts = UTs::new(self.next_ts, self.writer_id);
                    self.next_ts += 1;
                    self.phase = Phase::Writing { value, ts: ts.clone(), acked: BTreeMap::new() };
                    ctx.broadcast(0..self.n, Msg::Write { value, ts });
                }
            }
            Msg::InvokeRead if from == ENV => {
                if matches!(self.phase, Phase::Idle) {
                    self.seq = self.seq.wrapping_add(1);
                    self.phase = Phase::Reading { label: self.seq, replies: BTreeMap::new() };
                    ctx.broadcast(0..self.n, Msg::Read { label: self.seq });
                }
            }
            Msg::WriteAck { ts, .. } => {
                let q = self.quorum();
                if let Phase::Writing { value, ts: cur, acked } = &mut self.phase {
                    if from < self.n && &ts == cur {
                        acked.insert(from, ());
                        if acked.len() >= q {
                            let ev = ClientEvent::WriteDone { value: *value, ts: cur.clone() };
                            self.phase = Phase::Idle;
                            ctx.output(ev);
                        }
                    }
                }
            }
            Msg::Reply { value, ts, label, .. } => {
                let q = self.quorum();
                let witness = self.f + 1;
                let mut decided = None;
                if let Phase::Reading { label: cur, replies } = &mut self.phase {
                    if from < self.n && label == *cur {
                        replies.insert(from, (value, ts));
                        if replies.len() >= q {
                            // Highest ts with >= f+1 vouchers; else (safe
                            // semantics: anything goes under concurrency)
                            // the highest ts outright.
                            let mut counts: BTreeMap<&ValTs<UTs>, usize> = BTreeMap::new();
                            for p in replies.values() {
                                *counts.entry(p).or_insert(0) += 1;
                            }
                            let vouched = counts
                                .iter()
                                .filter(|&(_, &c)| c >= witness)
                                .map(|(p, _)| (*p).clone())
                                .max_by(|a, b| a.1.cmp(&b.1));
                            let fallback = replies
                                .values()
                                .max_by(|a, b| a.1.cmp(&b.1))
                                .cloned()
                                .expect("quorum non-empty");
                            decided = Some(vouched.unwrap_or(fallback));
                        }
                    }
                }
                if let Some((v, t)) = decided {
                    self.phase = Phase::Idle;
                    ctx.output(ClientEvent::ReadDone { value: v, ts: t, via_union: false });
                }
            }
            _ => {}
        }
    }
}

/// An assembled safe-register cluster.
pub struct MrCluster {
    /// Underlying simulation.
    pub sim: Simulation<BMsg, BEvent>,
    /// Server count (`5f`).
    pub n: usize,
    n_clients: usize,
    /// History, checked with [`check_safety`].
    pub recorder: HistoryRecorder<UnboundedLabeling>,
    /// Max events per blocking op.
    pub op_budget: u64,
}

impl MrCluster {
    /// `n = 5f` servers (the paper's Section V figure), `clients` clients
    /// (client 0 is the distinguished writer).
    pub fn new(f: usize, clients: usize, seed: u64) -> Self {
        let n = 5 * f;
        let mut sim: Simulation<BMsg, BEvent> = Simulation::new(SimConfig {
            seed,
            delay: DelayModel::uniform(1, 10),
            trace_capacity: 0,
            ..SimConfig::default()
        });
        for _ in 0..n {
            sim.add_process(Box::new(MrServer::new()));
        }
        for c in 0..clients {
            sim.add_process(Box::new(MrClient::new(n, f, (n + c) as u32)));
        }
        Self { sim, n, n_clients: clients, recorder: HistoryRecorder::new(), op_budget: 200_000 }
    }

    /// Pid of client `i`.
    pub fn client(&self, i: usize) -> ProcessId {
        assert!(i < self.n_clients);
        self.n + i
    }

    fn await_client(&mut self, client: ProcessId) -> Option<BEvent> {
        let mut budget = self.op_budget;
        while budget > 0 {
            let ev = self.sim.step()?;
            budget -= 1;
            let (time, pid) = (ev.time, ev.pid);
            for out in ev.outputs {
                self.recorder.complete(pid, time, &out);
                if pid == client {
                    return Some(out);
                }
            }
        }
        None
    }

    /// Blocking write (client 0 is the writer).
    pub fn write(&mut self, client: ProcessId, value: Value) -> Option<UTs> {
        self.recorder.begin_with_intent(client, OpKind::Write, self.sim.now() + 1, Some(value));
        self.sim.inject(client, Msg::InvokeWrite { value });
        match self.await_client(client)? {
            ClientEvent::WriteDone { ts, .. } => Some(ts),
            _ => None,
        }
    }

    /// Blocking read.
    pub fn read(&mut self, client: ProcessId) -> Option<(Value, UTs)> {
        self.recorder.begin(client, OpKind::Read, self.sim.now() + 1);
        self.sim.inject(client, Msg::InvokeRead);
        match self.await_client(client)? {
            ClientEvent::ReadDone { value, ts, .. } => Some((value, ts)),
            _ => None,
        }
    }

    /// Messages sent so far (E7 cost accounting).
    pub fn messages_sent(&self) -> u64 {
        self.sim.metrics().messages_sent
    }
}

/// The **safe**-register condition: every read that overlaps *no* write
/// must return the value of the last completed write before it (or
/// genesis). Reads concurrent with any write are unconstrained.
pub fn check_safety(rec: &HistoryRecorder<UnboundedLabeling>) -> Result<(), Vec<usize>> {
    let ops = rec.ops();
    let mut bad = Vec::new();
    for (ri, r) in ops.iter().enumerate() {
        let Some(OpOutcome::ReadValue { value, .. }) = &r.outcome else { continue };
        let overlaps_write =
            ops.iter().any(|w| w.kind == OpKind::Write && !w.precedes(r) && !r.precedes(w));
        if overlaps_write {
            continue; // safe semantics: unconstrained
        }
        // Last completed write before this read.
        let last = ops
            .iter()
            .filter(|w| w.as_write().is_some() && w.precedes(r))
            .max_by_key(|w| w.returned_at);
        let expected = last.and_then(|w| w.as_write().map(|(v, _)| v)).unwrap_or(0);
        if *value != expected {
            bad.push(ri);
        }
    }
    if bad.is_empty() {
        Ok(())
    } else {
        Err(bad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_arithmetic() {
        let c = MrClient::new(5, 1, 0);
        assert_eq!(c.quorum(), 4); // ⌈(5 + 3)/2⌉ = 4 ≤ n − f = 4
        let c = MrClient::new(10, 2, 0);
        assert_eq!(c.quorum(), 8); // ⌈(10 + 5)/2⌉ = 8 ≤ 8
    }

    #[test]
    fn clean_roundtrip_is_safe() {
        let mut c = MrCluster::new(1, 2, 1);
        let w = c.client(0);
        for v in 1..=6 {
            c.write(w, v).unwrap();
            let (got, _) = c.read(c.client(1)).unwrap();
            assert_eq!(got, v);
        }
        assert!(check_safety(&c.recorder).is_ok());
    }

    #[test]
    fn survives_f_silent_servers() {
        let mut c = MrCluster::new(1, 2, 2);
        c.sim.crash(0); // one unresponsive server
        let w = c.client(0);
        c.write(w, 9).unwrap();
        let (got, _) = c.read(c.client(1)).unwrap();
        assert_eq!(got, 9);
        assert!(check_safety(&c.recorder).is_ok());
    }

    #[test]
    fn safety_checker_flags_quiet_interval_mismatch() {
        let mut rec: HistoryRecorder<UnboundedLabeling> = HistoryRecorder::new();
        let sys: USys = MwmrLabeling::new(UnboundedLabeling);
        rec.begin_with_intent(10, OpKind::Write, 0, Some(5));
        rec.complete(10, 10, &ClientEvent::WriteDone { value: 5, ts: sys.genesis() });
        rec.begin(11, OpKind::Read, 20);
        rec.complete(
            11,
            30,
            &ClientEvent::ReadDone { value: 99, ts: sys.genesis(), via_union: false },
        );
        assert!(check_safety(&rec).is_err());
    }

    #[test]
    fn safety_checker_permits_anything_under_concurrency() {
        let mut rec: HistoryRecorder<UnboundedLabeling> = HistoryRecorder::new();
        let sys: USys = MwmrLabeling::new(UnboundedLabeling);
        rec.begin_with_intent(10, OpKind::Write, 0, Some(5)); // never completes
        rec.begin(11, OpKind::Read, 20);
        rec.complete(
            11,
            30,
            &ClientEvent::ReadDone { value: 12345, ts: sys.genesis(), via_union: false },
        );
        assert!(check_safety(&rec).is_ok());
    }
}
