//! # sbft-baseline — classical (non-stabilizing) register baselines
//!
//! The paper's related-work section (Section V) positions its contribution
//! against classical BFT register constructions that assume a *clean*
//! initial state. This crate implements two of them on the same simulator
//! substrate, so that experiments can compare like with like:
//!
//! * [`klmw`] — a Kanjani–Lee–Maguffee–Welch-style **BFT MWMR regular
//!   register** with `n = 3f + 1` servers and *unbounded* integer
//!   timestamps. Optimal resilience in the classical model — and the
//!   protocol experiment E6 shows failing permanently under transient
//!   timestamp corruption (a poisoned `u64::MAX` timestamp can never be
//!   dominated, and with a colluding Byzantine echo it reaches the `f + 1`
//!   witness threshold forever).
//! * [`abd`] — an Attiya–Bar-Noy–Dolev-style **crash-only** majority
//!   register (`n = 2f + 1`), the cheapest comparator in the quorum-cost
//!   experiment E7. It has no Byzantine defence at all.
//! * [`mr_safe`] — a Malkhi–Reiter-style **safe** register over masking
//!   quorums (`n = 5f`, single-phase operations): Byzantine-tolerant but
//!   with the weakest semantics in Lamport's hierarchy, completing the
//!   related-work line-up (safe → regular → atomic).
//!
//! Both reuse the wire message enum of `sbft-core` (with
//! `MwmrTimestamp<u64>` timestamps) and the same history recorder, so the
//! regularity checker applies unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abd;
pub mod klmw;
pub mod mr_safe;

pub use abd::AbdCluster;
pub use klmw::KlmwCluster;
pub use mr_safe::MrCluster;

use sbft_labels::{MwmrTimestamp, UnboundedLabeling};

/// Timestamps used by both baselines: unbounded integers + writer id.
pub type UTs = MwmrTimestamp<u64>;

/// The MWMR labeling system over unbounded timestamps.
pub type USys = sbft_labels::MwmrLabeling<UnboundedLabeling>;
