//! Property-based tests for the labeling systems: the algebraic guarantees
//! of Definition 2 (k-SBLS) must hold for *arbitrary* (adversarial) inputs,
//! because in the self-stabilizing model every label may originate from a
//! corrupted state.

use proptest::prelude::*;
use sbft_labels::{
    BoundedLabel, BoundedLabeling, LabelingSystem, MwmrLabeling, MwmrTimestamp, ReadLabelPool,
    UnboundedLabeling,
};

/// Strategy: an arbitrary (unsanitized) bounded label.
fn raw_label() -> impl Strategy<Value = BoundedLabel> {
    (any::<u32>(), proptest::collection::vec(any::<u32>(), 0..12))
        .prop_map(|(sting, anti)| BoundedLabel::new(sting, anti))
}

proptest! {
    #[test]
    fn sanitize_idempotent(k in 2usize..9, l in raw_label()) {
        let sys = BoundedLabeling::new(k);
        let once = sys.sanitize(l);
        prop_assert_eq!(once.clone(), sys.sanitize(once));
    }

    #[test]
    fn sanitize_establishes_invariants(k in 2usize..9, l in raw_label()) {
        let sys = BoundedLabeling::new(k);
        let c = sys.sanitize(l);
        prop_assert!(c.sting < sys.domain());
        prop_assert_eq!(c.antistings.len(), k);
        prop_assert!(c.antistings.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(c.antistings.iter().all(|&v| v < sys.domain()));
        prop_assert!(!c.has_antisting(c.sting));
    }

    /// Definition 2: ∀ L' with |L'| ≤ k, ∀ ℓ ∈ L', ℓ ≺ next(L').
    #[test]
    fn k_dominance(k in 2usize..9, seed in proptest::collection::vec(raw_label(), 0..8)) {
        let sys = BoundedLabeling::new(k);
        let seen: Vec<BoundedLabel> = seed
            .into_iter()
            .take(k)
            .map(|l| sys.sanitize(l))
            .collect();
        let nl = sys.next(&seen);
        // next() must itself be well-formed...
        prop_assert_eq!(nl.clone(), sys.sanitize(nl.clone()));
        // ...and dominate every input.
        for l in &seen {
            prop_assert!(sys.precedes(l, &nl), "{:?} must precede {:?}", l, nl);
        }
    }

    /// Antisymmetry + irreflexivity over arbitrary sanitized pairs.
    #[test]
    fn antisymmetric_irreflexive(k in 2usize..9, a in raw_label(), b in raw_label()) {
        let sys = BoundedLabeling::new(k);
        let a = sys.sanitize(a);
        let b = sys.sanitize(b);
        prop_assert!(!(sys.precedes(&a, &b) && sys.precedes(&b, &a)));
        prop_assert!(!sys.precedes(&a, &a));
    }

    /// The MWMR composite order totally orders any two distinct timestamps
    /// (Lemma 8: concurrent or consecutive writes can be totally ordered).
    #[test]
    fn mwmr_total_on_distinct(
        a in raw_label(), b in raw_label(),
        wa in 0u32..8, wb in 0u32..8,
    ) {
        let base = BoundedLabeling::new(4);
        let sys = MwmrLabeling::new(base.clone());
        let ta = MwmrTimestamp::new(base.sanitize(a), wa);
        let tb = MwmrTimestamp::new(base.sanitize(b), wb);
        if ta != tb {
            prop_assert!(sys.precedes(&ta, &tb) ^ sys.precedes(&tb, &ta));
        } else {
            prop_assert!(!sys.precedes(&ta, &tb));
        }
    }

    /// maximal() never returns an element preceded by another input
    /// (unless a cycle forced the fallback-to-all case).
    #[test]
    fn maximal_sound(k in 2usize..7, seed in proptest::collection::vec(raw_label(), 1..10)) {
        let sys = BoundedLabeling::new(k);
        let labels: Vec<BoundedLabel> = seed.into_iter().map(|l| sys.sanitize(l)).collect();
        let maxima = sys.maximal(&labels);
        prop_assert!(!maxima.is_empty());
        let strict = labels
            .iter()
            .filter(|a| !labels.iter().any(|b| sys.precedes(a, b)))
            .count();
        if strict > 0 {
            for m in &maxima {
                prop_assert!(!labels.iter().any(|b| sys.precedes(m, b)));
            }
        }
    }

    /// Unbounded timestamps satisfy dominance only absent corruption:
    /// next() dominates any set not containing u64::MAX.
    #[test]
    fn unbounded_dominance_without_poison(seen in proptest::collection::vec(0u64..u64::MAX, 0..16)) {
        let sys = UnboundedLabeling;
        let nl = sys.next(&seen);
        for l in &seen {
            prop_assert!(sys.precedes(l, &nl));
        }
    }

    /// Read-label pool: candidate() never returns the last label and adopts
    /// stay in-domain under arbitrary interleavings of marks/clears.
    #[test]
    fn pool_candidate_valid(
        n in 1usize..8, k in 2usize..6,
        ops in proptest::collection::vec((any::<u16>(), any::<u16>(), any::<bool>()), 0..64),
    ) {
        let mut p = ReadLabelPool::new(n, k);
        for (srv, lbl, set) in ops {
            let srv = srv as usize % (n + 2); // occasionally out of range
            if set { p.mark_pending(srv, lbl as u32); } else { p.clear_pending(srv, lbl as u32); }
            let c = p.candidate();
            prop_assert!((c as usize) < k);
            prop_assert_ne!(Some(c), p.last());
            p.adopt(c);
        }
    }

    /// Pool pending-count equals the number of clear_servers complement.
    #[test]
    fn pool_counts_consistent(
        n in 1usize..8, k in 2usize..6,
        marks in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..40),
    ) {
        let mut p = ReadLabelPool::new(n, k);
        for (srv, lbl) in marks {
            p.mark_pending(srv as usize % n, lbl as u32);
        }
        for l in 0..k as u32 {
            prop_assert_eq!(p.pending_count(l) + p.clear_servers(l).len(), n);
        }
    }
}

/// Stress: a long chain of next() over a small domain must keep dominance at
/// every step even after the label space wraps around many times.
#[test]
fn long_chain_wraparound_dominance() {
    let sys = BoundedLabeling::new(3); // tiny domain K = 13
    let mut cur = sys.genesis();
    for _ in 0..10_000 {
        let nl = sys.next(std::slice::from_ref(&cur));
        assert!(sys.precedes(&cur, &nl));
        cur = nl;
    }
}

/// Stress: dominance over rolling windows (simulating quorum replies).
#[test]
fn rolling_window_dominance() {
    let sys = BoundedLabeling::new(6);
    let mut window: Vec<BoundedLabel> = vec![sys.genesis()];
    for i in 0..2_000 {
        let nl = sys.next(&window);
        for l in &window {
            assert!(sys.precedes(l, &nl), "step {i}: {l:?} !< {nl:?}");
        }
        window.push(nl);
        if window.len() > 6 {
            window.remove(0);
        }
    }
}
