//! Multi-writer timestamps: `(label, writer-id)` pairs (Section IV-D).
//!
//! The MWMR extension of the paper associates each written value with a
//! tuple of a bounded label and the writer's identity. Lemma 8 shows that
//! consecutive writes are ordered by the labels themselves (the second
//! writer's `next()` includes the first writer's label via quorum
//! intersection), while *concurrent* writes — whose labels may be mutually
//! incomparable — are totally ordered by a deterministic tie-break on the
//! writer identity. This module packages that composite order so that the
//! register protocol and the weighted-timestamp-graph machinery can treat
//! SWMR and MWMR timestamps uniformly.

use std::fmt;

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::system::LabelingSystem;

/// Identity of a writer client. `0` is reserved for the genesis timestamp.
pub type WriterId = u32;

/// A composite multi-writer timestamp.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MwmrTimestamp<L> {
    /// The underlying (bounded or unbounded) label.
    pub label: L,
    /// The writer that produced this timestamp.
    pub writer: WriterId,
}

impl<L: fmt::Debug> fmt::Debug for MwmrTimestamp<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}@w{}", self.label, self.writer)
    }
}

impl<L> MwmrTimestamp<L> {
    /// Pair a label with its writer.
    pub fn new(label: L, writer: WriterId) -> Self {
        Self { label, writer }
    }
}

/// A labeling system over composite `(label, writer)` timestamps, layered on
/// any base [`LabelingSystem`].
///
/// Precedence: label precedence decides when it is conclusive; otherwise
/// (equal or incomparable labels) the writer identity — and, as a final
/// deterministic residue, the label's structural order — breaks the tie.
/// Antisymmetry is preserved: the tie-break is itself a strict total order
/// and is only consulted when label precedence is silent in both directions.
#[derive(Clone, Debug)]
pub struct MwmrLabeling<S> {
    base: S,
}

impl<S: LabelingSystem> MwmrLabeling<S> {
    /// Wrap a base labeling system.
    pub fn new(base: S) -> Self {
        Self { base }
    }

    /// Access the underlying single-writer labeling system.
    pub fn base(&self) -> &S {
        &self.base
    }

    /// `next()` for a specific writer: dominate the seen labels and stamp
    /// the writer's identity.
    pub fn next_for(
        &self,
        writer: WriterId,
        seen: &[MwmrTimestamp<S::Label>],
    ) -> MwmrTimestamp<S::Label> {
        let labels: Vec<S::Label> = seen.iter().map(|t| t.label.clone()).collect();
        MwmrTimestamp::new(self.base.next(&labels), writer)
    }
}

impl<S: LabelingSystem> LabelingSystem for MwmrLabeling<S> {
    type Label = MwmrTimestamp<S::Label>;

    fn k(&self) -> usize {
        self.base.k()
    }

    fn precedes(&self, a: &Self::Label, b: &Self::Label) -> bool {
        if a == b {
            return false;
        }
        if self.base.precedes(&a.label, &b.label) {
            return true;
        }
        if self.base.precedes(&b.label, &a.label) {
            return false;
        }
        // Labels equal or incomparable: deterministic total tie-break.
        (a.writer, &a.label) < (b.writer, &b.label)
    }

    fn next(&self, seen: &[Self::Label]) -> Self::Label {
        // Writer-less next (writer 0); protocol code uses `next_for`.
        self.next_for(0, seen)
    }

    fn sanitize(&self, raw: Self::Label) -> Self::Label {
        MwmrTimestamp::new(self.base.sanitize(raw.label), raw.writer)
    }

    fn genesis(&self) -> Self::Label {
        MwmrTimestamp::new(self.base.genesis(), 0)
    }

    fn arbitrary(&self, rng: &mut StdRng) -> Self::Label {
        MwmrTimestamp::new(self.base.arbitrary(rng), rng.gen::<WriterId>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded::BoundedLabeling;
    use crate::unbounded::UnboundedLabeling;

    #[test]
    fn label_precedence_dominates_writer_tiebreak() {
        let s = MwmrLabeling::new(UnboundedLabeling);
        let a = MwmrTimestamp::new(1u64, 99);
        let b = MwmrTimestamp::new(2u64, 1);
        assert!(s.precedes(&a, &b));
        assert!(!s.precedes(&b, &a));
    }

    #[test]
    fn equal_labels_break_by_writer() {
        let s = MwmrLabeling::new(UnboundedLabeling);
        let a = MwmrTimestamp::new(5u64, 1);
        let b = MwmrTimestamp::new(5u64, 2);
        assert!(s.precedes(&a, &b));
        assert!(!s.precedes(&b, &a));
    }

    #[test]
    fn incomparable_bounded_labels_totally_ordered() {
        let base = BoundedLabeling::new(3);
        let s = MwmrLabeling::new(base.clone());
        // Mutually non-dominating by construction: neither sting appears in
        // the other's antistings.
        let x = base.sanitize(crate::bounded::BoundedLabel::new(5, vec![0, 1, 2]));
        let y = base.sanitize(crate::bounded::BoundedLabel::new(6, vec![0, 1, 3]));
        assert!(base.incomparable(&x, &y));
        let a = MwmrTimestamp::new(x, 7);
        let b = MwmrTimestamp::new(y, 7);
        // Exactly one direction holds.
        assert!(s.precedes(&a, &b) ^ s.precedes(&b, &a));
    }

    #[test]
    fn next_for_dominates_and_stamps_writer() {
        let s = MwmrLabeling::new(BoundedLabeling::new(4));
        let g = s.genesis();
        let t = s.next_for(3, std::slice::from_ref(&g));
        assert_eq!(t.writer, 3);
        assert!(s.precedes(&g, &t));
    }

    #[test]
    fn irreflexive() {
        let s = MwmrLabeling::new(UnboundedLabeling);
        let a = MwmrTimestamp::new(9u64, 4);
        assert!(!s.precedes(&a, &a));
    }

    #[test]
    fn sanitize_passes_through_writer() {
        let s = MwmrLabeling::new(BoundedLabeling::new(3));
        let raw =
            MwmrTimestamp::new(crate::bounded::BoundedLabel::new(10_000, vec![1, 1, 1, 1, 1]), 42);
        let clean = s.sanitize(raw);
        assert_eq!(clean.writer, 42);
        assert_eq!(clean.label, s.base().sanitize(clean.label.clone()));
    }
}
