//! The [`LabelingSystem`] abstraction.
//!
//! The paper (Section IV-A, after Israeli & Li) characterizes a labeling
//! system as a finite or infinite label set equipped with an antisymmetric
//! binary precedence relation and a function computing a label that dominates
//! a given set of labels. Both the stabilizing register (bounded labels) and
//! the baseline registers (unbounded integers) are generic over this trait,
//! so the *same* protocol code can be instantiated with either and the effect
//! of boundedness measured in isolation (experiment E6).

use std::fmt::Debug;
use std::hash::Hash;

use rand::rngs::StdRng;
use sbft_storage::Codec;

/// A labeling (timestamping) system: a label domain, an antisymmetric
/// precedence relation `≺`, and a dominating-label generator `next()`.
///
/// Implementations must guarantee, for any well-formed labels `a`, `b`:
///
/// * **Antisymmetry**: `precedes(a, b)` and `precedes(b, a)` never both hold.
/// * **Irreflexivity**: `precedes(a, a)` is false.
/// * **k-dominance**: for any slice `seen` with `seen.len() <= k()`,
///   `precedes(l, &next(seen))` holds for every `l` in `seen` — even when
///   the labels in `seen` are adversarially chosen (after [`Self::sanitize`]).
///
/// Transitivity is **not** required; the bounded system is deliberately
/// non-transitive (a transitive antisymmetric relation over a finite set with
/// the k-dominance property cannot exist, by following a dominating chain
/// around the finite domain).
pub trait LabelingSystem: Clone + Debug + Send + Sync + 'static {
    /// The label type produced and compared by this system. The [`Codec`]
    /// bound lets server state containing labels persist to stable storage
    /// (see `sbft-storage`); decoding tolerates ill-formed labels, which
    /// [`Self::sanitize`] repairs on use.
    type Label: Clone + Eq + Hash + Ord + Debug + Send + Sync + 'static + Codec;

    /// Maximum size of a label set that [`Self::next`] is guaranteed to
    /// dominate. Unbounded systems return `usize::MAX`.
    fn k(&self) -> usize;

    /// Whether `a ≺ b` in this system's precedence relation.
    fn precedes(&self, a: &Self::Label, b: &Self::Label) -> bool;

    /// Compute a label dominating every label in `seen`.
    ///
    /// If `seen.len() > k()` the result dominates an arbitrary subset of `k`
    /// of them (callers are responsible for respecting `k`; the register
    /// protocol sizes `k` so that a quorum of replies always fits).
    fn next(&self, seen: &[Self::Label]) -> Self::Label;

    /// Repair an arbitrarily corrupted label into a well-formed one.
    ///
    /// Transient faults may set local variables to arbitrary bit patterns;
    /// every label read from (potentially corrupted) state or received from
    /// the (potentially corrupted) network must pass through `sanitize`
    /// before being used, so that the algebraic guarantees above apply.
    fn sanitize(&self, raw: Self::Label) -> Self::Label;

    /// The canonical initial ("zero") label for freshly booted processes.
    fn genesis(&self) -> Self::Label;

    /// Produce an arbitrary — possibly ill-formed — label, as a transient
    /// fault would: the result models random memory content and must be
    /// passed through [`Self::sanitize`] before algebraic use. Fault
    /// injection uses this to scramble local states and forge in-transit
    /// garbage messages.
    fn arbitrary(&self, rng: &mut StdRng) -> Self::Label;

    /// True when neither `a ≺ b` nor `b ≺ a` and `a != b`.
    fn incomparable(&self, a: &Self::Label, b: &Self::Label) -> bool {
        a != b && !self.precedes(a, b) && !self.precedes(b, a)
    }

    /// Select the maximal elements of `labels` under `≺`: those not preceded
    /// by any other element. With a non-transitive relation there may be
    /// several, or (in a precedence cycle) none — in which case all inputs
    /// are returned so callers can apply a deterministic tie-break.
    fn maximal<'a>(&self, labels: &'a [Self::Label]) -> Vec<&'a Self::Label> {
        let mut out: Vec<&'a Self::Label> =
            labels.iter().filter(|a| !labels.iter().any(|b| self.precedes(a, b))).collect();
        if out.is_empty() {
            out = labels.iter().collect();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unbounded::UnboundedLabeling;

    #[test]
    fn maximal_of_unbounded_is_max() {
        let sys = UnboundedLabeling;
        let labels = vec![3u64, 9, 1, 9, 4];
        let m = sys.maximal(&labels);
        assert!(m.iter().all(|&&l| l == 9));
    }

    #[test]
    fn maximal_of_empty_is_empty() {
        let sys = UnboundedLabeling;
        let m = sys.maximal(&[]);
        assert!(m.is_empty());
    }

    #[test]
    fn incomparable_is_false_for_totally_ordered() {
        let sys = UnboundedLabeling;
        assert!(!sys.incomparable(&1, &2));
        assert!(!sys.incomparable(&2, &1));
        assert!(!sys.incomparable(&2, &2));
    }
}
