//! Unbounded integer timestamps — the comparator labeling system used by
//! the classical (non-stabilizing) BFT register baselines of Section V.
//!
//! `next()` is `max + 1`; precedence is plain `<`. This system is totally
//! ordered and transitive, but it is **not** stabilizing: `sanitize` cannot
//! repair a poisoned `u64::MAX` timestamp, after which `next()` saturates and
//! dominance fails. Experiment E6 measures exactly this failure mode against
//! the bounded scheme.

use rand::rngs::StdRng;
use rand::Rng;

use crate::system::LabelingSystem;

/// An unbounded timestamp (alias kept for API symmetry with `BoundedLabel`).
pub type UnboundedTs = u64;

/// The trivial unbounded labeling system over `u64`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnboundedLabeling;

impl LabelingSystem for UnboundedLabeling {
    type Label = UnboundedTs;

    fn k(&self) -> usize {
        usize::MAX
    }

    #[inline]
    fn precedes(&self, a: &u64, b: &u64) -> bool {
        a < b
    }

    fn next(&self, seen: &[u64]) -> u64 {
        // Saturating: once a corrupted u64::MAX enters the system, dominance
        // is permanently lost — the defect the bounded scheme removes.
        seen.iter().copied().max().unwrap_or(0).saturating_add(1)
    }

    fn sanitize(&self, raw: u64) -> u64 {
        raw // every bit pattern is a "valid" timestamp; nothing to repair
    }

    fn genesis(&self) -> u64 {
        0
    }

    fn arbitrary(&self, rng: &mut StdRng) -> u64 {
        // Uniform over the full domain: with high probability a corrupted
        // unbounded timestamp is astronomically larger than any honest one,
        // which is precisely the poisoning failure experiment E6 measures.
        rng.gen::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_is_max_plus_one() {
        let s = UnboundedLabeling;
        assert_eq!(s.next(&[3, 9, 1]), 10);
        assert_eq!(s.next(&[]), 1);
    }

    #[test]
    fn poisoned_max_defeats_dominance() {
        // The stabilization failure the paper motivates: a corrupted maximal
        // timestamp can never be dominated.
        let s = UnboundedLabeling;
        let poisoned = u64::MAX;
        let nl = s.next(&[poisoned]);
        assert!(
            !s.precedes(&poisoned, &nl),
            "unbounded next() cannot dominate a poisoned max timestamp"
        );
    }

    #[test]
    fn total_order() {
        let s = UnboundedLabeling;
        assert!(s.precedes(&1, &2));
        assert!(!s.precedes(&2, &1));
        assert!(!s.incomparable(&5, &7));
    }

    #[test]
    fn genesis_precedes_first_next() {
        let s = UnboundedLabeling;
        let g = s.genesis();
        assert!(s.precedes(&g, &s.next(&[g])));
    }
}
