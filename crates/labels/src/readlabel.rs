//! Bounded read-label pool — the bookkeeping behind `find_read_label()`
//! (Figure 3 of the paper).
//!
//! Each client owns a *finite* pool of `k_r` read labels used to match
//! `REPLY` messages to the `read()` operation that solicited them. Because
//! labels are recycled, the client tracks, per server and per label, whether
//! that server may still have an in-flight message carrying the label (the
//! `recent_labels` `n × k_r` boolean matrix of the paper). A label is safe to
//! reuse with respect to a server once that server has answered — with a
//! `REPLY` or a `FLUSH_ACK` reflected over the same FIFO channel — every
//! message the client ever tagged with it.
//!
//! The pool itself is pure bookkeeping; the FLUSH round-trip state machine
//! lives in `sbft-core::findlabel`.

use serde::{Deserialize, Serialize};

/// A read-operation label: an index into the client's bounded pool.
pub type ReadLabel = u32;

/// The `recent_labels` matrix plus label-selection policy.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadLabelPool {
    n: usize,
    k: usize,
    last: Option<ReadLabel>,
    /// `pending[server][label]` — true while `server` may still be
    /// processing a message tagged with `label` (matrix entry = 1).
    pending: Vec<Vec<bool>>,
    /// Cumulative count of label reuses (label chosen more than once),
    /// reported by experiment E5.
    reuses: u64,
    uses: Vec<u64>,
}

impl ReadLabelPool {
    /// A pool of `k` labels tracked against `n` servers. Requires `k ≥ 2`
    /// so a fresh label distinct from the last used one always exists.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k >= 2, "read-label pool needs k >= 2, got {k}");
        assert!(n >= 1, "read-label pool needs at least one server");
        Self { n, k, last: None, pending: vec![vec![false; k]; n], reuses: 0, uses: vec![0; k] }
    }

    /// Number of servers tracked.
    pub fn servers(&self) -> usize {
        self.n
    }

    /// Pool size `k_r`.
    pub fn pool_size(&self) -> usize {
        self.k
    }

    /// The label used by the previous `read()`, if any.
    pub fn last(&self) -> Option<ReadLabel> {
        self.last
    }

    /// Sanitize a label received from the network or read from possibly
    /// corrupted state into the pool's domain.
    #[inline]
    pub fn sanitize(&self, raw: ReadLabel) -> ReadLabel {
        raw % self.k as u32
    }

    /// Pick the candidate label for the next `read()`: a label different
    /// from the last one used (Figure 3a line 01), preferring the label
    /// with the fewest pending entries so the FLUSH wait is shortest.
    /// Deterministic: ties break toward the smallest label index.
    pub fn candidate(&self) -> ReadLabel {
        (0..self.k as u32)
            .filter(|&l| Some(l) != self.last)
            .min_by_key(|&l| (self.pending_count(l), l))
            .expect("k >= 2 guarantees a candidate distinct from last")
    }

    /// Record that the current operation adopted `label` (updates `last`
    /// and the reuse statistics).
    pub fn adopt(&mut self, label: ReadLabel) {
        let label = self.sanitize(label);
        self.last = Some(label);
        self.uses[label as usize] += 1;
        if self.uses[label as usize] > 1 {
            self.reuses += 1;
        }
    }

    /// Matrix entry set to 1: `server` was sent a message tagged `label`.
    pub fn mark_pending(&mut self, server: usize, label: ReadLabel) {
        let label = self.sanitize(label);
        if server < self.n {
            self.pending[server][label as usize] = true;
        }
    }

    /// Matrix entry cleared: `server` answered a message tagged `label`
    /// (REPLY, Figure 2a line 27, or FLUSH_ACK, Figure 3a line 12).
    pub fn clear_pending(&mut self, server: usize, label: ReadLabel) {
        let label = self.sanitize(label);
        if server < self.n {
            self.pending[server][label as usize] = false;
        }
    }

    /// Whether `server` may still hold an in-flight message tagged `label`.
    pub fn is_pending(&self, server: usize, label: ReadLabel) -> bool {
        let label = self.sanitize(label);
        server < self.n && self.pending[server][label as usize]
    }

    /// Number of servers with a pending entry for `label` (the column sum
    /// the Figure 3a line 06 wait condition inspects).
    pub fn pending_count(&self, label: ReadLabel) -> usize {
        let label = self.sanitize(label) as usize;
        self.pending.iter().filter(|row| row[label]).count()
    }

    /// Servers whose column entry for `label` is clear — the candidates for
    /// the `safe` set of the current read.
    pub fn clear_servers(&self, label: ReadLabel) -> Vec<usize> {
        let label = self.sanitize(label) as usize;
        (0..self.n).filter(|&s| !self.pending[s][label]).collect()
    }

    /// Total label reuses so far (experiment E5 statistic).
    pub fn reuse_count(&self) -> u64 {
        self.reuses
    }

    /// Per-label use counts (experiment E5 statistic).
    pub fn use_histogram(&self) -> &[u64] {
        &self.uses
    }

    /// Overwrite the matrix with arbitrary values — models a transient
    /// fault hitting the client's local state. `bits` is consumed
    /// row-major; missing bits default to `false`.
    pub fn corrupt_with(&mut self, mut bits: impl Iterator<Item = bool>) {
        for row in &mut self.pending {
            for cell in row.iter_mut() {
                *cell = bits.next().unwrap_or(false);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_avoids_last() {
        let mut p = ReadLabelPool::new(4, 3);
        let c1 = p.candidate();
        p.adopt(c1);
        let c2 = p.candidate();
        assert_ne!(c1, c2);
        p.adopt(c2);
        assert_ne!(p.candidate(), c2);
    }

    #[test]
    fn candidate_prefers_least_pending() {
        let mut p = ReadLabelPool::new(4, 3);
        p.adopt(2); // last = 2, so candidates are {0, 1}
        p.mark_pending(0, 0);
        p.mark_pending(1, 0);
        assert_eq!(p.candidate(), 1);
    }

    #[test]
    fn pending_column_sum() {
        let mut p = ReadLabelPool::new(5, 2);
        p.mark_pending(0, 1);
        p.mark_pending(3, 1);
        p.mark_pending(3, 0);
        assert_eq!(p.pending_count(1), 2);
        assert_eq!(p.pending_count(0), 1);
        p.clear_pending(3, 1);
        assert_eq!(p.pending_count(1), 1);
        assert_eq!(p.clear_servers(1), vec![1, 2, 3, 4]);
    }

    #[test]
    fn sanitize_wraps_labels() {
        let p = ReadLabelPool::new(3, 4);
        assert_eq!(p.sanitize(7), 3);
        let mut p2 = p.clone();
        p2.mark_pending(0, 9); // 9 % 4 == 1
        assert!(p2.is_pending(0, 1));
    }

    #[test]
    fn out_of_range_server_is_ignored() {
        let mut p = ReadLabelPool::new(2, 2);
        p.mark_pending(99, 0);
        assert_eq!(p.pending_count(0), 0);
        assert!(!p.is_pending(99, 0));
    }

    #[test]
    fn reuse_counting() {
        let mut p = ReadLabelPool::new(2, 2);
        p.adopt(0);
        p.adopt(1);
        p.adopt(0);
        assert_eq!(p.reuse_count(), 1);
        assert_eq!(p.use_histogram(), &[2, 1]);
    }

    #[test]
    fn corruption_then_recovery_via_clears() {
        let mut p = ReadLabelPool::new(3, 2);
        p.corrupt_with(std::iter::repeat(true));
        assert_eq!(p.pending_count(0), 3);
        assert_eq!(p.pending_count(1), 3);
        // FLUSH_ACKs from every server clear the columns again.
        for s in 0..3 {
            p.clear_pending(s, 0);
            p.clear_pending(s, 1);
        }
        assert_eq!(p.pending_count(0), 0);
        assert_eq!(p.clear_servers(1).len(), 3);
    }

    #[test]
    #[should_panic]
    fn pool_of_one_label_rejected() {
        ReadLabelPool::new(3, 1);
    }
}
