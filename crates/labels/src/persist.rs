//! Byte codecs for label types (durability support).
//!
//! Server state persisted to stable storage contains timestamps, so every
//! label type must round-trip through `sbft-storage`'s [`Codec`]. Decoding
//! is deliberately *lenient about well-formedness*: a decoded
//! [`BoundedLabel`] may be ill-formed (wrong antistings count, out-of-domain
//! values) exactly like one read from transiently-corrupted memory — the
//! stabilization machinery sanitizes labels on use, so recovery does not
//! need to. Decoding only fails on *structurally* unreadable bytes.

use sbft_storage::{ByteReader, Codec};

use crate::bounded::BoundedLabel;
use crate::mwmr::MwmrTimestamp;

impl Codec for BoundedLabel {
    fn encode(&self, out: &mut Vec<u8>) {
        self.sting.encode(out);
        self.antistings.encode(out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        let sting = u32::decode(r)?;
        let antistings = Vec::<u32>::decode(r)?;
        // No well-formedness check: an ill-formed label is legal arbitrary
        // state, repaired by `BoundedLabeling::sanitize` when used.
        Some(BoundedLabel { sting, antistings })
    }
}

impl<L: Codec> Codec for MwmrTimestamp<L> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.label.encode(out);
        self.writer.encode(out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        let label = L::decode(r)?;
        let writer = u32::decode(r)?;
        Some(MwmrTimestamp { label, writer })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded::BoundedLabeling;
    use crate::system::LabelingSystem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bounded_label_round_trips() {
        let sys = BoundedLabeling::new(4);
        let l = sys.next(&[sys.genesis()]);
        assert_eq!(BoundedLabel::from_bytes(&l.to_bytes()), Some(l));
    }

    #[test]
    fn arbitrary_ill_formed_labels_still_round_trip() {
        let sys = BoundedLabeling::new(3);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let l = sys.arbitrary(&mut rng);
            assert_eq!(BoundedLabel::from_bytes(&l.to_bytes()), Some(l));
        }
    }

    #[test]
    fn mwmr_timestamp_round_trips() {
        let t = MwmrTimestamp::new(BoundedLabel::new(3, vec![0, 1, 5]), 9);
        assert_eq!(MwmrTimestamp::<BoundedLabel>::from_bytes(&t.to_bytes()), Some(t));
        let u = MwmrTimestamp::new(u64::MAX, 0);
        assert_eq!(MwmrTimestamp::<u64>::from_bytes(&u.to_bytes()), Some(u));
    }

    #[test]
    fn truncated_label_bytes_decode_to_none() {
        let l = BoundedLabel::new(7, vec![1, 2, 3]);
        let bytes = l.to_bytes();
        assert_eq!(BoundedLabel::from_bytes(&bytes[..bytes.len() - 2]), None);
    }
}
