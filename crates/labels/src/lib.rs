//! # sbft-labels — labeling (timestamping) systems for stabilizing BFT storage
//!
//! This crate implements the timestamping machinery required by the
//! stabilizing Byzantine-fault-tolerant regular register of Bonomi,
//! Potop-Butucaru and Tixeuil (IPPS 2015):
//!
//! * [`bounded`] — the *k-stabilizing bounded labeling system* (k-SBLS) of
//!   Alon et al. (Definition 2 of the paper): a **finite** label domain with
//!   an antisymmetric precedence relation `≺` and a `next()` function such
//!   that for any set `L'` of at most `k` labels — *including arbitrarily
//!   corrupted ones* — every `ℓ ∈ L'` satisfies `ℓ ≺ next(L')`.
//! * [`unbounded`] — classical unbounded `u64` timestamps, used by the
//!   non-stabilizing baseline protocols the paper compares against. These
//!   are *not* corruption tolerant: a single poisoned maximal timestamp can
//!   never be dominated within a bounded number of bits.
//! * [`mwmr`] — composite `(label, writer-id)` timestamps implementing the
//!   multi-writer extension of Section IV-D.
//! * [`readlabel`] — the bounded read-label pool and `recent_labels` matrix
//!   bookkeeping that backs the `find_read_label()` procedure (Figure 3).
//! * [`system`] — the [`system::LabelingSystem`] abstraction shared by the
//!   stabilizing protocol (bounded labels) and the baselines (unbounded).
//!
//! ## Why bounded labels are the crux
//!
//! In a self-stabilizing setting the initial memory content is arbitrary: an
//! unbounded integer timestamp may start at `u64::MAX` and then no writer can
//! ever dominate it. The k-SBLS sidesteps this by making `≺` a *non
//! transitive* relation over a finite domain in which **every** set of at
//! most `k` labels is dominated by some other label. The price is that `≺`
//! is only a partial, non-transitive order — which is exactly why the
//! register protocol needs the weighted-timestamp-graph machinery of
//! `sbft-wtsg` instead of a simple `max()`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounded;
pub mod mwmr;
pub mod persist;
pub mod readlabel;
pub mod system;
pub mod unbounded;

pub use bounded::{BoundedLabel, BoundedLabeling};
pub use mwmr::{MwmrLabeling, MwmrTimestamp, WriterId};
pub use readlabel::{ReadLabel, ReadLabelPool};
pub use system::LabelingSystem;
pub use unbounded::{UnboundedLabeling, UnboundedTs};
