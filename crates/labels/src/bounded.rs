//! The k-stabilizing bounded labeling system (k-SBLS) of Alon et al.,
//! Definition 2 of the paper.
//!
//! ## Construction
//!
//! Fix `k ≥ 2` and let the *value domain* be `D = {0, 1, …, K-1}` with
//! `K = k² + k + 1`. A label is a pair `(s, A)` — a **sting** `s ∈ D` and an
//! **antistings set** `A ⊂ D` with `|A| = k` and `s ∉ A`.
//!
//! * **Precedence**: `(s₁, A₁) ≺ (s₂, A₂)` iff `s₁ ∈ A₂ ∧ s₂ ∉ A₁`.
//! * **next(L')** for `|L'| ≤ k`: the new antistings set collects the stings
//!   of all labels in `L'` (padded deterministically to size `k`), and the
//!   new sting is a domain value avoiding every antistings set in `L'` *and*
//!   the new antistings set. Avoidance needs at most `k·k + k = K - 1`
//!   exclusions, so a free value always exists.
//!
//! For every input `ℓᵢ = (sᵢ, Aᵢ) ∈ L'`: `sᵢ` is in the new antistings set
//! and the new sting was chosen outside `Aᵢ`, hence `ℓᵢ ≺ next(L')` — the
//! k-dominance property — **regardless of how the inputs were produced**,
//! which is what makes the scheme usable from a corrupted initial state.
//!
//! Antisymmetry is structural: `a ≺ b` requires `s_b ∉ A_a` while `b ≺ a`
//! requires `s_b ∈ A_a`.
//!
//! The relation is intentionally *not* transitive: with a finite domain and
//! universal dominance, chains of `≺` must eventually cycle.
//!
//! ## Size
//!
//! A label occupies `O(k log k)` bits (`k+1` values of `log₂ K` bits each),
//! matching the paper's "bounded logical timestamps" claim. For a register
//! over `n` servers the protocol instantiates `k ≥ n + 1` so that a quorum
//! of server labels plus the writer's own label always fits in one `next()`.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::system::LabelingSystem;

/// A bounded label: a sting plus a fixed-size sorted antistings set.
///
/// Invariants for *well-formed* labels (enforced by [`BoundedLabeling::sanitize`]):
/// `sting < K`, `antistings` strictly increasing, `antistings.len() == k`,
/// all antistings `< K`, and `sting ∉ antistings`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BoundedLabel {
    /// The sting value in `0..K`.
    pub sting: u32,
    /// Sorted, deduplicated antistings, `k` values in `0..K`.
    pub antistings: Vec<u32>,
}

impl std::fmt::Debug for BoundedLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨{}|{:?}⟩", self.sting, self.antistings)
    }
}

impl BoundedLabel {
    /// Construct a label without validation. Prefer
    /// [`BoundedLabeling::sanitize`] for untrusted inputs.
    pub fn new(sting: u32, antistings: Vec<u32>) -> Self {
        Self { sting, antistings }
    }

    /// Binary-search membership test in the (sorted) antistings set.
    #[inline]
    pub fn has_antisting(&self, v: u32) -> bool {
        self.antistings.binary_search(&v).is_ok()
    }
}

/// Factory/comparator for [`BoundedLabel`]s with parameter `k`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundedLabeling {
    k: usize,
}

impl BoundedLabeling {
    /// Create a k-SBLS for the given `k ≥ 2`.
    ///
    /// # Panics
    /// Panics if `k < 2` (Definition 2 requires `k ≥ 2`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "k-SBLS requires k >= 2, got {k}");
        Self { k }
    }

    /// Size of the value domain: `K = k² + k + 1`.
    #[inline]
    pub fn domain(&self) -> u32 {
        let k = self.k as u64;
        let dom = k * k + k + 1;
        u32::try_from(dom).expect("k too large: domain exceeds u32")
    }

    /// Total number of distinct well-formed labels: `K · C(K-1, k)` (sting
    /// choices times antistings subsets avoiding the sting). Returned as
    /// `f64` since it overflows integers quickly; used only for reporting.
    pub fn label_space_size(&self) -> f64 {
        let kk = self.domain() as f64;
        // ln C(K-1, k) via lgamma-free product form (k is small).
        let mut ln_choose = 0.0f64;
        for i in 0..self.k {
            ln_choose += ((kk - 1.0 - i as f64) / (i as f64 + 1.0)).ln();
        }
        (kk.ln() + ln_choose).exp()
    }

    /// Number of bits needed to encode one label.
    pub fn label_bits(&self) -> usize {
        let per_value = 32 - self.domain().leading_zeros() as usize;
        per_value * (self.k + 1)
    }
}

impl LabelingSystem for BoundedLabeling {
    type Label = BoundedLabel;

    fn k(&self) -> usize {
        self.k
    }

    fn precedes(&self, a: &BoundedLabel, b: &BoundedLabel) -> bool {
        b.has_antisting(a.sting) && !a.has_antisting(b.sting)
    }

    fn next(&self, seen: &[BoundedLabel]) -> BoundedLabel {
        let domain = self.domain();
        // Respect k: a longer slice would overflow the avoidance budget, so
        // dominate only the first k labels (callers size k appropriately).
        let seen = &seen[..seen.len().min(self.k)];

        // New antistings: the stings of all seen labels, deduplicated.
        let mut anti: Vec<u32> = seen.iter().map(|l| l.sting % domain).collect();
        anti.sort_unstable();
        anti.dedup();

        // The sting must avoid every seen antistings set and the new set.
        let mut excluded: Vec<u32> = anti.clone();
        for l in seen {
            excluded.extend(l.antistings.iter().map(|&v| v % domain));
        }
        excluded.sort_unstable();
        excluded.dedup();
        let sting = (0..domain)
            .find(|v| excluded.binary_search(v).is_err())
            .expect("domain K = k^2+k+1 always leaves a free sting");

        // Pad the antistings set to exactly k values, skipping the sting.
        let mut pad = 0u32;
        while anti.len() < self.k {
            if pad != sting && anti.binary_search(&pad).is_err() {
                anti.push(pad);
                anti.sort_unstable();
            }
            pad += 1;
        }
        // `anti` cannot contain `sting`: the sting avoided all seen stings
        // (they are in `excluded` via `anti`) and padding skipped it.
        debug_assert!(anti.binary_search(&sting).is_err());
        BoundedLabel { sting, antistings: anti }
    }

    fn sanitize(&self, raw: BoundedLabel) -> BoundedLabel {
        let domain = self.domain();
        let sting = raw.sting % domain;
        let mut anti: Vec<u32> =
            raw.antistings.into_iter().map(|v| v % domain).filter(|&v| v != sting).collect();
        anti.sort_unstable();
        anti.dedup();
        anti.truncate(self.k);
        let mut pad = 0u32;
        while anti.len() < self.k {
            if pad != sting && anti.binary_search(&pad).is_err() {
                anti.push(pad);
                anti.sort_unstable();
            }
            pad += 1;
        }
        BoundedLabel { sting, antistings: anti }
    }

    fn genesis(&self) -> BoundedLabel {
        // Sting k (first value outside the canonical 0..k antistings).
        BoundedLabel { sting: self.k as u32, antistings: (0..self.k as u32).collect() }
    }

    fn arbitrary(&self, rng: &mut StdRng) -> BoundedLabel {
        // Deliberately unsanitized: out-of-domain stings, duplicate and
        // wrong-cardinality antistings — raw memory garbage.
        let sting = rng.gen::<u32>();
        let len = rng.gen_range(0..=(2 * self.k));
        let antistings = (0..len).map(|_| rng.gen::<u32>()).collect();
        BoundedLabel { sting, antistings }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(k: usize) -> BoundedLabeling {
        BoundedLabeling::new(k)
    }

    #[test]
    fn domain_size_formula() {
        assert_eq!(sys(2).domain(), 7);
        assert_eq!(sys(3).domain(), 13);
        assert_eq!(sys(10).domain(), 111);
    }

    #[test]
    #[should_panic]
    fn k_below_two_rejected() {
        sys(1);
    }

    #[test]
    fn genesis_is_well_formed() {
        let s = sys(5);
        let g = s.genesis();
        assert_eq!(g, s.sanitize(g.clone()));
        assert_eq!(g.antistings.len(), 5);
        assert!(!g.has_antisting(g.sting));
    }

    #[test]
    fn next_dominates_all_inputs() {
        let s = sys(4);
        let a = s.genesis();
        let b = s.next(std::slice::from_ref(&a));
        let c = s.next(&[a.clone(), b.clone()]);
        let d = s.next(&[a.clone(), b.clone(), c.clone()]);
        for l in [&a, &b, &c] {
            assert!(s.precedes(l, &d), "{l:?} should precede {d:?}");
        }
        assert!(s.precedes(&a, &b));
        assert!(s.precedes(&b, &c));
    }

    #[test]
    fn next_of_empty_is_well_formed() {
        let s = sys(3);
        let l = s.next(&[]);
        assert_eq!(l, s.sanitize(l.clone()));
    }

    #[test]
    fn precedence_is_antisymmetric_even_for_garbage() {
        let s = sys(3);
        // Hand-crafted hostile labels.
        let g1 = s.sanitize(BoundedLabel::new(999, vec![1, 1, 500, 3]));
        let g2 = s.sanitize(BoundedLabel::new(3, vec![999, 0, 0]));
        assert!(!(s.precedes(&g1, &g2) && s.precedes(&g2, &g1)));
        assert!(!s.precedes(&g1, &g1));
    }

    #[test]
    fn sanitize_enforces_invariants() {
        let s = sys(4);
        let l = s.sanitize(BoundedLabel::new(u32::MAX, vec![7, 7, 7, 100, 2, 0, 55]));
        assert!(l.sting < s.domain());
        assert_eq!(l.antistings.len(), 4);
        assert!(l.antistings.windows(2).all(|w| w[0] < w[1]));
        assert!(l.antistings.iter().all(|&v| v < s.domain()));
        assert!(!l.has_antisting(l.sting));
    }

    #[test]
    fn sanitize_is_idempotent() {
        let s = sys(3);
        let l = s.sanitize(BoundedLabel::new(42, vec![9, 9, 1000]));
        assert_eq!(l, s.sanitize(l.clone()));
    }

    #[test]
    fn dominance_over_corrupted_inputs() {
        let s = sys(5);
        let garbage: Vec<BoundedLabel> = (0..5)
            .map(|i| {
                s.sanitize(BoundedLabel::new(i * 31 + 7, vec![i, i + 1, 2 * i, 30 - i, i * i]))
            })
            .collect();
        let nl = s.next(&garbage);
        for g in &garbage {
            assert!(s.precedes(g, &nl), "{g:?} must precede {nl:?}");
        }
    }

    #[test]
    fn non_transitivity_witness_exists() {
        // Follow next() around: with a finite domain there must exist a ≺ b,
        // b ≺ c with ¬(a ≺ c) somewhere along a long enough chain.
        let s = sys(2);
        let mut chain = vec![s.genesis()];
        for _ in 0..200 {
            let last = chain.last().unwrap().clone();
            chain.push(s.next(&[last]));
        }
        let mut found = false;
        'outer: for w in chain.windows(3) {
            if s.precedes(&w[0], &w[1]) && s.precedes(&w[1], &w[2]) && !s.precedes(&w[0], &w[2]) {
                found = true;
                break 'outer;
            }
        }
        assert!(found, "k-SBLS must be non-transitive on a long chain");
    }

    #[test]
    fn label_bits_are_bounded() {
        let s = sys(8);
        // K = 73 → 7 bits per value, 9 values.
        assert_eq!(s.label_bits(), 7 * 9);
    }

    #[test]
    fn label_space_size_positive_and_finite() {
        let s = sys(4);
        let size = s.label_space_size();
        assert!(size.is_finite() && size > 0.0);
        // K=21, C(20,4)=4845, times 21 = 101_745.
        assert!((size - 101_745.0).abs() / 101_745.0 < 1e-9);
    }
}
