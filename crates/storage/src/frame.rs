//! CRC-32 checksummed frames.
//!
//! Every payload written to stable storage is wrapped in a frame:
//!
//! ```text
//! [magic: u32] [len: u32] [crc32(payload): u32] [payload: len bytes]
//! ```
//!
//! A frame either decodes intact or is *detected* as damaged — bit rot
//! flips the CRC check, a torn write truncates the byte stream mid-frame.
//! Once one frame is bad the framing of everything after it cannot be
//! trusted (a real log loses sync the same way), so [`decode_frames`]
//! returns the intact prefix and a [`FrameDamage`] describing what was
//! dropped.

/// Marker at the head of every frame — catches gross misalignment and
/// makes accidental re-sync on garbage bytes unlikely.
pub const FRAME_MAGIC: u32 = 0x5bf7_f4a3;

/// Largest accepted payload. Real frames (a server snapshot, one write
/// record) are tiny; a larger claimed length is always corruption.
pub const MAX_FRAME_LEN: usize = 1 << 24;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), computed
/// bitwise — the table would be bigger than every payload we frame.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// What [`decode_frames`] found past the intact prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameDamage {
    /// Every byte decoded into intact frames.
    None,
    /// The stream ended mid-frame (torn final write): `dropped_bytes` of
    /// trailing partial frame were discarded.
    Torn {
        /// Trailing bytes that did not form a complete frame.
        dropped_bytes: usize,
    },
    /// A complete-looking frame failed its magic/length/CRC check; it and
    /// everything after it were discarded.
    Corrupt {
        /// Byte offset of the first bad frame.
        at: usize,
    },
}

impl FrameDamage {
    /// Whether any damage was detected.
    pub fn is_damaged(&self) -> bool {
        !matches!(self, FrameDamage::None)
    }
}

/// Append one frame wrapping `payload` to `out`.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let s = bytes.get(at..at + 4)?;
    Some(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

/// Decode a byte stream into its intact frame payloads. Stops at the first
/// damaged frame: everything before it is returned, everything from it on
/// is dropped and described by the returned [`FrameDamage`].
pub fn decode_frames(bytes: &[u8]) -> (Vec<Vec<u8>>, FrameDamage) {
    let mut frames = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        // Header short of 12 bytes, or payload short of its declared
        // length: a torn final write.
        let header_end = pos + 12;
        if header_end > bytes.len() {
            return (frames, FrameDamage::Torn { dropped_bytes: bytes.len() - pos });
        }
        let magic = read_u32(bytes, pos).unwrap();
        let len = read_u32(bytes, pos + 4).unwrap() as usize;
        let crc = read_u32(bytes, pos + 8).unwrap();
        if magic != FRAME_MAGIC || len > MAX_FRAME_LEN {
            return (frames, FrameDamage::Corrupt { at: pos });
        }
        if header_end + len > bytes.len() {
            return (frames, FrameDamage::Torn { dropped_bytes: bytes.len() - pos });
        }
        let payload = &bytes[header_end..header_end + len];
        if crc32(payload) != crc {
            return (frames, FrameDamage::Corrupt { at: pos });
        }
        frames.push(payload.to_vec());
        pos = header_end + len;
    }
    (frames, FrameDamage::None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"alpha");
        write_frame(&mut buf, b"");
        write_frame(&mut buf, b"gamma-gamma");
        let (frames, damage) = decode_frames(&buf);
        assert_eq!(frames, vec![b"alpha".to_vec(), b"".to_vec(), b"gamma-gamma".to_vec()]);
        assert_eq!(damage, FrameDamage::None);
    }

    #[test]
    fn torn_tail_drops_only_last_frame() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"keep");
        write_frame(&mut buf, b"torn-away");
        buf.truncate(buf.len() - 4);
        let (frames, damage) = decode_frames(&buf);
        assert_eq!(frames, vec![b"keep".to_vec()]);
        assert!(matches!(damage, FrameDamage::Torn { .. }));
    }

    #[test]
    fn bit_rot_detected_and_truncates_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first");
        let rot_at = buf.len() + 14; // a payload byte of the second frame
        write_frame(&mut buf, b"second");
        write_frame(&mut buf, b"third");
        buf[rot_at] ^= 0x10;
        let (frames, damage) = decode_frames(&buf);
        assert_eq!(frames, vec![b"first".to_vec()]);
        assert!(matches!(damage, FrameDamage::Corrupt { .. }));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"ok");
        buf[0] ^= 0xff;
        let (frames, damage) = decode_frames(&buf);
        assert!(frames.is_empty());
        assert_eq!(damage, FrameDamage::Corrupt { at: 0 });
    }
}
