//! FNV-1a 64-bit hashing with region separators.
//!
//! One tiny streaming hasher shared by everything in the workspace that
//! needs a stable, dependency-free digest: [`crate::disk::SimDisk`]'s
//! content digest and the explorer's state-hash deduplication (which
//! fingerprints server/client/recorder state to stop re-expanding
//! re-converging interleavings). FNV-1a is not cryptographic — collisions
//! merely cost a missed dedup or a spurious one bounded by 2⁻⁶⁴ per pair —
//! but it is fast, has no setup cost, and its output is identical across
//! platforms, which the deterministic explorer requires.

/// Streaming FNV-1a 64-bit hasher.
///
/// [`Fnv64::sep`] injects a region separator between logically distinct
/// byte regions so that re-splitting the same concatenated bytes (e.g.
/// moving a byte from one region to the next) changes the digest.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

/// FNV-1a 64-bit offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01B3;

impl Fnv64 {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self(OFFSET)
    }

    /// Absorb raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
        self
    }

    /// Absorb a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Absorb a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Absorb a region separator: `region_a.sep().region_b` never collides
    /// with the same bytes split differently.
    pub fn sep(&mut self) -> &mut Self {
        self.0 ^= 0xff;
        self.0 = self.0.wrapping_mul(PRIME);
        self
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c (published test vector).
        let mut h = Fnv64::new();
        h.bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv64::new().finish(), OFFSET, "empty input is the offset basis");
    }

    #[test]
    fn separators_distinguish_region_splits() {
        let mut a = Fnv64::new();
        a.bytes(b"ab").sep().bytes(b"c");
        let mut b = Fnv64::new();
        b.bytes(b"a").sep().bytes(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn integer_helpers_match_their_byte_encodings() {
        let mut a = Fnv64::new();
        a.u64(0x0102_0304_0506_0708);
        let mut b = Fnv64::new();
        b.bytes(&0x0102_0304_0506_0708u64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv64::new();
        c.usize(7);
        let mut d = Fnv64::new();
        d.u64(7);
        assert_eq!(c.finish(), d.finish());
    }
}
