//! The [`Stable`] store trait and the simulated faulty disk.
//!
//! A server owns one stable store holding two regions:
//!
//! * a **snapshot** — one frame with the full encoded server state,
//!   rewritten (atomically, like a rename) every so many writes, which
//!   compacts the log away;
//! * a **log** — appended record frames, split into a durable prefix
//!   (synced) and an **unflushed tail** (appended but not yet `sync`ed —
//!   the bytes a real kernel still holds in its page cache).
//!
//! Crashes damage the store through an injectable [`DiskFault`], applied at
//! crash time by the nemesis. Recovery ([`Stable::load`]) never fails: it
//! returns whatever intact prefix survives, plus a damage report, and the
//! server rebuilds the best state it can — the stabilization machinery
//! cleans up whatever the disk got wrong, which is the whole point of
//! running this protocol over faulty storage.

use std::sync::{Arc, Mutex};

use crate::frame::{decode_frames, write_frame, FrameDamage};

/// Crash-time failure model applied to a [`SimDisk`].
///
/// `Pristine` is the best case (even the unflushed tail survives, as when
/// the page cache happened to be clean); the others each model one
/// real-world storage betrayal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DiskFault {
    /// No damage: every byte written survives, synced or not.
    Pristine,
    /// The final frame on disk is torn mid-write: its trailing bytes are
    /// cut off, so recovery detects a partial frame and drops it.
    TornFrame,
    /// The unflushed tail vanishes: everything appended since the last
    /// `sync` was never durable (fsync-not-yet-called at crash).
    LostSuffix,
    /// One random bit somewhere on the disk flips silently; the CRC check
    /// catches it at load time and the stream is truncated there.
    BitRot,
    /// The current snapshot is rolled back to its predecessor and the log
    /// is gone — a misdirected or reordered snapshot write surfacing an
    /// old generation.
    StaleSnapshot,
}

impl DiskFault {
    /// Every fault kind, in severity-ish order — benches sweep this.
    pub const ALL: [DiskFault; 5] = [
        DiskFault::Pristine,
        DiskFault::LostSuffix,
        DiskFault::TornFrame,
        DiskFault::BitRot,
        DiskFault::StaleSnapshot,
    ];

    /// Stable kebab-case name (CLI flags, JSON columns).
    pub fn name(&self) -> &'static str {
        match self {
            DiskFault::Pristine => "pristine",
            DiskFault::TornFrame => "torn-frame",
            DiskFault::LostSuffix => "lost-suffix",
            DiskFault::BitRot => "bit-rot",
            DiskFault::StaleSnapshot => "stale-snapshot",
        }
    }

    /// Parse a [`DiskFault::name`] back.
    pub fn parse(s: &str) -> Option<DiskFault> {
        DiskFault::ALL.into_iter().find(|f| f.name() == s)
    }
}

/// What [`Stable::load`] salvaged.
#[derive(Clone, Debug)]
pub struct Recovered {
    /// Payload of the newest intact snapshot frame, if any survived.
    pub snapshot: Option<Vec<u8>>,
    /// Intact record payloads appended after that snapshot, in order.
    pub records: Vec<Vec<u8>>,
    /// The snapshot region existed but failed its frame check.
    pub snapshot_damaged: bool,
    /// Damage found in the record log (the tail past it was dropped).
    pub log_damage: FrameDamage,
}

impl Recovered {
    /// Whether any region was detectably damaged.
    pub fn is_damaged(&self) -> bool {
        self.snapshot_damaged || self.log_damage.is_damaged()
    }
}

/// Cumulative operation counters for one store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Snapshot rewrites.
    pub snapshots: u64,
    /// Record appends.
    pub appends: u64,
    /// Explicit syncs.
    pub syncs: u64,
    /// Crashes survived (faults injected).
    pub crashes: u64,
}

/// Stable storage: snapshot + appended record frames, checksummed, with a
/// crash-time fault hook. All writes frame their payloads; all reads
/// verify checksums and degrade gracefully.
pub trait Stable: Send {
    /// Atomically replace the snapshot with `payload` (one frame) and
    /// compact the log away. Durable on return.
    fn put_snapshot(&mut self, payload: &[u8]);

    /// Append one record frame to the unflushed tail.
    fn append(&mut self, payload: &[u8]);

    /// Make every appended record durable.
    fn sync(&mut self);

    /// Crash with `fault` applied to the on-disk bytes.
    fn crash(&mut self, fault: DiskFault);

    /// Read back whatever intact state survives.
    fn load(&self) -> Recovered;

    /// Order-sensitive digest of the full disk contents — equal digests
    /// mean byte-identical disks (used by cross-substrate parity checks).
    fn digest(&self) -> u64;

    /// Operation counters.
    fn stats(&self) -> DiskStats;
}

/// In-memory simulated disk. Deterministic: the only randomness (bit-rot
/// placement) comes from a seeded xorshift stream, so identical operation
/// sequences on identically-seeded disks produce identical bytes on any
/// substrate.
#[derive(Clone, Debug)]
pub struct SimDisk {
    snapshot: Vec<u8>,
    prev_snapshot: Vec<u8>,
    log: Vec<u8>,
    unflushed: Vec<u8>,
    rng: u64,
    stats: DiskStats,
}

impl SimDisk {
    /// A fresh empty disk; `seed` drives bit-rot placement.
    pub fn new(seed: u64) -> Self {
        Self {
            snapshot: Vec::new(),
            prev_snapshot: Vec::new(),
            log: Vec::new(),
            unflushed: Vec::new(),
            rng: seed | 1, // xorshift must not start at 0
            stats: DiskStats::default(),
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*: tiny, seedable, good enough to pick a bit to flip.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Truncate the last frame of the last non-empty region so it reads
    /// back as torn.
    fn tear_final_frame(&mut self) {
        for region in [&mut self.unflushed, &mut self.log, &mut self.snapshot] {
            if region.is_empty() {
                continue;
            }
            let (frames, _) = decode_frames(region);
            let last_len = frames.last().map_or(region.len(), |p| 12 + p.len());
            let cut = (last_len / 2).max(1).min(region.len());
            region.truncate(region.len() - cut);
            return;
        }
    }

    fn flip_random_bit(&mut self) {
        let total = self.snapshot.len() + self.log.len() + self.unflushed.len();
        if total == 0 {
            return;
        }
        let byte = (self.next_rand() as usize) % total;
        let bit = (self.next_rand() as u8) % 8;
        let target = if byte < self.snapshot.len() {
            &mut self.snapshot[byte]
        } else if byte - self.snapshot.len() < self.log.len() {
            &mut self.log[byte - self.snapshot.len()]
        } else {
            &mut self.unflushed[byte - self.snapshot.len() - self.log.len()]
        };
        *target ^= 1 << bit;
    }
}

impl Stable for SimDisk {
    fn put_snapshot(&mut self, payload: &[u8]) {
        self.prev_snapshot = std::mem::take(&mut self.snapshot);
        write_frame(&mut self.snapshot, payload);
        self.log.clear();
        self.unflushed.clear();
        self.stats.snapshots += 1;
    }

    fn append(&mut self, payload: &[u8]) {
        write_frame(&mut self.unflushed, payload);
        self.stats.appends += 1;
    }

    fn sync(&mut self) {
        self.log.append(&mut self.unflushed);
        self.stats.syncs += 1;
    }

    fn crash(&mut self, fault: DiskFault) {
        self.stats.crashes += 1;
        match fault {
            DiskFault::Pristine => {}
            DiskFault::TornFrame => self.tear_final_frame(),
            DiskFault::LostSuffix => self.unflushed.clear(),
            DiskFault::BitRot => self.flip_random_bit(),
            DiskFault::StaleSnapshot => {
                self.snapshot = std::mem::take(&mut self.prev_snapshot);
                self.log.clear();
                self.unflushed.clear();
            }
        }
    }

    fn load(&self) -> Recovered {
        let (snap_frames, snap_damage) = decode_frames(&self.snapshot);
        let snapshot = snap_frames.into_iter().next_back();
        let snapshot_damaged = snap_damage.is_damaged();
        // The log and its unflushed tail are one byte stream on disk:
        // damage in the durable prefix also severs everything behind it.
        let mut stream = self.log.clone();
        stream.extend_from_slice(&self.unflushed);
        let (records, log_damage) = decode_frames(&stream);
        Recovered { snapshot, records, snapshot_damaged, log_damage }
    }

    fn digest(&self) -> u64 {
        // FNV-1a with region separators so (snapshot, log) splits don't
        // collide.
        let mut h = crate::fnv::Fnv64::new();
        h.bytes(&self.snapshot).sep();
        h.bytes(&self.log).sep();
        h.bytes(&self.unflushed).sep();
        h.finish()
    }

    fn stats(&self) -> DiskStats {
        self.stats
    }
}

/// A cloneable, thread-safe handle to one stable store. Both the server
/// automaton (which persists through it) and the nemesis driver (which
/// crashes it and rebuilds a recovered automaton from it) hold clones, on
/// either substrate.
#[derive(Clone)]
pub struct DiskHandle(Arc<Mutex<dyn Stable>>);

impl std::fmt::Debug for DiskHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskHandle").field("stats", &self.stats()).finish()
    }
}

impl DiskHandle {
    /// Wrap any stable store.
    pub fn new(store: impl Stable + 'static) -> Self {
        Self(Arc::new(Mutex::new(store)))
    }

    /// A fresh simulated disk.
    pub fn sim(seed: u64) -> Self {
        Self::new(SimDisk::new(seed))
    }

    /// See [`Stable::put_snapshot`].
    pub fn put_snapshot(&self, payload: &[u8]) {
        self.0.lock().unwrap().put_snapshot(payload);
    }

    /// See [`Stable::append`].
    pub fn append(&self, payload: &[u8]) {
        self.0.lock().unwrap().append(payload);
    }

    /// See [`Stable::sync`].
    pub fn sync(&self) {
        self.0.lock().unwrap().sync();
    }

    /// See [`Stable::crash`].
    pub fn crash(&self, fault: DiskFault) {
        self.0.lock().unwrap().crash(fault);
    }

    /// See [`Stable::load`].
    pub fn load(&self) -> Recovered {
        self.0.lock().unwrap().load()
    }

    /// See [`Stable::digest`].
    pub fn digest(&self) -> u64 {
        self.0.lock().unwrap().digest()
    }

    /// See [`Stable::stats`].
    pub fn stats(&self) -> DiskStats {
        self.0.lock().unwrap().stats()
    }
}

/// One disk per server process, indexed by process id.
#[derive(Clone, Debug)]
pub struct DiskSet {
    disks: Vec<DiskHandle>,
}

impl DiskSet {
    /// `n` simulated disks; each gets a seed derived from `seed` and its
    /// pid so bit-rot streams differ across servers but replay across
    /// substrates.
    pub fn sim(n: usize, seed: u64) -> Self {
        let disks = (0..n)
            .map(|pid| DiskHandle::sim(seed ^ (pid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect();
        Self { disks }
    }

    /// The disk for server `pid` (panics if out of range).
    pub fn get(&self, pid: usize) -> DiskHandle {
        self.disks[pid].clone()
    }

    /// Number of disks.
    pub fn len(&self) -> usize {
        self.disks.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.disks.is_empty()
    }

    /// Content digest of every disk, in pid order.
    pub fn digests(&self) -> Vec<u64> {
        self.disks.iter().map(DiskHandle::digest).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded(disk: &SimDisk) -> (Option<Vec<u8>>, Vec<Vec<u8>>, bool) {
        let r = disk.load();
        let damaged = r.is_damaged();
        (r.snapshot, r.records, damaged)
    }

    #[test]
    fn snapshot_and_records_round_trip() {
        let mut d = SimDisk::new(7);
        d.put_snapshot(b"snap");
        d.append(b"r1");
        d.sync();
        d.append(b"r2");
        let (snap, recs, damaged) = loaded(&d);
        assert_eq!(snap.as_deref(), Some(&b"snap"[..]));
        assert_eq!(recs, vec![b"r1".to_vec(), b"r2".to_vec()]);
        assert!(!damaged);
    }

    #[test]
    fn snapshot_compacts_log() {
        let mut d = SimDisk::new(7);
        d.append(b"old");
        d.sync();
        d.put_snapshot(b"snap");
        let (snap, recs, _) = loaded(&d);
        assert_eq!(snap.as_deref(), Some(&b"snap"[..]));
        assert!(recs.is_empty());
    }

    #[test]
    fn pristine_crash_keeps_unflushed_tail() {
        let mut d = SimDisk::new(7);
        d.append(b"tail");
        d.crash(DiskFault::Pristine);
        let (_, recs, damaged) = loaded(&d);
        assert_eq!(recs, vec![b"tail".to_vec()]);
        assert!(!damaged);
    }

    #[test]
    fn lost_suffix_drops_only_unsynced_records() {
        let mut d = SimDisk::new(7);
        d.append(b"durable");
        d.sync();
        d.append(b"gone");
        d.crash(DiskFault::LostSuffix);
        let (_, recs, damaged) = loaded(&d);
        assert_eq!(recs, vec![b"durable".to_vec()]);
        assert!(!damaged); // clean truncation at a frame boundary
    }

    #[test]
    fn torn_frame_loses_final_record_detectably() {
        let mut d = SimDisk::new(7);
        d.append(b"keep-me");
        d.append(b"torn-me");
        d.crash(DiskFault::TornFrame);
        let r = d.load();
        assert_eq!(r.records, vec![b"keep-me".to_vec()]);
        assert!(r.log_damage.is_damaged());
    }

    #[test]
    fn torn_frame_on_snapshot_only_disk_damages_snapshot() {
        let mut d = SimDisk::new(7);
        d.put_snapshot(b"snap");
        d.crash(DiskFault::TornFrame);
        let r = d.load();
        assert_eq!(r.snapshot, None);
        assert!(r.snapshot_damaged);
    }

    #[test]
    fn bit_rot_is_detected_not_believed() {
        let mut d = SimDisk::new(42);
        d.put_snapshot(b"a-reasonably-long-snapshot-payload");
        d.append(b"record-one");
        d.sync();
        d.crash(DiskFault::BitRot);
        let r = d.load();
        // The flipped bit lands in exactly one region; whatever it hit is
        // reported damaged rather than returned corrupted.
        assert!(r.is_damaged());
        if let Some(s) = &r.snapshot {
            assert_eq!(s.as_slice(), &b"a-reasonably-long-snapshot-payload"[..]);
        }
        for rec in &r.records {
            assert_eq!(rec.as_slice(), &b"record-one"[..]);
        }
    }

    #[test]
    fn stale_snapshot_rolls_back_a_generation() {
        let mut d = SimDisk::new(7);
        d.put_snapshot(b"gen1");
        d.put_snapshot(b"gen2");
        d.append(b"after-gen2");
        d.crash(DiskFault::StaleSnapshot);
        let (snap, recs, _) = loaded(&d);
        assert_eq!(snap.as_deref(), Some(&b"gen1"[..]));
        assert!(recs.is_empty());
    }

    #[test]
    fn stale_snapshot_with_no_predecessor_wipes_clean() {
        let mut d = SimDisk::new(7);
        d.put_snapshot(b"only");
        d.crash(DiskFault::StaleSnapshot);
        let (snap, _, _) = loaded(&d);
        assert_eq!(snap, None);
    }

    #[test]
    fn digests_track_content() {
        let mut a = SimDisk::new(7);
        let mut b = SimDisk::new(7);
        a.put_snapshot(b"x");
        b.put_snapshot(b"x");
        assert_eq!(a.digest(), b.digest());
        b.append(b"y");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn identically_seeded_disks_rot_identically() {
        let mk = || {
            let mut d = SimDisk::new(99);
            d.put_snapshot(b"same-bytes-on-both");
            d.append(b"same-record");
            d.crash(DiskFault::BitRot);
            d.digest()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn disk_set_digests_are_per_pid_stable() {
        let s1 = DiskSet::sim(3, 5);
        let s2 = DiskSet::sim(3, 5);
        s1.get(1).append(b"r");
        s2.get(1).append(b"r");
        assert_eq!(s1.digests(), s2.digests());
        assert_eq!(s1.len(), 3);
        s1.get(2).put_snapshot(b"s");
        assert_ne!(s1.digests(), s2.digests());
    }

    #[test]
    fn stats_count_operations() {
        let d = DiskHandle::sim(1);
        d.put_snapshot(b"s");
        d.append(b"r");
        d.append(b"r");
        d.sync();
        d.crash(DiskFault::Pristine);
        let st = d.stats();
        assert_eq!(st, DiskStats { snapshots: 1, appends: 2, syncs: 1, crashes: 1 });
    }

    #[test]
    fn fault_names_round_trip() {
        for f in DiskFault::ALL {
            assert_eq!(DiskFault::parse(f.name()), Some(f));
        }
        assert_eq!(DiskFault::parse("nope"), None);
    }
}
