//! Minimal total byte codec.
//!
//! The workspace vendors `serde` as a no-op shim (no registry access), so
//! anything that truly round-trips through bytes is hand-written here.
//! Encoding is infallible; decoding returns `Option` and must never panic
//! or over-allocate on adversarial input — recovery deliberately feeds it
//! bit-rotted and truncated payloads.

/// A cursor over an immutable byte slice. All reads are bounds-checked and
/// return `None` past the end.
#[derive(Clone, Copy, Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Start reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed (decoders use this to reject
    /// trailing garbage in fixed payloads).
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consume exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    /// Consume one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Consume a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Consume a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }
}

/// Sequence lengths larger than this are rejected outright during decode.
/// Legitimate persisted collections (label antistings, history windows, KV
/// key maps) are orders of magnitude smaller; a length field this large is
/// always corruption, and capping it keeps adversarial input from forcing
/// huge allocations before the data underneath fails to parse.
pub const MAX_SEQ_LEN: usize = 1 << 16;

/// Infallible binary encoding with total (never-panicking) decoding.
///
/// Implementations must round-trip (`decode(encode(x)) == Some(x)`) and be
/// canonical enough that equal values encode to equal bytes — disk digests
/// and cross-substrate parity checks compare encoded state byte-for-byte.
pub trait Codec: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode one value, consuming bytes from `r`. Returns `None` on any
    /// malformed input; partial consumption on failure is allowed (callers
    /// discard the reader).
    fn decode(r: &mut ByteReader<'_>) -> Option<Self>;

    /// Convenience: encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Convenience: decode a value that must span the whole slice.
    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = ByteReader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.is_empty().then_some(v)
    }
}

impl Codec for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        r.u8()
    }
}

impl Codec for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        r.u32()
    }
}

impl Codec for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        r.u64()
    }
}

impl Codec for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        let v = r.u64()?;
        usize::try_from(v).ok()
    }
}

impl Codec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        match r.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        let len = r.u32()? as usize;
        if len > MAX_SEQ_LEN {
            return None;
        }
        let mut v = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            v.push(T::decode(r)?);
        }
        Some(v)
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        Some((A::decode(r)?, B::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for v in [0u64, 1, u64::MAX, 0xdead_beef] {
            assert_eq!(u64::from_bytes(&v.to_bytes()), Some(v));
        }
        for v in [0u32, u32::MAX] {
            assert_eq!(u32::from_bytes(&v.to_bytes()), Some(v));
        }
        assert_eq!(bool::from_bytes(&true.to_bytes()), Some(true));
        assert_eq!(bool::from_bytes(&[7]), None);
    }

    #[test]
    fn vec_and_tuple_round_trip() {
        let v: Vec<(u64, u32)> = vec![(1, 2), (u64::MAX, 0)];
        assert_eq!(Vec::<(u64, u32)>::from_bytes(&v.to_bytes()), Some(v));
    }

    #[test]
    fn absurd_length_rejected_without_allocation() {
        let mut bytes = Vec::new();
        (u32::MAX).encode(&mut bytes); // claims ~4 billion elements
        assert_eq!(Vec::<u64>::from_bytes(&bytes), None);
    }

    #[test]
    fn trailing_garbage_rejected_by_from_bytes() {
        let mut bytes = 7u64.to_bytes();
        bytes.push(0);
        assert_eq!(u64::from_bytes(&bytes), None);
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let bytes = 7u64.to_bytes();
        assert_eq!(u64::from_bytes(&bytes[..5]), None);
    }
}
