//! # sbft-storage — durable server state with an injectable-fault disk
//!
//! The paper's algorithm stabilizes from *arbitrary* local state. The most
//! realistic source of arbitrary state in a deployed system is not a cosmic
//! ray in RAM but a **crash followed by recovery from damaged persistent
//! storage**: a torn final write, an fsync that never reached the platter,
//! silent bit rot, a snapshot rolled back by a misbehaving controller. This
//! crate supplies the storage half of that scenario class:
//!
//! * [`codec`] — a tiny hand-rolled byte [`codec::Codec`] (the workspace's
//!   `serde` is an offline no-op shim, so persistence must own its bytes).
//!   Decoding is *total*: any byte string produces either a value or
//!   `None`, never a panic, because recovery feeds it damaged input on
//!   purpose.
//! * [`frame`] — CRC-32 checksummed length-prefixed frames. A frame either
//!   decodes intact or is detected as damaged; damage truncates the tail of
//!   the stream (framing is lost past the first bad frame, exactly like a
//!   real write-ahead log).
//! * [`disk`] — the [`disk::Stable`] store trait (snapshot + appended
//!   records + explicit sync) and [`disk::SimDisk`], an in-memory simulated
//!   disk whose crash-time failure model is injectable via
//!   [`disk::DiskFault`]: torn final frame, lost unflushed suffix, silent
//!   bit rot, stale-snapshot rollback.
//!
//! The crate is a leaf (no dependencies): `sbft-labels` implements
//! [`codec::Codec`] for its timestamp types, `sbft-core` persists server
//! state through [`disk::DiskHandle`]s, and `sbft-net`'s nemesis carries
//! [`disk::DiskFault`]s inside `CrashRecover` events.

#![warn(missing_docs)]

pub mod codec;
pub mod disk;
pub mod fnv;
pub mod frame;

pub use codec::{ByteReader, Codec};
pub use disk::{DiskFault, DiskHandle, DiskSet, DiskStats, Recovered, SimDisk, Stable};
pub use fnv::Fnv64;
pub use frame::{decode_frames, write_frame, FrameDamage};
