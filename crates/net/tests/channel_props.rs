//! Property tests for the channel layer: per-channel FIFO must survive
//! arbitrary interleavings of sends, pauses, and resumes — it is the
//! assumption every lemma of the register protocol leans on.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sbft_net::channel::ChannelMap;
use sbft_net::DelayModel;

/// One scripted channel action.
#[derive(Clone, Debug)]
enum Act {
    Send(u32),
    Pause,
    Resume,
}

fn acts() -> impl Strategy<Value = Vec<Act>> {
    proptest::collection::vec(
        prop_oneof![(0u32..1000).prop_map(Act::Send), Just(Act::Pause), Just(Act::Resume),],
        1..60,
    )
}

proptest! {
    /// Whatever the pause/resume interleaving, messages on one channel are
    /// scheduled with strictly increasing delivery times, and no message is
    /// ever lost or duplicated.
    #[test]
    fn fifo_and_losslessness_under_pause_resume(script in acts(), seed in 0u64..100) {
        let mut ch: ChannelMap<u32> = ChannelMap::new(DelayModel::uniform(1, 20));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sent: Vec<u32> = Vec::new();
        let mut scheduled: Vec<(u64, u32)> = Vec::new();
        let mut now = 0u64;
        for act in script {
            now += 1;
            match act {
                Act::Send(v) => {
                    sent.push(v);
                    if let Some(pair) = ch.schedule(0, 1, now, v, &mut rng).delivery() {
                        scheduled.push(pair);
                    }
                }
                Act::Pause => ch.pause(0, 1),
                Act::Resume => scheduled.extend(ch.resume(0, 1, now, &mut rng)),
            }
        }
        // Final resume releases everything still held.
        scheduled.extend(ch.resume(0, 1, now + 1, &mut rng));

        // Losslessness + no duplication: the scheduled payload sequence is
        // exactly the sent sequence.
        let payloads: Vec<u32> = scheduled.iter().map(|&(_, v)| v).collect();
        prop_assert_eq!(&payloads, &sent);

        // Strict FIFO: delivery times strictly increase along the channel.
        for w in scheduled.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "delivery times must strictly increase: {:?}", w);
        }
    }

    /// Distinct channels never interfere: pausing (a→b) does not affect
    /// (b→a) or (a→c).
    #[test]
    fn pausing_one_channel_leaves_others_live(seed in 0u64..100, n in 1usize..20) {
        let mut ch: ChannelMap<u32> = ChannelMap::new(DelayModel::unit());
        let mut rng = StdRng::seed_from_u64(seed);
        ch.pause(0, 1);
        for i in 0..n as u32 {
            prop_assert!(ch.schedule(0, 1, 1, i, &mut rng).delivery().is_none());
            prop_assert!(ch.schedule(1, 0, 1, i, &mut rng).delivery().is_some());
            prop_assert!(ch.schedule(0, 2, 1, i, &mut rng).delivery().is_some());
        }
        prop_assert_eq!(ch.held_count(0, 1), n);
    }
}
