//! Property tests pinning the nemesis seat-tracking invariants: across
//! any seeded schedule (window generator or mobile movement engine), the
//! Byzantine seat set never grows past `f`, seats never collide, healing
//! pairs with the disturbance that actually opened, and crash/corrupt
//! windows never land on a current seat.

use std::collections::BTreeSet;

use proptest::prelude::*;
use sbft_net::mobile::{mobile_schedule, MobileOpts, MovementMode};
use sbft_net::nemesis::{NemesisEvent, NemesisOpts, NemesisSchedule};
use sbft_net::ProcessId;

/// Replay a schedule's seat movements, asserting the tracking invariants
/// at every event. Returns the final seat set.
fn replay(initial: &[ProcessId], servers: usize, sched: &NemesisSchedule) -> BTreeSet<ProcessId> {
    let f = initial.len();
    let mut seats: BTreeSet<ProcessId> = initial.iter().copied().collect();
    // Open lasting disturbances, keyed by what closes them.
    let mut crashed: Option<ProcessId> = None;
    let mut cut_link: Option<(ProcessId, ProcessId)> = None;
    let mut partitioned = false;
    for (_, ev) in sched.events() {
        match ev {
            NemesisEvent::Crash(p) => {
                assert!(!seats.contains(p), "crash targeted seat {p}");
                assert!(crashed.is_none(), "windows must be serialized");
                crashed = Some(*p);
            }
            NemesisEvent::Restart(p) => {
                // Restart must recover the server that actually crashed.
                assert_eq!(crashed.take(), Some(*p), "restart/crash mispaired");
            }
            NemesisEvent::CrashRecover { pid, .. } => {
                // Crash-recovery reboots the server that actually crashed,
                // from its own (possibly damaged) disk.
                assert_eq!(crashed.take(), Some(*pid), "crash-recover/crash mispaired");
            }
            NemesisEvent::Partition { side } => {
                for p in side {
                    assert!(!seats.contains(p), "partition isolated seat {p}");
                }
                partitioned = true;
            }
            NemesisEvent::Heal => {
                // Heal closes a partition or an instantaneous corrupt
                // window; it must never be asked to close a crash or a
                // link fault (it would leave the fault installed).
                assert!(crashed.is_none() && cut_link.is_none(), "heal mispaired");
                partitioned = false;
            }
            NemesisEvent::LinkFault { a, b, .. } => {
                assert!(cut_link.is_none(), "windows must be serialized");
                cut_link = Some((*a, *b));
            }
            NemesisEvent::LinkHeal { a, b } => {
                assert_eq!(cut_link.take(), Some((*a, *b)), "link heal mispaired");
            }
            NemesisEvent::Corrupt(plan) => {
                for p in &plan.corrupt_processes {
                    assert!(!seats.contains(p), "corrupt targeted seat {p}");
                }
            }
            NemesisEvent::RelocateByz { to } => {
                // Legacy event: moves the lowest seat.
                if let Some(&from) = seats.iter().next() {
                    seats.remove(&from);
                    assert!(seats.insert(*to), "relocation collided on {to}");
                }
            }
            NemesisEvent::MoveByz { from, to } => {
                assert!(seats.remove(from), "moved a non-seat {from}");
                assert!(seats.insert(*to), "two seats collided on {to}");
                assert!(*to < servers, "seat left the server range");
            }
        }
        assert!(seats.len() <= f, "seat set grew past f = {f}: {seats:?}");
        let _ = partitioned;
    }
    assert_eq!(seats.len(), f, "a seat was lost");
    seats
}

proptest! {
    /// The window generator keeps every invariant for any seed and any
    /// initial seat count (including none: the move template substitutes
    /// a lossy link and the schedule stays well-paired).
    #[test]
    fn seeded_window_schedules_track_seats(seed in 0u64..150, f in 0usize..3) {
        let servers = 11usize; // big enough for f = 2 at n = 5f + 1
        let byz_seats: Vec<ProcessId> = (servers - f..servers).collect();
        let opts = NemesisOpts {
            servers,
            total_procs: servers + 2,
            byz_seats: byz_seats.clone(),
            ..NemesisOpts::default()
        };
        let sched = NemesisSchedule::random(seed, &opts);
        replay(&byz_seats, servers, &sched);
    }

    /// The seeded generator is deterministic *per seat configuration*:
    /// the event-kind sequence depends only on the seed, never on which
    /// honest targets earlier windows drew.
    #[test]
    fn seeded_window_schedules_are_deterministic(seed in 0u64..100, f in 0usize..3) {
        let servers = 11usize;
        let byz_seats: Vec<ProcessId> = (servers - f..servers).collect();
        let opts = NemesisOpts {
            servers,
            total_procs: servers + 2,
            byz_seats,
            ..NemesisOpts::default()
        };
        let a = NemesisSchedule::random(seed, &opts);
        let b = NemesisSchedule::random(seed, &opts);
        assert_eq!(a.len(), b.len());
        for ((ta, ea), (tb, eb)) in a.events().iter().zip(b.events()) {
            assert_eq!(ta, tb);
            assert_eq!(format!("{ea:?}"), format!("{eb:?}"));
        }
    }

    /// Every generated `Crash` is paired with a later `Restart` or
    /// `CrashRecover` for the same server, no later than the horizon —
    /// i.e. no server is ever left permanently down, with or without
    /// durable-disk recovery in the fault pool.
    #[test]
    fn every_crash_pairs_with_recovery_within_horizon(
        seed in 0u64..200,
        f in 0usize..3,
        durable in any::<bool>(),
    ) {
        let servers = 11usize;
        let byz_seats: Vec<ProcessId> = (servers - f..servers).collect();
        let mut opts = NemesisOpts {
            servers,
            total_procs: servers + 2,
            byz_seats,
            ..NemesisOpts::default()
        };
        if !durable {
            // An empty fault pool degrades crash windows to plain restarts.
            opts.disk_faults.clear();
        }
        let sched = NemesisSchedule::random(seed, &opts);
        let mut down: Option<(u64, ProcessId)> = None;
        for (t, ev) in sched.events() {
            match ev {
                NemesisEvent::Crash(p) => {
                    assert!(down.is_none(), "crash while a server was already down");
                    down = Some((*t, *p));
                }
                NemesisEvent::Restart(p) => {
                    prop_assert!(!durable, "durable schedules must use CrashRecover");
                    let (t0, p0) = down.take().expect("restart without a crash");
                    assert_eq!(p0, *p);
                    assert!(*t > t0 && *t <= opts.horizon, "recovery outside horizon");
                }
                NemesisEvent::CrashRecover { pid, .. } => {
                    prop_assert!(durable, "CrashRecover needs a non-empty fault pool");
                    let (t0, p0) = down.take().expect("crash-recover without a crash");
                    assert_eq!(p0, *pid);
                    assert!(*t > t0 && *t <= opts.horizon, "recovery outside horizon");
                }
                _ => {}
            }
        }
        prop_assert!(down.is_none(), "a crashed server was never recovered");
    }

    /// The mobile movement engine keeps the same seat invariants for any
    /// rate/mode/f combination.
    #[test]
    fn mobile_schedules_track_seats(
        seed in 0u64..150,
        f in 1usize..3,
        coordinated in any::<bool>(),
        move_pct in 0u32..=100,
        round_len in 200u64..4_000,
    ) {
        let servers = 11usize;
        let mode =
            if coordinated { MovementMode::Coordinated } else { MovementMode::Uncoordinated };
        let opts = MobileOpts::new(servers, f)
            .mode(mode)
            .move_prob(f64::from(move_pct) / 100.0)
            .round_len(round_len);
        let seats = opts.seats.clone();
        let sched = mobile_schedule(seed, &opts);
        replay(&seats, servers, &sched);
    }
}
