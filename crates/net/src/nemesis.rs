//! Jepsen-style nemesis: seeded schedules of composable infrastructure
//! faults, fired against any [`Substrate`].
//!
//! The paper's fault model is *transient* corruption plus up to `f`
//! Byzantine servers; real deployments additionally lose processes and
//! links and get them back. The nemesis layer composes both worlds into
//! one declarative, replayable schedule: crashes with later *recovery*
//! (rejoin with arbitrary fresh state — legitimate under the transient
//! model, since a restarted process is just one whose memory was
//! corrupted to an initial state), partitions, per-link loss /
//! duplication / delay spikes, transient [`FaultPlan`] corruption, and
//! runtime relocation of the Byzantine strategy between servers (the
//! mobile-Byzantine regime of Bonomi–Del Pozzo–Potop-Butucaru,
//! arXiv:1505.06865).
//!
//! A [`NemesisSchedule`] is a sorted list of `(time, event)` pairs —
//! scripted, or generated from a seed by [`NemesisSchedule::random`]
//! with min-gap/duration knobs that keep disturbance windows serialized
//! (at most one open at a time, so `f` stays respected between
//! recoveries). A [`NemesisRunner`] owns the schedule plus the automaton
//! factories needed for restarts and fires every due event through the
//! [`Substrate`] trait, so the same chaos runs on the simulator and on
//! real threads.

use std::collections::{BTreeMap, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::corruption::{CorruptionSeverity, FaultPlan};
use crate::process::{Automaton, ProcessId};
use crate::substrate::Substrate;

/// Per-link fault parameters applied to one directed channel.
///
/// `drop_rate` and `dup_rate` are independent per-message probabilities;
/// `extra_delay` adds a constant delay (virtual time units on the
/// simulator; a sender-side stall of that many ticks on threads). FIFO
/// order is preserved in all cases — a faulty link loses or repeats
/// messages but never reorders the survivors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFault {
    /// Probability a message is silently lost.
    pub drop_rate: f64,
    /// Probability a delivered message is delivered twice.
    pub dup_rate: f64,
    /// Additional delay added to every delivery.
    pub extra_delay: u64,
}

impl LinkFault {
    /// A fully cut link (drops everything) — the partition building block.
    pub fn cut() -> Self {
        Self { drop_rate: 1.0, dup_rate: 0.0, extra_delay: 0 }
    }

    /// A lossy link dropping each message with probability `drop_rate`.
    pub fn lossy(drop_rate: f64) -> Self {
        Self { drop_rate, dup_rate: 0.0, extra_delay: 0 }
    }

    /// A link that loses, duplicates, and delays.
    pub fn flaky(drop_rate: f64, dup_rate: f64, extra_delay: u64) -> Self {
        Self { drop_rate, dup_rate, extra_delay }
    }

    /// Whether this fault drops every message.
    pub fn is_cut(&self) -> bool {
        self.drop_rate >= 1.0
    }
}

/// One declarative nemesis action.
///
/// Disturbances ([`NemesisEvent::Crash`], [`NemesisEvent::Partition`],
/// [`NemesisEvent::LinkFault`], [`NemesisEvent::Corrupt`],
/// [`NemesisEvent::RelocateByz`]) open a *disturbance window* in the
/// runner's bookkeeping; recoveries ([`NemesisEvent::Restart`],
/// [`NemesisEvent::Heal`], [`NemesisEvent::LinkHeal`]) close one.
/// Scripted schedules should pair every disturbance with a recovery so
/// the runner's all-clear tracking stays meaningful (instantaneous
/// disturbances like `Corrupt` pair with a plain `Heal`, which marks the
/// window closed without undoing anything).
#[derive(Clone, Debug)]
pub enum NemesisEvent {
    /// Crash a process: it silently drops all deliveries until restarted.
    Crash(ProcessId),
    /// Restart a crashed (or running) process with a fresh automaton from
    /// the runner's factory — crash *recovery* with state loss.
    Restart(ProcessId),
    /// Cut every link between `side` and the rest of the cluster, in both
    /// directions. Realized as full-drop link faults on both backends, so
    /// partitioned traffic is *lost*, not buffered; the clients' retry
    /// machinery restores liveness after [`NemesisEvent::Heal`].
    Partition {
        /// Processes isolated from everyone else.
        side: Vec<ProcessId>,
    },
    /// Clear every link cut by the previous `Partition` (and mark the
    /// current disturbance window closed).
    Heal,
    /// Apply `fault` to the link `a ↔ b` (both directions).
    LinkFault {
        /// One endpoint.
        a: ProcessId,
        /// The other endpoint.
        b: ProcessId,
        /// The fault parameters.
        fault: LinkFault,
    },
    /// Clear the link fault on `a ↔ b`.
    LinkHeal {
        /// One endpoint.
        a: ProcessId,
        /// The other endpoint.
        b: ProcessId,
    },
    /// Execute a transient-fault plan (state scrambling + channel garbage).
    Corrupt(FaultPlan),
    /// Move the Byzantine strategy to server `to`: the old seat restarts
    /// as a fresh honest automaton, `to` restarts as a fresh adversary.
    RelocateByz {
        /// The new Byzantine seat.
        to: ProcessId,
    },
}

impl NemesisEvent {
    /// Short kind name for logs and per-kind counters.
    pub fn kind(&self) -> &'static str {
        match self {
            NemesisEvent::Crash(_) => "crash",
            NemesisEvent::Restart(_) => "restart",
            NemesisEvent::Partition { .. } => "partition",
            NemesisEvent::Heal => "heal",
            NemesisEvent::LinkFault { .. } => "link-fault",
            NemesisEvent::LinkHeal { .. } => "link-heal",
            NemesisEvent::Corrupt(_) => "corrupt",
            NemesisEvent::RelocateByz { .. } => "relocate-byz",
        }
    }

    /// Whether this event opens a disturbance window.
    pub fn is_disturbance(&self) -> bool {
        matches!(
            self,
            NemesisEvent::Crash(_)
                | NemesisEvent::Partition { .. }
                | NemesisEvent::LinkFault { .. }
                | NemesisEvent::Corrupt(_)
                | NemesisEvent::RelocateByz { .. }
        )
    }
}

/// Knobs for [`NemesisSchedule::random`].
#[derive(Clone, Debug)]
pub struct NemesisOpts {
    /// Server pids are `0..servers`; all targets are drawn from here.
    pub servers: usize,
    /// Total process count (servers + clients) for corruption plans.
    pub total_procs: usize,
    /// Current Byzantine seat, if any. Never targeted by crash/corrupt
    /// windows (so at most one *honest* server is disturbed at a time);
    /// relocation windows move it.
    pub byz_seat: Option<ProcessId>,
    /// No event fires before this time.
    pub start_after: u64,
    /// No disturbance opens after `horizon - fault_len`.
    pub horizon: u64,
    /// How long each disturbance window stays open before its recovery.
    pub fault_len: u64,
    /// Quiet time between a recovery and the next disturbance. Must be
    /// long enough for a write to complete (Assumption 1 between
    /// windows), or state lost to consecutive restarts can accumulate
    /// past `f`.
    pub min_gap: u64,
    /// Severity of `Corrupt` windows.
    pub severity: CorruptionSeverity,
    /// Fault parameters of `LinkFault` windows.
    pub link_fault: LinkFault,
}

impl Default for NemesisOpts {
    fn default() -> Self {
        Self {
            servers: 6,
            total_procs: 8,
            byz_seat: None,
            start_after: 500,
            horizon: 18_000,
            fault_len: 1_200,
            min_gap: 2_200,
            severity: CorruptionSeverity::Light,
            link_fault: LinkFault::flaky(0.3, 0.2, 15),
        }
    }
}

/// A time-sorted list of nemesis events.
#[derive(Clone, Debug, Default)]
pub struct NemesisSchedule {
    events: Vec<(u64, NemesisEvent)>,
}

impl NemesisSchedule {
    /// A scripted schedule; events are stably sorted by time.
    pub fn scripted(mut events: Vec<(u64, NemesisEvent)>) -> Self {
        events.sort_by_key(|&(t, _)| t);
        Self { events }
    }

    /// A seeded random schedule: serialized disturbance windows of
    /// `opts.fault_len`, separated by `opts.min_gap`, cycling through the
    /// five window templates (crash+restart, partition+heal,
    /// link-fault+link-heal, corrupt+heal, relocate-byz+heal) so that any
    /// schedule long enough for five windows fires five distinct
    /// disturbance kinds. Targets are drawn uniformly from the honest
    /// servers; the generator tracks the Byzantine seat across
    /// relocations.
    pub fn random(seed: u64, opts: &NemesisOpts) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4E45_4D45_5349_5321);
        let mut byz = opts.byz_seat;
        let mut events = Vec::new();
        let mut t = opts.start_after;
        let mut template = 0usize;
        while t + opts.fault_len <= opts.horizon {
            let target = Self::pick_honest(&mut rng, opts.servers, byz);
            let recover_at = t + opts.fault_len;
            match template % 5 {
                0 => {
                    events.push((t, NemesisEvent::Crash(target)));
                    events.push((recover_at, NemesisEvent::Restart(target)));
                }
                1 => {
                    events.push((t, NemesisEvent::Partition { side: vec![target] }));
                    events.push((recover_at, NemesisEvent::Heal));
                }
                2 => {
                    let peer = Self::pick_peer(&mut rng, opts.servers, target);
                    events.push((
                        t,
                        NemesisEvent::LinkFault { a: target, b: peer, fault: opts.link_fault },
                    ));
                    events.push((recover_at, NemesisEvent::LinkHeal { a: target, b: peer }));
                }
                3 => {
                    let plan = FaultPlan::targeting(&[target], opts.total_procs, opts.severity);
                    events.push((t, NemesisEvent::Corrupt(plan)));
                    events.push((recover_at, NemesisEvent::Heal));
                }
                _ => {
                    if byz.is_some() {
                        events.push((t, NemesisEvent::RelocateByz { to: target }));
                        byz = Some(target);
                    } else {
                        // No Byzantine seat to move: substitute a lossy link.
                        let peer = Self::pick_peer(&mut rng, opts.servers, target);
                        events.push((
                            t,
                            NemesisEvent::LinkFault { a: target, b: peer, fault: opts.link_fault },
                        ));
                    }
                    events.push((recover_at, NemesisEvent::Heal));
                }
            }
            template += 1;
            t = recover_at + opts.min_gap;
        }
        Self::scripted(events)
    }

    fn pick_honest(rng: &mut StdRng, servers: usize, byz: Option<ProcessId>) -> ProcessId {
        assert!(servers > byz.map(|_| 1).unwrap_or(0), "need at least one honest server");
        loop {
            let s = rng.gen_range(0..servers);
            if Some(s) != byz {
                return s;
            }
        }
    }

    fn pick_peer(rng: &mut StdRng, servers: usize, not: ProcessId) -> ProcessId {
        loop {
            let s = rng.gen_range(0..servers);
            if s != not {
                return s;
            }
        }
    }

    /// The events, sorted by time.
    pub fn events(&self) -> &[(u64, NemesisEvent)] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of distinct *disturbance* kinds the schedule will fire.
    pub fn distinct_disturbances(&self) -> usize {
        let kinds: std::collections::BTreeSet<&'static str> =
            self.events.iter().filter(|(_, e)| e.is_disturbance()).map(|(_, e)| e.kind()).collect();
        kinds.len()
    }

    /// Time of the last scheduled event.
    pub fn horizon(&self) -> u64 {
        self.events.last().map(|&(t, _)| t).unwrap_or(0)
    }
}

/// Factory producing a fresh automaton for a restarted process.
pub type AutomatonFactory<M, O> = Box<dyn FnMut(ProcessId) -> Box<dyn Automaton<M, O>> + Send>;

/// Fires a [`NemesisSchedule`] against a substrate at the right times.
///
/// The driver calls [`NemesisRunner::fire_due`] between workload
/// operations; every event whose time has been reached executes through
/// the [`Substrate`] surface, so the same schedule drives the simulator
/// and the threaded runtime identically.
pub struct NemesisRunner<M, O> {
    pending: VecDeque<(u64, NemesisEvent)>,
    make_honest: AutomatonFactory<M, O>,
    make_byz: Option<AutomatonFactory<M, O>>,
    garbage: Box<dyn FnMut(&mut StdRng) -> M + Send>,
    byz_at: Option<ProcessId>,
    partition_pairs: Vec<(ProcessId, ProcessId)>,
    active: u32,
    fired: BTreeMap<&'static str, u64>,
    /// Every fired event as `(fire time, kind)`.
    pub log: Vec<(u64, &'static str)>,
    /// Times at which the last open disturbance window closed.
    pub clear_times: Vec<u64>,
}

impl<M, O> NemesisRunner<M, O> {
    /// Build a runner. `make_byz`/`byz_at` describe the current Byzantine
    /// seat (both `None` for an all-honest cluster); `garbage` generates
    /// in-transit junk for `Corrupt` events.
    pub fn new(
        schedule: NemesisSchedule,
        make_honest: AutomatonFactory<M, O>,
        make_byz: Option<AutomatonFactory<M, O>>,
        byz_at: Option<ProcessId>,
        garbage: Box<dyn FnMut(&mut StdRng) -> M + Send>,
    ) -> Self {
        Self {
            pending: schedule.events.into(),
            make_honest,
            make_byz,
            garbage,
            byz_at,
            partition_pairs: Vec::new(),
            active: 0,
            fired: BTreeMap::new(),
            log: Vec::new(),
            clear_times: Vec::new(),
        }
    }

    /// Whether every scheduled event has fired.
    pub fn done(&self) -> bool {
        self.pending.is_empty()
    }

    /// Time of the next pending event.
    pub fn next_at(&self) -> Option<u64> {
        self.pending.front().map(|&(t, _)| t)
    }

    /// Whether no disturbance window is currently open.
    pub fn all_clear(&self) -> bool {
        self.active == 0
    }

    /// Current Byzantine seat.
    pub fn byz_at(&self) -> Option<ProcessId> {
        self.byz_at
    }

    /// Number of distinct disturbance kinds fired so far.
    pub fn distinct_disturbances_fired(&self) -> usize {
        self.fired
            .keys()
            .filter(|k| **k != "restart" && **k != "heal" && **k != "link-heal")
            .count()
    }

    /// Total events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.fired.values().sum()
    }

    /// Fire every event whose time is at or before `sub.now()`. Returns
    /// the number fired.
    pub fn fire_due<S: Substrate<M, O>>(&mut self, sub: &mut S) -> usize {
        let mut n = 0;
        while self.next_at().map(|t| t <= sub.now()).unwrap_or(false) {
            self.fire_next(sub);
            n += 1;
        }
        n
    }

    /// Fire the next pending event regardless of its scheduled time —
    /// the fast-forward used when the substrate has gone quiet before
    /// the schedule's clock caught up. Returns `false` when done.
    pub fn fire_next<S: Substrate<M, O>>(&mut self, sub: &mut S) -> bool {
        let Some((_, ev)) = self.pending.pop_front() else {
            return false;
        };
        let now = sub.now();
        *self.fired.entry(ev.kind()).or_insert(0) += 1;
        self.log.push((now, ev.kind()));
        if ev.is_disturbance() {
            self.active += 1;
        }
        match ev {
            NemesisEvent::Crash(pid) => sub.crash(pid),
            NemesisEvent::Restart(pid) => {
                let auto = self.spawn_for(pid);
                sub.restart(pid, auto);
                self.close_window(now);
            }
            NemesisEvent::Partition { side } => {
                let n = sub.process_count();
                for &a in &side {
                    for b in 0..n {
                        if side.contains(&b) {
                            continue;
                        }
                        sub.set_link_fault(a, b, Some(LinkFault::cut()));
                        sub.set_link_fault(b, a, Some(LinkFault::cut()));
                        self.partition_pairs.push((a, b));
                    }
                }
            }
            NemesisEvent::Heal => {
                for (a, b) in std::mem::take(&mut self.partition_pairs) {
                    sub.set_link_fault(a, b, None);
                    sub.set_link_fault(b, a, None);
                }
                self.close_window(now);
            }
            NemesisEvent::LinkFault { a, b, fault } => {
                sub.set_link_fault(a, b, Some(fault));
                sub.set_link_fault(b, a, Some(fault));
            }
            NemesisEvent::LinkHeal { a, b } => {
                sub.set_link_fault(a, b, None);
                sub.set_link_fault(b, a, None);
                self.close_window(now);
            }
            NemesisEvent::Corrupt(plan) => {
                sub.apply_fault(&plan, &mut *self.garbage);
            }
            NemesisEvent::RelocateByz { to } => {
                if self.byz_at != Some(to) {
                    if let Some(old) = self.byz_at.take() {
                        let honest = (self.make_honest)(old);
                        sub.restart(old, honest);
                    }
                    if let Some(make_byz) = &mut self.make_byz {
                        let byz = make_byz(to);
                        sub.restart(to, byz);
                        self.byz_at = Some(to);
                    }
                }
            }
        }
        true
    }

    fn spawn_for(&mut self, pid: ProcessId) -> Box<dyn Automaton<M, O>> {
        if self.byz_at == Some(pid) {
            if let Some(make_byz) = &mut self.make_byz {
                return make_byz(pid);
            }
        }
        (self.make_honest)(pid)
    }

    fn close_window(&mut self, now: u64) {
        self.active = self.active.saturating_sub(1);
        if self.active == 0 {
            self.clear_times.push(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_schedule_is_deterministic_per_seed() {
        let opts = NemesisOpts::default();
        let a = NemesisSchedule::random(7, &opts);
        let b = NemesisSchedule::random(7, &opts);
        assert_eq!(a.len(), b.len());
        for ((ta, ea), (tb, eb)) in a.events().iter().zip(b.events()) {
            assert_eq!(ta, tb);
            assert_eq!(ea.kind(), eb.kind());
        }
        let c = NemesisSchedule::random(8, &opts);
        assert_eq!(a.len(), c.len(), "same knobs, same window count");
    }

    #[test]
    fn random_schedule_fires_five_distinct_disturbances() {
        let opts = NemesisOpts { byz_seat: Some(5), ..NemesisOpts::default() };
        let s = NemesisSchedule::random(3, &opts);
        assert!(s.distinct_disturbances() >= 5, "{s:?}");
        // Every disturbance is paired with a recovery.
        let (dist, recov): (Vec<_>, Vec<_>) =
            s.events().iter().partition(|(_, e)| e.is_disturbance());
        assert_eq!(dist.len(), recov.len(), "{s:?}");
    }

    #[test]
    fn random_schedule_never_targets_the_byz_seat_with_crashes() {
        let opts = NemesisOpts { byz_seat: Some(0), servers: 2, ..NemesisOpts::default() };
        let s = NemesisSchedule::random(11, &opts);
        let mut byz = Some(0);
        for (_, ev) in s.events() {
            match ev {
                NemesisEvent::Crash(p) => assert_ne!(Some(*p), byz),
                NemesisEvent::RelocateByz { to } => byz = Some(*to),
                _ => {}
            }
        }
    }

    #[test]
    fn scripted_schedule_sorts_by_time() {
        let s =
            NemesisSchedule::scripted(vec![(50, NemesisEvent::Heal), (10, NemesisEvent::Crash(1))]);
        assert_eq!(s.events()[0].0, 10);
        assert_eq!(s.horizon(), 50);
    }
}
