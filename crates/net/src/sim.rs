//! The deterministic discrete-event simulator.
//!
//! Executions of the paper's model are sequences of message deliveries with
//! arbitrary finite delays. The simulator realizes one such execution per
//! seed: every send samples a delay from the configured [`DelayModel`]
//! (FIFO-corrected per channel), events are totally ordered by
//! `(time, sequence)`, and all randomness flows from one seeded [`StdRng`] —
//! so a `(topology, workload, seed)` triple reproduces the exact same
//! execution, message for message. Scripted adversarial schedules (Theorem 1)
//! are built from the channel pause/resume controls.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt::Debug;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::batch::{BatchPolicy, Frame, LinkBatcher};
use crate::channel::{ChannelMap, DelayModel, Scheduled};
use crate::metrics::NetMetrics;
use crate::nemesis::LinkFault;
use crate::process::{Automaton, Ctx, ProcessId, ENV};
use crate::trace::Trace;

/// Simulator construction parameters.
#[derive(Clone, Debug, Default)]
pub struct SimConfig {
    /// Seed for all simulator randomness (delays, adversary coin flips).
    pub seed: u64,
    /// Message delay distribution.
    pub delay: DelayModel,
    /// Ring-buffer capacity of the debug trace (0 disables tracing).
    pub trace_capacity: usize,
    /// Per-link message coalescing policy (disabled by default; disabled
    /// batching reproduces the exact pre-batching event and RNG streams).
    pub batch: BatchPolicy,
}

impl SimConfig {
    /// Config with a specific seed and default delays.
    pub fn seeded(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// Replace the delay model.
    pub fn with_delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Enable the debug trace.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Replace the link-batching policy.
    pub fn with_batching(mut self, batch: BatchPolicy) -> Self {
        self.batch = batch;
        self
    }
}

enum EventKind<M> {
    Deliver {
        from: ProcessId,
        to: ProcessId,
        frame: Frame<M>,
    },
    Timer {
        pid: ProcessId,
        id: u64,
        incarnation: u64,
    },
    /// Tick-watermark flush of every pending link batch (batching only).
    Flush,
}

struct Queued<M> {
    time: u64,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Queued<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Queued<M> {}
impl<M> PartialOrd for Queued<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Queued<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Identity of an *enabled* event class, as enumerated by
/// [`Simulation::enabled_events`] and consumed by [`Simulation::step_key`].
///
/// A schedule explorer forks on these keys rather than on raw queue entries:
/// a `Channel` key stands for "deliver the FIFO head of the `(from, to)`
/// channel next" and a `Timer` key for "fire this pending timer next". The
/// key deliberately omits the queued delivery *time* — an asynchronous
/// adversary may reorder deliveries across channels arbitrarily, and tying
/// the identity to stable `(src, dst)` pairs is what lets a replayed key
/// sequence mean the same thing in every interleaving.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKey {
    /// Deliver the earliest in-flight message on the directed channel.
    Channel {
        /// Sending process (may be [`ENV`]).
        from: ProcessId,
        /// Receiving process.
        to: ProcessId,
    },
    /// Fire the pending timer `id` armed by `pid`'s current incarnation.
    Timer {
        /// Process that armed the timer.
        pid: ProcessId,
        /// Timer id as passed to `Ctx::set_timer`.
        id: u64,
    },
}

/// Record of one processed event, as returned by [`Simulation::step`].
#[derive(Clone, Debug)]
pub struct SimEvent<O> {
    /// Virtual time at which the event was processed.
    pub time: u64,
    /// The process that acted.
    pub pid: ProcessId,
    /// Observable outputs the process emitted during this event.
    pub outputs: Vec<O>,
}

/// A deterministic discrete-event simulation over automata exchanging `M`
/// and emitting observables `O`.
pub struct Simulation<M, O> {
    now: u64,
    seq: u64,
    queue: BinaryHeap<Queued<M>>,
    procs: Vec<Box<dyn Automaton<M, O>>>,
    crashed: Vec<bool>,
    /// Bumped on every restart of a pid; timer events carry the incarnation
    /// they were armed under, so timers armed before a restart never fire
    /// into the fresh automaton.
    incarnation: Vec<u64>,
    channels: ChannelMap<Frame<M>>,
    rng: StdRng,
    metrics: NetMetrics,
    trace: Trace,
    started: bool,
    halted: bool,
    batch: BatchPolicy,
    batcher: LinkBatcher<M>,
    /// Invariant: whenever the batcher holds pending messages, exactly one
    /// `Flush` event is queued — so `is_quiet` never lies about liveness.
    flush_armed: bool,
}

impl<M, O> Simulation<M, O>
where
    M: Clone + Debug + Send + 'static,
    O: Clone + Debug + Send + 'static,
{
    /// Create an empty simulation.
    pub fn new(config: SimConfig) -> Self {
        Self {
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            procs: Vec::new(),
            crashed: Vec::new(),
            incarnation: Vec::new(),
            channels: ChannelMap::new(config.delay),
            rng: StdRng::seed_from_u64(config.seed),
            metrics: NetMetrics::default(),
            trace: Trace::new(config.trace_capacity),
            started: false,
            halted: false,
            batch: config.batch,
            batcher: LinkBatcher::new(),
            flush_armed: false,
        }
    }

    /// Register a process; returns its id (assigned densely from 0).
    pub fn add_process(&mut self, a: Box<dyn Automaton<M, O>>) -> ProcessId {
        self.procs.push(a);
        self.crashed.push(false);
        self.incarnation.push(0);
        self.procs.len() - 1
    }

    /// Number of registered processes.
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Network metrics collected so far.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// The debug trace (empty unless enabled in [`SimConfig`]).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to a process automaton (for typed state inspection in
    /// tests via `as_any_mut`-style downcasts provided by protocol crates).
    pub fn process_mut(&mut self, pid: ProcessId) -> &mut dyn Automaton<M, O> {
        &mut *self.procs[pid]
    }

    /// Run each process's `on_start` hook. Idempotent.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for pid in 0..self.procs.len() {
            self.dispatch(pid, |auto, ctx| auto.on_start(ctx));
        }
    }

    /// Run one automaton callback with a context, then absorb its effects.
    /// The RNG is moved out for the duration so the borrow of `self` splits.
    fn dispatch(
        &mut self,
        pid: ProcessId,
        f: impl FnOnce(&mut dyn Automaton<M, O>, &mut Ctx<'_, M, O>),
    ) -> Vec<O> {
        let mut rng = std::mem::replace(&mut self.rng, StdRng::seed_from_u64(0));
        let mut ctx = Ctx::new(pid, self.now, &mut rng);
        f(&mut *self.procs[pid], &mut ctx);
        let (outbox, outputs, timers) = (
            std::mem::take(&mut ctx.outbox),
            std::mem::take(&mut ctx.outputs),
            std::mem::take(&mut ctx.timers),
        );
        drop(ctx);
        self.rng = rng;
        self.absorb(pid, outbox, timers);
        outputs
    }

    fn push(&mut self, time: u64, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Queued { time, seq, kind });
    }

    /// Route one frame through the channel map, honoring pauses and link
    /// faults, and enqueue the resulting delivery (and duplicate) events.
    /// Faults act on whole frames: a dropped frame drops every message it
    /// carries, a duplicated frame delivers all of them twice.
    fn schedule_send(&mut self, from: ProcessId, to: ProcessId, frame: Frame<M>) {
        let logical = frame.len();
        match self.channels.schedule(from, to, self.now, frame, &mut self.rng) {
            Scheduled::Held => {}
            Scheduled::Dropped => {
                for _ in 0..logical {
                    self.metrics.record_drop();
                }
            }
            Scheduled::Deliver { at, msg, dup_at } => {
                if let Some(t2) = dup_at {
                    self.push(t2, EventKind::Deliver { from, to, frame: msg.clone() });
                }
                self.push(at, EventKind::Deliver { from, to, frame: msg });
            }
        }
    }

    /// Ship a drained link queue as one wire frame.
    fn send_frame(&mut self, from: ProcessId, to: ProcessId, queue: Vec<M>) {
        self.metrics.record_frame_sent();
        self.schedule_send(from, to, Frame::from_queue(queue));
    }

    /// Collect effects from a finished callback into the event queue.
    fn absorb(&mut self, pid: ProcessId, outbox: Vec<(ProcessId, M)>, timers: Vec<(u64, u64)>) {
        for (to, msg) in outbox {
            if to == ENV || to >= self.procs.len() {
                self.metrics.record_drop();
                continue;
            }
            if self.batch.enabled() {
                self.metrics.record_logical_send(pid);
                match self.batcher.push(pid, to, msg, self.batch.max_batch) {
                    Some(queue) => self.send_frame(pid, to, queue),
                    None => {
                        if !self.flush_armed {
                            self.flush_armed = true;
                            self.push(self.now + self.batch.flush_ticks, EventKind::Flush);
                        }
                    }
                }
            } else {
                self.metrics.record_send(pid, to);
                self.schedule_send(pid, to, Frame::One(msg));
            }
        }
        for (delay, id) in timers {
            let incarnation = self.incarnation[pid];
            self.push(self.now + delay.max(1), EventKind::Timer { pid, id, incarnation });
        }
    }

    /// Deliver `msg` to `pid` as a command from the environment, after the
    /// usual channel delay (FIFO with respect to earlier commands to `pid`).
    /// Environment commands never batch: one command, one frame.
    pub fn inject(&mut self, pid: ProcessId, msg: M) {
        self.metrics.record_send(ENV, pid);
        self.schedule_send(ENV, pid, Frame::One(msg));
    }

    /// Place `msgs` in the channel `(from, to)` as if they were already in
    /// transit at time zero — the paper's "stale messages in transit"
    /// corruption of channel contents.
    pub fn preload_channel(&mut self, from: ProcessId, to: ProcessId, msgs: Vec<M>) {
        for msg in msgs {
            self.schedule_send(from, to, Frame::One(msg));
        }
    }

    /// Pause the channel `(from, to)` (messages buffer in order).
    pub fn pause_channel(&mut self, from: ProcessId, to: ProcessId) {
        self.channels.pause(from, to);
    }

    /// Pause every channel touching `pid` in both directions — a "slow
    /// server" in the sense of the Theorem 1 proof.
    pub fn pause_process_channels(&mut self, pid: ProcessId) {
        for other in 0..self.procs.len() {
            if other != pid {
                self.channels.pause(pid, other);
                self.channels.pause(other, pid);
            }
        }
        self.channels.pause(ENV, pid);
    }

    /// Resume the channel, scheduling all held messages FIFO.
    pub fn resume_channel(&mut self, from: ProcessId, to: ProcessId) {
        for (t, frame) in self.channels.resume(from, to, self.now, &mut self.rng) {
            self.push(t, EventKind::Deliver { from, to, frame });
        }
    }

    /// Resume every channel touching `pid`.
    pub fn resume_process_channels(&mut self, pid: ProcessId) {
        for other in 0..self.procs.len() {
            if other != pid {
                self.resume_channel(pid, other);
                self.resume_channel(other, pid);
            }
        }
        self.resume_channel(ENV, pid);
    }

    /// Partition the network: every channel between a process in `side_a`
    /// and one in `side_b` (both directions) is paused. Messages buffer in
    /// FIFO order and flow again on [`Simulation::heal`] — a partition in
    /// this model is a (possibly long) transient delay, which the paper's
    /// reliable-channel assumption permits.
    pub fn partition(&mut self, side_a: &[ProcessId], side_b: &[ProcessId]) {
        for &a in side_a {
            for &b in side_b {
                self.channels.pause(a, b);
                self.channels.pause(b, a);
            }
        }
    }

    /// Heal a partition created with [`Simulation::partition`]: resume all
    /// cross-side channels, releasing buffered messages in order.
    pub fn heal(&mut self, side_a: &[ProcessId], side_b: &[ProcessId]) {
        for &a in side_a {
            for &b in side_b {
                self.resume_channel(a, b);
                self.resume_channel(b, a);
            }
        }
    }

    /// Crash `pid`: all future deliveries to it are dropped silently.
    pub fn crash(&mut self, pid: ProcessId) {
        self.crashed[pid] = true;
    }

    /// Whether `pid` has crashed.
    pub fn is_crashed(&self, pid: ProcessId) -> bool {
        self.crashed[pid]
    }

    /// Restart `pid` with a fresh automaton: crash *recovery* with state
    /// loss. The replacement starts from its initial state (its `on_start`
    /// runs if the simulation has started), pending timers armed by the old
    /// incarnation are invalidated, and in-flight messages to `pid` deliver
    /// normally — a restarted process is indistinguishable from one whose
    /// memory was transiently corrupted to an initial state, which is
    /// exactly the fault class the paper's algorithm stabilizes from.
    pub fn restart(&mut self, pid: ProcessId, auto: Box<dyn Automaton<M, O>>) {
        self.procs[pid] = auto;
        self.crashed[pid] = false;
        self.incarnation[pid] += 1;
        if self.started {
            self.dispatch(pid, |auto, ctx| auto.on_start(ctx));
        }
    }

    /// Install (`Some`) or clear (`None`) a [`LinkFault`] on the directed
    /// channel `(from, to)`.
    pub fn set_link_fault(&mut self, from: ProcessId, to: ProcessId, fault: Option<LinkFault>) {
        self.channels.set_fault(from, to, fault);
    }

    /// Halt the simulation: discard every pending event. Nothing pending at
    /// halt time is ever delivered, and subsequent [`Simulation::step`]
    /// calls return `None`.
    pub fn halt(&mut self) {
        self.halted = true;
        self.queue.clear();
        let _ = self.batcher.drain_all();
        self.flush_armed = false;
    }

    /// Apply a transient fault to `pid`'s local state (delegates to the
    /// automaton's [`Automaton::corrupt`]).
    pub fn corrupt_process(&mut self, pid: ProcessId) {
        self.procs[pid].corrupt(&mut self.rng);
    }

    /// Execute a [`crate::corruption::FaultPlan`]: scramble the listed
    /// process states and preload `gen`-produced garbage messages on the
    /// listed channels — modelling the paper's arbitrary initial
    /// configuration (corrupted memories *and* corrupted channel contents).
    pub fn apply_fault(
        &mut self,
        plan: &crate::corruption::FaultPlan,
        mut gen: impl FnMut(&mut StdRng) -> M,
    ) {
        for &pid in &plan.corrupt_processes {
            if pid < self.procs.len() {
                self.procs[pid].corrupt(&mut self.rng);
            }
        }
        for &(from, to) in &plan.garbage_channels {
            let msgs: Vec<M> = (0..plan.garbage_per_channel).map(|_| gen(&mut self.rng)).collect();
            self.preload_channel(from, to, msgs);
        }
    }

    /// True when no events remain.
    pub fn is_quiet(&self) -> bool {
        self.queue.is_empty()
    }

    /// Pending event count.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Apply one frame to a live process: a single message dispatches as
    /// before; a batch dispatches every carried message through **one**
    /// shared context, so replies produced while applying the batch coalesce
    /// into outgoing frames of their own (batch-in → batch-out).
    fn deliver_frame(&mut self, from: ProcessId, to: ProcessId, frame: Frame<M>) -> Vec<O> {
        match frame {
            Frame::One(msg) => {
                self.metrics.record_delivery(from, to);
                self.trace.record(self.now, from, to, || format!("{msg:?}"));
                self.dispatch(to, move |auto, ctx| auto.on_message(from, msg, ctx))
            }
            Frame::Batch(msgs) => {
                self.metrics.record_batch_delivery(to, msgs.len() as u64);
                for msg in &msgs {
                    self.trace.record(self.now, from, to, || format!("{msg:?}"));
                }
                self.dispatch(to, move |auto, ctx| {
                    for msg in msgs {
                        auto.on_message(from, msg, ctx);
                    }
                })
            }
        }
    }

    /// Process one event. Returns `None` when the queue is empty or the
    /// simulation was halted.
    pub fn step(&mut self) -> Option<SimEvent<O>> {
        if self.halted {
            return None;
        }
        self.start();
        let ev = self.queue.pop()?;
        debug_assert!(ev.time >= self.now, "time must be monotone");
        self.now = ev.time;
        match ev.kind {
            EventKind::Deliver { from, to, frame } => {
                self.metrics.record_event();
                if self.crashed[to] {
                    for _ in 0..frame.len() {
                        self.metrics.record_drop();
                    }
                    return Some(SimEvent { time: self.now, pid: to, outputs: Vec::new() });
                }
                let outputs = self.deliver_frame(from, to, frame);
                Some(SimEvent { time: self.now, pid: to, outputs })
            }
            EventKind::Timer { pid, id, incarnation } => {
                self.metrics.record_event();
                if self.crashed[pid] || incarnation != self.incarnation[pid] {
                    return Some(SimEvent { time: self.now, pid, outputs: Vec::new() });
                }
                let outputs = self.dispatch(pid, move |auto, ctx| auto.on_timer(id, ctx));
                Some(SimEvent { time: self.now, pid, outputs })
            }
            EventKind::Flush => {
                // Tick watermark: ship every pending link queue. Not a
                // protocol event, so it is excluded from events_processed.
                self.flush_armed = false;
                for ((from, to), queue) in self.batcher.drain_all() {
                    self.send_frame(from, to, queue);
                }
                Some(SimEvent { time: self.now, pid: ENV, outputs: Vec::new() })
            }
        }
    }

    /// Guard for the schedule-exploration API ([`Simulation::enabled_events`]
    /// / [`Simulation::step_key`]): link batching holds messages in the
    /// [`LinkBatcher`] outside the event queue, where the explorer cannot
    /// see them — a "quiescent" verdict with a non-empty batcher would be a
    /// bogus termination claim, and `Flush` events are not key-addressable
    /// anyway. Exploration therefore requires batching off; panic loudly
    /// instead of silently exploring the wrong tree.
    fn assert_explorable(&self) {
        assert!(
            !self.batch.enabled(),
            "schedule exploration (enabled_events/step_key) requires batching off: \
             BatchPolicy {{ max_batch: {}, flush_ticks: {} }} holds messages in the \
             LinkBatcher where the explorer cannot see them, so quiescence verdicts \
             would be bogus. Build the explored cluster with BatchPolicy::disabled().",
            self.batch.max_batch,
            self.batch.flush_ticks,
        );
        debug_assert!(
            self.batcher.is_empty(),
            "batching disabled but the LinkBatcher holds {} pending messages",
            self.batcher.pending_len(),
        );
    }

    /// Enumerate the distinct [`EventKey`]s that are currently *enabled*:
    /// every directed channel with at least one in-flight delivery to a
    /// live process, and every pending timer armed by the current
    /// incarnation of a live process. Dead queue entries (deliveries to
    /// crashed processes, timers of superseded incarnations) are excluded —
    /// they can never cause a state change, so an explorer should neither
    /// fork on them nor wait for them. The result is sorted and deduplicated
    /// so identical simulator states always report identical key lists.
    pub fn enabled_events(&self) -> Vec<EventKey> {
        self.assert_explorable();
        if self.halted {
            return Vec::new();
        }
        let mut keys: Vec<EventKey> = Vec::new();
        for q in self.queue.iter() {
            match &q.kind {
                EventKind::Deliver { from, to, .. } => {
                    if !self.crashed[*to] {
                        keys.push(EventKey::Channel { from: *from, to: *to });
                    }
                }
                EventKind::Timer { pid, id, incarnation } => {
                    if !self.crashed[*pid] && *incarnation == self.incarnation[*pid] {
                        keys.push(EventKey::Timer { pid: *pid, id: *id });
                    }
                }
                // Flush events are substrate bookkeeping, not explorable
                // protocol events (batching off is enforced by
                // `assert_explorable`, so none can be pending here).
                EventKind::Flush => {}
            }
        }
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Process the earliest queued event matching `key`, regardless of any
    /// earlier events on *other* channels — the step-by-key API a schedule
    /// explorer uses to realize an arbitrary interleaving.
    ///
    /// Unlike [`Simulation::step`], virtual time here is *logical*: it
    /// advances to `max(now + 1, event's scheduled time)` so time stays
    /// strictly monotone even when the chosen event was queued "in the
    /// past" relative to an already-executed later one. Within a single
    /// channel FIFO order is preserved (the earliest `(time, seq)` match is
    /// always taken), which is exactly the asynchronous-network guarantee
    /// the protocol assumes. Returns `None` when no live queue entry
    /// matches `key` (i.e. `key` is not in [`Simulation::enabled_events`]).
    pub fn step_key(&mut self, key: EventKey) -> Option<SimEvent<O>> {
        self.assert_explorable();
        if self.halted {
            return None;
        }
        self.start();
        let mut entries = std::mem::take(&mut self.queue).into_vec();
        let mut best: Option<usize> = None;
        for (i, q) in entries.iter().enumerate() {
            let matches = match (&q.kind, key) {
                (EventKind::Deliver { from, to, .. }, EventKey::Channel { from: kf, to: kt }) => {
                    *from == kf && *to == kt && !self.crashed[*to]
                }
                (
                    EventKind::Timer { pid, id, incarnation },
                    EventKey::Timer { pid: kp, id: ki },
                ) => {
                    *pid == kp
                        && *id == ki
                        && !self.crashed[*pid]
                        && *incarnation == self.incarnation[*pid]
                }
                _ => false,
            };
            if matches && best.is_none_or(|b| (q.time, q.seq) < (entries[b].time, entries[b].seq)) {
                best = Some(i);
            }
        }
        let Some(idx) = best else {
            self.queue = BinaryHeap::from(entries);
            return None;
        };
        let ev = entries.swap_remove(idx);
        self.queue = BinaryHeap::from(entries);
        self.now = (self.now + 1).max(ev.time);
        self.metrics.record_event();
        match ev.kind {
            EventKind::Deliver { from, to, frame } => {
                let outputs = self.deliver_frame(from, to, frame);
                Some(SimEvent { time: self.now, pid: to, outputs })
            }
            EventKind::Timer { pid, id, .. } => {
                let outputs = self.dispatch(pid, move |auto, ctx| auto.on_timer(id, ctx));
                Some(SimEvent { time: self.now, pid, outputs })
            }
            // No EventKey ever matches a Flush entry, so one can never be
            // selected above.
            EventKind::Flush => unreachable!("flush events are not key-addressable"),
        }
    }

    /// Stable fingerprint of the complete explorable simulator state, or
    /// `None` when some state component cannot be soundly fingerprinted —
    /// the explorer's dedup layer treats `None` as "never dedup here".
    ///
    /// Covered: every automaton's [`Automaton::state_digest`] (in pid
    /// order), crash flags, incarnations, and the pending event queue in
    /// *canonical* form — deliveries grouped per directed channel in FIFO
    /// order and timers as `(pid, id)` multisets, with scheduled times and
    /// sequence numbers excluded. Times are excluded deliberately: the
    /// explorer realizes interleavings by key, not by time, automata never
    /// read the clock, and two interleavings of independent events converge
    /// to states that differ *only* in times — precisely the states dedup
    /// exists to merge.
    ///
    /// Returns `None` when hidden state could make equal digests behave
    /// differently: a non-constant delay model or any faulted channel (the
    /// RNG cursor becomes state), paused or held channels (messages outside
    /// the queue), enabled batching, or any automaton that cannot digest
    /// itself.
    pub fn state_digest(&self) -> Option<u64> {
        let delay = self.channels.delay_model();
        if self.halted
            || delay.min != delay.max
            || self.batch.enabled()
            || !self.batcher.is_empty()
            || self.channels.any_paused_or_held()
            || self.channels.any_faulted()
        {
            return None;
        }
        let mut h = sbft_storage::Fnv64::new();
        for (pid, proc_) in self.procs.iter().enumerate() {
            h.usize(pid).u64(proc_.state_digest()?).sep();
        }
        for (pid, &c) in self.crashed.iter().enumerate() {
            if c {
                h.usize(pid);
            }
        }
        h.sep();
        for &i in &self.incarnation {
            h.u64(i);
        }
        h.sep();
        let mut delivers: Vec<(ProcessId, ProcessId, u64, u64, &Frame<M>)> = Vec::new();
        let mut timers: Vec<(ProcessId, u64)> = Vec::new();
        for q in self.queue.iter() {
            match &q.kind {
                EventKind::Deliver { from, to, frame } => {
                    if !self.crashed[*to] {
                        delivers.push((*from, *to, q.time, q.seq, frame));
                    }
                }
                EventKind::Timer { pid, id, incarnation } => {
                    if !self.crashed[*pid] && *incarnation == self.incarnation[*pid] {
                        timers.push((*pid, *id));
                    }
                }
                EventKind::Flush => return None,
            }
        }
        // Sorting by (from, to, time, seq) lists each channel's in-flight
        // messages contiguously in FIFO order; the hash then absorbs only
        // the order-invariant part (channel identity + payload).
        delivers.sort_unstable_by_key(|&(from, to, time, seq, _)| (from, to, time, seq));
        for (from, to, _, _, frame) in delivers {
            h.usize(from).usize(to).bytes(format!("{frame:?}").as_bytes()).sep();
        }
        h.sep();
        timers.sort_unstable();
        for (pid, id) in timers {
            h.usize(pid).u64(id);
        }
        Some(h.finish())
    }

    /// Run until the queue drains or `max_events` were processed; returns
    /// all outputs as `(time, pid, output)` triples.
    pub fn run_until_quiet(&mut self, max_events: u64) -> Vec<(u64, ProcessId, O)> {
        let mut collected = Vec::new();
        let mut n = 0;
        while n < max_events {
            match self.step() {
                Some(ev) => {
                    n += 1;
                    for o in ev.outputs {
                        collected.push((ev.time, ev.pid, o));
                    }
                }
                None => break,
            }
        }
        collected
    }

    /// Run until some output satisfies `pred` (returning it) or the budget
    /// runs out / the queue drains (returning `None`).
    pub fn run_until<F: FnMut(ProcessId, &O) -> bool>(
        &mut self,
        mut pred: F,
        max_events: u64,
    ) -> Option<(u64, ProcessId, O)> {
        let mut n = 0;
        while n < max_events {
            let ev = self.step()?;
            n += 1;
            for o in ev.outputs {
                if pred(ev.pid, &o) {
                    return Some((ev.time, ev.pid, o));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ping-pong automaton: replies with n-1 until zero, then outputs.
    struct PingPong;
    impl Automaton<u32, u32> for PingPong {
        fn on_message(&mut self, from: ProcessId, msg: u32, ctx: &mut Ctx<'_, u32, u32>) {
            if msg == 0 {
                ctx.output(0);
            } else if from != ENV {
                ctx.send(from, msg - 1);
            } else {
                // Kick off toward the other process (0 <-> 1).
                ctx.send(1 - ctx.me, msg - 1);
            }
        }
    }

    fn two_pingpong(seed: u64) -> Simulation<u32, u32> {
        let mut sim = Simulation::new(SimConfig::seeded(seed));
        sim.add_process(Box::new(PingPong));
        sim.add_process(Box::new(PingPong));
        sim
    }

    #[test]
    fn pingpong_terminates_with_output() {
        let mut sim = two_pingpong(7);
        sim.inject(0, 10);
        let out = sim.run_until_quiet(10_000);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].2, 0);
        assert_eq!(sim.metrics().messages_delivered, 11); // inject + 10 hops
    }

    #[test]
    fn determinism_per_seed() {
        let run = |seed| {
            let mut sim = two_pingpong(seed);
            sim.inject(0, 20);
            sim.run_until_quiet(10_000);
            (sim.now(), sim.metrics().messages_sent)
        };
        assert_eq!(run(3), run(3));
        // Different seeds give different delays hence (almost surely)
        // different finishing times.
        assert_ne!(run(3).0, run(4).0);
    }

    #[test]
    fn crash_drops_deliveries() {
        let mut sim = two_pingpong(1);
        sim.crash(1);
        sim.inject(0, 5);
        let out = sim.run_until_quiet(1_000);
        assert!(out.is_empty());
        assert!(sim.metrics().messages_dropped >= 1);
    }

    #[test]
    fn pause_and_resume_steers_schedule() {
        let mut sim = two_pingpong(1);
        sim.pause_channel(0, 1);
        sim.inject(0, 3); // 0 sends 2 to 1, but channel is held
        let out = sim.run_until_quiet(1_000);
        assert!(out.is_empty());
        assert!(!sim.is_quiet() || sim.pending_events() == 0);
        sim.resume_channel(0, 1);
        let out = sim.run_until_quiet(1_000);
        // 3 -> 2 -> 1 -> 0: the countdown reaches zero at process 1.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, 1);
        assert!(sim.is_quiet());
        assert!(sim.metrics().messages_delivered >= 3);
    }

    #[test]
    fn run_until_finds_output() {
        let mut sim = two_pingpong(9);
        sim.inject(0, 6);
        let hit = sim.run_until(|_, &o| o == 0, 10_000);
        assert!(hit.is_some());
    }

    #[test]
    fn env_commands_are_fifo() {
        struct Collect(Vec<u32>);
        impl Automaton<u32, Vec<u32>> for Collect {
            fn on_message(&mut self, _from: ProcessId, msg: u32, ctx: &mut Ctx<'_, u32, Vec<u32>>) {
                self.0.push(msg);
                if self.0.len() == 5 {
                    ctx.output(self.0.clone());
                }
            }
        }
        let mut sim: Simulation<u32, Vec<u32>> =
            Simulation::new(SimConfig::seeded(11).with_delay(DelayModel::uniform(1, 50)));
        sim.add_process(Box::new(Collect(Vec::new())));
        for i in 0..5 {
            sim.inject(0, i);
        }
        let out = sim.run_until_quiet(100);
        assert_eq!(out[0].2, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn preload_models_stale_in_transit_messages() {
        let mut sim = two_pingpong(2);
        sim.preload_channel(1, 0, vec![0, 0]);
        let out = sim.run_until_quiet(100);
        // Both stale messages trigger outputs at process 0.
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn restart_recovers_a_crashed_process() {
        let mut sim = two_pingpong(5);
        sim.crash(1);
        sim.inject(0, 5);
        assert!(sim.run_until_quiet(1_000).is_empty());
        sim.restart(1, Box::new(PingPong));
        sim.inject(0, 4);
        let out = sim.run_until_quiet(1_000);
        assert_eq!(out.len(), 1, "recovered process participates again");
    }

    #[test]
    fn restart_invalidates_stale_timers() {
        /// Arms a timer on start; outputs if it ever fires.
        struct Armed;
        impl Automaton<u32, u32> for Armed {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32, u32>) {
                ctx.set_timer(10, 1);
            }
            fn on_timer(&mut self, _id: u64, ctx: &mut Ctx<'_, u32, u32>) {
                ctx.output(99);
            }
            fn on_message(&mut self, _: ProcessId, _: u32, _: &mut Ctx<'_, u32, u32>) {}
        }
        /// Never arms anything.
        struct Inert;
        impl Automaton<u32, u32> for Inert {
            fn on_message(&mut self, _: ProcessId, _: u32, _: &mut Ctx<'_, u32, u32>) {}
        }
        let mut sim: Simulation<u32, u32> = Simulation::new(SimConfig::seeded(0));
        sim.add_process(Box::new(Armed));
        sim.start();
        sim.restart(0, Box::new(Inert));
        let out = sim.run_until_quiet(100);
        assert!(out.is_empty(), "old incarnation's timer must not fire: {out:?}");
    }

    #[test]
    fn halt_discards_pending_events() {
        let mut sim = two_pingpong(6);
        sim.inject(0, 10);
        sim.step();
        assert!(!sim.is_quiet());
        let delivered = sim.metrics().messages_delivered;
        sim.halt();
        assert!(sim.is_quiet());
        assert!(sim.step().is_none());
        assert_eq!(sim.metrics().messages_delivered, delivered, "halt ran no protocol work");
    }

    #[test]
    fn cut_link_fault_partitions_and_heals() {
        let mut sim = two_pingpong(8);
        sim.set_link_fault(0, 1, Some(LinkFault::cut()));
        sim.inject(0, 3); // 0's first hop toward 1 is dropped on the floor
        let out = sim.run_until_quiet(1_000);
        assert!(out.is_empty());
        assert!(sim.is_quiet(), "dropped messages leave nothing pending");
        sim.set_link_fault(0, 1, None);
        sim.inject(0, 3);
        let out = sim.run_until_quiet(1_000);
        assert_eq!(out.len(), 1, "healed link flows again");
    }

    #[test]
    fn duplicating_link_delivers_twice() {
        let mut sim = two_pingpong(9);
        sim.set_link_fault(1, 0, Some(LinkFault::flaky(0.0, 1.0, 0)));
        sim.inject(0, 2); // 0 -> 1 (clean), 1 -> 0 (duplicated), msg 0 at 0 twice
        let out = sim.run_until_quiet(1_000);
        assert_eq!(out.len(), 2, "duplicate of the final hop triggers a second output");
    }

    #[test]
    fn enabled_events_list_channel_heads_and_step_key_consumes_them() {
        let mut sim = two_pingpong(3);
        sim.inject(0, 3);
        assert_eq!(sim.enabled_events(), vec![EventKey::Channel { from: ENV, to: 0 }]);
        let ev = sim.step_key(EventKey::Channel { from: ENV, to: 0 }).expect("enabled");
        assert_eq!(ev.pid, 0);
        // 0 forwarded the countdown to 1; the env channel is now empty.
        assert_eq!(sim.enabled_events(), vec![EventKey::Channel { from: 0, to: 1 }]);
        // Stepping a key that is not enabled is a no-op returning None.
        assert!(sim.step_key(EventKey::Channel { from: ENV, to: 0 }).is_none());
        assert_eq!(sim.enabled_events(), vec![EventKey::Channel { from: 0, to: 1 }]);
    }

    #[test]
    #[should_panic(
        expected = "schedule exploration (enabled_events/step_key) requires batching off"
    )]
    fn enabled_events_panics_when_batching_is_on() {
        // Batching holds messages in the LinkBatcher outside the event
        // queue, so an explorer would report quiescence with messages still
        // pending. The exploration API must refuse, not mislead.
        let mut sim: Simulation<u32, u32> =
            Simulation::new(SimConfig::seeded(3).with_batching(BatchPolicy::new(4, 2)));
        sim.add_process(Box::new(PingPong));
        sim.add_process(Box::new(PingPong));
        sim.inject(0, 3);
        let _ = sim.enabled_events();
    }

    #[test]
    #[should_panic(
        expected = "schedule exploration (enabled_events/step_key) requires batching off"
    )]
    fn step_key_panics_when_batching_is_on() {
        let mut sim: Simulation<u32, u32> =
            Simulation::new(SimConfig::seeded(3).with_batching(BatchPolicy::new(4, 2)));
        sim.add_process(Box::new(PingPong));
        sim.add_process(Box::new(PingPong));
        sim.inject(0, 3);
        let _ = sim.step_key(EventKey::Channel { from: ENV, to: 0 });
    }

    #[test]
    fn step_key_preserves_per_channel_fifo_order() {
        struct Collect(Vec<u32>);
        impl Automaton<u32, u32> for Collect {
            fn on_message(&mut self, _from: ProcessId, msg: u32, ctx: &mut Ctx<'_, u32, u32>) {
                self.0.push(msg);
                ctx.output(msg);
            }
        }
        let mut sim: Simulation<u32, u32> =
            Simulation::new(SimConfig::seeded(4).with_delay(DelayModel::uniform(1, 40)));
        sim.add_process(Box::new(Collect(Vec::new())));
        for i in 0..5 {
            sim.inject(0, i);
        }
        let mut seen = Vec::new();
        while let Some(ev) = sim.step_key(EventKey::Channel { from: ENV, to: 0 }) {
            seen.extend(ev.outputs);
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4], "step_key must take channel heads in FIFO order");
        assert!(sim.enabled_events().is_empty());
    }

    #[test]
    fn enabled_events_exclude_crashed_and_stale() {
        let mut sim = two_pingpong(5);
        sim.inject(1, 4);
        sim.crash(1);
        assert!(sim.enabled_events().is_empty(), "deliveries to a crashed pid are dead");
        // Stale timers (armed by a superseded incarnation) are dead too.
        struct Armed;
        impl Automaton<u32, u32> for Armed {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32, u32>) {
                ctx.set_timer(10, 1);
            }
            fn on_message(&mut self, _: ProcessId, _: u32, _: &mut Ctx<'_, u32, u32>) {}
        }
        struct Inert;
        impl Automaton<u32, u32> for Inert {
            fn on_message(&mut self, _: ProcessId, _: u32, _: &mut Ctx<'_, u32, u32>) {}
        }
        let mut sim: Simulation<u32, u32> = Simulation::new(SimConfig::seeded(0));
        sim.add_process(Box::new(Armed));
        sim.start();
        assert_eq!(sim.enabled_events(), vec![EventKey::Timer { pid: 0, id: 1 }]);
        sim.restart(0, Box::new(Inert));
        assert!(sim.enabled_events().is_empty());
        assert!(sim.step_key(EventKey::Timer { pid: 0, id: 1 }).is_none());
    }

    #[test]
    fn step_key_keeps_time_monotone_across_out_of_order_picks() {
        // Two independent channels; pick the later-scheduled head first.
        struct Sink;
        impl Automaton<u32, u32> for Sink {
            fn on_message(&mut self, _: ProcessId, msg: u32, ctx: &mut Ctx<'_, u32, u32>) {
                ctx.output(msg);
            }
        }
        let mut sim: Simulation<u32, u32> =
            Simulation::new(SimConfig::seeded(7).with_delay(DelayModel::uniform(1, 100)));
        sim.add_process(Box::new(Sink));
        sim.add_process(Box::new(Sink));
        sim.inject(0, 10);
        sim.inject(1, 20);
        let t1 = sim.step_key(EventKey::Channel { from: ENV, to: 1 }).expect("enabled").time;
        let t0 = sim.step_key(EventKey::Channel { from: ENV, to: 0 }).expect("enabled").time;
        assert!(t0 > t1, "logical time must advance even for an earlier-queued pick");
        assert!(sim.enabled_events().is_empty());
    }

    #[test]
    fn step_key_interleavings_agree_on_unit_delay_outcomes() {
        // With unit delays no randomness is consumed per delivery, so any
        // exploration order reaches the same quiescent outcome.
        let run = |order: &[usize]| {
            let mut sim: Simulation<u32, u32> =
                Simulation::new(SimConfig::seeded(1).with_delay(DelayModel::unit()));
            sim.add_process(Box::new(PingPong));
            sim.add_process(Box::new(PingPong));
            sim.inject(0, 4);
            sim.inject(1, 4);
            let mut outputs = Vec::new();
            let mut cursor = 0;
            loop {
                let enabled = sim.enabled_events();
                if enabled.is_empty() {
                    break;
                }
                let pick = enabled[order[cursor % order.len()] % enabled.len()];
                cursor += 1;
                outputs.extend(sim.step_key(pick).expect("enabled key steps").outputs);
            }
            outputs.sort_unstable();
            (outputs, sim.metrics().messages_delivered, sim.metrics().messages_sent)
        };
        assert_eq!(run(&[0]), run(&[1, 0, 1]), "schedule choice must not change outcomes");
    }

    /// Fans `msg` messages 0..msg to process 1 on an env command.
    struct Fan;
    impl Automaton<u32, u32> for Fan {
        fn on_message(&mut self, from: ProcessId, msg: u32, ctx: &mut Ctx<'_, u32, u32>) {
            if from == ENV {
                for i in 0..msg {
                    ctx.send(1, i);
                }
            }
        }
    }
    /// Outputs every message it receives, in arrival order.
    struct Echo;
    impl Automaton<u32, u32> for Echo {
        fn on_message(&mut self, _from: ProcessId, msg: u32, ctx: &mut Ctx<'_, u32, u32>) {
            ctx.output(msg);
        }
    }

    fn fan_outputs(batch: BatchPolicy) -> (Vec<u32>, NetMetrics) {
        let mut sim: Simulation<u32, u32> =
            Simulation::new(SimConfig::seeded(13).with_batching(batch));
        sim.add_process(Box::new(Fan));
        sim.add_process(Box::new(Echo));
        sim.inject(0, 10);
        let out = sim.run_until_quiet(10_000);
        (out.into_iter().map(|(_, _, o)| o).collect(), sim.metrics().clone())
    }

    #[test]
    fn batching_coalesces_frames_without_reordering() {
        let (plain, pm) = fan_outputs(BatchPolicy::disabled());
        let (batched, bm) = fan_outputs(BatchPolicy::new(4, 2));
        assert_eq!(plain, (0..10).collect::<Vec<u32>>());
        assert_eq!(batched, plain, "batching must not reorder a link");
        // 1 injected command + 10 fanned messages, in both runs.
        assert_eq!(pm.messages_sent, 11);
        assert_eq!(bm.messages_sent, 11);
        assert_eq!(bm.messages_delivered, 11);
        assert_eq!(pm.frames_sent, 11, "unbatched: one frame per message");
        // Batched: inject frame + two full 4-frames + one flushed 2-frame.
        assert_eq!(bm.frames_sent, 4);
        assert_eq!(bm.frames_delivered, 4);
    }

    #[test]
    fn tick_watermark_flushes_stragglers() {
        // A single sub-watermark message must still arrive (via Flush).
        let mut sim: Simulation<u32, u32> =
            Simulation::new(SimConfig::seeded(1).with_batching(BatchPolicy::new(64, 3)));
        sim.add_process(Box::new(Fan));
        sim.add_process(Box::new(Echo));
        sim.inject(0, 1);
        let out = sim.run_until_quiet(1_000);
        assert_eq!(out.len(), 1, "pending batch must flush on the tick watermark");
        assert!(sim.is_quiet());
        assert_eq!(sim.metrics().frames_delivered, 2); // inject + flushed frame
    }

    #[test]
    fn batched_runs_are_deterministic_per_seed() {
        // Ping-pong is strictly sequential, so batching only re-frames.
        let run = || {
            let mut sim: Simulation<u32, u32> =
                Simulation::new(SimConfig::seeded(21).with_batching(BatchPolicy::new(8, 2)));
            sim.add_process(Box::new(PingPong));
            sim.add_process(Box::new(PingPong));
            sim.inject(0, 12);
            let outs = sim.run_until_quiet(10_000);
            let m = sim.metrics();
            (outs, m.messages_delivered, m.frames_delivered)
        };
        assert_eq!(run(), run(), "same seed + same policy must replay exactly");
        let (_, delivered, frames) = run();
        assert_eq!(delivered, 13, "logical count matches the unbatched protocol");
        assert_eq!(frames, 13, "sequential traffic never coalesces");
    }

    #[test]
    fn crashed_destination_drops_whole_frames() {
        let mut sim: Simulation<u32, u32> =
            Simulation::new(SimConfig::seeded(2).with_batching(BatchPolicy::new(4, 2)));
        sim.add_process(Box::new(Fan));
        sim.add_process(Box::new(Echo));
        sim.crash(1);
        sim.inject(0, 8);
        let out = sim.run_until_quiet(1_000);
        assert!(out.is_empty());
        assert_eq!(sim.metrics().messages_dropped, 8, "every batched message counts as dropped");
        assert!(sim.is_quiet());
    }

    #[test]
    fn trace_records_when_enabled() {
        let mut sim: Simulation<u32, u32> = Simulation::new(SimConfig::seeded(0).with_trace(16));
        sim.add_process(Box::new(PingPong));
        sim.add_process(Box::new(PingPong));
        sim.inject(0, 2);
        sim.run_until_quiet(100);
        assert!(sim.trace().entries().count() > 0);
    }
}
