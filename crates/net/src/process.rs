//! Sans-IO process automata.
//!
//! A process is a deterministic state machine reacting to delivered
//! messages; all effects (sends, timers, observable outputs) go through the
//! [`Ctx`] handed to each callback. The same automaton therefore runs
//! unchanged under the discrete-event simulator and the threaded runtime.

use rand::rngs::StdRng;

/// Index of a process within a simulation/cluster.
pub type ProcessId = usize;

/// The distinguished "environment" process: operation invocations and other
/// driver commands are delivered as messages *from* `ENV`.
pub const ENV: ProcessId = usize::MAX;

/// Drained effects of one callback: `(sends, outputs, timers)`.
pub type Effects<M, O> = (Vec<(ProcessId, M)>, Vec<O>, Vec<(u64, u64)>);

/// Effect sink passed to every automaton callback.
///
/// `M` is the protocol's wire message type; `O` the observable output type
/// (operation completions, decisions, diagnostics) collected by the harness.
pub struct Ctx<'a, M, O> {
    /// The acting process.
    pub me: ProcessId,
    /// Current virtual time (simulator) or a monotonic tick (threaded).
    pub now: u64,
    pub(crate) outbox: Vec<(ProcessId, M)>,
    pub(crate) outputs: Vec<O>,
    pub(crate) timers: Vec<(u64, u64)>,
    pub(crate) rng: &'a mut StdRng,
}

impl<'a, M, O> Ctx<'a, M, O> {
    pub(crate) fn new(me: ProcessId, now: u64, rng: &'a mut StdRng) -> Self {
        Self { me, now, outbox: Vec::new(), outputs: Vec::new(), timers: Vec::new(), rng }
    }

    /// Build a context outside any substrate — for unit-testing automata
    /// in isolation. Effects are inspected with [`Ctx::sent`],
    /// [`Ctx::emitted`] and [`Ctx::drain`].
    pub fn detached(me: ProcessId, now: u64, rng: &'a mut StdRng) -> Self {
        Self::new(me, now, rng)
    }

    /// Messages queued so far (testing aid).
    pub fn sent(&self) -> &[(ProcessId, M)] {
        &self.outbox
    }

    /// Outputs emitted so far (testing aid).
    pub fn emitted(&self) -> &[O] {
        &self.outputs
    }

    /// Take all queued effects: `(sends, outputs, timers)` (testing aid).
    pub fn drain(&mut self) -> Effects<M, O> {
        (
            std::mem::take(&mut self.outbox),
            std::mem::take(&mut self.outputs),
            std::mem::take(&mut self.timers),
        )
    }

    /// Send `msg` to `to` over the (reliable, FIFO) channel.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// Send `msg` to every process in `dests`.
    pub fn broadcast(&mut self, dests: impl IntoIterator<Item = ProcessId>, msg: M)
    where
        M: Clone,
    {
        for d in dests {
            self.outbox.push((d, msg.clone()));
        }
    }

    /// Emit an observable output (collected by the driver/harness).
    pub fn output(&mut self, o: O) {
        self.outputs.push(o);
    }

    /// Request an `on_timer(id)` callback after `delay` time units.
    pub fn set_timer(&mut self, delay: u64, id: u64) {
        self.timers.push((delay, id));
    }

    /// Source of randomness (seeded; deterministic under the simulator).
    /// Correct protocol automata must not need it — it exists for
    /// adversaries and randomized workloads.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

/// A sans-IO event-driven process.
pub trait Automaton<M, O>: Send {
    /// Called once before any message is delivered.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M, O>) {}

    /// A message from `from` (possibly [`ENV`]) was delivered.
    fn on_message(&mut self, from: ProcessId, msg: M, ctx: &mut Ctx<'_, M, O>);

    /// A timer set via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, _id: u64, _ctx: &mut Ctx<'_, M, O>) {}

    /// Transient fault: scramble local state arbitrarily. Protocol automata
    /// override this to model the paper's corrupted initial configurations;
    /// the default is a no-op (stateless processes have nothing to corrupt).
    fn corrupt(&mut self, _rng: &mut StdRng) {}

    /// Optional typed access to the automaton state, used by tests and
    /// experiment harnesses to inspect or steer a process (e.g. reading a
    /// server's stored timestamp, or scripting a Byzantine reply). Protocol
    /// automata override this with `Some(self)`.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }

    /// Optional stable fingerprint of the automaton's *complete* local
    /// state, used by the explorer's state-hash deduplication: two explored
    /// prefixes whose simulations digest equal are guaranteed to generate
    /// identical subtrees, so the second is not re-expanded. Requirements
    /// for an override: the digest must cover every field that can
    /// influence any future transition or output (missing one makes dedup
    /// *unsound* — inequivalent states would be conflated), and must not
    /// cover incidental values two equivalent states may disagree on
    /// (wall-clock-like fields; that is merely a missed dedup). Automata
    /// whose behavior depends on an RNG stream must return `None` — the
    /// RNG position is substrate state the automaton cannot see. The
    /// default `None` disables dedup for any simulation containing this
    /// process.
    fn state_digest(&self) -> Option<u64> {
        None
    }
}

/// Blanket boxing support so simulations can store heterogeneous automata.
impl<M, O> Automaton<M, O> for Box<dyn Automaton<M, O>> {
    fn on_start(&mut self, ctx: &mut Ctx<'_, M, O>) {
        (**self).on_start(ctx)
    }
    fn on_message(&mut self, from: ProcessId, msg: M, ctx: &mut Ctx<'_, M, O>) {
        (**self).on_message(from, msg, ctx)
    }
    fn on_timer(&mut self, id: u64, ctx: &mut Ctx<'_, M, O>) {
        (**self).on_timer(id, ctx)
    }
    fn corrupt(&mut self, rng: &mut StdRng) {
        (**self).corrupt(rng)
    }
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        (**self).as_any_mut()
    }
    fn state_digest(&self) -> Option<u64> {
        (**self).state_digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    struct Echo;
    impl Automaton<u32, u32> for Echo {
        fn on_message(&mut self, from: ProcessId, msg: u32, ctx: &mut Ctx<'_, u32, u32>) {
            ctx.send(from, msg + 1);
            ctx.output(msg);
        }
    }

    #[test]
    fn ctx_collects_effects() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = Ctx::new(3, 17, &mut rng);
        let mut a = Echo;
        a.on_message(5, 10, &mut ctx);
        assert_eq!(ctx.outbox, vec![(5, 11)]);
        assert_eq!(ctx.outputs, vec![10]);
        assert_eq!(ctx.me, 3);
        assert_eq!(ctx.now, 17);
    }

    #[test]
    fn broadcast_clones_to_all() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx: Ctx<'_, u32, ()> = Ctx::new(0, 0, &mut rng);
        ctx.broadcast(0..3, 9);
        assert_eq!(ctx.outbox, vec![(0, 9), (1, 9), (2, 9)]);
    }

    #[test]
    fn boxed_automaton_dispatches() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = Ctx::new(0, 0, &mut rng);
        let mut boxed: Box<dyn Automaton<u32, u32>> = Box::new(Echo);
        boxed.on_message(1, 1, &mut ctx);
        assert_eq!(ctx.outbox.len(), 1);
    }
}
