//! # sbft-net — asynchronous message-passing substrates
//!
//! The paper's system model (Section II) is an asynchronous message-passing
//! system with reliable FIFO point-to-point channels, where processes may be
//! Byzantine and both local states and channel contents may start arbitrarily
//! corrupted. This crate provides two executable substrates for that model:
//!
//! * [`sim`] — a **deterministic discrete-event simulator**: seeded random
//!   message delays, strict per-channel FIFO, virtual time, single-stepping,
//!   and complete control over scheduling. All correctness experiments run
//!   here, because adversarial schedules (e.g. the exact execution of the
//!   paper's Theorem 1 proof) must be replayable.
//! * [`threaded`] — a **real-thread runtime** where every process is an OS
//!   thread and channels are crossbeam FIFO queues. Used for wall-clock
//!   throughput measurements (experiment E9); per-producer channel order
//!   gives the required FIFO property for free.
//!
//! Protocols are written *sans-IO* as [`process::Automaton`] state machines
//! and run unchanged on either substrate. The [`substrate::Substrate`]
//! trait is the common driver surface — spawn, inject, pump outputs,
//! metrics, trace, fault injection, crash, stop — so scenario drivers are
//! generic over the runtime and select it via [`substrate::Backend`].
//!
//! Fault injection lives in [`corruption`] (transient state/channel
//! corruption — the "stabilizing" part of the model) while Byzantine
//! behaviours are ordinary `Automaton` implementations provided by the
//! protocol crates. The [`nemesis`] module composes all of it — crashes
//! with recovery, partitions, per-link loss/duplication/delay, transient
//! corruption, and Byzantine-seat relocation — into seeded, replayable
//! fault schedules fired through the [`substrate::Substrate`] trait.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod channel;
pub mod corruption;
pub mod metrics;
pub mod mobile;
pub mod nemesis;
pub mod process;
pub mod sim;
pub mod substrate;
pub mod threaded;
pub mod timer_wheel;
pub mod trace;

pub use batch::{BatchPolicy, Frame, LinkBatcher};
pub use channel::{DelayModel, Scheduled};
pub use corruption::CorruptionSeverity;
pub use metrics::{LatencyHistogram, NetMetrics};
pub use mobile::{mobile_schedule, MobileOpts, MovementMode};
pub use nemesis::{
    AutomatonFactory, CureMode, LinkFault, NemesisEvent, NemesisOpts, NemesisRunner,
    NemesisSchedule, RecoveryFactory,
};
pub use process::{Automaton, Ctx, ProcessId, ENV};
pub use sim::{EventKey, SimConfig, SimEvent, Simulation};
pub use substrate::{AnySubstrate, Backend, Outputs, Pumped, Substrate, SubstrateConfig};
pub use threaded::ThreadedCluster;
pub use timer_wheel::{TimerWheel, TimerWheelThread, WheelId};
