//! Bounded execution trace for debugging adversarial schedules.
//!
//! Tracing is opt-in (capacity 0 disables it) and lazy: the message is only
//! formatted when the trace is enabled, so the hot path pays one branch.

use std::collections::VecDeque;

use crate::process::ProcessId;

/// One recorded delivery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Virtual delivery time.
    pub time: u64,
    /// Sender (may be [`crate::process::ENV`]).
    pub from: ProcessId,
    /// Receiver.
    pub to: ProcessId,
    /// Debug rendering of the message.
    pub msg: String,
}

/// A ring buffer of the most recent deliveries.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    capacity: usize,
    entries: VecDeque<TraceEntry>,
}

impl Trace {
    /// A trace holding at most `capacity` entries (0 = disabled).
    pub fn new(capacity: usize) -> Self {
        Self { capacity, entries: VecDeque::with_capacity(capacity.min(1024)) }
    }

    /// Whether recording is enabled.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Record a delivery; `render` is called only when enabled.
    pub fn record(
        &mut self,
        time: u64,
        from: ProcessId,
        to: ProcessId,
        render: impl FnOnce() -> String,
    ) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(TraceEntry { time, from, to, msg: render() });
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Render the trace as one line per delivery.
    pub fn render(&self) -> String {
        self.entries
            .iter()
            .map(|e| {
                format!("t={:<6} {:>3} -> {:<3} {}", e.time, fmt_pid(e.from), fmt_pid(e.to), e.msg)
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

fn fmt_pid(p: ProcessId) -> String {
    if p == crate::process::ENV {
        "env".to_string()
    } else {
        p.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(0);
        t.record(1, 0, 1, || panic!("must not render when disabled"));
        assert_eq!(t.entries().count(), 0);
        assert!(!t.enabled());
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Trace::new(2);
        t.record(1, 0, 1, || "a".into());
        t.record(2, 1, 0, || "b".into());
        t.record(3, 0, 1, || "c".into());
        let msgs: Vec<&str> = t.entries().map(|e| e.msg.as_str()).collect();
        assert_eq!(msgs, vec!["b", "c"]);
    }

    #[test]
    fn render_includes_env() {
        let mut t = Trace::new(4);
        t.record(5, crate::process::ENV, 2, || "cmd".into());
        assert!(t.render().contains("env"));
        assert!(t.render().contains("cmd"));
    }
}
