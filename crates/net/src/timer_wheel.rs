//! Shared hierarchical timer wheel for the threaded runtime.
//!
//! One dedicated thread serves every deadline in a [`ThreadedCluster`]
//! (worker timers *and* fault-delayed link deliveries): it sleeps exactly
//! until the earliest registered deadline and is woken early only when a
//! new registration lands *before* the deadline it is currently sleeping
//! toward, or on shutdown. Nothing in the wheel polls.
//!
//! Deadlines are expressed in substrate *ticks* (the same `u64` virtual
//! time unit the simulator uses); the wheel maps a tick to the wall clock
//! through the cluster's epoch and tick length. Entries are hashed into a
//! four-level wheel (64 slots per level, spans of 64^0..64^3 ticks, ~16.7M
//! ticks of horizon) with an overflow list beyond that; a slot is a plain
//! `Vec` and due entries are re-sorted by `(fire_tick, seq)` before firing,
//! so firing order is **deadline order, registration order within a
//! deadline** — regardless of how entries were hashed or cascaded.
//!
//! Each entry carries a boxed action run on the wheel thread when it fires.
//! Actions must be short and non-blocking (in practice: one channel send
//! plus a counter update). An action registered after [`TimerWheelThread::stop`]
//! is silently discarded, matching the substrate contract that stopping
//! discards pending work.
//!
//! [`ThreadedCluster`]: crate::threaded::ThreadedCluster

use std::collections::HashSet;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Slots per wheel level.
const SLOTS: usize = 64;
/// Wheel levels; level `l` has a slot span of `64^l` ticks.
const LEVELS: usize = 4;

/// Handle returned by [`TimerWheel::register`]; pass to
/// [`TimerWheel::cancel`] to revoke a pending entry.
pub type WheelId = u64;

/// A deferred action: fires at `fire_tick`, ties break by `seq`
/// (registration order).
struct Entry {
    fire_tick: u64,
    seq: u64,
    id: WheelId,
    action: Box<dyn FnOnce() + Send>,
}

/// The hashed hierarchical wheel proper. Slot index at level `l` is
/// `(fire_tick / 64^l) % 64`; an entry lives at the lowest level whose
/// span-from-now covers its deadline. Because indexing is absolute, an
/// entry never needs to cascade — collection filters each touched slot by
/// `fire_tick` and the final sort restores the global firing order.
struct Wheel {
    levels: Vec<Vec<Vec<Entry>>>,
    overflow: Vec<Entry>,
    /// Every entry with `fire_tick < floor` has already been collected.
    floor: u64,
    pending: usize,
    seq: u64,
    next_id: WheelId,
    cancelled: HashSet<WheelId>,
}

/// `64^l`, the tick span of one slot at level `l`.
fn span(level: usize) -> u64 {
    1u64 << (6 * level as u32)
}

impl Wheel {
    fn new() -> Self {
        Self {
            levels: (0..LEVELS).map(|_| (0..SLOTS).map(|_| Vec::new()).collect()).collect(),
            overflow: Vec::new(),
            floor: 0,
            pending: 0,
            seq: 0,
            next_id: 0,
            cancelled: HashSet::new(),
        }
    }

    fn insert(&mut self, fire_tick: u64, action: Box<dyn FnOnce() + Send>) -> WheelId {
        let id = self.next_id;
        self.next_id += 1;
        let entry = Entry { fire_tick, seq: self.seq, id, action };
        self.seq += 1;
        self.pending += 1;
        let distance = fire_tick.saturating_sub(self.floor);
        // Level l covers deadlines within 64^(l+1) ticks of the floor.
        match (0..LEVELS).find(|&l| distance < span(l + 1)) {
            Some(l) => self.levels[l][(fire_tick / span(l)) as usize % SLOTS].push(entry),
            None => self.overflow.push(entry),
        }
        id
    }

    /// Remove a pending entry by id. Returns whether one was pending.
    fn cancel(&mut self, id: WheelId) -> bool {
        if id >= self.next_id || self.cancelled.contains(&id) {
            return false;
        }
        let lives =
            self.levels.iter().flatten().flatten().chain(self.overflow.iter()).any(|e| e.id == id);
        if lives {
            self.cancelled.insert(id);
            self.pending -= 1;
        }
        lives
    }

    /// Drain every entry due at or before `now_tick`, in firing order.
    fn collect_due(&mut self, now_tick: u64) -> Vec<Entry> {
        if self.pending == 0 {
            self.floor = self.floor.max(now_tick + 1);
            return Vec::new();
        }
        let mut due = Vec::new();
        for (l, level) in self.levels.iter_mut().enumerate() {
            // Only slots the clock has crossed since the floor can hold
            // due entries; cap the walk at one full revolution.
            let first = self.floor / span(l);
            let last = now_tick / span(l);
            let walk = (last.saturating_sub(first) + 1).min(SLOTS as u64);
            for s in 0..walk {
                let slot = &mut level[((first + s) as usize) % SLOTS];
                let mut i = 0;
                while i < slot.len() {
                    if slot[i].fire_tick <= now_tick {
                        due.push(slot.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
            }
        }
        let mut i = 0;
        while i < self.overflow.len() {
            if self.overflow[i].fire_tick <= now_tick {
                due.push(self.overflow.swap_remove(i));
            } else {
                i += 1;
            }
        }
        self.floor = self.floor.max(now_tick + 1);
        due.retain(|e| {
            let cancelled = self.cancelled.remove(&e.id);
            if !cancelled {
                self.pending -= 1;
            }
            !cancelled
        });
        due.sort_unstable_by_key(|e| (e.fire_tick, e.seq));
        due
    }

    /// Earliest pending deadline, if any.
    fn next_fire_tick(&self) -> Option<u64> {
        if self.pending == 0 {
            return None;
        }
        self.levels
            .iter()
            .flatten()
            .flatten()
            .chain(self.overflow.iter())
            .filter(|e| !self.cancelled.contains(&e.id))
            .map(|e| e.fire_tick)
            .min()
    }
}

struct Shared {
    state: Mutex<State>,
    cond: Condvar,
}

struct State {
    wheel: Wheel,
    /// Tick the serving thread is currently sleeping toward (`None` while
    /// it holds no deadline or is mid-collection). A registration earlier
    /// than this re-parks the thread; later ones never wake it.
    sleeping_until: Option<u64>,
    shutdown: bool,
}

/// Shared handle to one wheel + its serving thread. Cheap to clone.
pub struct TimerWheel {
    shared: Arc<Shared>,
    epoch: Instant,
    tick: Duration,
}

impl Clone for TimerWheel {
    fn clone(&self) -> Self {
        Self { shared: Arc::clone(&self.shared), epoch: self.epoch, tick: self.tick }
    }
}

/// Owns the serving thread; stopping (or dropping) this joins it.
pub struct TimerWheelThread {
    wheel: TimerWheel,
    handle: Option<JoinHandle<()>>,
}

impl TimerWheel {
    /// Spawn a wheel whose tick `t` fires at wall time `epoch + t × tick`.
    pub fn spawn(epoch: Instant, tick: Duration) -> TimerWheelThread {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { wheel: Wheel::new(), sleeping_until: None, shutdown: false }),
            cond: Condvar::new(),
        });
        let wheel = TimerWheel { shared, epoch, tick };
        let serve = wheel.clone();
        let handle = std::thread::Builder::new()
            .name("timer-wheel".into())
            .spawn(move || serve.serve())
            .expect("spawn timer wheel thread");
        TimerWheelThread { wheel, handle: Some(handle) }
    }

    /// Current wheel time in ticks.
    pub fn now_tick(&self) -> u64 {
        (self.epoch.elapsed().as_nanos() / self.tick.as_nanos().max(1)) as u64
    }

    fn wall_of(&self, tick: u64) -> Instant {
        let nanos = (self.tick.as_nanos() as u64).saturating_mul(tick);
        self.epoch + Duration::from_nanos(nanos)
    }

    /// Register `action` to run on the wheel thread once the wall clock
    /// reaches tick `fire_tick`. Re-parks the serving thread when this
    /// deadline is earlier than the one it currently sleeps toward. After
    /// [`TimerWheelThread::stop`] the action is dropped and never runs.
    pub fn register(&self, fire_tick: u64, action: impl FnOnce() + Send + 'static) -> WheelId {
        let mut st = self.shared.state.lock().expect("wheel lock");
        if st.shutdown {
            return WheelId::MAX;
        }
        let id = st.wheel.insert(fire_tick, Box::new(action));
        if st.sleeping_until.is_none_or(|t| fire_tick < t) {
            self.shared.cond.notify_all();
        }
        id
    }

    /// Revoke a pending registration. Returns `false` when the entry
    /// already fired, was already cancelled, or never existed.
    pub fn cancel(&self, id: WheelId) -> bool {
        let mut st = self.shared.state.lock().expect("wheel lock");
        st.wheel.cancel(id)
    }

    /// Number of registered-but-unfired entries.
    pub fn pending(&self) -> usize {
        self.shared.state.lock().expect("wheel lock").wheel.pending
    }

    /// The serving loop: park until the earliest deadline (or forever when
    /// idle), wake early only on an earlier registration or shutdown, then
    /// run every due action in `(fire_tick, seq)` order.
    fn serve(&self) {
        let mut st = self.shared.state.lock().expect("wheel lock");
        loop {
            if st.shutdown {
                return;
            }
            let due = st.wheel.collect_due(self.now_tick());
            if !due.is_empty() {
                drop(st);
                for e in due {
                    (e.action)();
                }
                st = self.shared.state.lock().expect("wheel lock");
                continue;
            }
            match st.wheel.next_fire_tick() {
                None => {
                    st.sleeping_until = None;
                    st = self.shared.cond.wait(st).expect("wheel wait");
                }
                Some(tick) => {
                    let wall = self.wall_of(tick);
                    let now = Instant::now();
                    if wall <= now {
                        continue; // already due; collect on the next pass
                    }
                    st.sleeping_until = Some(tick);
                    let (guard, _) =
                        self.shared.cond.wait_timeout(st, wall - now).expect("wheel wait");
                    st = guard;
                    st.sleeping_until = None;
                }
            }
        }
    }

    fn stop(&self) {
        let mut st = self.shared.state.lock().expect("wheel lock");
        st.shutdown = true;
        // Pending actions are discarded, releasing whatever they captured
        // (inbox senders in particular).
        st.wheel = Wheel::new();
        self.shared.cond.notify_all();
    }
}

impl TimerWheelThread {
    /// A cloneable registration handle.
    pub fn handle(&self) -> TimerWheel {
        self.wheel.clone()
    }

    /// Stop serving, discard all pending entries, and join the thread.
    /// The thread never blocks in actions (they are channel sends), so the
    /// join is prompt. Idempotent.
    pub fn stop(&mut self) {
        self.wheel.stop();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TimerWheelThread {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    fn wheel_ms(ms: u64) -> TimerWheelThread {
        TimerWheel::spawn(Instant::now(), Duration::from_millis(ms))
    }

    #[test]
    fn fires_in_deadline_order_not_registration_order() {
        let t = wheel_ms(5);
        let w = t.handle();
        let (tx, rx) = mpsc::channel();
        for (tick, tag) in [(6u64, 'c'), (2, 'a'), (4, 'b')] {
            let tx = tx.clone();
            w.register(tick, move || {
                let _ = tx.send(tag);
            });
        }
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(rx.recv_timeout(Duration::from_secs(5)).expect("firing"));
        }
        assert_eq!(got, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_deadlines_fire_in_registration_order() {
        let t = wheel_ms(10);
        let w = t.handle();
        let (tx, rx) = mpsc::channel();
        for i in 0..20u32 {
            let tx = tx.clone();
            w.register(3, move || {
                let _ = tx.send(i);
            });
        }
        let got: Vec<u32> =
            (0..20).map(|_| rx.recv_timeout(Duration::from_secs(5)).expect("firing")).collect();
        assert_eq!(got, (0..20).collect::<Vec<u32>>());
    }

    #[test]
    fn earlier_registration_reparks_the_sleeper() {
        let t = wheel_ms(5);
        let w = t.handle();
        let (tx, rx) = mpsc::channel();
        // Park toward a deadline far in the future…
        let tx_far = tx.clone();
        w.register(1_000_000, move || {
            let _ = tx_far.send("far");
        });
        std::thread::sleep(Duration::from_millis(20));
        // …then register something much earlier; it must fire promptly,
        // which only happens if the sleeper re-parks on the new deadline.
        let started = Instant::now();
        w.register(6, move || {
            let _ = tx.send("near");
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok("near"));
        assert!(
            started.elapsed() < Duration::from_secs(60),
            "the near deadline must not wait for the far one"
        );
    }

    #[test]
    fn cancellation_suppresses_firing() {
        let t = wheel_ms(10);
        let w = t.handle();
        let fired = Arc::new(AtomicUsize::new(0));
        let (f1, f2) = (Arc::clone(&fired), Arc::clone(&fired));
        let cancel_me = w.register(3, move || {
            f1.fetch_add(100, Ordering::SeqCst);
        });
        let (tx, rx) = mpsc::channel();
        w.register(4, move || {
            f2.fetch_add(1, Ordering::SeqCst);
            let _ = tx.send(());
        });
        assert!(w.cancel(cancel_me), "entry was pending");
        assert!(!w.cancel(cancel_me), "double-cancel reports false");
        rx.recv_timeout(Duration::from_secs(5)).expect("survivor fires");
        assert_eq!(fired.load(Ordering::SeqCst), 1, "cancelled entry must not fire");
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn distant_deadlines_hash_into_high_levels_and_overflow() {
        // Pure wheel-structure test (no thread): entries across every
        // level and the overflow list all collect, in order.
        let mut wheel = Wheel::new();
        let ticks = [1u64, 63, 64, 4_000, 300_000, 20_000_000, 1 << 40];
        for &t in &ticks {
            wheel.insert(t, Box::new(|| {}));
        }
        assert_eq!(wheel.pending, ticks.len());
        assert_eq!(wheel.next_fire_tick(), Some(1));
        let due = wheel.collect_due(u64::MAX - 1);
        let order: Vec<u64> = due.iter().map(|e| e.fire_tick).collect();
        let mut want = ticks.to_vec();
        want.sort_unstable();
        assert_eq!(order, want);
        assert_eq!(wheel.pending, 0);
        assert_eq!(wheel.next_fire_tick(), None);
    }

    #[test]
    fn partial_collection_leaves_future_entries_pending() {
        let mut wheel = Wheel::new();
        wheel.insert(5, Box::new(|| {}));
        wheel.insert(10, Box::new(|| {}));
        wheel.insert(700, Box::new(|| {})); // level 1
        let due = wheel.collect_due(7);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].fire_tick, 5);
        assert_eq!(wheel.pending, 2);
        assert_eq!(wheel.next_fire_tick(), Some(10));
        let due = wheel.collect_due(1000);
        let order: Vec<u64> = due.iter().map(|e| e.fire_tick).collect();
        assert_eq!(order, vec![10, 700]);
    }

    #[test]
    fn stress_concurrent_registration_loses_and_reorders_nothing() {
        // 4 registrant threads × 250 entries with jittered deadlines; every
        // firing must arrive, and per-registrant arrivals with increasing
        // deadlines must fire in deadline order.
        let t = wheel_ms(1);
        let (tx, rx) = mpsc::channel::<(usize, u64)>();
        let start_tick = t.handle().now_tick();
        std::thread::scope(|s| {
            for reg in 0..4usize {
                let w = t.handle();
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..250u64 {
                        // Strictly increasing per-registrant deadlines with
                        // cross-registrant interleaving.
                        let tick = start_tick + 2 + i * 2 + (reg as u64 % 2);
                        let tx = tx.clone();
                        w.register(tick, move || {
                            let _ = tx.send((reg, tick));
                        });
                    }
                });
            }
        });
        drop(tx);
        let mut per_reg: Vec<Vec<u64>> = vec![Vec::new(); 4];
        for _ in 0..1000 {
            let (reg, tick) = rx.recv_timeout(Duration::from_secs(60)).expect("no firing lost");
            per_reg[reg].push(tick);
        }
        for (reg, ticks) in per_reg.iter().enumerate() {
            assert_eq!(ticks.len(), 250, "registrant {reg} lost firings");
            assert!(
                ticks.windows(2).all(|w| w[0] <= w[1]),
                "registrant {reg} saw reordered firings: {ticks:?}"
            );
        }
    }

    #[test]
    fn stop_discards_pending_and_joins() {
        let mut t = wheel_ms(1000);
        let w = t.handle();
        let fired = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fired);
        w.register(1_000_000, move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        t.stop();
        assert_eq!(w.pending(), 0, "stop discards pending entries");
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        assert_eq!(w.register(1, || {}), WheelId::MAX, "post-stop registration is discarded");
        t.stop(); // idempotent
    }
}
