//! Round-structured mobile-Byzantine movement schedules.
//!
//! The mobile-Byzantine model (Bonomi–Del Pozzo–Potop-Butucaru,
//! arXiv:1505.06865) replaces the static adversary with `f` faulty
//! *seats* that roam between servers at round boundaries. Two movement
//! disciplines matter:
//!
//! * **Coordinated** — one adversary controls every agent: in a moving
//!   round *all* seats relocate together (the `(∆S, CAM)` family).
//! * **Uncoordinated** — each agent decides independently per round
//!   whether to move (the `(∆S, CUM)` family).
//!
//! A vacated server is *cured*: the adversary is gone, but under the
//! amnesiac regime its state is arbitrary and it must re-run
//! stabilization (see [`crate::nemesis::CureMode`]). [`mobile_schedule`]
//! compiles a seeded `(round length, movement probability, mode)`
//! configuration into an ordinary [`NemesisSchedule`] of
//! [`NemesisEvent::MoveByz`] events, so the same
//! [`crate::nemesis::NemesisRunner`] machinery drives the mobile regime
//! on both substrates.
//!
//! Determinism: the rng draw pattern per round is fixed by `(mode, f)`
//! alone — one coin per round when coordinated, one coin per seat when
//! uncoordinated, then one destination draw per mover — so the same
//! seed always yields the same schedule regardless of where earlier
//! rounds left the seats.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::nemesis::{NemesisEvent, NemesisSchedule};
use crate::process::ProcessId;

/// Whether the `f` roaming seats move together or independently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MovementMode {
    /// All seats relocate in the same rounds (one movement coin per
    /// round governs the whole seat set).
    Coordinated,
    /// Each seat flips its own movement coin every round.
    Uncoordinated,
}

impl MovementMode {
    /// Short lowercase label for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            MovementMode::Coordinated => "coordinated",
            MovementMode::Uncoordinated => "uncoordinated",
        }
    }
}

/// Knobs for [`mobile_schedule`].
#[derive(Clone, Debug)]
pub struct MobileOpts {
    /// Server pids are `0..servers`; seats roam within this range.
    pub servers: usize,
    /// Initial Byzantine seats (the `f` roaming agents). Defaults to the
    /// *last* `f` servers, matching `ClusterBuilder::byzantine_tail`.
    pub seats: Vec<ProcessId>,
    /// Virtual-time length of one movement round (the paper's ∆).
    /// Smaller rounds = a faster adversary.
    pub round_len: u64,
    /// Per-round movement probability: the chance a seat (uncoordinated)
    /// or the whole set (coordinated) relocates at a round boundary.
    pub move_prob: f64,
    /// Movement discipline.
    pub mode: MovementMode,
    /// First round boundary; gives the cluster time to converge first.
    pub start_after: u64,
    /// No movement after this time (the driver's soak horizon).
    pub horizon: u64,
}

impl MobileOpts {
    /// Defaults for an `n`-server cluster with `f` roaming seats: seats
    /// start on the last `f` servers, rounds of 2 500 time units, always
    /// moving (`move_prob = 1.0`), coordinated.
    pub fn new(servers: usize, f: usize) -> Self {
        assert!(f < servers, "need at least one honest server");
        Self {
            servers,
            seats: (servers - f..servers).collect(),
            round_len: 2_500,
            move_prob: 1.0,
            mode: MovementMode::Coordinated,
            start_after: 1_000,
            horizon: 20_000,
        }
    }

    /// Builder: movement round length.
    pub fn round_len(mut self, round_len: u64) -> Self {
        self.round_len = round_len;
        self
    }

    /// Builder: per-round movement probability.
    pub fn move_prob(mut self, move_prob: f64) -> Self {
        self.move_prob = move_prob;
        self
    }

    /// Builder: movement discipline.
    pub fn mode(mut self, mode: MovementMode) -> Self {
        self.mode = mode;
        self
    }

    /// Builder: soak horizon.
    pub fn horizon(mut self, horizon: u64) -> Self {
        self.horizon = horizon;
        self
    }
}

/// Compile a seeded mobile-Byzantine movement configuration into a
/// [`NemesisSchedule`] of [`NemesisEvent::MoveByz`] events at round
/// boundaries.
///
/// Destinations are drawn uniformly from servers that are neither a
/// current seat nor already chosen this round, so the seat set never
/// exceeds `f` and two agents never land on the same server. This needs
/// `servers ≥ 2f` free slots in the worst all-move round — comfortably
/// satisfied at the paper's `n ≥ 5f+1`.
pub fn mobile_schedule(seed: u64, opts: &MobileOpts) -> NemesisSchedule {
    assert!(
        opts.servers >= 2 * opts.seats.len(),
        "all-move round needs servers >= 2f ({} seats on {} servers)",
        opts.seats.len(),
        opts.servers
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4D4F_4249_4C45_425A);
    let mut seats: BTreeSet<ProcessId> = opts.seats.iter().copied().collect();
    let mut events = Vec::new();
    let mut t = opts.start_after;
    while t <= opts.horizon {
        // Fixed draw pattern per round (see module docs): movement coins
        // first, destination draws second.
        let movers: Vec<ProcessId> = match opts.mode {
            MovementMode::Coordinated => {
                if rng.gen_bool(opts.move_prob) {
                    seats.iter().copied().collect()
                } else {
                    Vec::new()
                }
            }
            MovementMode::Uncoordinated => {
                // One coin per seat, drawn in ascending-pid order.
                seats.iter().copied().filter(|_| rng.gen_bool(opts.move_prob)).collect()
            }
        };
        let mut occupied = seats.clone();
        for from in movers {
            let to = pick_free(&mut rng, opts.servers, &occupied);
            events.push((t, NemesisEvent::MoveByz { from, to }));
            occupied.insert(to);
            seats.remove(&from);
            seats.insert(to);
        }
        t += opts.round_len;
    }
    NemesisSchedule::scripted(events)
}

fn pick_free(rng: &mut StdRng, servers: usize, occupied: &BTreeSet<ProcessId>) -> ProcessId {
    loop {
        let s = rng.gen_range(0..servers);
        if !occupied.contains(&s) {
            return s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replay_seats(opts: &MobileOpts, sched: &NemesisSchedule) -> BTreeSet<ProcessId> {
        let mut seats: BTreeSet<ProcessId> = opts.seats.iter().copied().collect();
        for (_, ev) in sched.events() {
            if let NemesisEvent::MoveByz { from, to } = ev {
                assert!(seats.remove(from), "moved a non-seat {from}");
                assert!(seats.insert(*to), "landed on an occupied seat {to}");
            }
        }
        seats
    }

    #[test]
    fn deterministic_per_seed() {
        let opts = MobileOpts::new(11, 2).mode(MovementMode::Uncoordinated).move_prob(0.7);
        let a = mobile_schedule(9, &opts);
        let b = mobile_schedule(9, &opts);
        assert_eq!(a.len(), b.len());
        for ((ta, ea), (tb, eb)) in a.events().iter().zip(b.events()) {
            assert_eq!(ta, tb);
            assert_eq!(format!("{ea:?}"), format!("{eb:?}"));
        }
    }

    #[test]
    fn coordinated_moves_all_seats_together() {
        let opts = MobileOpts::new(11, 2); // move_prob = 1.0
        let sched = mobile_schedule(3, &opts);
        let mut per_round: std::collections::BTreeMap<u64, usize> = Default::default();
        for (t, ev) in sched.events() {
            assert!(matches!(ev, NemesisEvent::MoveByz { .. }));
            *per_round.entry(*t).or_insert(0) += 1;
        }
        assert!(!per_round.is_empty());
        for (&t, &moves) in &per_round {
            assert_eq!(moves, 2, "round at t={t} moved {moves} of 2 seats");
        }
        assert_eq!(replay_seats(&opts, &sched).len(), 2);
    }

    #[test]
    fn seat_set_never_exceeds_f_and_never_collides() {
        for seed in 0..20 {
            for mode in [MovementMode::Coordinated, MovementMode::Uncoordinated] {
                let opts = MobileOpts::new(6, 1).mode(mode).move_prob(0.8).round_len(700);
                // replay_seats asserts the invariants at every step.
                assert_eq!(replay_seats(&opts, &mobile_schedule(seed, &opts)).len(), 1);
            }
        }
    }

    #[test]
    fn zero_probability_never_moves() {
        let opts = MobileOpts::new(6, 1).move_prob(0.0);
        assert!(mobile_schedule(1, &opts).is_empty());
    }
}
