//! Real-thread runtime: one OS thread per process, crossbeam FIFO channels.
//!
//! This substrate exists for experiment E9 (wall-clock throughput of the
//! register under real parallelism) and to demonstrate that the sans-IO
//! automata are substrate-independent. Each process owns an unbounded
//! crossbeam channel as its inbox; since a crossbeam channel delivers any
//! single producer's messages in send order, the per-pair FIFO property the
//! protocol relies on holds. There is no global clock — `Ctx::now` carries
//! a per-process event counter — and no determinism; correctness assertions
//! belong on the simulator, throughput measurements here.
//!
//! **Limitation**: timers ([`Ctx::set_timer`]) are not supported on this
//! substrate and are silently dropped. The register protocols are purely
//! message-driven; the data-link protocol, which does use timers for
//! retransmission, runs on the simulator.

use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::process::{Automaton, Ctx, ProcessId, ENV};

enum Ctl<M> {
    Msg { from: ProcessId, msg: M },
    Stop,
}

/// A running cluster of automata on OS threads.
pub struct ThreadedCluster<M, O> {
    inboxes: Vec<Sender<Ctl<M>>>,
    outputs: Vec<Receiver<O>>,
    handles: Vec<JoinHandle<()>>,
}

impl<M, O> ThreadedCluster<M, O>
where
    M: Clone + Send + 'static,
    O: Send + 'static,
{
    /// Spawn one thread per automaton. `seed` derives each thread's RNG.
    pub fn spawn(procs: Vec<Box<dyn Automaton<M, O>>>, seed: u64) -> Self {
        let n = procs.len();
        let mut inbox_tx = Vec::with_capacity(n);
        let mut inbox_rx = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Ctl<M>>();
            inbox_tx.push(tx);
            inbox_rx.push(rx);
        }
        let mut out_tx = Vec::with_capacity(n);
        let mut out_rx = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<O>();
            out_tx.push(tx);
            out_rx.push(rx);
        }

        let mut handles = Vec::with_capacity(n);
        let mut rxs = inbox_rx;
        for (pid, mut auto) in procs.into_iter().enumerate() {
            let rx = rxs.remove(0);
            let peers = inbox_tx.clone();
            let out = out_tx[pid].clone();
            handles.push(std::thread::spawn(move || {
                let mut rng =
                    StdRng::seed_from_u64(seed ^ (pid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut tick: u64 = 0;
                {
                    let mut ctx = Ctx::new(pid, tick, &mut rng);
                    auto.on_start(&mut ctx);
                    flush(pid, ctx, &peers, &out);
                }
                while let Ok(ctl) = rx.recv() {
                    tick += 1;
                    match ctl {
                        Ctl::Stop => return,
                        Ctl::Msg { from, msg } => {
                            let mut ctx = Ctx::new(pid, tick, &mut rng);
                            auto.on_message(from, msg, &mut ctx);
                            flush(pid, ctx, &peers, &out);
                        }
                    }
                }
            }));
        }

        Self { inboxes: inbox_tx, outputs: out_rx, handles }
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.inboxes.len()
    }

    /// Whether the cluster is empty.
    pub fn is_empty(&self) -> bool {
        self.inboxes.is_empty()
    }

    /// Send a command to `pid` as the environment.
    pub fn send(&self, pid: ProcessId, msg: M) {
        let _ = self.inboxes[pid].send(Ctl::Msg { from: ENV, msg });
    }

    /// Block until `pid` emits an output, up to `timeout`.
    pub fn recv_output(&self, pid: ProcessId, timeout: Duration) -> Option<O> {
        self.outputs[pid].recv_timeout(timeout).ok()
    }

    /// Non-blocking output poll.
    pub fn try_recv_output(&self, pid: ProcessId) -> Option<O> {
        self.outputs[pid].try_recv().ok()
    }

    /// Send a command and wait for the next output from the same process —
    /// the blocking client-operation shape used by examples and E9.
    pub fn invoke_and_wait(&self, pid: ProcessId, msg: M, timeout: Duration) -> Option<O> {
        self.send(pid, msg);
        self.recv_output(pid, timeout)
    }

    /// Stop all threads and join them.
    pub fn shutdown(mut self) {
        for tx in &self.inboxes {
            let _ = tx.send(Ctl::Stop);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn flush<M, O>(pid: ProcessId, ctx: Ctx<'_, M, O>, peers: &[Sender<Ctl<M>>], out: &Sender<O>) {
    let Ctx { outbox, outputs, timers, .. } = ctx;
    for (to, msg) in outbox {
        if to < peers.len() {
            let _ = peers[to].send(Ctl::Msg { from: pid, msg });
        }
    }
    for o in outputs {
        let _ = out.send(o);
    }
    debug_assert!(
        timers.is_empty(),
        "timers are unsupported on the threaded runtime (see module docs)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Default)]
    struct Ping(u32);

    struct Doubler;
    impl Automaton<Ping, u32> for Doubler {
        fn on_message(&mut self, from: ProcessId, msg: Ping, ctx: &mut Ctx<'_, Ping, u32>) {
            if from == ENV {
                ctx.send(1, msg); // forward to the worker
            } else {
                ctx.output(msg.0); // result came back
            }
        }
    }

    struct Worker;
    impl Automaton<Ping, u32> for Worker {
        fn on_message(&mut self, from: ProcessId, msg: Ping, ctx: &mut Ctx<'_, Ping, u32>) {
            ctx.send(from, Ping(msg.0 * 2));
        }
    }

    #[test]
    fn round_trip_through_threads() {
        let cluster: ThreadedCluster<Ping, u32> =
            ThreadedCluster::spawn(vec![Box::new(Doubler), Box::new(Worker)], 1);
        let out = cluster.invoke_and_wait(0, Ping(21), Duration::from_secs(5));
        assert_eq!(out, Some(42));
        cluster.shutdown();
    }

    #[test]
    fn fifo_per_producer() {
        struct Seq(Vec<u32>);
        impl Automaton<Ping, Vec<u32>> for Seq {
            fn on_message(&mut self, _from: ProcessId, msg: Ping, ctx: &mut Ctx<'_, Ping, Vec<u32>>) {
                self.0.push(msg.0);
                if self.0.len() == 100 {
                    ctx.output(self.0.clone());
                }
            }
        }
        let cluster: ThreadedCluster<Ping, Vec<u32>> =
            ThreadedCluster::spawn(vec![Box::new(Seq(Vec::new()))], 2);
        for i in 0..100 {
            cluster.send(0, Ping(i));
        }
        let got = cluster.recv_output(0, Duration::from_secs(5)).unwrap();
        assert_eq!(got, (0..100).collect::<Vec<u32>>());
        cluster.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let cluster: ThreadedCluster<Ping, u32> =
            ThreadedCluster::spawn(vec![Box::new(Worker), Box::new(Worker)], 3);
        cluster.shutdown();
    }

    #[test]
    fn parallel_clients_all_served() {
        // Many environment commands from multiple user threads; every one
        // gets a response. Exercises MPMC sends into one inbox.
        let cluster: ThreadedCluster<Ping, u32> =
            ThreadedCluster::spawn(vec![Box::new(Doubler), Box::new(Worker)], 4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..25 {
                        cluster.send(0, Ping(i));
                    }
                });
            }
        });
        let mut got = 0;
        while cluster.recv_output(0, Duration::from_millis(500)).is_some() {
            got += 1;
        }
        assert_eq!(got, 100);
        cluster.shutdown();
    }
}
